//! Structured trace bus for the EAR stack.
//!
//! The bus records typed events — EARL state-machine transitions, policy
//! decisions, IMC search steps, daemon clamps, powercap verdicts, EARGM
//! steps — into a fixed-capacity global ring buffer and renders them as
//! JSONL (one object per line, flat primitive fields).
//!
//! # Cost model
//!
//! Tracing is off by default. The only per-call cost while disabled is one
//! relaxed atomic load in [`emit_with`]; the closure that builds the record
//! (and any allocation inside it) never runs. Emission sites sit on the
//! *signature* cadence of the runtime (every few simulated seconds), never
//! on the per-MPI-event DynAIS path, so the O(1) hot path is untouched
//! either way.
//!
//! When enabled, events go into a ring of [`CAPACITY`] records; once full,
//! the oldest record is dropped and [`dropped`] counts the loss — tracing
//! never blocks or grows without bound.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use ear_errors::EarError;

/// Ring capacity in records. A full `earsim all` with tracing on emits a few
/// hundred thousand events; per-run traces fit comfortably.
pub const CAPACITY: usize = 1 << 16;

/// One timestamped event on the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulated time in seconds at emission.
    pub time_s: f64,
    /// Node index the event belongs to (0 for single-node runs).
    pub node: u64,
    /// The event payload.
    pub event: TraceEvent,
}

/// Typed trace events. Payloads are primitives and `String`s so records can
/// be rendered to JSONL and parsed back without external dependencies.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// EARL attached to a job.
    JobStart {
        /// Workload name.
        job: String,
    },
    /// EARL detached; `signatures` is the number of computed signatures.
    JobEnd {
        /// Signatures computed over the job.
        signatures: u64,
    },
    /// The EARL state machine moved between states.
    StateTransition {
        /// State before the signature was evaluated.
        from: String,
        /// State after.
        to: String,
    },
    /// A policy evaluated a signature and chose node frequencies.
    PolicyDecision {
        /// Policy name.
        policy: String,
        /// Selected CPU pstate index.
        cpu: u64,
        /// Selected uncore minimum ratio.
        imc_min: u64,
        /// Selected uncore maximum ratio.
        imc_max: u64,
        /// Whether the policy settled (`Ready`) or keeps searching.
        ready: bool,
    },
    /// One step of a policy's IMC (uncore) frequency search.
    ImcSearchStep {
        /// The uncore max ratio the search moved to.
        max_ratio: u64,
    },
    /// EARL asked the daemon to program frequencies.
    FreqRequest {
        /// Requested CPU pstate index.
        cpu: u64,
        /// Requested uncore minimum ratio.
        imc_min: u64,
        /// Requested uncore maximum ratio.
        imc_max: u64,
    },
    /// The daemon serviced a request (possibly clamped against its ceiling).
    FreqGrant {
        /// Granted CPU pstate index.
        cpu: u64,
        /// Granted uncore minimum ratio.
        imc_min: u64,
        /// Granted uncore maximum ratio.
        imc_max: u64,
        /// True when the grant differs from the request.
        clamped: bool,
    },
    /// The daemon overrode already-programmed frequencies (periodic
    /// powercap enforcement, no EARL request involved).
    DaemonClamp {
        /// CPU pstate after the clamp.
        cpu: u64,
        /// Uncore minimum ratio after the clamp.
        imc_min: u64,
        /// Uncore maximum ratio after the clamp.
        imc_max: u64,
    },
    /// A powercap controller evaluated a window of power samples.
    PowercapVerdict {
        /// Average node power over the window in watts.
        power_w: f64,
        /// The controller action (`ok`, `throttled`, `relaxed`).
        action: String,
    },
    /// The cluster energy manager redistributed the cluster budget.
    GmStep {
        /// Cluster power at evaluation time in watts.
        cluster_power_w: f64,
        /// Cluster budget in watts.
        budget_w: f64,
    },
    /// A connection-lifecycle event on the networked daemon server.
    NetConn {
        /// What happened (`accepted`, `rejected`, `closed`, `error`).
        action: String,
    },
    /// The networked daemon serviced (or failed to service) one request.
    NetRequest {
        /// The wire message kind (rendered as `req` in JSONL; `kind` names
        /// the event itself there).
        req: String,
        /// Whether servicing produced a normal reply.
        ok: bool,
    },
}

impl TraceEvent {
    /// The `kind` tag used in the JSONL rendering.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobEnd { .. } => "job_end",
            TraceEvent::StateTransition { .. } => "state",
            TraceEvent::PolicyDecision { .. } => "policy_decision",
            TraceEvent::ImcSearchStep { .. } => "imc_search_step",
            TraceEvent::FreqRequest { .. } => "freq_request",
            TraceEvent::FreqGrant { .. } => "freq_grant",
            TraceEvent::DaemonClamp { .. } => "daemon_clamp",
            TraceEvent::PowercapVerdict { .. } => "powercap",
            TraceEvent::GmStep { .. } => "gm_step",
            TraceEvent::NetConn { .. } => "net_conn",
            TraceEvent::NetRequest { .. } => "net_request",
        }
    }
}

struct Bus {
    ring: VecDeque<TraceRecord>,
    dropped: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static BUS: OnceLock<Mutex<Bus>> = OnceLock::new();

fn bus() -> MutexGuard<'static, Bus> {
    BUS.get_or_init(|| {
        Mutex::new(Bus {
            ring: VecDeque::with_capacity(CAPACITY),
            dropped: 0,
        })
    })
    .lock()
    .unwrap_or_else(|poison| poison.into_inner())
}

/// Whether the bus currently records events.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off. Off is the default; turning it off does not
/// discard already-recorded events.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Record the event built by `f` — if tracing is enabled. When disabled the
/// closure never runs, so emission sites pay one relaxed load and nothing
/// else.
#[inline]
pub fn emit_with<F: FnOnce() -> TraceRecord>(f: F) {
    if !enabled() {
        return;
    }
    let record = f();
    let mut bus = bus();
    if bus.ring.len() == CAPACITY {
        bus.ring.pop_front();
        bus.dropped += 1;
    }
    bus.ring.push_back(record);
}

/// Remove and return every recorded event, oldest first.
pub fn drain() -> Vec<TraceRecord> {
    bus().ring.drain(..).collect()
}

/// Number of records lost to ring overflow since the last [`reset`].
pub fn dropped() -> u64 {
    bus().dropped
}

/// Clear the ring and the dropped counter (recording state is untouched).
pub fn reset() {
    let mut bus = bus();
    bus.ring.clear();
    bus.dropped = 0;
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest round-trip Display for finite f64 is valid JSON.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Render one record as a single JSON object (no trailing newline).
pub fn to_json(record: &TraceRecord) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"t\":");
    push_json_f64(&mut out, record.time_s);
    let _ = write!(out, ",\"node\":{}", record.node);
    let _ = write!(out, ",\"kind\":\"{}\"", record.event.kind());
    match &record.event {
        TraceEvent::JobStart { job } => {
            out.push_str(",\"job\":");
            push_json_str(&mut out, job);
        }
        TraceEvent::JobEnd { signatures } => {
            let _ = write!(out, ",\"signatures\":{signatures}");
        }
        TraceEvent::StateTransition { from, to } => {
            out.push_str(",\"from\":");
            push_json_str(&mut out, from);
            out.push_str(",\"to\":");
            push_json_str(&mut out, to);
        }
        TraceEvent::PolicyDecision {
            policy,
            cpu,
            imc_min,
            imc_max,
            ready,
        } => {
            out.push_str(",\"policy\":");
            push_json_str(&mut out, policy);
            let _ = write!(
                out,
                ",\"cpu\":{cpu},\"imc_min\":{imc_min},\"imc_max\":{imc_max},\"ready\":{ready}"
            );
        }
        TraceEvent::ImcSearchStep { max_ratio } => {
            let _ = write!(out, ",\"max_ratio\":{max_ratio}");
        }
        TraceEvent::FreqRequest {
            cpu,
            imc_min,
            imc_max,
        } => {
            let _ = write!(
                out,
                ",\"cpu\":{cpu},\"imc_min\":{imc_min},\"imc_max\":{imc_max}"
            );
        }
        TraceEvent::FreqGrant {
            cpu,
            imc_min,
            imc_max,
            clamped,
        } => {
            let _ = write!(
                out,
                ",\"cpu\":{cpu},\"imc_min\":{imc_min},\"imc_max\":{imc_max},\"clamped\":{clamped}"
            );
        }
        TraceEvent::DaemonClamp {
            cpu,
            imc_min,
            imc_max,
        } => {
            let _ = write!(
                out,
                ",\"cpu\":{cpu},\"imc_min\":{imc_min},\"imc_max\":{imc_max}"
            );
        }
        TraceEvent::PowercapVerdict { power_w, action } => {
            out.push_str(",\"power_w\":");
            push_json_f64(&mut out, *power_w);
            out.push_str(",\"action\":");
            push_json_str(&mut out, action);
        }
        TraceEvent::GmStep {
            cluster_power_w,
            budget_w,
        } => {
            out.push_str(",\"cluster_power_w\":");
            push_json_f64(&mut out, *cluster_power_w);
            out.push_str(",\"budget_w\":");
            push_json_f64(&mut out, *budget_w);
        }
        TraceEvent::NetConn { action } => {
            out.push_str(",\"action\":");
            push_json_str(&mut out, action);
        }
        TraceEvent::NetRequest { req, ok } => {
            out.push_str(",\"req\":");
            push_json_str(&mut out, req);
            let _ = write!(out, ",\"ok\":{ok}");
        }
    }
    out.push('}');
    out
}

/// Render records as JSONL: one object per line, trailing newline after the
/// last record, empty string for no records.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        out.push_str(&to_json(r));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// JSONL parsing (round-trip support; flat objects only)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

struct LineParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> LineParser<'a> {
    fn new(s: &'a str) -> Self {
        LineParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape codepoint")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk =
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.literal("true").map(|_| Val::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Val::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| Val::Null),
            Some(_) => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    self.pos += 1;
                }
                let s =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                s.parse::<f64>()
                    .map(Val::Num)
                    .map_err(|_| format!("bad number '{s}'"))
            }
            None => Err("unexpected end of line".into()),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}'"))
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Val)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err("expected ',' or '}'".into()),
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err("trailing bytes after object".into());
        }
        Ok(fields)
    }
}

struct Fields {
    inner: Vec<(String, Val)>,
}

impl Fields {
    fn get(&self, key: &str) -> Result<&Val, String> {
        self.inner
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    fn num(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            Val::Num(n) => Ok(*n),
            Val::Null => Ok(f64::NAN),
            _ => Err(format!("field '{key}' is not a number")),
        }
    }

    fn uint(&self, key: &str) -> Result<u64, String> {
        let n = self.num(key)?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 {
            Ok(n as u64)
        } else {
            Err(format!("field '{key}' is not an unsigned integer"))
        }
    }

    fn str(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            Val::Str(s) => Ok(s.clone()),
            _ => Err(format!("field '{key}' is not a string")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Val::Bool(b) => Ok(*b),
            _ => Err(format!("field '{key}' is not a bool")),
        }
    }
}

fn record_from_fields(fields: Fields) -> Result<TraceRecord, String> {
    let kind = fields.str("kind")?;
    let event = match kind.as_str() {
        "job_start" => TraceEvent::JobStart {
            job: fields.str("job")?,
        },
        "job_end" => TraceEvent::JobEnd {
            signatures: fields.uint("signatures")?,
        },
        "state" => TraceEvent::StateTransition {
            from: fields.str("from")?,
            to: fields.str("to")?,
        },
        "policy_decision" => TraceEvent::PolicyDecision {
            policy: fields.str("policy")?,
            cpu: fields.uint("cpu")?,
            imc_min: fields.uint("imc_min")?,
            imc_max: fields.uint("imc_max")?,
            ready: fields.bool("ready")?,
        },
        "imc_search_step" => TraceEvent::ImcSearchStep {
            max_ratio: fields.uint("max_ratio")?,
        },
        "freq_request" => TraceEvent::FreqRequest {
            cpu: fields.uint("cpu")?,
            imc_min: fields.uint("imc_min")?,
            imc_max: fields.uint("imc_max")?,
        },
        "freq_grant" => TraceEvent::FreqGrant {
            cpu: fields.uint("cpu")?,
            imc_min: fields.uint("imc_min")?,
            imc_max: fields.uint("imc_max")?,
            clamped: fields.bool("clamped")?,
        },
        "daemon_clamp" => TraceEvent::DaemonClamp {
            cpu: fields.uint("cpu")?,
            imc_min: fields.uint("imc_min")?,
            imc_max: fields.uint("imc_max")?,
        },
        "powercap" => TraceEvent::PowercapVerdict {
            power_w: fields.num("power_w")?,
            action: fields.str("action")?,
        },
        "gm_step" => TraceEvent::GmStep {
            cluster_power_w: fields.num("cluster_power_w")?,
            budget_w: fields.num("budget_w")?,
        },
        "net_conn" => TraceEvent::NetConn {
            action: fields.str("action")?,
        },
        "net_request" => TraceEvent::NetRequest {
            req: fields.str("req")?,
            ok: fields.bool("ok")?,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(TraceRecord {
        time_s: fields.num("t")?,
        node: fields.uint("node")?,
        event,
    })
}

/// Parse a JSONL stream produced by [`to_jsonl`] back into records. Blank
/// lines are ignored; errors are located by 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, EarError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parse = |line: &str| -> Result<TraceRecord, String> {
            let fields = LineParser::new(line).object()?;
            record_from_fields(Fields { inner: fields })
        };
        records.push(parse(line).map_err(|message| EarError::Parse {
            line: idx + 1,
            message,
        })?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// The bus is process-global; tests that enable it must not interleave.
    static BUS_TEST_LOCK: TestMutex<()> = TestMutex::new(());

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                time_s: 0.0,
                node: 0,
                event: TraceEvent::JobStart {
                    job: "bt-mz.c \"quoted\"\\path".into(),
                },
            },
            TraceRecord {
                time_s: 10.25,
                node: 0,
                event: TraceEvent::StateTransition {
                    from: "NodePolicy".into(),
                    to: "ValidatePolicy".into(),
                },
            },
            TraceRecord {
                time_s: 10.25,
                node: 0,
                event: TraceEvent::PolicyDecision {
                    policy: "min_energy_eufs".into(),
                    cpu: 1,
                    imc_min: 12,
                    imc_max: 20,
                    ready: false,
                },
            },
            TraceRecord {
                time_s: 10.25,
                node: 0,
                event: TraceEvent::ImcSearchStep { max_ratio: 20 },
            },
            TraceRecord {
                time_s: 10.25,
                node: 0,
                event: TraceEvent::FreqRequest {
                    cpu: 1,
                    imc_min: 12,
                    imc_max: 20,
                },
            },
            TraceRecord {
                time_s: 10.25,
                node: 0,
                event: TraceEvent::FreqGrant {
                    cpu: 2,
                    imc_min: 12,
                    imc_max: 18,
                    clamped: true,
                },
            },
            TraceRecord {
                time_s: 20.5,
                node: 1,
                event: TraceEvent::DaemonClamp {
                    cpu: 3,
                    imc_min: 12,
                    imc_max: 16,
                },
            },
            TraceRecord {
                time_s: 20.5,
                node: 1,
                event: TraceEvent::PowercapVerdict {
                    power_w: 312.832_251,
                    action: "throttled".into(),
                },
            },
            TraceRecord {
                time_s: 30.0,
                node: 0,
                event: TraceEvent::GmStep {
                    cluster_power_w: 1204.5,
                    budget_w: 1100.0,
                },
            },
            TraceRecord {
                time_s: 31.0,
                node: 2,
                event: TraceEvent::NetConn {
                    action: "accepted".into(),
                },
            },
            TraceRecord {
                time_s: 31.5,
                node: 2,
                event: TraceEvent::NetRequest {
                    req: "set_freqs".into(),
                    ok: true,
                },
            },
            TraceRecord {
                time_s: 99.875,
                node: 0,
                event: TraceEvent::JobEnd { signatures: 9 },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let records = sample_records();
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), records.len());
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn parse_errors_are_line_located() {
        let e =
            parse_jsonl("{\"t\":0,\"node\":0,\"kind\":\"job_end\",\"signatures\":3}\nnot json\n")
                .unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = parse_jsonl("{\"t\":0,\"node\":0,\"kind\":\"martian\"}\n").unwrap_err();
        assert!(e.to_string().contains("unknown event kind"), "{e}");
        let e = parse_jsonl("{\"t\":0,\"node\":0}\n").unwrap_err();
        assert!(e.to_string().contains("missing field 'kind'"), "{e}");
    }

    #[test]
    fn disabled_bus_runs_no_closures() {
        let _guard = BUS_TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        let mut ran = false;
        emit_with(|| {
            ran = true;
            TraceRecord {
                time_s: 0.0,
                node: 0,
                event: TraceEvent::JobEnd { signatures: 0 },
            }
        });
        assert!(!ran);
        assert!(drain().is_empty());
    }

    #[test]
    fn enabled_bus_records_in_order_and_drops_oldest() {
        let _guard = BUS_TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        for i in 0..(CAPACITY as u64 + 5) {
            emit_with(|| TraceRecord {
                time_s: i as f64,
                node: 0,
                event: TraceEvent::JobEnd { signatures: i },
            });
        }
        set_enabled(false);
        let records = drain();
        assert_eq!(records.len(), CAPACITY);
        assert_eq!(dropped(), 5);
        // Oldest five were dropped; the stream starts at i == 5.
        assert_eq!(records[0].time_s, 5.0);
        assert_eq!(records.last().unwrap().time_s, (CAPACITY + 4) as f64);
        reset();
        assert_eq!(dropped(), 0);
    }
}
