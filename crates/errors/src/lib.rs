//! Unified error type for the EAR stack.
//!
//! Every layer of the reproduction — the simulated hardware (`ear-archsim`),
//! the runtime library and node daemon (`ear-core`), the batch scheduler
//! (`ear-sched`), the workload catalog (`ear-workloads`) and the `earsim`
//! binary — reports failures as [`EarError`]. The crate sits at the bottom
//! of the dependency graph and has no dependencies of its own, so any crate
//! can convert its local error type with a `From` impl without creating a
//! cycle (the local type is the covering type, so the orphan rule permits
//! `impl From<LocalError> for EarError` in the crate that owns `LocalError`).
//!
//! Payloads are primitives and `String`s only: errors cross layer boundaries
//! (EARL → EARD → EARGM → CLI) and must not drag layer-specific types with
//! them.

#![warn(missing_docs)]

use std::fmt;

/// Convenience alias used across the workspace.
pub type EarResult<T> = Result<T, EarError>;

/// The unified error type of the EAR stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EarError {
    /// A configuration source (`ear.conf`, SPANK plugstack flags, CLI
    /// options) could not be parsed or holds an out-of-range value.
    Config {
        /// 1-based line in the configuration file, when known.
        line: Option<usize>,
        /// What was wrong.
        message: String,
    },
    /// Structured input (trace files, JSONL streams, workload specs) is
    /// malformed.
    Parse {
        /// 1-based line of the offending record.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The (simulated) hardware rejected an MSR access.
    Msr(String),
    /// A name failed to resolve against a registry.
    Unknown {
        /// The registry kind: `"policy"`, `"model"`, `"workload"`, ....
        kind: &'static str,
        /// The name that did not resolve.
        name: String,
    },
    /// A workload could not be calibrated to its published targets.
    Calibration(String),
    /// An EARL↔EARD↔EARGM protocol invariant was violated.
    Protocol(String),
    /// An internal invariant did not hold; indicates a bug, not bad input.
    Invariant(String),
    /// A filesystem operation failed (artifacts, trace output, conf files).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error rendered as text.
        message: String,
    },
}

impl EarError {
    /// Shorthand for a config error without line information.
    pub fn config(message: impl Into<String>) -> Self {
        EarError::Config {
            line: None,
            message: message.into(),
        }
    }

    /// Shorthand for an unresolved registry name.
    pub fn unknown(kind: &'static str, name: impl Into<String>) -> Self {
        EarError::Unknown {
            kind,
            name: name.into(),
        }
    }

    /// Shorthand for an I/O failure on `path`.
    pub fn io(path: impl Into<String>, err: impl fmt::Display) -> Self {
        EarError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for EarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EarError::Config {
                line: Some(line),
                message,
            } => write!(f, "config error at line {line}: {message}"),
            EarError::Config {
                line: None,
                message,
            } => write!(f, "config error: {message}"),
            EarError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            EarError::Msr(message) => write!(f, "msr error: {message}"),
            EarError::Unknown { kind, name } => write!(f, "unknown {kind} '{name}'"),
            EarError::Calibration(message) => write!(f, "calibration error: {message}"),
            EarError::Protocol(message) => write!(f, "protocol error: {message}"),
            EarError::Invariant(message) => write!(f, "invariant violated: {message}"),
            EarError::Io { path, message } => write!(f, "io error on {path}: {message}"),
        }
    }
}

impl std::error::Error for EarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_locatable() {
        let e = EarError::Config {
            line: Some(3),
            message: "bad key".into(),
        };
        assert_eq!(e.to_string(), "config error at line 3: bad key");
        let e = EarError::config("no file");
        assert_eq!(e.to_string(), "config error: no file");
        let e = EarError::Parse {
            line: 1,
            message: "unknown call id".into(),
        };
        assert!(e.to_string().contains("line 1"));
        let e = EarError::unknown("policy", "min_power");
        assert_eq!(e.to_string(), "unknown policy 'min_power'");
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&EarError::Msr("boom".into()));
    }
}
