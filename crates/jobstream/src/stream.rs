//! The discrete-event job stream over a powercapped fleet.
//!
//! One [`run_stream`] call plays a pre-drawn arrival plan against a fleet
//! of EARD agents under a global DC power budget. The manager side is the
//! same poll → [`distribute_budget`] → cap-command round the netd
//! aggregation tree runs, and every exchange travels as encoded wire
//! frames through the real codec; the execution side runs each admitted
//! job on a fresh `ear-archsim` cluster under the full enforcement stack
//! (powercap policy inside EARL, daemon clamps, RAPL PL1 backstop in the
//! MSRs).
//!
//! ## Determinism
//!
//! Virtual time is integer microseconds. Admission is strict FCFS onto
//! the lowest-numbered free slots; completions at equal times order by
//! job sequence, and a completion at time *t* is processed before an
//! arrival at *t*. Job execution is `ear_mpisim::run_job`, which is
//! bit-identical across worker-thread counts, and job durations derive
//! only from simulated seconds — so the whole report is byte-identical
//! across re-runs, `--jobs` settings and transports (the UDS path moves
//! identical bytes, merely over sockets).
//!
//! ## Simplifications (documented, deliberate)
//!
//! A job's caps are granted at admission and hold for its lifetime;
//! rebalances triggered while it runs update the daemons' cap state (and
//! the counters) but do not retroactively re-execute the job. Real EARGM
//! converges the same way, one evaluation window behind the fleet.

use crate::arrivals::{generate_plan, Arrival, ArrivalConfig};
use crate::stats;
use ear_archsim::rng::SplitMix64;
use ear_archsim::Cluster;
use ear_core::policy::PolicySettings;
use ear_core::powercap::distribute_budget;
use ear_core::protocol::{EarlRequest, GmCommand};
use ear_core::{EarDaemon, Earl, EarlConfig, Signature};
use ear_errors::{EarError, EarResult};
use ear_mpisim::run_job;
use ear_netd::codec::{self, FrameBuffer, WireMsg};
use ear_netd::server::{spawn_async, EardConfig, EardService, ServerConfig, ServerHandle};
use ear_netd::{ClientConfig, Endpoint, NetClient, NetListener};
use ear_workloads::{build_job, calibrate};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::path::PathBuf;
use std::time::Duration;

/// How the stream reaches its EARD agents.
#[derive(Debug, Clone, Default)]
pub enum Wire {
    /// In-process daemon state machines behind [`FrameBuffer`]s (every
    /// byte still goes through the codec).
    #[default]
    InProcess,
    /// One readiness-loop server per fleet node on a Unix-domain socket
    /// under the given directory, one [`NetClient`] per node.
    Uds {
        /// Directory for the per-node `eard-<i>.sock` files.
        dir: PathBuf,
    },
}

/// Stream configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Fleet size (slots a job's nodes are allocated from).
    pub fleet_nodes: usize,
    /// Global DC power budget over the fleet (W).
    pub budget_w: f64,
    /// Mean arrival rate (jobs per hour of virtual time).
    pub arrival_rate_per_hour: f64,
    /// Seed for the arrival plan and per-job cluster seeds.
    pub seed: u64,
    /// How many jobs the stream admits before draining.
    pub max_jobs: usize,
    /// Short jobs (few iterations) for smoke runs.
    pub quick: bool,
    /// Power an idle slot reports to the manager (W).
    pub idle_power_w: f64,
    /// Run the pstate-only throttle baseline instead of the dual-knob
    /// powercap policy (frontier comparisons).
    pub pstate_only: bool,
    /// Transport to the daemons.
    pub wire: Wire,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            fleet_nodes: 8,
            budget_w: 2000.0,
            arrival_rate_per_hour: 60.0,
            seed: 0xEA12_57EA,
            max_jobs: 12,
            quick: false,
            idle_power_w: 120.0,
            pstate_only: false,
            wire: Wire::InProcess,
        }
    }
}

/// One finished job, as the report prints it.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Stream-wide job id (admission order).
    pub seq: usize,
    /// Application name.
    pub app: String,
    /// Nodes the job ran on.
    pub nodes: usize,
    /// Virtual submit time (s).
    pub submit_s: f64,
    /// Virtual start time (s).
    pub start_s: f64,
    /// Virtual completion time (s).
    pub end_s: f64,
    /// Mean per-node cap granted at admission (W).
    pub cap_w: f64,
    /// Measured mean per-node DC power (W).
    pub avg_power_w: f64,
    /// Total DC energy over the job (J).
    pub energy_j: f64,
    /// Worst per-node excursion above its granted cap (W; negative =
    /// every node stayed under).
    pub over_w: f64,
}

/// What one stream run produced.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Per-job outcomes in admission order.
    pub jobs: Vec<JobOutcome>,
    /// Fleet size.
    pub fleet_nodes: usize,
    /// Global budget (W).
    pub budget_w: f64,
    /// Poll-and-redistribute rounds run.
    pub rebalances: u64,
    /// Cap commands acknowledged by daemons.
    pub caps_pushed: u64,
    /// Protocol-level mismatches observed (must be 0 on a healthy run).
    pub protocol_errors: u64,
    /// Deepest the FCFS queue ever got.
    pub peak_queue: usize,
    /// Virtual time the last job completed (s).
    pub makespan_s: f64,
    /// Total DC energy over all jobs (J).
    pub total_energy_j: f64,
}

impl StreamReport {
    /// Jobs per virtual hour actually achieved.
    pub fn throughput_per_hour(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.jobs.len() as f64 * 3600.0 / self.makespan_s
    }

    /// Worst per-node cap excursion across all jobs (W).
    pub fn worst_over_w(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.over_w)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Deterministic text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "job stream: {} nodes, budget {:.0} W\n",
            self.fleet_nodes, self.budget_w
        ));
        out.push_str(
            " seq  app          n  submit_s   wait_s    run_s    cap_W    avg_W   over_W\n",
        );
        for j in &self.jobs {
            out.push_str(&format!(
                "{:4}  {:<11}{:3}  {:8.1} {:8.1} {:8.1} {:8.1} {:8.1} {:8.1}\n",
                j.seq,
                j.app,
                j.nodes,
                j.submit_s,
                j.start_s - j.submit_s,
                j.end_s - j.start_s,
                j.cap_w,
                j.avg_power_w,
                j.over_w,
            ));
        }
        out.push_str(&format!(
            "jobs {}  rebalances {}  caps_pushed {}  protocol_errors {}  peak_queue {}\n",
            self.jobs.len(),
            self.rebalances,
            self.caps_pushed,
            self.protocol_errors,
            self.peak_queue,
        ));
        out.push_str(&format!(
            "makespan {:.1} s  energy {:.1} MJ  throughput {:.1} jobs/h  worst_over {:+.1} W\n",
            self.makespan_s,
            self.total_energy_j / 1e6,
            self.throughput_per_hour(),
            self.worst_over_w(),
        ));
        out
    }
}

/// One fleet slot's daemon, reached either in-process or over a socket.
enum AgentLink {
    Local {
        service: EardService,
        inbuf: FrameBuffer,
        out: Vec<u8>,
    },
    Net(Box<NetClient>),
}

impl AgentLink {
    /// One request/reply exchange through encoded frames.
    fn exchange(&mut self, scratch: &mut Vec<u8>, msg: &WireMsg) -> EarResult<WireMsg> {
        match self {
            AgentLink::Local {
                service,
                inbuf,
                out,
            } => {
                scratch.clear();
                codec::encode_frame_into(scratch, msg)?;
                inbuf.push_bytes(scratch);
                let decoded = inbuf.next_frame()?.ok_or_else(|| {
                    EarError::Protocol("agent buffered a partial frame".to_string())
                })?;
                let (reply, _) = service.respond(&decoded);
                out.clear();
                codec::encode_frame_into(out, &reply)?;
                let (reply, used) = codec::decode_frame(out)?;
                if used != out.len() {
                    return Err(EarError::Protocol(
                        "daemon produced more than one reply frame".to_string(),
                    ));
                }
                Ok(reply)
            }
            AgentLink::Net(client) => client.request_with_retry(msg),
        }
    }
}

/// DC cap → per-socket RAPL PL1 grant. The package share is what remains
/// of the node cap after the non-CPU floor (platform baseline + static
/// DRAM), split evenly over sockets; dynamic DRAM power is deliberately
/// left inside the grant so PL1 stays a *backstop* slightly above the
/// policy's own operating point rather than a second active controller.
/// Exported because the experiment engine arms the same backstop for
/// capped cells — the frontier races the configuration the fleet
/// actually deploys.
pub fn rapl_pkg_limit_w(cfg: &ear_archsim::NodeConfig, cap_dc_w: f64) -> f64 {
    let non_pkg = cfg.power.platform_w + cfg.sockets as f64 * cfg.power.dram_static_w;
    ((cap_dc_w - non_pkg) / cfg.sockets as f64).max(10.0)
}

struct Fleet {
    cfg: StreamConfig,
    agents: Vec<AgentLink>,
    servers: Vec<ServerHandle>,
    free: Vec<bool>,
    scratch: Vec<u8>,
    rebalances: u64,
    caps_pushed: u64,
    protocol_errors: u64,
}

impl Fleet {
    fn new(cfg: StreamConfig) -> EarResult<Self> {
        let n = cfg.fleet_nodes;
        let mut agents = Vec::with_capacity(n);
        let mut servers = Vec::new();
        match &cfg.wire {
            Wire::InProcess => {
                for i in 0..n {
                    agents.push(AgentLink::Local {
                        service: EardService::new(EardConfig {
                            node: i as u64,
                            ceiling: None,
                            idle_power_w: cfg.idle_power_w,
                        }),
                        inbuf: FrameBuffer::new(),
                        out: Vec::new(),
                    });
                }
            }
            Wire::Uds { dir } => {
                for i in 0..n {
                    let path = dir.join(format!("eard-{i}.sock"));
                    let spec = path.to_string_lossy().to_string();
                    let listener = NetListener::bind(&spec)?;
                    servers.push(spawn_async(
                        listener,
                        ServerConfig {
                            eard: EardConfig {
                                node: i as u64,
                                ceiling: None,
                                idle_power_w: cfg.idle_power_w,
                            },
                            workers: 2,
                            read_timeout: Duration::from_secs(5),
                            write_timeout: Duration::from_secs(5),
                            max_seconds: Some(600.0),
                        },
                    ));
                    agents.push(AgentLink::Net(Box::new(NetClient::new(
                        Endpoint::parse(&spec),
                        ClientConfig {
                            seed: cfg.seed ^ (i as u64),
                            ..ClientConfig::default()
                        },
                    ))));
                }
            }
        }
        Ok(Fleet {
            free: vec![true; n],
            agents,
            servers,
            scratch: Vec::new(),
            cfg,
            rebalances: 0,
            caps_pushed: 0,
            protocol_errors: 0,
        })
    }

    fn free_count(&self) -> usize {
        self.free.iter().filter(|f| **f).count()
    }

    /// Poll every daemon, redistribute the budget over reported demand,
    /// push one cap command per daemon. Returns the per-slot caps.
    fn rebalance(&mut self) -> EarResult<Vec<f64>> {
        let mut powers = Vec::with_capacity(self.agents.len());
        for (i, agent) in self.agents.iter_mut().enumerate() {
            let reply =
                agent.exchange(&mut self.scratch, &WireMsg::PollPower { node: i as u64 })?;
            match reply {
                WireMsg::Report(r) => powers.push(r.avg_power_w),
                _ => {
                    self.protocol_errors += 1;
                    powers.push(self.cfg.idle_power_w);
                }
            }
        }
        let caps = distribute_budget(self.cfg.budget_w, &powers);
        for (i, agent) in self.agents.iter_mut().enumerate() {
            let cmd = GmCommand {
                node: i,
                cap_w: caps[i],
            };
            let reply = agent.exchange(&mut self.scratch, &WireMsg::Command(cmd))?;
            match reply {
                WireMsg::CapAck { node, cap_w }
                    if node == i as u64 && cap_w.to_bits() == caps[i].to_bits() =>
                {
                    self.caps_pushed += 1;
                }
                _ => self.protocol_errors += 1,
            }
        }
        self.rebalances += 1;
        stats::record_rebalance();
        stats::record_caps_pushed(self.agents.len() as u64);
        Ok(caps)
    }

    /// Report one node's measured (or idle) power back to its daemon as a
    /// signature frame, so the next poll sees it.
    fn report_power(&mut self, slot: usize, window_s: f64, dc_power_w: f64) -> EarResult<()> {
        let sig = Signature {
            window_s,
            dc_power_w,
            pkg_power_w: dc_power_w * 0.75,
            ..Signature::default()
        };
        let reply = self.agents[slot].exchange(
            &mut self.scratch,
            &WireMsg::Request(EarlRequest::ReportSignature(sig)),
        )?;
        if !matches!(reply, WireMsg::SigAck { .. }) {
            self.protocol_errors += 1;
        }
        Ok(())
    }

    /// Drain the UDS servers (no-op for the in-process wire) and fold
    /// their connection-level error counts into the stream's.
    fn shutdown(&mut self) -> EarResult<()> {
        for agent in &mut self.agents {
            if let AgentLink::Net(client) = agent {
                client.shutdown()?;
            }
        }
        for handle in self.servers.drain(..) {
            let report = handle.join()?;
            self.protocol_errors += report.conn_errors;
        }
        Ok(())
    }
}

/// Runs one admitted job on a fresh cluster under its granted caps and
/// the full enforcement stack. Returns (seconds, total energy, per-node
/// measured powers).
fn execute_job(
    cfg: &StreamConfig,
    arrival: &Arrival,
    caps: &[f64],
) -> EarResult<(f64, f64, Vec<f64>)> {
    let cal = calibrate(&arrival.targets).map_err(|e| EarError::Calibration(e.to_string()))?;
    let spec = build_job(&cal);
    let n = arrival.targets.nodes;
    // One independent seed per (stream, job): mixes the stream seed with
    // the job sequence through SplitMix64 so neighbouring jobs decorrelate.
    let job_seed =
        SplitMix64::new(cfg.seed ^ (arrival.seq as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .next_u64();
    let mut cluster = Cluster::new(cal.node_config.clone(), n, job_seed);
    let mut runtimes = Vec::with_capacity(n);
    for (k, &cap_w) in caps.iter().enumerate().take(n) {
        cluster
            .node_mut(k)
            .set_rapl_limit_w(rapl_pkg_limit_w(&cal.node_config, cap_w), 1.0)
            .map_err(|e| EarError::Msr(format!("programming PL1: {e:?}")))?;
        let policy = if cfg.pstate_only {
            "powercap_pstate"
        } else {
            "powercap"
        };
        let earl = Earl::from_registry(EarlConfig {
            policy_name: policy.to_string(),
            settings: PolicySettings {
                cap_w: Some(cap_w),
                ..PolicySettings::default()
            },
            ..EarlConfig::default()
        })?;
        let mut daemon = EarDaemon::with_cap(earl, cluster.node(k), cap_w);
        daemon.set_node_id(k as u64);
        runtimes.push(daemon);
    }
    let report = run_job(&mut cluster, &spec, &mut runtimes);
    let powers = report.nodes.iter().map(|r| r.avg_dc_power_w).collect();
    Ok((report.seconds(), report.total_dc_energy_j(), powers))
}

/// Plays the whole stream: draws the arrival plan, admits FCFS onto the
/// fleet, rebalances the budget on every admission and completion, and
/// returns the deterministic report.
pub fn run_stream(cfg: StreamConfig) -> EarResult<StreamReport> {
    let plan = generate_plan(&ArrivalConfig {
        seed: cfg.seed,
        rate_per_hour: cfg.arrival_rate_per_hour,
        max_jobs: cfg.max_jobs,
        fleet_nodes: cfg.fleet_nodes,
        quick: cfg.quick,
    });
    let mut fleet = Fleet::new(cfg)?;
    let cfg = fleet.cfg.clone();

    let mut outcomes: Vec<Option<JobOutcome>> = (0..plan.len()).map(|_| None).collect();
    let mut queue: VecDeque<usize> = VecDeque::new();
    // (completion µs, seq, slots) — seq breaks exact-time ties.
    let mut completions: BinaryHeap<Reverse<(u64, usize, Vec<usize>)>> = BinaryHeap::new();
    let mut slot_caps: Vec<Vec<f64>> = vec![Vec::new(); plan.len()];
    let mut peak_queue = 0usize;
    let mut makespan_us = 0u64;
    let mut total_energy_j = 0.0f64;
    let mut next = 0usize;

    // Admits as many queued jobs as fit, FCFS, at virtual time `now_us`.
    #[allow(clippy::too_many_arguments)]
    fn try_admit(
        now_us: u64,
        fleet: &mut Fleet,
        cfg: &StreamConfig,
        plan: &[Arrival],
        queue: &mut VecDeque<usize>,
        completions: &mut BinaryHeap<Reverse<(u64, usize, Vec<usize>)>>,
        outcomes: &mut [Option<JobOutcome>],
        slot_caps: &mut [Vec<f64>],
        total_energy_j: &mut f64,
        makespan_us: &mut u64,
    ) -> EarResult<()> {
        while let Some(&seq) = queue.front() {
            let arrival = &plan[seq];
            if fleet.free_count() < arrival.targets.nodes {
                break;
            }
            queue.pop_front();
            let slots: Vec<usize> = (0..fleet.free.len())
                .filter(|&s| fleet.free[s])
                .take(arrival.targets.nodes)
                .collect();
            for &s in &slots {
                fleet.free[s] = false;
            }
            // Grant caps from a fresh rebalance: the new job's slots still
            // report idle power, so their share is the idle-demand one —
            // the next completion or admission re-divides with their real
            // demand known (one window behind, as on a real machine room).
            let caps = fleet.rebalance()?;
            let granted: Vec<f64> = slots.iter().map(|&s| caps[s]).collect();
            let (seconds, energy_j, powers) = execute_job(cfg, arrival, &granted)?;
            for (k, &s) in slots.iter().enumerate() {
                fleet.report_power(s, seconds, powers[k])?;
            }
            let over_w = powers
                .iter()
                .zip(&granted)
                .map(|(p, c)| p - c)
                .fold(f64::NEG_INFINITY, f64::max);
            let end_us = now_us + (seconds * 1e6).round() as u64;
            *makespan_us = (*makespan_us).max(end_us);
            *total_energy_j += energy_j;
            outcomes[seq] = Some(JobOutcome {
                seq,
                app: arrival.targets.name.to_string(),
                nodes: arrival.targets.nodes,
                submit_s: arrival.at_us as f64 / 1e6,
                start_s: now_us as f64 / 1e6,
                end_s: end_us as f64 / 1e6,
                cap_w: granted.iter().sum::<f64>() / granted.len().max(1) as f64,
                avg_power_w: powers.iter().sum::<f64>() / powers.len().max(1) as f64,
                energy_j,
                over_w,
            });
            slot_caps[seq] = granted;
            completions.push(Reverse((end_us, seq, slots)));
            stats::record_admitted();
        }
        Ok(())
    }

    while next < plan.len() || !completions.is_empty() {
        let next_arrival_us = plan.get(next).map(|a| a.at_us);
        let next_completion_us = completions.peek().map(|Reverse((t, _, _))| *t);
        let completion_first = match (next_completion_us, next_arrival_us) {
            (Some(c), Some(a)) => c <= a,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if completion_first {
            let Some(Reverse((now_us, seq, slots))) = completions.pop() else {
                break;
            };
            for &s in &slots {
                fleet.free[s] = true;
                // The slot falls back to idle demand for the next poll.
                fleet.report_power(s, 1.0, cfg.idle_power_w)?;
            }
            let _ = seq;
            stats::record_completed();
            fleet.rebalance()?;
            try_admit(
                now_us,
                &mut fleet,
                &cfg,
                &plan,
                &mut queue,
                &mut completions,
                &mut outcomes,
                &mut slot_caps,
                &mut total_energy_j,
                &mut makespan_us,
            )?;
        } else {
            let now_us = plan[next].at_us;
            queue.push_back(next);
            next += 1;
            peak_queue = peak_queue.max(queue.len());
            try_admit(
                now_us,
                &mut fleet,
                &cfg,
                &plan,
                &mut queue,
                &mut completions,
                &mut outcomes,
                &mut slot_caps,
                &mut total_energy_j,
                &mut makespan_us,
            )?;
        }
    }
    if !queue.is_empty() {
        return Err(EarError::Invariant(
            "job stream drained with jobs still queued".to_string(),
        ));
    }
    fleet.shutdown()?;

    let jobs: Vec<JobOutcome> = outcomes.into_iter().map_while(|o| o).collect();
    Ok(StreamReport {
        fleet_nodes: cfg.fleet_nodes,
        budget_w: cfg.budget_w,
        rebalances: fleet.rebalances,
        caps_pushed: fleet.caps_pushed,
        protocol_errors: fleet.protocol_errors,
        peak_queue,
        makespan_s: makespan_us as f64 / 1e6,
        total_energy_j,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> StreamConfig {
        StreamConfig {
            fleet_nodes: 4,
            budget_w: 1200.0,
            arrival_rate_per_hour: 120.0,
            seed: 7,
            max_jobs: 3,
            quick: true,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn stream_runs_all_jobs_and_rebalances() {
        let report = run_stream(quick_cfg()).expect("stream runs");
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.protocol_errors, 0);
        // At least one rebalance per admission and one per completion.
        assert!(report.rebalances >= 6, "rebalances: {}", report.rebalances);
        assert_eq!(report.caps_pushed, report.rebalances * 4);
        for j in &report.jobs {
            assert!(j.end_s > j.start_s);
            assert!(j.start_s + 1e-9 >= j.submit_s);
            assert!(j.energy_j > 0.0);
        }
    }

    #[test]
    fn stream_is_deterministic_across_runs() {
        let a = run_stream(quick_cfg()).expect("first run");
        let b = run_stream(quick_cfg()).expect("second run");
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn oversubscribed_budget_still_drains_and_caps_bind() {
        // A budget far below the fleet's appetite: jobs still all finish
        // (the policy floors at the slowest operating point) and the
        // granted caps are visibly tight.
        let report = run_stream(StreamConfig {
            budget_w: 400.0,
            ..quick_cfg()
        })
        .expect("oversubscribed stream runs");
        assert_eq!(report.jobs.len(), 3);
        let generous = run_stream(StreamConfig {
            budget_w: 4000.0,
            ..quick_cfg()
        })
        .expect("generous stream runs");
        let tight_cap: f64 = report.jobs.iter().map(|j| j.cap_w).sum();
        let wide_cap: f64 = generous.jobs.iter().map(|j| j.cap_w).sum();
        assert!(
            tight_cap < wide_cap,
            "tight {tight_cap:.1} W vs wide {wide_cap:.1} W"
        );
        // Under the tight budget every job draws less power (it may run
        // longer, so total *energy* is not the right comparison).
        let tight_w: f64 = report.jobs.iter().map(|j| j.avg_power_w).sum();
        let wide_w: f64 = generous.jobs.iter().map(|j| j.avg_power_w).sum();
        assert!(
            tight_w < wide_w,
            "tight {tight_w:.1} W vs wide {wide_w:.1} W"
        );
    }

    #[test]
    fn uds_wire_matches_the_in_process_stream() {
        let dir = std::env::temp_dir().join(format!("ear-jobstream-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("socket dir");
        let uds = run_stream(StreamConfig {
            wire: Wire::Uds { dir: dir.clone() },
            ..quick_cfg()
        })
        .expect("uds stream runs");
        let local = run_stream(quick_cfg()).expect("local stream runs");
        assert_eq!(uds.render(), local.render(), "transport must not matter");
        assert_eq!(uds.protocol_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
