//! A live job stream over a powercapped fleet.
//!
//! Every experiment so far runs one job on an otherwise empty cluster.
//! Production EARGM does not have that luxury: jobs arrive continuously,
//! each grabs a few nodes, and the global power budget has to be
//! re-divided every time the fleet's composition changes. This crate
//! closes that gap with a deterministic discrete-event simulation:
//!
//! * [`arrivals`] draws a seeded Poisson arrival plan from the workload
//!   catalog — exponential inter-arrival gaps, sampled applications, node
//!   counts and iteration counts — entirely up front, so the same seed
//!   always produces the same stream regardless of how the jobs are later
//!   executed.
//! * [`stream`] runs the plan against a fleet of EARD agents. Every
//!   control exchange (power poll, cap command, signature report) travels
//!   as encoded wire frames through the real `ear-netd` codec — either
//!   through in-process [`ear_netd::EardService`] state machines behind
//!   [`ear_netd::FrameBuffer`]s (the default), or over Unix-domain
//!   sockets against real [`ear_netd::server::spawn_async`] servers (the
//!   CI smoke configuration). On every admission and completion the
//!   manager re-polls the fleet and redistributes the budget
//!   ([`ear_core::powercap::distribute_budget`]), so caps follow the job
//!   mix exactly as EAR's cluster manager rebalances a machine room.
//! * Each admitted job executes on a fresh `ear-archsim` cluster under
//!   the full enforcement stack: the `powercap` policy searches
//!   (pstate, uncore) under the granted cap, the node daemon clamps, and
//!   the RAPL PL1 limiter backstops in the MSRs.
//!
//! Virtual time is integer microseconds; all queueing decisions are FCFS
//! with lowest-index slot allocation. Nothing in the crate consults wall
//! clocks or OS randomness, so a stream is byte-identical across re-runs
//! and worker-thread counts.

pub mod arrivals;
pub mod stats;
pub mod stream;

pub use arrivals::{generate_plan, Arrival, ArrivalConfig};
pub use stream::{rapl_pkg_limit_w, run_stream, JobOutcome, StreamConfig, StreamReport, Wire};
