//! Process-wide job-stream telemetry counters.
//!
//! The experiment engine publishes one `earsim-telemetry` JSON line per
//! process; these atomics feed its `powercap` object. The stream updates
//! them as it runs (a relaxed `fetch_add` per manager action — far off
//! any hot path); `throttle_events` is *not* here because the RAPL
//! limiter lives in `ear-archsim` and already counts its own steps
//! (`ear_archsim::stats::rapl_throttle_events`).

use std::sync::atomic::{AtomicU64, Ordering};

static CAPS_PUSHED: AtomicU64 = AtomicU64::new(0);
static REBALANCES: AtomicU64 = AtomicU64::new(0);
static JOBS_ADMITTED: AtomicU64 = AtomicU64::new(0);
static JOBS_COMPLETED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the stream counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Cap commands acknowledged by daemons.
    pub caps_pushed: u64,
    /// Full poll-and-redistribute rounds the manager ran.
    pub rebalances: u64,
    /// Jobs admitted onto the fleet.
    pub jobs_admitted: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
}

/// Records `n` acknowledged cap commands.
pub fn record_caps_pushed(n: u64) {
    CAPS_PUSHED.fetch_add(n, Ordering::Relaxed);
}

/// Records one completed rebalance round.
pub fn record_rebalance() {
    REBALANCES.fetch_add(1, Ordering::Relaxed);
}

/// Records one job admission.
pub fn record_admitted() {
    JOBS_ADMITTED.fetch_add(1, Ordering::Relaxed);
}

/// Records one job completion.
pub fn record_completed() {
    JOBS_COMPLETED.fetch_add(1, Ordering::Relaxed);
}

/// Reads the current counters.
pub fn snapshot() -> StreamStats {
    StreamStats {
        caps_pushed: CAPS_PUSHED.load(Ordering::Relaxed),
        rebalances: REBALANCES.load(Ordering::Relaxed),
        jobs_admitted: JOBS_ADMITTED.load(Ordering::Relaxed),
        jobs_completed: JOBS_COMPLETED.load(Ordering::Relaxed),
    }
}

/// Zeroes all counters (tests).
pub fn reset() {
    CAPS_PUSHED.store(0, Ordering::Relaxed);
    REBALANCES.store(0, Ordering::Relaxed);
    JOBS_ADMITTED.store(0, Ordering::Relaxed);
    JOBS_COMPLETED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_caps_pushed(4);
        record_rebalance();
        record_admitted();
        record_admitted();
        record_completed();
        let s = snapshot();
        assert_eq!(s.caps_pushed, 4);
        assert_eq!(s.rebalances, 1);
        assert_eq!(s.jobs_admitted, 2);
        assert_eq!(s.jobs_completed, 1);
        reset();
        assert_eq!(snapshot(), StreamStats::default());
    }
}
