//! Seeded Poisson arrival plans over the workload catalog.
//!
//! The plan is drawn *entirely up front* from one [`Xoshiro256`] stream:
//! inter-arrival gap, application, node count, iteration count — in that
//! fixed order per job. Nothing about how the stream is later executed
//! (worker threads, transport, warm caches) touches the generator, so a
//! seed pins the whole workload mix byte-for-byte.

use ear_archsim::Xoshiro256;
use ear_workloads::apps::table5_apps;
use ear_workloads::WorkloadTargets;

/// What to draw the plan from.
#[derive(Debug, Clone)]
pub struct ArrivalConfig {
    /// Seed for the arrival stream.
    pub seed: u64,
    /// Mean arrival rate (jobs per hour of virtual time).
    pub rate_per_hour: f64,
    /// How many arrivals to generate.
    pub max_jobs: usize,
    /// Fleet size; sampled node counts never exceed it.
    pub fleet_nodes: usize,
    /// Short jobs (few iterations) for smoke runs.
    pub quick: bool,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            seed: 0xEA12_57EA,
            rate_per_hour: 60.0,
            max_jobs: 12,
            fleet_nodes: 8,
            quick: false,
        }
    }
}

/// One planned job arrival.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Arrival order (also the stream-wide job id).
    pub seq: usize,
    /// Virtual submit time (µs since stream start).
    pub at_us: u64,
    /// The sampled workload, node/iteration overrides applied.
    pub targets: WorkloadTargets,
}

/// Largest node count a sampled job may request (bounded further by the
/// fleet size). Streams are about *contention*, not single hero jobs, so
/// arrivals stay small and several run side by side.
const MAX_JOB_NODES: u64 = 4;

/// Draws a complete arrival plan. Sampled per job, in order: exponential
/// gap, application index, node count, iteration count. The sampled
/// workload keeps its published per-iteration time (`time_s` scales with
/// the iteration override), and per-node calibration makes the node-count
/// override safe.
pub fn generate_plan(cfg: &ArrivalConfig) -> Vec<Arrival> {
    let pool = table5_apps();
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let rate_per_s = (cfg.rate_per_hour / 3600.0).max(1e-9);
    let mut t_s = 0.0f64;
    let mut plan = Vec::with_capacity(cfg.max_jobs);
    for seq in 0..cfg.max_jobs {
        // Exponential inter-arrival gap: -ln(1-u)/λ, u ∈ [0, 1).
        let u = rng.next_f64();
        t_s += -(1.0 - u).ln() / rate_per_s;
        let mut targets = pool[rng.below(pool.len() as u64) as usize].clone();
        let nodes = 1 + rng.below(MAX_JOB_NODES.min(cfg.fleet_nodes as u64)) as usize;
        let iterations = if cfg.quick {
            3 + rng.below(3) as usize
        } else {
            8 + rng.below(8) as usize
        };
        let iter_time_s = targets.time_s / targets.iterations as f64;
        targets.nodes = nodes;
        targets.iterations = iterations;
        targets.time_s = iter_time_s * iterations as f64;
        plan.push(Arrival {
            seq,
            at_us: (t_s * 1e6).round() as u64,
            targets,
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_ordered() {
        let cfg = ArrivalConfig::default();
        let a = generate_plan(&cfg);
        let b = generate_plan(&cfg);
        assert_eq!(a.len(), cfg.max_jobs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_us, y.at_us);
            assert_eq!(x.targets.name, y.targets.name);
            assert_eq!(x.targets.nodes, y.targets.nodes);
            assert_eq!(x.targets.iterations, y.targets.iterations);
        }
        assert!(a.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = generate_plan(&ArrivalConfig::default());
        let b = generate_plan(&ArrivalConfig {
            seed: 1,
            ..ArrivalConfig::default()
        });
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.at_us != y.at_us || x.targets.name != y.targets.name),
            "seed must matter"
        );
    }

    #[test]
    fn node_counts_respect_the_fleet() {
        let cfg = ArrivalConfig {
            fleet_nodes: 2,
            max_jobs: 40,
            ..ArrivalConfig::default()
        };
        for a in generate_plan(&cfg) {
            assert!(a.targets.nodes >= 1 && a.targets.nodes <= 2);
        }
    }

    #[test]
    fn iteration_override_preserves_per_iteration_time() {
        for a in generate_plan(&ArrivalConfig::default()) {
            let orig = table5_apps()
                .into_iter()
                .find(|t| t.name == a.targets.name)
                .expect("sampled from the pool");
            let orig_iter = orig.time_s / orig.iterations as f64;
            let new_iter = a.targets.time_s / a.targets.iterations as f64;
            assert!((orig_iter - new_iter).abs() < 1e-9 * orig_iter.max(1.0));
        }
    }
}
