//! Related-work comparison (paper §VII): EAR's model+threshold approach
//! vs a controller-based uncore runtime (DUF, ref \[19\]), on the same
//! simulated platform and workloads.
//!
//! The paper argues its approach differs from controllers in two ways:
//! it coexists with DVFS (the min_energy stage), and it converges to a
//! stable setting instead of continuously probing. Both differences are
//! measurable here: on memory-bound codes DUF leaves the DVFS savings on
//! the table, and DUF's periodic re-probes cost small oscillations.

use crate::engine::run_matrix_default;
use crate::harness::{compare, format_table, RunKind};
use crate::tables::RUNS;
use ear_core::PolicySettings;

fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// The comparison matrix: one CPU-bound and one memory-bound application
/// under ME+eU and under the DUF controller.
pub fn duf_comparison() -> String {
    let mut rows = Vec::new();
    for app in ["BT-MZ", "HPCG"] {
        let t = crate::harness::catalog(app);
        let cells = vec![
            ("No policy".to_string(), RunKind::NoPolicy),
            ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
            (
                "DUF".to_string(),
                RunKind::Policy {
                    name: "duf".into(),
                    settings: PolicySettings::default(),
                },
            ),
        ];
        let run = run_matrix_default(&t, &cells, RUNS, 401);
        let Some(results) = run.all() else {
            eprintln!(
                "related_work: skipping {app} (failed cells: {})",
                run.failed_labels().join(", ")
            );
            continue;
        };
        for r in &results[1..] {
            let c = compare(&results[0], r);
            rows.push(vec![
                app.to_string(),
                r.label.clone(),
                pct(c.time_penalty_pct),
                pct(c.power_saving_pct),
                pct(c.energy_saving_pct),
                format!("{:.2}", r.avg_cpu_ghz),
                format!("{:.2}", r.avg_imc_ghz),
            ]);
        }
    }
    let mut out = format_table(
        "Related work: EAR's ME+eU vs the DUF uncore controller (§VII)",
        &[
            "app",
            "config",
            "time pen",
            "power save",
            "energy save",
            "CPU GHz",
            "IMC GHz",
        ],
        &rows,
    );
    out.push_str(
        "(DUF is a pure uncore controller: on memory-bound codes it cannot take\n\
         the DVFS savings EAR's first stage finds, and its periodic re-probes\n\
         keep it from settling — the paper's §VII distinction.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_cell;

    #[test]
    fn eufs_beats_duf_on_memory_bound_apps() {
        // The §VII claim, asserted: HPCG under DUF (no DVFS stage) saves
        // less energy than under ME+eU.
        let t = ear_workloads::by_name("HPCG").unwrap();
        let reference = run_cell(&t, &RunKind::NoPolicy, "ref", 2, 402);
        let eufs = run_cell(&t, &RunKind::me_eufs(0.05, 0.02), "eu", 2, 402);
        let duf = run_cell(
            &t,
            &RunKind::Policy {
                name: "duf".into(),
                settings: PolicySettings::default(),
            },
            "duf",
            2,
            402,
        );
        let c_eufs = compare(&reference, &eufs);
        let c_duf = compare(&reference, &duf);
        assert!(
            c_eufs.energy_saving_pct > c_duf.energy_saving_pct + 1.0,
            "eU {:.2}% vs DUF {:.2}%",
            c_eufs.energy_saving_pct,
            c_duf.energy_saving_pct
        );
        // DUF never touches the CPU.
        assert!((duf.avg_cpu_ghz - 2.39).abs() < 0.03, "{}", duf.avg_cpu_ghz);
        assert!(eufs.avg_cpu_ghz < 2.0);
    }

    #[test]
    fn duf_still_saves_on_cpu_bound_apps() {
        // On CPU-bound codes both approaches harvest the same uncore
        // headroom; DUF is a competitive baseline there.
        let t = ear_workloads::by_name("BT-MZ").unwrap();
        let reference = run_cell(&t, &RunKind::NoPolicy, "ref", 2, 403);
        let duf = run_cell(
            &t,
            &RunKind::Policy {
                name: "duf".into(),
                settings: PolicySettings::default(),
            },
            "duf",
            2,
            403,
        );
        let c = compare(&reference, &duf);
        assert!(
            c.energy_saving_pct > 3.0,
            "DUF saved only {:.2}%",
            c.energy_saving_pct
        );
        assert!(duf.avg_imc_ghz < 2.1, "imc {}", duf.avg_imc_ghz);
    }
}
