//! Terminal chart rendering for the figure regenerations.
//!
//! The paper presents Figs. 1 and 3–8 as bar/line charts; the binaries
//! print the numeric series (for EXPERIMENTS.md) *and* a horizontal bar
//! rendering so the visual shape — savings growing with thresholds, the
//! energy-saving peak in the uncore sweep — is inspectable in a terminal.

/// Renders labelled values as horizontal bars, scaled to the largest
/// absolute value. Negative values render to the left of the axis.
pub fn bar_chart(title: &str, rows: &[(String, f64)], unit: &str) -> String {
    use std::fmt::Write as _;
    const WIDTH: usize = 40;
    let mut out = String::new();
    let _ = writeln!(out, "-- {title} --");
    if rows.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max_abs = rows
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    for (label, value) in rows {
        let len = ((value.abs() / max_abs) * WIDTH as f64).round() as usize;
        let bar = "█".repeat(len);
        let sign = if *value < 0.0 { "-" } else { " " };
        let _ = writeln!(out, "{label:>label_w$} |{sign}{bar} {value:.2}{unit}");
    }
    out
}

/// Renders an x/y series as a compact column chart (one column per point,
/// 8 height levels via partial blocks) — enough to see a curve's shape.
pub fn column_chart(title: &str, points: &[(f64, f64)], unit: &str) -> String {
    use std::fmt::Write as _;
    const LEVELS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    let _ = writeln!(out, "-- {title} --");
    if points.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let max = points
        .iter()
        .map(|(_, y)| *y)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let spark: String = points
        .iter()
        .map(|(_, y)| {
            let lvl = ((y.max(0.0) / max) * 8.0).round() as usize;
            LEVELS[lvl.min(8)]
        })
        .collect();
    // The empty case returned above; the destructure documents it.
    let (Some(first), Some(last)) = (points.first(), points.last()) else {
        return out;
    };
    let peak = points
        .iter()
        .cloned()
        .fold((f64::NAN, f64::NEG_INFINITY), |acc, p| {
            if p.1 > acc.1 {
                p
            } else {
                acc
            }
        });
    let _ = writeln!(out, "  [{spark}]");
    let _ = writeln!(
        out,
        "  x: {:.2} … {:.2}; peak {:.2}{unit} at x = {:.2}",
        first.0, last.0, peak.1, peak.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let rows = vec![
            ("a".to_string(), 10.0),
            ("bb".to_string(), 5.0),
            ("ccc".to_string(), -2.5),
        ];
        let chart = bar_chart("unit", &rows, "%");
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4);
        // The largest value gets the full 40 blocks.
        let full = lines[1].matches('█').count();
        let half = lines[2].matches('█').count();
        assert_eq!(full, 40);
        assert_eq!(half, 20);
        // Negative values carry the sign marker.
        assert!(lines[3].contains("|-"));
        // Labels right-aligned to the widest.
        assert!(lines[1].starts_with("  a "));
    }

    #[test]
    fn empty_chart_is_graceful() {
        assert!(bar_chart("t", &[], "").contains("no data"));
        assert!(column_chart("t", &[], "").contains("no data"));
    }

    #[test]
    fn columns_report_the_peak() {
        let pts: Vec<(f64, f64)> = (0..10i64)
            .map(|i| (i as f64, (10 - (i - 6).abs()) as f64))
            .collect();
        let c = column_chart("sweep", &pts, "%");
        assert!(c.contains("peak 10.00% at x = 6.00"), "{c}");
        // The spark line has one char per point.
        let spark_line = c.lines().nth(1).unwrap();
        assert_eq!(spark_line.trim().chars().count(), 10 + 2); // + brackets
    }

    #[test]
    fn zero_series_does_not_divide_by_zero() {
        let c = column_chart("flat", &[(0.0, 0.0), (1.0, 0.0)], "%");
        assert!(c.contains("peak 0.00%"));
        let rows = vec![("z".to_string(), 0.0)];
        let b = bar_chart("flat", &rows, "%");
        assert!(b.contains("0.00%"));
    }
}
