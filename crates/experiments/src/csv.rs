//! CSV export of experiment results, for external plotting.
//!
//! The figure binaries print tables and terminal charts; users who want
//! the paper's actual plots (matplotlib, gnuplot, pgfplots) need the raw
//! series. These helpers serialise [`RunResult`]s and comparison series
//! into plain CSV with a stable column order.

use crate::harness::{Comparison, RunResult};

/// Escapes a CSV field (quotes fields containing separators/quotes).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialises run results: one row per configuration.
pub fn results_to_csv(results: &[RunResult]) -> String {
    let mut out = String::from(
        "label,time_s,dc_power_w,pkg_power_w,dc_energy_j,avg_cpu_ghz,avg_imc_ghz,cpi,gbs\n",
    );
    for r in results {
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.3},{:.4},{:.4},{:.4},{:.4}\n",
            field(&r.label),
            r.time_s,
            r.dc_power_w,
            r.pkg_power_w,
            r.dc_energy_j,
            r.avg_cpu_ghz,
            r.avg_imc_ghz,
            r.cpi,
            r.gbs
        ));
    }
    out
}

/// Serialises a comparison series (e.g. a figure's bars): one row per
/// labelled configuration.
pub fn comparisons_to_csv(series: &[(String, Comparison)]) -> String {
    let mut out = String::from(
        "label,time_penalty_pct,power_saving_pct,energy_saving_pct,pkg_power_saving_pct,gbs_penalty_pct\n",
    );
    for (label, c) in series {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            field(label),
            c.time_penalty_pct,
            c.power_saving_pct,
            c.energy_saving_pct,
            c.pkg_power_saving_pct,
            c.gbs_penalty_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(label: &str) -> RunResult {
        RunResult {
            label: label.to_string(),
            time_s: 100.0,
            dc_power_w: 320.0,
            pkg_power_w: 230.0,
            dc_energy_j: 32_000.0,
            pkg_energy_j: 23_000.0,
            avg_cpu_ghz: 2.4,
            avg_imc_ghz: 2.0,
            imc_domains: 1,
            imc_dom_ghz: [0.0; 4],
            cpi: 0.5,
            gbs: 20.0,
        }
    }

    #[test]
    fn results_csv_has_header_and_rows() {
        let csv = results_to_csv(&[result("No policy"), result("ME+eU")]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("label,time_s"));
        assert!(lines[1].starts_with("No policy,100.000000"));
        // Constant column count.
        for l in &lines {
            assert_eq!(l.matches(',').count(), 8, "{l}");
        }
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let csv = results_to_csv(&[result("GROMACS (I), run 2")]);
        assert!(csv.contains("\"GROMACS (I), run 2\""));
    }

    #[test]
    fn comparisons_csv_round_numbers() {
        let c = Comparison {
            time_penalty_pct: 1.5,
            power_saving_pct: 8.0,
            energy_saving_pct: 6.6,
            pkg_power_saving_pct: 11.0,
            gbs_penalty_pct: 1.4,
        };
        let csv = comparisons_to_csv(&[("ME+eU".to_string(), c)]);
        assert!(csv.contains("ME+eU,1.5000,8.0000,6.6000,11.0000,1.4000"));
    }
}
