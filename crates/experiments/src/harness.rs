//! The experiment harness: run matrices of (workload × configuration),
//! three runs each (as the paper does), averaged, with penalty/saving
//! computations against a reference configuration.
//!
//! Execution is delegated to the parallel experiment engine
//! ([`crate::engine`]): cells and runs are scheduled on a bounded worker
//! pool, calibrations are memoised process-wide, and per-task panics fail
//! only their own cell. The functions here keep the original simple
//! signatures for callers that don't need the engine's telemetry.

use crate::engine::{self, EngineConfig};
use ear_core::{EarDaemon, Earl, EarlConfig, NodeFreqs, PolicySettings};
use ear_mpisim::{MpiEvent, NodeRuntime, NullRuntime};
use ear_workloads::WorkloadTargets;

/// Catalog lookup for an application the crate itself names in a table or
/// figure: a miss is a bug in that table, not a user error, so this panics
/// with the offending name. User-supplied names go through
/// `ear_workloads::by_name` and an `EarError` instead.
pub(crate) fn catalog(name: &str) -> WorkloadTargets {
    ear_workloads::by_name(name)
        .unwrap_or_else(|| panic!("workload '{name}' missing from the catalog"))
}

/// How a run is driven.
// `Policy` dwarfs the other variants since `PolicySettings` grew the
// warm-start surface; cells are built once per run, never stored in bulk,
// so the size gap costs nothing worth boxing for.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunKind {
    /// Nominal frequency, hardware UFS — the paper's "No policy".
    NoPolicy,
    /// EARL with the named policy and settings.
    Policy {
        /// Registered policy name.
        name: String,
        /// Policy settings.
        settings: PolicySettings,
    },
    /// Fixed frequencies applied at job start (the Fig. 1 motivation
    /// sweeps): a CPU pstate and pinned uncore limits.
    Fixed {
        /// CPU pstate.
        cpu: usize,
        /// Pinned uncore ratio (min == max), or `None` for HW UFS.
        imc_ratio: Option<u8>,
    },
}

impl RunKind {
    /// The paper's "ME" configuration.
    pub fn me(cpu_policy_th: f64) -> Self {
        RunKind::Policy {
            name: "min_energy".into(),
            settings: PolicySettings {
                cpu_policy_th,
                ..Default::default()
            },
        }
    }

    /// The paper's "ME+eU" configuration.
    pub fn me_eufs(cpu_policy_th: f64, unc_policy_th: f64) -> Self {
        RunKind::Policy {
            name: "min_energy_eufs".into(),
            settings: PolicySettings {
                cpu_policy_th,
                unc_policy_th,
                ..Default::default()
            },
        }
    }

    /// The paper's "ME+NG-U" (not-guided uncore) configuration.
    pub fn me_ng_u(cpu_policy_th: f64, unc_policy_th: f64) -> Self {
        RunKind::Policy {
            name: "min_energy_eufs".into(),
            settings: PolicySettings {
                cpu_policy_th,
                unc_policy_th,
                imc_search: ear_core::ImcSearch::Linear,
                ..Default::default()
            },
        }
    }

    /// "ME+eU" with the per-domain search disabled: the policy runs one
    /// scalar `ImcFreqSel` and EARD applies its ceiling package-wide even
    /// on per-die hardware — the single-knob baseline of the per-domain
    /// decision table. Identical to [`RunKind::me_eufs`] on 1-domain nodes.
    pub fn me_eufs_single_knob(cpu_policy_th: f64, unc_policy_th: f64) -> Self {
        RunKind::Policy {
            name: "min_energy_eufs".into(),
            settings: PolicySettings {
                cpu_policy_th,
                unc_policy_th,
                per_domain_ufs: false,
                ..Default::default()
            },
        }
    }
}

/// Averaged result of the runs of one (workload, configuration) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cell label (e.g. "ME+eU 2%").
    pub label: String,
    /// Execution time (s).
    pub time_s: f64,
    /// Average DC node power (W).
    pub dc_power_w: f64,
    /// Average package power per node (W).
    pub pkg_power_w: f64,
    /// Total DC energy (J, all nodes).
    pub dc_energy_j: f64,
    /// Total package energy (J, all nodes).
    pub pkg_energy_j: f64,
    /// Average CPU frequency (GHz).
    pub avg_cpu_ghz: f64,
    /// Average IMC frequency (GHz).
    pub avg_imc_ghz: f64,
    /// Uncore frequency domains per socket (1 = legacy single knob).
    pub imc_domains: usize,
    /// Average per-domain IMC frequency (GHz); entries past
    /// `imc_domains` stay zero.
    pub imc_dom_ghz: [f64; 4],
    /// Job CPI.
    pub cpi: f64,
    /// Job memory bandwidth per node (GB/s).
    pub gbs: f64,
}

/// Runtime wrapper so one job can run under either driver. EARL always
/// runs behind its node daemon: frequency requests travel the message
/// protocol and only the daemon writes MSRs.
pub(crate) enum Runtime {
    Null(NullRuntime),
    Earl(Box<EarDaemon<Earl>>),
    Fixed { cpu: usize, imc_ratio: Option<u8> },
}

impl Runtime {
    /// Tags the EARL/daemon pair with the node's index so trace events can
    /// be attributed in multi-node runs. No-op for the other drivers.
    pub(crate) fn set_node_id(&mut self, id: u64) {
        if let Runtime::Earl(d) = self {
            d.set_node_id(id);
            d.inner_mut().set_node_id(id);
        }
    }
}

impl NodeRuntime for Runtime {
    fn on_job_start(&mut self, node: &mut ear_archsim::Node, job_name: &str, ranks: usize) {
        match self {
            Runtime::Null(r) => r.on_job_start(node, job_name, ranks),
            Runtime::Earl(r) => r.on_job_start(node, job_name, ranks),
            Runtime::Fixed { cpu, imc_ratio } => {
                let (min, max) = match imc_ratio {
                    Some(r) => (*r, *r),
                    None => (node.config.uncore_min_ratio, node.config.uncore_max_ratio),
                };
                ear_core::manager::apply_freqs(
                    node,
                    &NodeFreqs {
                        cpu: *cpu,
                        imc_min_ratio: min,
                        imc_max_ratio: max,
                        imc_dom: ear_core::DomainLimits::LEGACY,
                    },
                )
                .unwrap_or_else(|e| panic!("fixed frequencies invalid: {e}"));
            }
        }
    }

    fn on_mpi_call(&mut self, node: &mut ear_archsim::Node, event: &MpiEvent) {
        match self {
            Runtime::Null(r) => r.on_mpi_call(node, event),
            Runtime::Earl(r) => r.on_mpi_call(node, event),
            Runtime::Fixed { .. } => {}
        }
    }

    fn on_tick(&mut self, node: &mut ear_archsim::Node) {
        match self {
            Runtime::Null(r) => r.on_tick(node),
            Runtime::Earl(r) => r.on_tick(node),
            Runtime::Fixed { .. } => {}
        }
    }

    fn on_job_end(&mut self, node: &mut ear_archsim::Node) {
        match self {
            Runtime::Null(r) => r.on_job_end(node),
            Runtime::Earl(r) => r.on_job_end(node),
            Runtime::Fixed { .. } => {}
        }
    }
}

pub(crate) fn make_runtime(kind: &RunKind) -> Runtime {
    match kind {
        RunKind::NoPolicy => Runtime::Null(NullRuntime),
        RunKind::Policy { name, settings } => {
            let mut config = EarlConfig {
                policy_name: name.clone(),
                settings: settings.clone(),
                ..Default::default()
            };
            if let Some(model) = engine::default_model() {
                config.model_name = model;
            }
            let earl = Earl::from_registry(config).unwrap_or_else(|e| panic!("{e}"));
            Runtime::Earl(Box::new(EarDaemon::new(earl)))
        }
        RunKind::Fixed { cpu, imc_ratio } => Runtime::Fixed {
            cpu: *cpu,
            imc_ratio: *imc_ratio,
        },
    }
}

/// Runs one (workload, configuration) cell: `runs` independent runs (the
/// paper uses three), averaged. Runs are scheduled on the engine's worker
/// pool; seeds and results are identical to the historical serial loop.
///
/// Panics if the workload cannot be calibrated or the cell fails — the
/// single-cell API has no channel for partial results. Campaigns that must
/// survive cell failures use [`engine::run_matrix_engine`].
pub fn run_cell(
    targets: &WorkloadTargets,
    kind: &RunKind,
    label: &str,
    runs: usize,
    base_seed: u64,
) -> RunResult {
    let cells = vec![(label.to_string(), kind.clone())];
    let run = engine::run_matrix_engine(
        targets,
        &cells,
        &EngineConfig::new(runs, base_seed).legacy_seeds(),
    );
    let outcome = run
        .cells
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("engine returned no outcome for the single submitted cell"));
    match outcome.result {
        Some(r) => r,
        None => panic!(
            "{}",
            outcome.error.unwrap_or_else(|| "cell failed".to_string())
        ),
    }
}

/// Runs a whole matrix (one workload × several configurations) through the
/// bounded worker pool at (cell × run) granularity.
///
/// Cells that fail (a panicking run, an infeasible calibration) are
/// dropped from the returned vector after a warning on stderr; input order
/// is preserved for the survivors. Callers that index cells positionally
/// against a reference should use [`engine::run_matrix_engine`] and its
/// [`engine::MatrixRun::all`] accessor instead.
pub fn run_matrix(
    targets: &WorkloadTargets,
    cells: &[(String, RunKind)],
    runs: usize,
    base_seed: u64,
) -> Vec<RunResult> {
    let run = engine::run_matrix_default(targets, cells, runs, base_seed);
    for cell in run.cells.iter().filter(|c| c.result.is_none()) {
        eprintln!(
            "run_matrix: cell '{}' failed: {}",
            cell.label,
            cell.error.as_deref().unwrap_or("unknown error")
        );
    }
    run.successes()
}

/// Penalties and savings of a configuration against a reference (positive
/// saving = better; positive penalty = slower), in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Time penalty (%).
    pub time_penalty_pct: f64,
    /// DC power saving (%).
    pub power_saving_pct: f64,
    /// DC energy saving (%).
    pub energy_saving_pct: f64,
    /// Package power saving (%).
    pub pkg_power_saving_pct: f64,
    /// Memory bandwidth penalty (%).
    pub gbs_penalty_pct: f64,
}

/// Compares `x` against `reference`.
pub fn compare(reference: &RunResult, x: &RunResult) -> Comparison {
    let pct = |a: f64, b: f64| (a / b - 1.0) * 100.0;
    Comparison {
        time_penalty_pct: pct(x.time_s, reference.time_s),
        power_saving_pct: -pct(x.dc_power_w, reference.dc_power_w),
        energy_saving_pct: -pct(x.dc_energy_j, reference.dc_energy_j),
        pkg_power_saving_pct: -pct(x.pkg_power_w, reference.pkg_power_w),
        gbs_penalty_pct: -pct(x.gbs, reference.gbs),
    }
}

/// Renders rows of `(label, values…)` as an aligned text table.
pub fn format_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_math() {
        let reference = RunResult {
            label: "ref".into(),
            time_s: 100.0,
            dc_power_w: 300.0,
            pkg_power_w: 220.0,
            dc_energy_j: 30_000.0,
            pkg_energy_j: 22_000.0,
            avg_cpu_ghz: 2.4,
            avg_imc_ghz: 2.4,
            imc_domains: 1,
            imc_dom_ghz: [0.0; 4],
            cpi: 0.5,
            gbs: 20.0,
        };
        let x = RunResult {
            label: "x".into(),
            time_s: 102.0,
            dc_power_w: 270.0,
            pkg_power_w: 190.0,
            dc_energy_j: 27_540.0,
            pkg_energy_j: 19_380.0,
            avg_cpu_ghz: 2.4,
            avg_imc_ghz: 1.9,
            imc_domains: 1,
            imc_dom_ghz: [0.0; 4],
            cpi: 0.51,
            gbs: 19.6,
        };
        let c = compare(&reference, &x);
        assert!((c.time_penalty_pct - 2.0).abs() < 1e-9);
        assert!((c.power_saving_pct - 10.0).abs() < 1e-9);
        assert!((c.energy_saving_pct - 8.2).abs() < 1e-9);
        assert!((c.gbs_penalty_pct - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            "Unit",
            &["app", "x"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        assert!(t.contains("== Unit =="));
        assert!(t.contains("longer"));
        let lines: Vec<_> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn run_cell_no_policy_smoke() {
        // Use the smallest workload for speed.
        let targets = ear_workloads::by_name("BQCD").unwrap();
        let r = run_cell(&targets, &RunKind::NoPolicy, "No policy", 1, 42);
        assert!((r.time_s - targets.time_s).abs() / targets.time_s < 0.03);
        assert!(r.dc_power_w > 250.0);
    }

    #[test]
    fn run_matrix_parallel_smoke() {
        let targets = ear_workloads::by_name("BQCD").unwrap();
        let cells = vec![
            ("No policy".to_string(), RunKind::NoPolicy),
            (
                "Fixed 2.0".to_string(),
                RunKind::Fixed {
                    cpu: 5,
                    imc_ratio: Some(18),
                },
            ),
        ];
        let results = run_matrix(&targets, &cells, 1, 7);
        assert_eq!(results.len(), 2);
        // The fixed-frequency run is slower and cheaper.
        assert!(results[1].time_s > results[0].time_s);
        assert!(results[1].dc_power_w < results[0].dc_power_w);
        assert!((results[1].avg_imc_ghz - 1.8).abs() < 0.05);
    }
}
