//! The parallel experiment engine.
//!
//! A paper-sized evaluation is a matrix of (workload × configuration)
//! cells, each averaged over several runs. The engine schedules that work
//! at **(cell × run)** granularity on a bounded, dependency-free worker
//! pool (`std::thread::scope` plus an atomic work queue), so a
//! 3-run × 12-config table saturates every core instead of serialising
//! runs inside slow cells.
//!
//! Guarantees and features:
//!
//! - **Determinism regardless of worker count.** Every task derives its
//!   RNG seed from `(base_seed, cell salt, run index)` alone, and per-cell
//!   reductions always fold the run samples in run order, so the produced
//!   [`RunResult`]s are bit-identical for `--jobs 1` and `--jobs 64`.
//! - **Calibration cache.** `calibrate()` inverts the simulator models in
//!   closed form; the result only depends on the workload targets, so the
//!   engine memoises it process-wide. N cells of the same workload
//!   calibrate once.
//! - **Panic isolation.** A panicking task fails its *cell*, not the
//!   campaign: the engine records the failed cell's label and error in the
//!   [`EngineSummary`] and still returns every cell that succeeded.
//! - **Telemetry.** Per-task timing, per-cell wall time, and a
//!   machine-readable engine summary (tasks run, wall time, speedup vs a
//!   serial estimate, cache statistics), aggregated process-wide for the
//!   `earsim` front end and the experiment binaries.
//!
//! The worker-pool default is [`default_jobs`]: the `--jobs N` flag (via
//! [`set_default_jobs`]), else the `EAR_JOBS` environment variable, else
//! `std::thread::available_parallelism()`.

use crate::cache;
use crate::harness::{make_runtime, RunKind, RunResult, Runtime};
use ear_mpisim::{permits, run_job, JobSpec};
use ear_workloads::{build_job, calibrate, CalibratedWorkload, CalibrationError, WorkloadTargets};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Worker-count defaults
// ---------------------------------------------------------------------------

/// Process-wide override set by `--jobs N` (0 = unset).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (the `--jobs N` flag).
/// `0` clears the override.
pub fn set_default_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// The default worker count: the [`set_default_jobs`] override if set,
/// else the `EAR_JOBS` environment variable, else the machine's available
/// parallelism.
pub fn default_jobs() -> usize {
    let over = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var("EAR_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Process-wide energy-model override set by `--model NAME` (None = the
/// per-config default, i.e. `EarlConfig::default().model_name`).
static MODEL_OVERRIDE: Mutex<Option<String>> = Mutex::new(None);

/// Sets the process-wide energy-model name applied to every EARL instance
/// the harness builds (the `earsim --model NAME` flag). An empty name
/// clears the override.
pub fn set_default_model(name: &str) {
    let mut slot = MODEL_OVERRIDE
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    *slot = if name.is_empty() {
        None
    } else {
        Some(name.to_string())
    };
}

/// The process-wide energy-model override, if one was set.
pub fn default_model() -> Option<String> {
    MODEL_OVERRIDE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

// ---------------------------------------------------------------------------
// Calibration cache
// ---------------------------------------------------------------------------

struct CacheEntry {
    workload: &'static str,
    computes: u32,
    cal: Arc<Result<CalibratedWorkload, CalibrationError>>,
}

struct CalCache {
    map: HashMap<u64, CacheEntry>,
    hits: u64,
    misses: u64,
}

static CAL_CACHE: OnceLock<Mutex<CalCache>> = OnceLock::new();

fn cal_cache() -> &'static Mutex<CalCache> {
    CAL_CACHE.get_or_init(|| {
        Mutex::new(CalCache {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    })
}

fn lock_cache() -> std::sync::MutexGuard<'static, CalCache> {
    // The closure held under this lock is `calibrate()`, which cannot
    // panic (it returns errors), so poisoning is recoverable noise.
    cal_cache().lock().unwrap_or_else(PoisonError::into_inner)
}

/// A stable fingerprint of every calibration input. Workload *names* are
/// not unique keys — `synthetic::parametric(m)` reuses one name for a
/// family of targets — so the key hashes the full characterisation.
fn cache_key(t: &WorkloadTargets) -> u64 {
    // FNV-1a over the Debug rendering: WorkloadTargets is plain data and
    // its Debug output covers every field.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{t:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Calibrates `targets`, memoised process-wide. The closed-form solve runs
/// at most once per distinct workload characterisation; every later call
/// (any cell, any engine run) is a cache hit.
pub fn calibrated(targets: &WorkloadTargets) -> Arc<Result<CalibratedWorkload, CalibrationError>> {
    let key = cache_key(targets);
    let mut cache = lock_cache();
    if let Some(entry) = cache.map.get(&key) {
        let cal = Arc::clone(&entry.cal);
        cache.hits += 1;
        return cal;
    }
    cache.misses += 1;
    // Calibration is a fast closed-form solve; holding the lock across it
    // guarantees exactly-once computation per key.
    let cal = Arc::new(calibrate(targets));
    cache.map.insert(
        key,
        CacheEntry {
            workload: targets.name,
            computes: 1,
            cal: Arc::clone(&cal),
        },
    );
    cal
}

/// Cache statistics: `(hits, misses)` since process start.
pub fn calibration_stats() -> (u64, u64) {
    let cache = lock_cache();
    (cache.hits, cache.misses)
}

/// How many times `calibrate()` actually ran for the named workload
/// (across all target variants sharing the name). Test instrumentation
/// for the once-per-workload guarantee.
pub fn calibration_count(workload: &str) -> u32 {
    let cache = lock_cache();
    cache
        .map
        .values()
        .filter(|e| e.workload == workload)
        .map(|e| e.computes)
        .sum()
}

// ---------------------------------------------------------------------------
// Seeds and single runs
// ---------------------------------------------------------------------------

/// Derives one task's RNG seed from `(base_seed, cell salt, run index)`.
/// With `salt == 0` this reproduces the pre-engine serial derivation
/// bit-for-bit, so single-cell results are unchanged.
pub fn run_seed(base_seed: u64, cell_salt: u64, run: usize) -> u64 {
    base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cell_salt.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(run as u64 * 7919)
}

/// The metrics of one simulated run (one task's output).
#[derive(Debug, Clone, Copy, Default)]
struct RunSample {
    time_s: f64,
    dc_power_w: f64,
    pkg_power_w: f64,
    dc_energy_j: f64,
    pkg_energy_j: f64,
    avg_cpu_ghz: f64,
    avg_imc_ghz: f64,
    imc_domains: usize,
    imc_dom_ghz: [f64; 4],
    cpi: f64,
    gbs: f64,
}

/// Executes one run of one cell.
fn run_once(
    cal: &CalibratedWorkload,
    job: &JobSpec,
    kind: &RunKind,
    nodes: usize,
    seed: u64,
) -> RunSample {
    let mut cluster = ear_archsim::Cluster::new(cal.node_config.clone(), nodes, seed);
    // Capped cells run exactly as the fleet deploys them: the RAPL PL1
    // backstop armed at the cap underneath the policy, so an over-cap
    // search transient is throttled by the hardware instead of spending
    // watts the cap forbids. Uncapped cells never touch PL1 and stay
    // bit-identical to the historical runs.
    if let RunKind::Policy { settings, .. } = kind {
        if let Some(cap_w) = settings.cap_w.filter(|c| c.is_finite()) {
            let pkg_w = ear_jobstream::rapl_pkg_limit_w(&cal.node_config, cap_w);
            for node in cluster.nodes_mut() {
                node.set_rapl_limit_w(pkg_w, 1.0)
                    .unwrap_or_else(|e| panic!("arming the PL1 backstop failed: {e}"));
            }
        }
    }
    let mut rts: Vec<Runtime> = (0..nodes)
        .map(|i| {
            let mut rt = make_runtime(kind);
            rt.set_node_id(i as u64);
            rt
        })
        .collect();
    let report = run_job(&mut cluster, job, &mut rts);
    RunSample {
        time_s: report.seconds(),
        dc_power_w: report.avg_dc_power_w(),
        pkg_power_w: report.total_pkg_energy_j() / report.seconds() / nodes as f64,
        dc_energy_j: report.total_dc_energy_j(),
        pkg_energy_j: report.total_pkg_energy_j(),
        avg_cpu_ghz: report.avg_cpu_ghz(),
        avg_imc_ghz: report.avg_imc_ghz(),
        imc_domains: report.imc_domains(),
        imc_dom_ghz: std::array::from_fn(|d| report.imc_dom_ghz(d)),
        cpi: report.cpi(),
        gbs: report.gbs(),
    }
}

/// Folds run samples into the averaged [`RunResult`] — always in run
/// order, so the floating-point result is independent of which worker
/// finished first.
fn reduce(label: &str, samples: &[RunSample]) -> RunResult {
    let mut acc = RunResult {
        label: label.to_string(),
        time_s: 0.0,
        dc_power_w: 0.0,
        pkg_power_w: 0.0,
        dc_energy_j: 0.0,
        pkg_energy_j: 0.0,
        avg_cpu_ghz: 0.0,
        avg_imc_ghz: 0.0,
        imc_domains: 1,
        imc_dom_ghz: [0.0; 4],
        cpi: 0.0,
        gbs: 0.0,
    };
    for s in samples {
        acc.time_s += s.time_s;
        acc.dc_power_w += s.dc_power_w;
        acc.pkg_power_w += s.pkg_power_w;
        acc.dc_energy_j += s.dc_energy_j;
        acc.pkg_energy_j += s.pkg_energy_j;
        acc.avg_cpu_ghz += s.avg_cpu_ghz;
        acc.avg_imc_ghz += s.avg_imc_ghz;
        acc.imc_domains = acc.imc_domains.max(s.imc_domains);
        for d in 0..4 {
            acc.imc_dom_ghz[d] += s.imc_dom_ghz[d];
        }
        acc.cpi += s.cpi;
        acc.gbs += s.gbs;
    }
    let n = samples.len().max(1) as f64;
    acc.time_s /= n;
    acc.dc_power_w /= n;
    acc.pkg_power_w /= n;
    acc.dc_energy_j /= n;
    acc.pkg_energy_j /= n;
    acc.avg_cpu_ghz /= n;
    acc.avg_imc_ghz /= n;
    for d in 0..4 {
        acc.imc_dom_ghz[d] /= n;
    }
    acc.cpi /= n;
    acc.gbs /= n;
    acc
}

// ---------------------------------------------------------------------------
// Engine configuration and outcomes
// ---------------------------------------------------------------------------

/// How a matrix is executed.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (0 = [`default_jobs`]).
    pub jobs: usize,
    /// Runs per cell (the paper averages three).
    pub runs: usize,
    /// Base seed; each task reseeds via [`run_seed`].
    pub base_seed: u64,
    /// When true (the default), each cell salts its seeds with its index
    /// so cells draw independent noise. `false` reproduces the legacy
    /// same-seed-per-cell derivation (used by the energy surface, where
    /// cells are compared against a same-seed reference).
    pub salt_by_index: bool,
    /// Tasks a worker claims per queue operation (0 or 1 = one at a
    /// time). Grid sweeps batch adjacent cells so one worker walks a
    /// contiguous frequency band: node/MSR setup amortises and the
    /// archsim quantum fast-forward path stays hot between neighbouring
    /// cells. Results are bit-identical to unbatched runs — outcomes are
    /// slot-indexed and seeds depend only on `(base_seed, cell, run)`.
    pub batch: usize,
    /// Schedule pending cells in result-cache-key order instead of input
    /// order. A re-sweep or partial sweep then probes and refills the
    /// persistent cache in the same order it was written, keeping hits
    /// contiguous. Outcomes still come back in input order.
    pub key_order: bool,
}

impl EngineConfig {
    /// Config with `runs` runs per cell and the default worker count.
    pub fn new(runs: usize, base_seed: u64) -> Self {
        EngineConfig {
            jobs: 0,
            runs,
            base_seed,
            salt_by_index: true,
            batch: 1,
            key_order: false,
        }
    }

    /// Overrides the worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Uses the legacy seed derivation (no per-cell salt).
    pub fn legacy_seeds(mut self) -> Self {
        self.salt_by_index = false;
        self
    }

    /// Workers claim `batch` consecutive tasks per queue operation.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Schedules pending cells in result-cache-key order.
    pub fn key_ordered(mut self) -> Self {
        self.key_order = true;
        self
    }

    fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            default_jobs()
        }
    }
}

/// One cell's outcome: the averaged result, or the error that failed it.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Cell label.
    pub label: String,
    /// Averaged result (`None` if any run of the cell failed).
    pub result: Option<RunResult>,
    /// First error of the cell's runs, if any.
    pub error: Option<String>,
    /// How many of the cell's runs failed.
    pub failed_runs: usize,
    /// Total busy time of the cell's tasks (s).
    pub busy_s: f64,
}

/// The machine-readable engine summary.
#[derive(Debug, Clone, Default)]
pub struct EngineSummary {
    /// Worker threads used.
    pub jobs: usize,
    /// Tasks scheduled (cells × runs).
    pub tasks: usize,
    /// Tasks that panicked or errored.
    pub tasks_failed: usize,
    /// Labels of cells with at least one failed task.
    pub failed_cells: Vec<String>,
    /// Engine wall time (s).
    pub wall_s: f64,
    /// Serial estimate: the sum of per-task busy times (s).
    pub serial_estimate_s: f64,
    /// Calibration-cache hits during this engine run.
    pub cal_hits: u64,
    /// Calibrations actually computed during this engine run.
    pub cal_misses: u64,
    /// Persistent result-cache hits during this engine run (cells that
    /// were served from disk without simulating).
    pub result_hits: u64,
    /// Persistent result-cache misses during this engine run.
    pub result_misses: u64,
    /// Corrupt or stale result-cache entries dropped during this run.
    pub result_invalidations: u64,
}

impl EngineSummary {
    /// Measured speedup against running every task serially.
    pub fn speedup(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.serial_estimate_s / self.wall_s
        } else {
            1.0
        }
    }

    /// One-line JSON rendering (hand-rolled; the engine has no external
    /// dependencies by policy).
    pub fn to_json(&self) -> String {
        let failed: Vec<String> = self
            .failed_cells
            .iter()
            .map(|l| format!("\"{}\"", l.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            "{{\"jobs\":{},\"tasks\":{},\"tasks_failed\":{},\"failed_cells\":[{}],\
             \"wall_s\":{:.3},\"serial_estimate_s\":{:.3},\"speedup\":{:.2},\
             \"cal_hits\":{},\"cal_misses\":{},\
             \"result_hits\":{},\"result_misses\":{},\"result_invalidations\":{}}}",
            self.jobs,
            self.tasks,
            self.tasks_failed,
            failed.join(","),
            self.wall_s,
            self.serial_estimate_s,
            self.speedup(),
            self.cal_hits,
            self.cal_misses,
            self.result_hits,
            self.result_misses,
            self.result_invalidations
        )
    }
}

/// A whole matrix run: per-cell outcomes plus the engine summary.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// Outcomes, one per input cell, in input order.
    pub cells: Vec<CellOutcome>,
    /// Engine telemetry for this run.
    pub summary: EngineSummary,
}

impl MatrixRun {
    /// The `i`-th cell's result, if it succeeded.
    pub fn get(&self, i: usize) -> Option<&RunResult> {
        self.cells.get(i).and_then(|c| c.result.as_ref())
    }

    /// Every result if *all* cells succeeded, else `None` (use when rows
    /// are compared positionally and a partial matrix would mislead).
    pub fn all(&self) -> Option<Vec<RunResult>> {
        self.cells.iter().map(|c| c.result.clone()).collect()
    }

    /// The results of the cells that succeeded, input order preserved.
    pub fn successes(&self) -> Vec<RunResult> {
        self.cells.iter().filter_map(|c| c.result.clone()).collect()
    }

    /// Labels of the cells that failed.
    pub fn failed_labels(&self) -> Vec<String> {
        self.summary.failed_cells.clone()
    }
}

// ---------------------------------------------------------------------------
// The bounded worker pool
// ---------------------------------------------------------------------------

struct TaskOutcome {
    sample: Result<RunSample, String>,
    busy_s: f64,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

/// Runs a whole matrix (one workload × several configurations) through the
/// bounded worker pool at (cell × run) granularity.
pub fn run_matrix_engine(
    targets: &WorkloadTargets,
    cells: &[(String, RunKind)],
    config: &EngineConfig,
) -> MatrixRun {
    let started = Instant::now();
    let (hits0, misses0) = calibration_stats();
    let (rhits0, rmisses0, rinval0) = cache::result_cache_stats();
    let runs = config.runs.max(1);
    let jobs = config.effective_jobs().max(1);
    let mut scheduled_tasks = 0;

    // Calibrate and synthesise the job once — every cell of a matrix runs
    // the same workload.
    let cal = calibrated(targets);
    let outcomes: Vec<CellOutcome> = match cal.as_ref() {
        Err(e) => {
            // The workload itself is infeasible: every cell fails alike.
            scheduled_tasks = cells.len() * runs;
            cells
                .iter()
                .map(|(label, _)| CellOutcome {
                    label: label.clone(),
                    result: None,
                    error: Some(e.to_string()),
                    failed_runs: runs,
                    busy_s: 0.0,
                })
                .collect()
        }
        Ok(cal) => {
            // Persistent result cache: cells whose digest is already on
            // disk are served directly; only the rest are scheduled.
            let model = default_model();
            let keys: Vec<u64> = cells
                .iter()
                .enumerate()
                .map(|(i, (label, kind))| {
                    let salt = if config.salt_by_index { i as u64 } else { 0 };
                    cache::result_key(
                        targets,
                        label,
                        kind,
                        model.as_deref(),
                        runs,
                        config.base_seed,
                        salt,
                    )
                })
                .collect();
            let mut outcomes: Vec<Option<CellOutcome>> = Vec::new();
            outcomes.resize_with(cells.len(), || None);
            let mut pending: Vec<usize> = Vec::new();
            for (i, (label, _)) in cells.iter().enumerate() {
                match cache::lookup(keys[i]) {
                    Some(result) => {
                        outcomes[i] = Some(CellOutcome {
                            label: label.clone(),
                            result: Some(result),
                            error: None,
                            failed_runs: 0,
                            busy_s: 0.0,
                        });
                    }
                    None => pending.push(i),
                }
            }
            if config.key_order {
                // Cache-key order (ties broken by input index so the
                // schedule is total). Purely a scheduling choice: outcomes
                // are written back by slot and seeds are salted by the
                // original index, so results do not change.
                pending.sort_by_key(|&i| (keys[i], i));
            }
            if !pending.is_empty() {
                scheduled_tasks = pending.len() * runs;
                let job = build_job(cal);
                let fresh = run_cells(cal, &job, targets, cells, &pending, runs, jobs, config);
                for (&slot, outcome) in pending.iter().zip(fresh) {
                    if let Some(result) = &outcome.result {
                        cache::store(keys[slot], result);
                    }
                    outcomes[slot] = Some(outcome);
                }
            }
            outcomes.into_iter().flatten().collect()
        }
    };

    let (hits1, misses1) = calibration_stats();
    let (rhits1, rmisses1, rinval1) = cache::result_cache_stats();
    let failed_cells: Vec<String> = outcomes
        .iter()
        .filter(|c| c.result.is_none())
        .map(|c| c.label.clone())
        .collect();
    let summary = EngineSummary {
        jobs,
        tasks: scheduled_tasks,
        tasks_failed: outcomes.iter().map(|c| c.failed_runs).sum(),
        failed_cells,
        wall_s: started.elapsed().as_secs_f64(),
        serial_estimate_s: outcomes.iter().map(|c| c.busy_s).sum(),
        cal_hits: hits1.saturating_sub(hits0),
        cal_misses: misses1.saturating_sub(misses0),
        result_hits: rhits1.saturating_sub(rhits0),
        result_misses: rmisses1.saturating_sub(rmisses0),
        result_invalidations: rinval1.saturating_sub(rinval0),
    };
    record_process(&summary);
    MatrixRun {
        cells: outcomes,
        summary,
    }
}

/// Runs the `pending` cells (indices into `cells`) on the worker pool and
/// returns their outcomes in `pending` order. Cell seeds are salted by the
/// cell's *original* matrix index, so a partially cached matrix produces
/// the same per-cell noise streams as a cold one.
#[allow(clippy::too_many_arguments)]
fn run_cells(
    cal: &CalibratedWorkload,
    job: &JobSpec,
    targets: &WorkloadTargets,
    cells: &[(String, RunKind)],
    pending: &[usize],
    runs: usize,
    jobs: usize,
    config: &EngineConfig,
) -> Vec<CellOutcome> {
    let n_tasks = pending.len() * runs;
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<TaskOutcome>> = (0..n_tasks).map(|_| OnceLock::new()).collect();
    let batch = config.batch.clamp(1, n_tasks.max(1));
    let workers = jobs.min(n_tasks.div_ceil(batch)).max(1);

    // Nested-parallelism budget: the engine's `--jobs` allowance seeds the
    // shared permit pool; each busy worker holds one permit while it runs
    // a task, so a job only fans its nodes out across threads the engine
    // is not using (the straggling tail of a matrix, single-cell runs).
    permits::set_spare_threads(jobs);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Claim `batch` consecutive tasks: adjacent grid cells run
                // back to back on one worker under one permit, so cluster
                // setup amortises across a frequency band.
                let start = next.fetch_add(batch, Ordering::Relaxed);
                if start >= n_tasks {
                    break;
                }
                let held = permits::acquire_guard(1);
                for i in start..(start + batch).min(n_tasks) {
                    let cell = pending[i / runs];
                    let run = i % runs;
                    let kind = &cells[cell].1;
                    let salt = if config.salt_by_index { cell as u64 } else { 0 };
                    let seed = run_seed(config.base_seed, salt, run);
                    let t0 = Instant::now();
                    let sample = catch_unwind(AssertUnwindSafe(|| {
                        run_once(cal, job, kind, targets.nodes, seed)
                    }))
                    .map_err(panic_message);
                    let _ = slots[i].set(TaskOutcome {
                        sample,
                        busy_s: t0.elapsed().as_secs_f64(),
                    });
                }
                drop(held);
            });
        }
    });

    // Reduce in task order: deterministic regardless of completion order.
    pending
        .iter()
        .enumerate()
        .map(|(p, &cell)| {
            let label = &cells[cell].0;
            let mut samples = Vec::with_capacity(runs);
            let mut error = None;
            let mut failed_runs = 0;
            let mut busy_s = 0.0;
            for run in 0..runs {
                let out = slots[p * runs + run].get().unwrap_or_else(|| {
                    panic!("task slot {p}x{run} was not filled before the scope ended")
                });
                busy_s += out.busy_s;
                match &out.sample {
                    Ok(s) => samples.push(*s),
                    Err(e) => {
                        failed_runs += 1;
                        if error.is_none() {
                            error = Some(e.clone());
                        }
                    }
                }
            }
            let result = if error.is_none() {
                Some(reduce(label, &samples))
            } else {
                None
            };
            CellOutcome {
                label: label.clone(),
                result,
                error,
                failed_runs,
                busy_s,
            }
        })
        .collect()
}

/// [`run_matrix_engine`] with the default configuration — the drop-in used
/// by the table/figure modules.
pub fn run_matrix_default(
    targets: &WorkloadTargets,
    cells: &[(String, RunKind)],
    runs: usize,
    base_seed: u64,
) -> MatrixRun {
    run_matrix_engine(targets, cells, &EngineConfig::new(runs, base_seed))
}

// ---------------------------------------------------------------------------
// Process-wide telemetry
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct ProcessTelemetry {
    engine_runs: u64,
    tasks: u64,
    tasks_failed: u64,
    failed_cells: Vec<String>,
    wall_s: f64,
    serial_estimate_s: f64,
    jobs: usize,
}

static PROCESS: OnceLock<Mutex<ProcessTelemetry>> = OnceLock::new();

fn process() -> &'static Mutex<ProcessTelemetry> {
    PROCESS.get_or_init(|| Mutex::new(ProcessTelemetry::default()))
}

fn record_process(summary: &EngineSummary) {
    let mut p = process().lock().unwrap_or_else(PoisonError::into_inner);
    p.engine_runs += 1;
    p.tasks += summary.tasks as u64;
    p.tasks_failed += summary.tasks_failed as u64;
    p.failed_cells.extend(summary.failed_cells.iter().cloned());
    p.wall_s += summary.wall_s;
    p.serial_estimate_s += summary.serial_estimate_s;
    p.jobs = p.jobs.max(summary.jobs);
}

/// Schema tag stamped on the `earsim-telemetry:` stderr JSON line. v2
/// added the tag itself and the nested `netd` service counters; v3 added
/// `netd.batched_flushes` and the nested `cluster` object (simulated
/// daemon count, aggregation-tree depth, per-level aggregated reports);
/// v4 added the nested `ufs` object (widest per-socket uncore domain
/// configuration booted, firmware ratio transitions per domain index);
/// v5 added the nested `sweep` object (grid cells measured, cells served
/// from the result cache, worst relative fit residual); v6 added the
/// nested `powercap` object (cap commands pushed, RAPL PL1 throttle
/// events, budget rebalances, job-stream admissions/completions).
pub const TELEMETRY_SCHEMA: &str = "earsim-telemetry/v6";

/// Process-wide grid-sweep counters (the nested `sweep` telemetry
/// object).
#[derive(Debug, Default)]
struct SweepTelemetry {
    cells: u64,
    cache_hits: u64,
    fit_residual_max: f64,
}

static SWEEP: Mutex<SweepTelemetry> = Mutex::new(SweepTelemetry {
    cells: 0,
    cache_hits: 0,
    fit_residual_max: 0.0,
});

/// Records one workload's sweep: grid cells measured, cells served from
/// the persistent result cache, and the worst relative residual of its
/// surface fits. Aggregated into the `sweep` telemetry object.
pub fn record_sweep(cells: u64, cache_hits: u64, fit_residual_max: f64) {
    let mut s = SWEEP.lock().unwrap_or_else(PoisonError::into_inner);
    s.cells += cells;
    s.cache_hits += cache_hits;
    if fit_residual_max.is_finite() {
        s.fit_residual_max = s.fit_residual_max.max(fit_residual_max);
    }
}

/// The aggregated sweep counters: `(cells, cache_hits, fit_residual_max)`.
pub fn sweep_stats() -> (u64, u64, f64) {
    let s = SWEEP.lock().unwrap_or_else(PoisonError::into_inner);
    (s.cells, s.cache_hits, s.fit_residual_max)
}

/// The process-wide telemetry aggregated over every engine run so far, as
/// one JSON line — `None` if neither engine work nor networked-daemon
/// traffic has happened in this process.
pub fn process_summary_json() -> Option<String> {
    let p = process().lock().unwrap_or_else(PoisonError::into_inner);
    let netd = ear_netd::stats::snapshot();
    let stream = ear_jobstream::stats::snapshot();
    if p.engine_runs == 0 && !netd.any() && stream == ear_jobstream::stats::StreamStats::default() {
        return None;
    }
    let (hits, misses) = calibration_stats();
    let (result_hits, result_misses, result_invalidations) = cache::result_cache_stats();
    let failed: Vec<String> = p
        .failed_cells
        .iter()
        .map(|l| format!("\"{}\"", l.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    let speedup = if p.wall_s > 0.0 {
        p.serial_estimate_s / p.wall_s
    } else {
        1.0
    };
    let cluster = ear_netd::stats::cluster_snapshot();
    let level_reports: Vec<String> = cluster
        .level_reports
        .iter()
        .map(|n| n.to_string())
        .collect();
    let ufs = ear_archsim::stats::snapshot();
    let ratio_steps: Vec<String> = ufs.ratio_steps.iter().map(|n| n.to_string()).collect();
    let (sweep_cells, sweep_hits, sweep_residual) = sweep_stats();
    Some(format!(
        "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\
         \"engine_runs\":{},\"jobs\":{},\"tasks\":{},\"tasks_failed\":{},\
         \"failed_cells\":[{}],\"wall_s\":{:.3},\"serial_estimate_s\":{:.3},\
         \"speedup\":{:.2},\"cal_hits\":{},\"cal_misses\":{},\
         \"result_hits\":{},\"result_misses\":{},\"result_invalidations\":{},\
         \"netd\":{{\"accepted\":{},\"rejected\":{},\"timed_out\":{},\
         \"retried\":{},\"requests\":{},\"decode_errors\":{},\
         \"batched_flushes\":{}}},\
         \"cluster\":{{\"daemons\":{},\"tree_depth\":{},\
         \"level_reports\":[{}],\"batched_flushes\":{}}},\
         \"ufs\":{{\"max_domains\":{},\"ratio_steps\":[{}]}},\
         \"sweep\":{{\"cells\":{},\"cache_hits\":{},\
         \"fit_residual_max\":{:.6}}},\
         \"powercap\":{{\"caps_pushed\":{},\"throttle_events\":{},\
         \"rebalances\":{},\"jobs_admitted\":{},\"jobs_completed\":{}}}}}",
        p.engine_runs,
        p.jobs,
        p.tasks,
        p.tasks_failed,
        failed.join(","),
        p.wall_s,
        p.serial_estimate_s,
        speedup,
        hits,
        misses,
        result_hits,
        result_misses,
        result_invalidations,
        netd.accepted,
        netd.rejected,
        netd.timed_out,
        netd.retried,
        netd.requests,
        netd.decode_errors,
        netd.batched_flushes,
        cluster.daemons,
        cluster.tree_depth,
        level_reports.join(","),
        cluster.batched_flushes,
        ufs.max_domains,
        ratio_steps.join(","),
        sweep_cells,
        sweep_hits,
        sweep_residual,
        stream.caps_pushed,
        ear_archsim::stats::rapl_throttle_events(),
        stream.rebalances,
        stream.jobs_admitted,
        stream.jobs_completed
    ))
}

/// Prints the process-wide engine summary to stderr (no-op if no engine
/// work ran). Called by `earsim` and the experiment binaries on exit so
/// stdout stays clean for the tables themselves.
pub fn print_process_summary() {
    if let Some(json) = process_summary_json() {
        eprintln!("earsim-telemetry: {json}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_matches_legacy_for_salt_zero() {
        for (base, run) in [(42u64, 0usize), (7, 1), (1001, 2)] {
            let legacy = base
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(run as u64 * 7919);
            assert_eq!(run_seed(base, 0, run), legacy);
        }
    }

    #[test]
    fn seeds_differ_across_cells_and_runs() {
        let s = |cell, run| run_seed(99, cell, run);
        assert_ne!(s(0, 0), s(1, 0));
        assert_ne!(s(0, 0), s(0, 1));
        assert_ne!(s(1, 2), s(2, 1));
    }

    #[test]
    fn summary_json_is_well_formed() {
        let s = EngineSummary {
            jobs: 4,
            tasks: 6,
            tasks_failed: 3,
            failed_cells: vec!["bad \"cell\"".into()],
            wall_s: 1.5,
            serial_estimate_s: 4.5,
            cal_hits: 5,
            cal_misses: 1,
            result_hits: 2,
            result_misses: 4,
            result_invalidations: 1,
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"speedup\":3.00"), "{j}");
        assert!(j.contains("\\\"cell\\\""), "{j}");
        assert!(j.contains("\"result_hits\":2"), "{j}");
        assert!(j.contains("\"result_invalidations\":1"), "{j}");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
