//! The grid-scale frequency sweep engine (`earsim sweep`).
//!
//! Runs every workload across the full (pstate × uncore-ratio) grid and
//! fits T(f, u) / P(f, u) surfaces for the one-shot `fitted` policy. A
//! full characterisation — `grid × workloads × runs` — is the largest
//! cold-path campaign the experiment engine faces, so the sweep is
//! engineered as a fast path rather than a naive loop over cells:
//!
//! * **One matrix per workload.** The reference cell and the whole grid
//!   go through [`run_matrix_engine`] as a single matrix: calibration and
//!   job synthesis happen once per workload and every cell of the grid
//!   spreads across the worker pool (the naive per-cell loop rebuilds the
//!   job per cell and serialises the grid; it survives as the measured
//!   reference in the `sweep_grid_wall` bench and behind `--naive`).
//! * **Batched cell claims.** Workers claim one uncore row of the grid
//!   per queue operation ([`EngineConfig::with_batch`]): adjacent cells
//!   run back to back under one permit, amortising setup and keeping the
//!   archsim quantum fast-forward path hot between neighbouring
//!   frequencies.
//! * **Cache-key scheduling.** Pending cells are ordered by their
//!   persistent result-cache key ([`EngineConfig::key_ordered`]), so a
//!   re-sweep or partial sweep probes and refills the cache in write
//!   order — warm re-sweeps are near-free and report their hits in the
//!   `sweep` telemetry object.
//!
//! Per-workload grids come from [`ear_workloads::sweep`]; the fitter is
//! [`ear_core::fit`]. The module also ships the model-accuracy harness
//! (fitted-vs-measured error tables) and the policy-vs-policy comparison
//! (min_energy / ME+NG-U / ME+eU / fitted) over the catalog.

use crate::engine::{self, run_matrix_engine, EngineConfig};
use crate::harness::{compare, format_table, RunKind, RunResult};
use ear_core::fit::{fit_poly2, residuals, FitResidual, FittedSurface};
use ear_core::{Avx512Model, PolicyCtx, PolicySettings};
use ear_errors::{EarError, EarResult};
use ear_workloads::sweep::{UNCORE_RATIO_MAX, UNCORE_RATIO_MIN};
use ear_workloads::{full_catalog, quick_spec, sweep_spec, SweepSpec, WorkloadTargets};
use std::path::{Path, PathBuf};

/// Artifact schema tag (first line of every `.sweep` file).
pub const SWEEP_SCHEMA: &str = "earsim-sweep/v1";

/// How a sweep campaign runs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Reduced 3×3 grids (CI smoke, determinism tests).
    pub quick: bool,
    /// Runs averaged per cell (the paper averages three; the default 1
    /// keeps a cold full-catalog sweep fast).
    pub runs: usize,
    /// Base seed for every matrix.
    pub base_seed: u64,
    /// Workloads to sweep (paper names); empty = the full catalog.
    pub apps: Vec<String>,
    /// Artifact directory (`None` = no artifacts written).
    pub out_dir: Option<PathBuf>,
    /// Run the naive per-cell reference loop instead of the structured
    /// sweep (identical results, measurably slower — kept honest by the
    /// `sweep_grid_wall` bench).
    pub naive: bool,
    /// Fail the campaign if any surface's worst relative fit residual
    /// exceeds this fraction (CI tolerance gate).
    pub max_residual: Option<f64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            quick: false,
            runs: 1,
            base_seed: 9001,
            apps: Vec::new(),
            out_dir: None,
            naive: false,
            max_residual: None,
        }
    }
}

/// One workload's measured grid plus its fitted surfaces.
#[derive(Debug, Clone)]
pub struct AppSweep {
    /// Workload name.
    pub app: String,
    /// Uncore domains per socket the grid ran with.
    pub domains: usize,
    /// Swept CPU pstates.
    pub cpu_pstates: Vec<usize>,
    /// Nominal GHz of each swept pstate.
    pub ghz: Vec<f64>,
    /// Swept uncore max-ratios (100 MHz units).
    pub imc_ratios: Vec<u8>,
    /// Reference run (nominal CPU, hardware UFS).
    pub reference: RunResult,
    /// Measured grid, row-major `[cpu][imc]`.
    pub grid: Vec<Vec<RunResult>>,
    /// The fitted T/P surface pair.
    pub surface: FittedSurface,
    /// Fit quality of the time surface.
    pub time_fit: FitResidual,
    /// Fit quality of the power surface.
    pub power_fit: FitResidual,
    /// Cells served from the persistent result cache.
    pub cache_hits: u64,
    /// Grid cells measured or served (reference included).
    pub cells: usize,
}

impl AppSweep {
    /// Worst relative residual across both fitted surfaces.
    pub fn worst_residual(&self) -> f64 {
        self.time_fit.max_rel.max(self.power_fit.max_rel)
    }
}

fn grid_cells(spec: &SweepSpec) -> Vec<(String, RunKind)> {
    let mut cells = vec![(
        "ref".to_string(),
        RunKind::Fixed {
            cpu: 1,
            imc_ratio: None,
        },
    )];
    for &ps in &spec.cpu_pstates {
        for &r in &spec.imc_ratios {
            cells.push((
                format!("cpu{ps}/imc{r}"),
                RunKind::Fixed {
                    cpu: ps,
                    imc_ratio: Some(r),
                },
            ));
        }
    }
    cells
}

/// Sweeps one workload over `spec`'s grid and fits its surfaces.
///
/// The structured path runs the whole grid as one engine matrix with
/// batched claims and cache-key scheduling; `config.naive` runs the
/// reference per-cell loop instead. Both produce bit-identical results
/// (legacy seeds: every cell draws the same noise either way).
pub fn sweep_app(
    targets: &WorkloadTargets,
    spec: &SweepSpec,
    config: &SweepConfig,
) -> EarResult<AppSweep> {
    let cells = grid_cells(spec);
    let runs = config.runs.max(1);
    let all = if config.naive {
        // The naive loop: one engine invocation per cell. Calibration
        // still comes from the process-wide cache, but the job is
        // re-synthesised per cell and the grid cannot spread across the
        // pool (each invocation holds only `runs` tasks).
        let mut all = Vec::with_capacity(cells.len());
        for cell in &cells {
            let run = run_matrix_engine(
                targets,
                std::slice::from_ref(cell),
                &EngineConfig::new(runs, config.base_seed).legacy_seeds(),
            );
            match run.all() {
                Some(mut v) => all.append(&mut v),
                None => return Err(sweep_failure(targets, &run.failed_labels())),
            }
        }
        all
    } else {
        // The structured sweep: one matrix, one uncore row per claim,
        // cells scheduled in cache-key order.
        let ec = EngineConfig::new(runs, config.base_seed)
            .legacy_seeds()
            .with_batch(spec.imc_ratios.len().max(1) * runs)
            .key_ordered();
        let run = run_matrix_engine(targets, &cells, &ec);
        let hits = run.summary.result_hits;
        match run.all() {
            Some(v) => {
                return assemble(targets, spec, v, hits, cells.len());
            }
            None => return Err(sweep_failure(targets, &run.failed_labels())),
        }
    };
    assemble(targets, spec, all, 0, cells.len())
}

fn sweep_failure(targets: &WorkloadTargets, failed: &[String]) -> EarError {
    EarError::Invariant(format!(
        "sweep {}: cells failed: {}",
        targets.name,
        failed.join(", ")
    ))
}

fn assemble(
    targets: &WorkloadTargets,
    spec: &SweepSpec,
    all: Vec<RunResult>,
    cache_hits: u64,
    cells: usize,
) -> EarResult<AppSweep> {
    let pstates = targets.platform.node_config().pstates;
    let ghz: Vec<f64> = spec.cpu_pstates.iter().map(|&ps| pstates.ghz(ps)).collect();
    let reference = all[0].clone();
    let mut grid = Vec::with_capacity(spec.cpu_pstates.len());
    let mut t_samples = Vec::with_capacity(spec.cells());
    let mut p_samples = Vec::with_capacity(spec.cells());
    for (i, &f) in ghz.iter().enumerate() {
        let mut row = Vec::with_capacity(spec.imc_ratios.len());
        for (j, &r) in spec.imc_ratios.iter().enumerate() {
            let cell = all[1 + i * spec.imc_ratios.len() + j].clone();
            let u = f64::from(r) * 0.1;
            t_samples.push((f, u, cell.time_s));
            p_samples.push((f, u, cell.dc_power_w));
            row.push(cell);
        }
        grid.push(row);
    }
    let time = fit_poly2(&t_samples)?;
    let power = fit_poly2(&p_samples)?;
    let time_fit = residuals(&time, &t_samples);
    let power_fit = residuals(&power, &p_samples);
    let fold = |acc: (f64, f64), x: &f64| (acc.0.min(*x), acc.1.max(*x));
    let f_range = ghz.iter().fold((f64::INFINITY, f64::NEG_INFINITY), fold);
    let u_lo = f64::from(*spec.imc_ratios.iter().min().unwrap_or(&UNCORE_RATIO_MIN)) * 0.1;
    let u_hi = f64::from(*spec.imc_ratios.iter().max().unwrap_or(&UNCORE_RATIO_MAX)) * 0.1;
    let surface = FittedSurface {
        time,
        power,
        f_range_ghz: f_range,
        u_range_ghz: (u_lo, u_hi),
    };
    let sweep = AppSweep {
        app: targets.name.to_string(),
        domains: targets.uncore_domains,
        cpu_pstates: spec.cpu_pstates.clone(),
        ghz,
        imc_ratios: spec.imc_ratios.clone(),
        reference,
        grid,
        surface,
        time_fit,
        power_fit,
        cache_hits,
        cells,
    };
    engine::record_sweep(cells as u64, cache_hits, sweep.worst_residual());
    Ok(sweep)
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Renders one workload's sweep artifact. Every float carries both a
/// human-readable decimal and its exact bit pattern, so the determinism
/// contract ("byte-identical at any `--jobs`, cold or warm") is checkable
/// with `cmp`.
pub fn render_artifact(s: &AppSweep) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{SWEEP_SCHEMA}");
    let _ = writeln!(out, "app: {}", s.app);
    let _ = writeln!(out, "domains: {}", s.domains);
    let _ = writeln!(
        out,
        "pstates: {}",
        s.cpu_pstates
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(
        out,
        "ratios: {}",
        s.imc_ratios
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(
        out,
        "ref: time_s={:.9}/{} power_w={:.9}/{}",
        s.reference.time_s,
        bits(s.reference.time_s),
        s.reference.dc_power_w,
        bits(s.reference.dc_power_w)
    );
    for (i, row) in s.grid.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            let _ = writeln!(
                out,
                "cell ps={} imc={}: time_s={:.9}/{} power_w={:.9}/{}",
                s.cpu_pstates[i],
                s.imc_ratios[j],
                cell.time_s,
                bits(cell.time_s),
                cell.dc_power_w,
                bits(cell.dc_power_w)
            );
        }
    }
    for (name, poly, fit) in [
        ("time", &s.surface.time, &s.time_fit),
        ("power", &s.surface.power, &s.power_fit),
    ] {
        let coeffs: Vec<String> = poly.coeffs.iter().map(|c| bits(*c)).collect();
        let _ = writeln!(out, "fit_{name}_coeffs: {}", coeffs.join(" "));
        let _ = writeln!(
            out,
            "fit_{name}_residual: max={:.6}%/{} mean={:.6}%/{}",
            fit.max_rel * 100.0,
            bits(fit.max_rel),
            fit.mean_rel * 100.0,
            bits(fit.mean_rel)
        );
    }
    out
}

/// A filesystem-safe artifact name for a workload.
fn artifact_name(app: &str) -> String {
    let safe: String = app
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}.sweep")
}

/// Writes one workload's artifact into `dir`, returning its path.
pub fn write_artifact(dir: &Path, s: &AppSweep) -> EarResult<PathBuf> {
    let io_err = |path: &Path, e: std::io::Error| EarError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let path = dir.join(artifact_name(&s.app));
    std::fs::write(&path, render_artifact(s)).map_err(|e| io_err(&path, e))?;
    Ok(path)
}

// ---------------------------------------------------------------------------
// The one-shot selection and the report tables
// ---------------------------------------------------------------------------

/// The `fitted` policy's one-shot choice on a surface, reported as
/// (pstate, ratio): the same evaluation the policy makes at runtime.
pub fn fitted_choice(targets: &WorkloadTargets, surface: &FittedSurface) -> (usize, u8) {
    let node = targets.platform.node_config();
    let model = Avx512Model::for_node(&node);
    let settings = PolicySettings::default();
    let ctx = PolicyCtx {
        pstates: &node.pstates,
        uncore_min_ratio: UNCORE_RATIO_MIN,
        uncore_max_ratio: UNCORE_RATIO_MAX,
        uncore_domains: targets.uncore_domains,
        model: &model,
        settings: &settings,
    };
    ear_core::policy::fitted::select_on_surface(surface, &ctx)
}

/// The fitted-vs-measured accuracy table (Hofmann-style model
/// validation): per workload, the relative error of the fitted surfaces
/// against the measured grid.
pub fn accuracy_table(sweeps: &[AppSweep]) -> String {
    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            vec![
                s.app.clone(),
                format!("{}", s.cells),
                format!("{:.2}", s.time_fit.max_rel * 100.0),
                format!("{:.2}", s.time_fit.mean_rel * 100.0),
                format!("{:.2}", s.power_fit.max_rel * 100.0),
                format!("{:.2}", s.power_fit.mean_rel * 100.0),
            ]
        })
        .collect();
    format_table(
        "Sweep fit accuracy (fitted vs measured, % relative error)",
        &["Application", "cells", "T max", "T mean", "P max", "P mean"],
        &rows,
    )
}

/// One workload's policy-vs-policy comparison row data.
struct PolicyRow {
    app: String,
    rows: Vec<(String, crate::harness::Comparison)>,
    fitted_beats_me: bool,
    fitted_in_budget: bool,
}

/// The combined time-penalty budget the `fitted` policy is gated against:
/// the paper's CPU stage (5 %) plus uncore stage (2 %) thresholds.
pub const FITTED_PENALTY_BUDGET_PCT: f64 = 7.0;

fn policy_row(targets: &WorkloadTargets, s: &AppSweep, config: &SweepConfig) -> Option<PolicyRow> {
    let fitted = RunKind::Policy {
        name: "fitted".into(),
        settings: PolicySettings {
            fitted: Some(s.surface.clone()),
            ..Default::default()
        },
    };
    let cells = vec![
        ("No policy".to_string(), RunKind::NoPolicy),
        ("ME".to_string(), RunKind::me(0.05)),
        ("ME+NG-U".to_string(), RunKind::me_ng_u(0.05, 0.02)),
        ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
        ("fitted".to_string(), fitted),
    ];
    let run = run_matrix_engine(
        targets,
        &cells,
        &EngineConfig::new(config.runs.max(1), config.base_seed.wrapping_add(17)),
    );
    let all = run.all()?;
    let reference = &all[0];
    let rows: Vec<(String, crate::harness::Comparison)> = all[1..]
        .iter()
        .map(|r| (r.label.clone(), compare(reference, r)))
        .collect();
    let me = rows[0].1;
    let fit = rows[3].1;
    Some(PolicyRow {
        app: targets.name.to_string(),
        fitted_beats_me: fit.energy_saving_pct >= me.energy_saving_pct - 0.05,
        fitted_in_budget: fit.time_penalty_pct <= FITTED_PENALTY_BUDGET_PCT,
        rows,
    })
}

fn comparison_table(rows: &[PolicyRow]) -> String {
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    for pr in rows {
        let mut row = vec![pr.app.clone()];
        for (_, c) in &pr.rows {
            row.push(format!(
                "{:+.1}/{:+.1}",
                c.time_penalty_pct, c.energy_saving_pct
            ));
        }
        table_rows.push(row);
    }
    let mut out = format_table(
        "Policy vs policy: time penalty / energy saving (%), vs no policy",
        &["Application", "ME", "ME+NG-U", "ME+eU", "fitted"],
        &table_rows,
    );
    let beats = rows.iter().filter(|r| r.fitted_beats_me).count();
    let in_budget = rows.iter().filter(|r| r.fitted_in_budget).count();
    out.push_str(&format!(
        "fitted within the {FITTED_PENALTY_BUDGET_PCT:.0}% penalty budget: {in_budget}/{} workloads\n\
         fitted matches or beats ME energy saving: {beats}/{} workloads\n",
        rows.len(),
        rows.len()
    ));
    out
}

// ---------------------------------------------------------------------------
// The campaign driver
// ---------------------------------------------------------------------------

fn campaign_targets(config: &SweepConfig) -> EarResult<Vec<WorkloadTargets>> {
    let mut targets = if config.apps.is_empty() {
        full_catalog()
    } else {
        let mut v = Vec::new();
        for name in &config.apps {
            v.push(
                ear_workloads::by_name(name)
                    .ok_or_else(|| EarError::unknown("workload", name.clone()))?,
            );
        }
        v
    };
    // Per-die sweep: EAR_UNCORE_DOMAINS > 1 re-characterises the catalog
    // on multi-domain nodes (the fixed ratio is applied to every die; the
    // result cache keys the domain count, so single-knob entries are
    // never served).
    if let Some(n) = crate::uncore_domains_override() {
        if n > 1 {
            for t in &mut targets {
                t.uncore_domains = n;
            }
        }
    }
    Ok(targets)
}

/// Runs the whole sweep campaign and renders the report: per-workload
/// summary, accuracy table, policy comparison. Artifacts are written when
/// `config.out_dir` is set; the campaign fails if any fit exceeds
/// `config.max_residual`.
pub fn run_sweep(config: &SweepConfig) -> EarResult<String> {
    use std::fmt::Write as _;
    let targets = campaign_targets(config)?;
    let mut sweeps = Vec::with_capacity(targets.len());
    let mut summary_rows: Vec<Vec<String>> = Vec::new();
    for t in &targets {
        let spec = if config.quick {
            quick_spec(t)
        } else {
            sweep_spec(t)
        };
        let s = sweep_app(t, &spec, config)?;
        if let Some(dir) = &config.out_dir {
            write_artifact(dir, &s)?;
        }
        let (ps, ratio) = fitted_choice(t, &s.surface);
        summary_rows.push(vec![
            s.app.clone(),
            format!("{}x{}", s.cpu_pstates.len(), s.imc_ratios.len()),
            format!("{}", s.cache_hits),
            format!("p{ps}/{:.1} GHz", t.platform.node_config().pstates.ghz(ps)),
            format!("{:.1} GHz", f64::from(ratio) * 0.1),
            format!("{:.2}%", s.worst_residual() * 100.0),
        ]);
        sweeps.push(s);
    }

    let mut out = format_table(
        &format!(
            "Sweep campaign: {} workloads, {} grids{}",
            sweeps.len(),
            if config.quick { "quick" } else { "full" },
            if config.naive { ", naive loop" } else { "" }
        ),
        &[
            "Application",
            "grid",
            "cache hits",
            "fitted CPU",
            "fitted IMC",
            "worst fit err",
        ],
        &summary_rows,
    );
    out.push('\n');
    out.push_str(&accuracy_table(&sweeps));

    if let Some(tol) = config.max_residual {
        for s in &sweeps {
            if s.worst_residual() > tol {
                return Err(EarError::Invariant(format!(
                    "sweep {}: worst fit residual {:.2}% exceeds tolerance {:.2}%",
                    s.app,
                    s.worst_residual() * 100.0,
                    tol * 100.0
                )));
            }
        }
    }

    out.push('\n');
    let mut rows = Vec::new();
    for (t, s) in targets.iter().zip(&sweeps) {
        match policy_row(t, s, config) {
            Some(r) => rows.push(r),
            None => {
                let _ = writeln!(out, "[policy comparison for {} failed]", t.name);
            }
        }
    }
    out.push_str(&comparison_table(&rows));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_workloads::by_name;

    fn quick_config() -> SweepConfig {
        SweepConfig {
            quick: true,
            ..Default::default()
        }
    }

    fn bt() -> WorkloadTargets {
        by_name("BT-MZ.C (OpenMP)").unwrap_or_else(|| panic!("catalog"))
    }

    #[test]
    fn structured_and_naive_sweeps_are_bit_identical() {
        let t = bt();
        let spec = quick_spec(&t);
        let cfg = quick_config();
        let fast = sweep_app(&t, &spec, &cfg).unwrap_or_else(|e| panic!("{e}"));
        let naive = sweep_app(
            &t,
            &spec,
            &SweepConfig {
                naive: true,
                ..quick_config()
            },
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(render_artifact(&fast), render_artifact(&naive));
    }

    #[test]
    fn fit_tracks_the_measured_grid() {
        let t = bt();
        let spec = quick_spec(&t);
        let s = sweep_app(&t, &spec, &quick_config()).unwrap_or_else(|e| panic!("{e}"));
        // The simulator's surfaces are smooth; a quadratic should stay
        // within a few percent on a 3×3 grid.
        assert!(s.worst_residual() < 0.10, "{:?}", (s.time_fit, s.power_fit));
        // And the fitted choice lands inside the swept window.
        let (ps, ratio) = fitted_choice(&t, &s.surface);
        assert!(spec.cpu_pstates.contains(&ps) || ps >= 1);
        assert!((UNCORE_RATIO_MIN..=UNCORE_RATIO_MAX).contains(&ratio));
    }

    #[test]
    fn artifact_is_schema_tagged_and_patterned() {
        let t = bt();
        let spec = quick_spec(&t);
        let s = sweep_app(&t, &spec, &quick_config()).unwrap_or_else(|e| panic!("{e}"));
        let a = render_artifact(&s);
        assert!(a.starts_with(SWEEP_SCHEMA));
        assert_eq!(a.matches("cell ps=").count(), spec.cells());
        assert!(a.contains("fit_time_coeffs:"));
        assert!(a.contains("fit_power_coeffs:"));
        assert_eq!(artifact_name("BT-MZ.C (OpenMP)"), "BT-MZ.C__OpenMP_.sweep");
    }
}
