//! # ear-experiments — regeneration of every table and figure
//!
//! One function (and one binary) per table and figure of the paper's
//! evaluation. The harness runs each (workload × configuration) cell three
//! times — as the paper averages three real runs — and reports penalties
//! and savings against the matching reference configuration.
//!
//! Execution goes through the [`engine`]: a dependency-free bounded worker
//! pool scheduling at (cell × run) granularity, with a process-wide
//! calibration cache, a persistent content-addressed result cache
//! ([`cache`], enabled by the `earsim` front end), per-task panic
//! isolation, deterministic results for any worker count, and
//! machine-readable run telemetry. Worker count: `--jobs N` on `earsim`,
//! the `EAR_JOBS` environment variable, or the machine's available
//! parallelism.
//!
//! Binaries: `table1` … `table7`, `fig1`, `fig3` … `fig8`, and `run_all`
//! (prints everything, in paper order).

#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod chart;
pub mod csv;
pub mod engine;
pub mod figures;
pub mod future_work;
pub mod harness;
pub mod powercap;
pub mod related_work;
pub mod surface;
pub mod sweep;
pub mod tables;

pub use cache::{default_cache_dir, result_cache_stats, set_result_cache};
pub use chart::{bar_chart, column_chart};
pub use engine::{
    default_jobs, default_model, print_process_summary, run_matrix_engine, set_default_jobs,
    set_default_model, EngineConfig, EngineSummary, MatrixRun,
};
pub use harness::{compare, format_table, run_cell, run_matrix, Comparison, RunKind, RunResult};
pub use powercap::run_powercap;
pub use sweep::{run_sweep, sweep_app, AppSweep, SweepConfig};

/// The `EAR_UNCORE_DOMAINS` override: `Some(n)` when the variable is set
/// to a valid domain count. `1` forces the legacy single-knob world —
/// [`run_all`] then omits the per-die Table VIII, keeping the report
/// byte-identical to the pre-domain releases — while `2..=4` re-runs the
/// GPU-offload probe with that many domains per socket.
pub fn uncore_domains_override() -> Option<usize> {
    let v = std::env::var("EAR_UNCORE_DOMAINS").ok()?;
    let n: usize = v.trim().parse().ok()?;
    (1..=ear_archsim::MAX_UNCORE_DOMAINS)
        .contains(&n)
        .then_some(n)
}

/// Runs every experiment and returns the full report (the `run_all` binary
/// prints this; EXPERIMENTS.md embeds it).
///
/// A figure whose regeneration fails (the figure entry points return
/// `Result` now) degrades to a one-line placeholder section instead of
/// aborting the other thirteen sections; on the committed catalog every
/// section succeeds, so the output is unchanged.
pub fn run_all() -> String {
    fn section(r: Result<String, ear_errors::EarError>) -> String {
        r.unwrap_or_else(|e| format!("[figure skipped: {e}]\n"))
    }
    let mut sections = vec![
        tables::table1(),
        section(figures::fig1()),
        tables::table2(),
        tables::table3(),
        tables::table4(),
        tables::table5(),
        tables::table6(),
        section(figures::fig3()),
        section(figures::fig4()),
        section(figures::fig5()),
        section(figures::fig6()),
        section(figures::fig7()),
        section(figures::fig8()),
        tables::table7(),
    ];
    // The per-die extension's table: everything above reproduces the
    // paper on single-knob nodes; `EAR_UNCORE_DOMAINS=1` pins the report
    // to exactly that (byte-identical to the pre-domain releases).
    if uncore_domains_override() != Some(1) {
        sections.push(tables::table8());
    }
    sections.join("\n")
}
