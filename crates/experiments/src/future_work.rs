//! Experiments beyond the paper's evaluation: the future work its §VIII
//! announces, realised.
//!
//! 1. **min_time_to_solution + eUFS** — the second default policy, with
//!    the uncore stage integrated (including the "increase" direction).
//! 2. **Communication-intensive applications** — how much uncore headroom
//!    exists when half of every iteration is MPI waiting.
//! 3. **Uncore range modes** — the §V-B pre-evaluation (max-only vs pinned
//!    vs band), reproduced as an ablation.

use crate::engine::run_matrix_default;
use crate::harness::{compare, format_table, RunKind, RunResult};
use crate::tables::RUNS;
use ear_core::{ImcRange, PolicySettings};
use ear_workloads::{synthetic, WorkloadTargets};

fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// Engine-backed matrix run; `None` (with a stderr note) if any cell
/// failed, since every table here compares positionally against cell 0.
fn matrix_all(
    targets: &WorkloadTargets,
    cells: &[(String, RunKind)],
    seed: u64,
) -> Option<Vec<RunResult>> {
    let run = run_matrix_default(targets, cells, RUNS, seed);
    let all = run.all();
    if all.is_none() {
        eprintln!(
            "future_work: skipping {} (failed cells: {})",
            targets.name,
            run.failed_labels().join(", ")
        );
    }
    all
}

/// min_time ± eUFS on a CPU-bound and a memory-bound application, against
/// a fixed-at-default-pstate baseline (min_time's raison d'être: start low,
/// accelerate where it pays).
pub fn min_time_eval() -> String {
    let mut rows = Vec::new();
    for app in ["BT-MZ", "HPCG"] {
        let t = crate::harness::catalog(app);
        let settings = PolicySettings {
            def_pstate: 4,
            ..Default::default()
        };
        let cells = vec![
            (
                "fixed 2.1GHz".to_string(),
                RunKind::Fixed {
                    cpu: 4,
                    imc_ratio: None,
                },
            ),
            (
                "min_time".to_string(),
                RunKind::Policy {
                    name: "min_time".into(),
                    settings: settings.clone(),
                },
            ),
            (
                "min_time+eU".to_string(),
                RunKind::Policy {
                    name: "min_time_eufs".into(),
                    settings: settings.clone(),
                },
            ),
        ];
        let Some(results) = matrix_all(&t, &cells, 301) else {
            continue;
        };
        for r in &results[1..] {
            let c = compare(&results[0], r);
            rows.push(vec![
                app.to_string(),
                r.label.clone(),
                format!("{:.1}", r.time_s),
                pct(-c.time_penalty_pct), // speedup
                format!("{:.2}", r.avg_cpu_ghz),
                format!("{:.2}", r.avg_imc_ghz),
                pct(c.energy_saving_pct),
            ]);
        }
    }
    format_table(
        "Future work 1: min_time_to_solution ± eUFS (vs fixed 2.1 GHz)",
        &[
            "app",
            "config",
            "time (s)",
            "speedup",
            "CPU GHz",
            "IMC GHz",
            "energy delta",
        ],
        &rows,
    )
}

/// The communication-intensive case: ME+eU on a workload that spends half
/// its time in MPI busy-waits.
pub fn comm_intensive_eval() -> String {
    let t = synthetic::comm_intensive();
    let cells = vec![
        ("No policy".to_string(), RunKind::NoPolicy),
        ("ME".to_string(), RunKind::me(0.05)),
        ("ME+eU 2%".to_string(), RunKind::me_eufs(0.05, 0.02)),
        ("ME+eU 3%".to_string(), RunKind::me_eufs(0.05, 0.03)),
    ];
    let results = matrix_all(&t, &cells, 302).unwrap_or_default();
    let rows: Vec<Vec<String>> = results
        .get(1..)
        .unwrap_or_default()
        .iter()
        .map(|r| {
            let c = compare(&results[0], r);
            vec![
                r.label.clone(),
                pct(c.time_penalty_pct),
                pct(c.power_saving_pct),
                pct(c.energy_saving_pct),
                format!("{:.2}", r.avg_imc_ghz),
            ]
        })
        .collect();
    format_table(
        "Future work 2: communication-intensive application (50% MPI wait)",
        &[
            "config",
            "time penalty",
            "power save",
            "energy save",
            "IMC GHz",
        ],
        &rows,
    )
}

/// The §V-B uncore range pre-evaluation: max-only (shipped) vs pinned vs
/// a 0.2 GHz band, on a workload with a mid-run phase change — the case
/// where leaving the minimum down lets the hardware help.
pub fn range_mode_eval() -> String {
    let t = crate::harness::catalog("BT-MZ");
    let mk = |range: ImcRange| RunKind::Policy {
        name: "min_energy_eufs".into(),
        settings: PolicySettings {
            imc_range: range,
            ..Default::default()
        },
    };
    let cells = vec![
        ("No policy".to_string(), RunKind::NoPolicy),
        ("max-only".to_string(), mk(ImcRange::MaxOnly)),
        ("pinned".to_string(), mk(ImcRange::Pinned)),
        ("band 0.2GHz".to_string(), mk(ImcRange::Band(2))),
    ];
    let results = matrix_all(&t, &cells, 303).unwrap_or_default();
    let rows: Vec<Vec<String>> = results
        .get(1..)
        .unwrap_or_default()
        .iter()
        .map(|r| {
            let c = compare(&results[0], r);
            vec![
                r.label.clone(),
                pct(c.time_penalty_pct),
                pct(c.energy_saving_pct),
                format!("{:.2}", r.avg_imc_ghz),
            ]
        })
        .collect();
    let mut out = format_table(
        "Future work 3: uncore range modes (paper §V-B pre-evaluation)",
        &["range mode", "time penalty", "energy save", "IMC GHz"],
        &rows,
    );
    out.push_str(
        "(On steady workloads the three modes coincide — the firmware rides the\n\
         programmed maximum — which is why the paper ships max-only: it is the\n\
         least intrusive mode with identical steady-state behaviour.)\n",
    );
    out
}

/// Memory-intensity sweep with the parametric synthetic workload: where
/// does eUFS pay, and where does plain DVFS take over?
pub fn intensity_sweep() -> String {
    let mut rows = Vec::new();
    for m in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let t = synthetic::parametric(m);
        let cells = vec![
            ("No policy".to_string(), RunKind::NoPolicy),
            ("ME".to_string(), RunKind::me(0.05)),
            ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
        ];
        let Some(results) = matrix_all(&t, &cells, 304) else {
            continue;
        };
        let me = compare(&results[0], &results[1]);
        let eu = compare(&results[0], &results[2]);
        rows.push(vec![
            format!("{m:.2}"),
            format!("{:.2}", results[0].gbs),
            pct(me.energy_saving_pct),
            pct(eu.energy_saving_pct),
            format!("{:.2}", results[2].avg_cpu_ghz),
            format!("{:.2}", results[2].avg_imc_ghz),
        ]);
    }
    format_table(
        "Future work 4: memory-intensity sweep (synthetic)",
        &[
            "intensity",
            "GB/s",
            "Esave ME",
            "Esave ME+eU",
            "eU CPU GHz",
            "eU IMC GHz",
        ],
        &rows,
    )
}

/// All future-work experiments.
pub fn run_all_future_work() -> String {
    [
        min_time_eval(),
        comm_intensive_eval(),
        range_mode_eval(),
        intensity_sweep(),
    ]
    .join("\n")
}
