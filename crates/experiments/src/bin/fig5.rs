//! Regenerates the paper's Figure 5.
fn main() {
    print!("{}", ear_experiments::figures::fig5());
}
