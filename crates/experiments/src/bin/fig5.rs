//! Regenerates the paper's Figure 5.
fn main() {
    print!("{}", ear_experiments::figures::fig5());
    ear_experiments::engine::print_process_summary();
}
