//! Regenerates the paper's Figure 5.
fn main() {
    match ear_experiments::figures::fig5() {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("fig5: {e}");
            std::process::exit(1);
        }
    }
    ear_experiments::engine::print_process_summary();
}
