//! Regenerates the paper's Figure 1.
fn main() {
    match ear_experiments::figures::fig1() {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("fig1: {e}");
            std::process::exit(1);
        }
    }
    ear_experiments::engine::print_process_summary();
}
