//! Regenerates the paper's Figure 1.
fn main() {
    print!("{}", ear_experiments::figures::fig1());
    ear_experiments::engine::print_process_summary();
}
