//! Related-work comparison: ME+eU vs the DUF controller (paper §VII).
fn main() {
    print!("{}", ear_experiments::related_work::duf_comparison());
    ear_experiments::engine::print_process_summary();
}
