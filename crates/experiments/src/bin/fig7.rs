//! Regenerates the paper's Figure 7.
fn main() {
    match ear_experiments::figures::fig7() {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("fig7: {e}");
            std::process::exit(1);
        }
    }
    ear_experiments::engine::print_process_summary();
}
