//! Regenerates the paper's Figure 7.
fn main() {
    print!("{}", ear_experiments::figures::fig7());
    ear_experiments::engine::print_process_summary();
}
