//! Regenerates the paper's Table 1.
fn main() {
    print!("{}", ear_experiments::tables::table1());
    ear_experiments::engine::print_process_summary();
}
