//! Regenerates the paper's Table 7.
fn main() {
    print!("{}", ear_experiments::tables::table7());
    ear_experiments::engine::print_process_summary();
}
