//! Regenerates the paper's Table 7.
fn main() {
    print!("{}", ear_experiments::tables::table7());
}
