//! Regenerates the paper's Figure 4.
fn main() {
    match ear_experiments::figures::fig4() {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("fig4: {e}");
            std::process::exit(1);
        }
    }
    ear_experiments::engine::print_process_summary();
}
