//! Regenerates the paper's Figure 4.
fn main() {
    print!("{}", ear_experiments::figures::fig4());
    ear_experiments::engine::print_process_summary();
}
