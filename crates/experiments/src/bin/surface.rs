//! The §II motivation in full: the 2-D (CPU × IMC) energy surface.
//! Usage: surface [workload-name] (default BT-MZ.C (OpenMP)).
fn main() {
    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BT-MZ.C (OpenMP)".to_string());
    let s = ear_experiments::surface::measure_surface(&app, 77);
    print!("{}", ear_experiments::surface::render_surface(&s));
    ear_experiments::engine::print_process_summary();
}
