//! Regenerates the paper's Table 2.
fn main() {
    print!("{}", ear_experiments::tables::table2());
}
