//! Regenerates the paper's Table 2.
fn main() {
    print!("{}", ear_experiments::tables::table2());
    ear_experiments::engine::print_process_summary();
}
