//! Regenerates the paper's Table 3.
fn main() {
    print!("{}", ear_experiments::tables::table3());
    ear_experiments::engine::print_process_summary();
}
