//! Regenerates the paper's Table 3.
fn main() {
    print!("{}", ear_experiments::tables::table3());
}
