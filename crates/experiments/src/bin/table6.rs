//! Regenerates the paper's Table 6.
fn main() {
    print!("{}", ear_experiments::tables::table6());
    ear_experiments::engine::print_process_summary();
}
