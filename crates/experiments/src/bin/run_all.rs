//! Regenerates every table and figure of the paper, in order.
fn main() {
    print!("{}", ear_experiments::run_all());
    ear_experiments::engine::print_process_summary();
}
