//! Regenerates the paper's Figure 3.
fn main() {
    match ear_experiments::figures::fig3() {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("fig3: {e}");
            std::process::exit(1);
        }
    }
    ear_experiments::engine::print_process_summary();
}
