//! Regenerates the paper's Figure 3.
fn main() {
    print!("{}", ear_experiments::figures::fig3());
    ear_experiments::engine::print_process_summary();
}
