//! Regenerates the paper's Figure 6.
fn main() {
    print!("{}", ear_experiments::figures::fig6());
    ear_experiments::engine::print_process_summary();
}
