//! Regenerates the paper's Figure 6.
fn main() {
    match ear_experiments::figures::fig6() {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("fig6: {e}");
            std::process::exit(1);
        }
    }
    ear_experiments::engine::print_process_summary();
}
