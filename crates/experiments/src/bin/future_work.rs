//! Regenerates the future-work experiments (paper §VIII, realised).
fn main() {
    print!("{}", ear_experiments::future_work::run_all_future_work());
    ear_experiments::engine::print_process_summary();
}
