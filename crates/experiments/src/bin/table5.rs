//! Regenerates the paper's Table 5.
fn main() {
    print!("{}", ear_experiments::tables::table5());
    ear_experiments::engine::print_process_summary();
}
