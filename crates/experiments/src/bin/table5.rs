//! Regenerates the paper's Table 5.
fn main() {
    print!("{}", ear_experiments::tables::table5());
}
