//! Regenerates the paper's Figure 8.
fn main() {
    match ear_experiments::figures::fig8() {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("fig8: {e}");
            std::process::exit(1);
        }
    }
    ear_experiments::engine::print_process_summary();
}
