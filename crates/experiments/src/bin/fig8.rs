//! Regenerates the paper's Figure 8.
fn main() {
    print!("{}", ear_experiments::figures::fig8());
    ear_experiments::engine::print_process_summary();
}
