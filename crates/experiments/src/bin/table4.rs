//! Regenerates the paper's Table 4.
fn main() {
    print!("{}", ear_experiments::tables::table4());
}
