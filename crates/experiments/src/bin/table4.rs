//! Regenerates the paper's Table 4.
fn main() {
    print!("{}", ear_experiments::tables::table4());
    ear_experiments::engine::print_process_summary();
}
