//! Powercap experiments: cap sweep, cap-vs-throughput frontier, and the
//! oversubscribed job-stream stress scenario.
//!
//! Three artifacts, all driven through the same engine as the paper
//! tables so runs are cached, seeded and reproducible:
//!
//! * **Cap sweep** — each application runs uncapped to fix its nominal DC
//!   draw, then under the dual-knob `powercap` policy at 100 % down to
//!   50 % of that draw. The table reads as "what a fleet cap costs":
//!   delivered power, time penalty and energy against the uncapped run.
//! * **Frontier** — at every binding cap the dual-knob search races the
//!   pstate-only throttle baseline (identical control loop, uncore left
//!   to hardware UFS), both with the RAPL PL1 backstop armed at the cap
//!   exactly as the fleet deploys them. The advantage column isolates
//!   what the second knob buys: same watts, more work (Cuttlefish's
//!   observation, PAPERS.md) — and below the baseline's physical floor,
//!   caps only the second knob can reach at all.
//! * **Stress** — a short oversubscribed job stream: more demand than
//!   budget, every node capped well below its appetite, some below their
//!   physical floor. The scenario must drain (no job starves, zero
//!   protocol errors) with every node fully throttled; `over_W` records
//!   where the grant was infeasible.

use crate::engine::run_matrix_default;
use crate::harness::{format_table, run_cell, RunKind};
use crate::sweep::{sweep_app, SweepConfig};
use ear_core::fit::FittedSurface;
use ear_core::PolicySettings;
use ear_jobstream::{run_stream, StreamConfig};
use ear_workloads::apps::table5_apps;
use ear_workloads::sweep::SweepSpec;
use ear_workloads::WorkloadTargets;

/// Engine runs per cell (averaged), matching the paper tables' cadence.
const RUNS: usize = 2;

/// Base seed for every powercap experiment cell.
const SEED: u64 = 1501;

/// Cap levels swept, as fractions of each application's nominal DC draw.
const CAP_FRACTIONS: [f64; 6] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5];

/// Binding cap levels the frontier races (100 % excluded: an unbinding
/// cap leaves both sides at the reference point, so there is nothing to
/// compare).
const FRONTIER_FRACTIONS: [f64; 5] = [0.9, 0.8, 0.7, 0.6, 0.5];

/// The compute-bound trio the frontier focuses on: exactly the workloads
/// where uncore watts are cheapest relative to their throughput price,
/// i.e. where the second knob's contribution is largest and cleanest.
const FRONTIER_APPS: [&str; 3] = ["BQCD", "BT-MZ", "GROMACS (I)"];

/// Looks an application up in the Table 5 catalog.
fn app(name: &str) -> WorkloadTargets {
    table5_apps()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("workload '{name}' missing from the Table 5 catalog"))
}

/// The capped run kind: dual-knob `powercap` or the `powercap_pstate`
/// throttle baseline, at `cap_w` watts DC per node. The dual-knob runs
/// carry the app's fitted surface so the search warm-starts at the
/// predicted time-minimal point under the cap (the baseline ignores it
/// by construction).
fn capped(cap_w: f64, dual: bool, fitted: Option<FittedSurface>) -> RunKind {
    RunKind::Policy {
        name: if dual { "powercap" } else { "powercap_pstate" }.into(),
        settings: PolicySettings {
            cap_w: Some(cap_w),
            fitted,
            ..Default::default()
        },
    }
}

/// Fits the warm-start T/P surface from a compact characterisation grid —
/// what `earsim sweep` produces, on a reduced (pstate x uncore) grid so a
/// cold `earsim powercap` stays fast; cells land in the persistent result
/// cache either way.
fn warm_surface(t: &WorkloadTargets) -> Option<FittedSurface> {
    let spec = SweepSpec {
        cpu_pstates: vec![1, 2, 3, 4, 5, 6, 7],
        imc_ratios: vec![24, 22, 20, 18, 16, 14, 12],
    };
    sweep_app(t, &spec, &SweepConfig::default())
        .ok()
        .map(|s| s.surface)
}

/// The cap-sweep table: the dual-knob policy at 100 % → 50 % of each
/// application's nominal DC power.
pub fn cap_sweep() -> String {
    let mut rows = Vec::new();
    for name in FRONTIER_APPS {
        let t = app(name);
        let free = run_cell(&t, &RunKind::NoPolicy, "nominal", RUNS, SEED);
        let surface = warm_surface(&t);
        let cells: Vec<(String, RunKind)> = CAP_FRACTIONS
            .iter()
            .map(|frac| {
                (
                    format!("cap {:.0}%", frac * 100.0),
                    capped(free.dc_power_w * frac, true, surface.clone()),
                )
            })
            .collect();
        let run = run_matrix_default(&t, &cells, RUNS, SEED);
        for (i, frac) in CAP_FRACTIONS.iter().enumerate() {
            let cap_w = free.dc_power_w * frac;
            let Some(r) = run.get(i) else {
                rows.push(vec![name.to_string(), format!("{:.0}", frac * 100.0)]);
                continue;
            };
            let time_pct = (r.time_s / free.time_s - 1.0) * 100.0;
            let energy_pct = (r.dc_energy_j / free.dc_energy_j - 1.0) * 100.0;
            // Job-average power. With the PL1 backstop armed by the
            // engine, reachable caps land a few watts under (negative
            // `over W`); a positive residual appears only where the cap
            // sits below the node's physical floor — fully throttled,
            // both knobs at bottom — and records how far above an
            // infeasible cap physics kept the node.
            rows.push(vec![
                name.to_string(),
                format!("{:.0}", frac * 100.0),
                format!("{cap_w:.0}"),
                format!("{:.1}", r.dc_power_w),
                format!("{time_pct:+.1}"),
                format!("{energy_pct:+.1}"),
                format!("{:+.1}", r.dc_power_w - cap_w),
            ]);
        }
    }
    format_table(
        "Cap sweep: dual-knob powercap at 100% -> 50% of nominal DC power",
        &[
            "app", "cap %", "cap W", "avg W", "time %", "energy %", "over W",
        ],
        &rows,
    )
}

/// The pstate actuator's physical floor for this application: slowest
/// pstate with hardware UFS left in charge of the uncore (exactly the
/// baseline's configuration, fully throttled) — the least power a
/// pstate-only throttle can possibly deliver. Caps below this line are
/// unreachable for the baseline at *any* operating point; only the
/// explicit uncore clamp extends the frontier past it, because
/// stall-driven UFS never parks the uncore as deep as the policy's
/// floor ratio.
fn pstate_floor(t: &WorkloadTargets) -> f64 {
    let kind = RunKind::Fixed {
        cpu: ear_archsim::PstateTable::xeon_gold_6148().slowest(),
        imc_ratio: None,
    };
    run_cell(t, &kind, "pstate floor", RUNS, SEED).dc_power_w
}

/// The cap-vs-throughput frontier: dual-knob search vs the pstate-only
/// throttle at every binding cap. `advantage` is the pstate-only runtime
/// over the dual-knob runtime — above 1.00x the second knob bought
/// throughput at the same cap. Where the cap sits below the pstate
/// actuator's floor ([`pstate_floor`]) the baseline cannot meet it at
/// any operating point — its raw runtime is bought with watts the cap
/// forbids — so the cell reads `dual only`: that stretch of the
/// frontier exists solely because of the second knob.
pub fn frontier() -> String {
    let mut rows = Vec::new();
    for name in FRONTIER_APPS {
        let t = app(name);
        let free = run_cell(&t, &RunKind::NoPolicy, "nominal", RUNS, SEED);
        let floor_w = pstate_floor(&t);
        let surface = warm_surface(&t);
        for frac in FRONTIER_FRACTIONS {
            let cap_w = free.dc_power_w * frac;
            let cells = vec![
                ("dual".to_string(), capped(cap_w, true, surface.clone())),
                ("pstate-only".to_string(), capped(cap_w, false, None)),
            ];
            let run = run_matrix_default(&t, &cells, RUNS, SEED);
            let (Some(d), Some(p)) = (run.get(0), run.get(1)) else {
                rows.push(vec![name.to_string(), format!("{:.0}", frac * 100.0)]);
                continue;
            };
            let advantage = if cap_w < floor_w {
                "dual only".to_string()
            } else {
                format!("{:.2}x", p.time_s / d.time_s)
            };
            rows.push(vec![
                name.to_string(),
                format!("{:.0}", frac * 100.0),
                format!("{cap_w:.0}"),
                format!("{floor_w:.0}"),
                format!("{:.1}", d.time_s),
                format!("{:.1}", d.dc_power_w),
                format!("{:.1}", p.time_s),
                format!("{:.1}", p.dc_power_w),
                advantage,
            ]);
        }
    }
    let mut out = format_table(
        "Cap-vs-throughput frontier: dual-knob search vs pstate-only throttle",
        &[
            "app",
            "cap %",
            "cap W",
            "floor W",
            "dual s",
            "dual W",
            "pstate s",
            "pstate W",
            "advantage",
        ],
        &rows,
    );
    out.push_str(
        "(floor W: least power the pstate-only throttle can deliver — slowest pstate,\n \
         hardware UFS. 'dual only': cap below that floor, reachable only by clamping\n \
         the uncore deeper than stall-driven UFS parks it; the baseline's runtime\n \
         there is measured over the cap and disqualified.)\n",
    );
    out
}

/// The oversubscribed stress scenario: a 4-node fleet handed 700 W DC —
/// barely above its combined idle floor — against a burst of short jobs.
/// The stream must still drain (no job starves, no protocol errors) with
/// every node fully throttled. The per-node grants are *infeasible* —
/// below some applications' physical floor — so `over_W` records how far
/// above its grant physics kept each node; that, plus wait and run time,
/// is what an oversubscribed budget costs.
pub fn stress() -> String {
    let cfg = StreamConfig {
        fleet_nodes: 4,
        budget_w: 700.0,
        arrival_rate_per_hour: 240.0,
        max_jobs: 6,
        quick: true,
        ..Default::default()
    };
    match run_stream(cfg) {
        Ok(report) => report.render(),
        Err(e) => format!("stress scenario failed: {e}\n"),
    }
}

/// Everything `earsim powercap` prints: the cap sweep, the frontier and
/// the oversubscribed stress scenario.
pub fn run_powercap() -> String {
    let mut out = String::new();
    out.push_str(&cap_sweep());
    out.push('\n');
    out.push_str(&frontier());
    out.push('\n');
    out.push_str("== Oversubscribed budget: 4 nodes, 700 W DC ==\n");
    out.push_str(&stress());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_dominates_or_extends_at_every_cap() {
        // The frontier acceptance claim, cell by cell: wherever the cap is
        // reachable for the pstate-only throttle, the dual-knob search must
        // match or beat its runtime; below the pstate floor the baseline is
        // out of the game and dual must genuinely extend the frontier
        // (materially less power than the baseline's forbidden draw).
        for name in FRONTIER_APPS {
            let t = app(name);
            let free = run_cell(&t, &RunKind::NoPolicy, "nominal", RUNS, SEED);
            let floor_w = pstate_floor(&t);
            let surface = warm_surface(&t);
            for frac in FRONTIER_FRACTIONS {
                let cap_w = free.dc_power_w * frac;
                let d = run_cell(
                    &t,
                    &capped(cap_w, true, surface.clone()),
                    "dual",
                    RUNS,
                    SEED,
                );
                let p = run_cell(&t, &capped(cap_w, false, None), "pstate", RUNS, SEED);
                if cap_w >= floor_w {
                    assert!(
                        d.time_s <= p.time_s,
                        "{name} at {:.0}%: dual lost a reachable cap \
                         ({:.1} s vs {:.1} s at {cap_w:.0} W)",
                        frac * 100.0,
                        d.time_s,
                        p.time_s
                    );
                } else {
                    assert!(
                        d.dc_power_w < p.dc_power_w - 1.0,
                        "{name} at {:.0}%: cap {cap_w:.0} W is below the pstate \
                         floor {floor_w:.0} W but dual drew {:.1} W vs {:.1} W",
                        frac * 100.0,
                        d.dc_power_w,
                        p.dc_power_w
                    );
                }
            }
        }
    }

    #[test]
    fn stress_scenario_drains() {
        let out = stress();
        assert!(out.contains("jobs 6"), "not every job completed:\n{out}");
        assert!(out.contains("protocol_errors 0"), "{out}");
    }
}
