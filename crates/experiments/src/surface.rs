//! The §II motivation experiment in full: the 2-D energy surface over
//! (CPU frequency × uncore frequency) combinations.
//!
//! "We ran some applications with fixed core and uncore frequencies
//! combinations to see the impact of these parameters" — this module
//! sweeps both axes and prints the energy (relative to nominal CPU +
//! hardware UFS) per cell, making visible what the policies navigate:
//! the optimum's position depends on the application class, and the two
//! axes are *not* independent.

use crate::engine::{run_matrix_engine, EngineConfig};
use crate::harness::{format_table, RunKind, RunResult};
use ear_workloads::by_name;

/// The measured surface.
#[derive(Debug, Clone)]
pub struct Surface {
    /// Workload name.
    pub app: String,
    /// Swept CPU pstates.
    pub cpu_pstates: Vec<usize>,
    /// Swept uncore ratios.
    pub imc_ratios: Vec<u8>,
    /// Reference run (nominal CPU, hardware UFS).
    pub reference: RunResult,
    /// Energy relative to the reference, row-major `[cpu][imc]`.
    pub rel_energy: Vec<Vec<f64>>,
    /// Time relative to the reference, row-major `[cpu][imc]`.
    pub rel_time: Vec<Vec<f64>>,
}

impl Surface {
    /// The cell with minimum energy: (cpu pstate, imc ratio, rel energy).
    pub fn energy_optimum(&self) -> (usize, u8, f64) {
        let mut best = (self.cpu_pstates[0], self.imc_ratios[0], f64::INFINITY);
        for (i, &ps) in self.cpu_pstates.iter().enumerate() {
            for (j, &r) in self.imc_ratios.iter().enumerate() {
                if self.rel_energy[i][j] < best.2 {
                    best = (ps, r, self.rel_energy[i][j]);
                }
            }
        }
        best
    }

    /// The minimum-energy cell subject to a time-penalty constraint —
    /// what an oracle version of min_energy(+eUFS) would pick.
    pub fn constrained_optimum(&self, max_time_penalty: f64) -> Option<(usize, u8, f64)> {
        let mut best: Option<(usize, u8, f64)> = None;
        for (i, &ps) in self.cpu_pstates.iter().enumerate() {
            for (j, &r) in self.imc_ratios.iter().enumerate() {
                if self.rel_time[i][j] <= 1.0 + max_time_penalty
                    && best.is_none_or(|b| self.rel_energy[i][j] < b.2)
                {
                    best = Some((ps, r, self.rel_energy[i][j]));
                }
            }
        }
        best
    }
}

/// Measures the surface for a catalog workload (1 run per cell — the
/// surface has dozens of cells). The reference and the whole grid run as
/// one engine matrix, so the 21 cells spread across the worker pool;
/// legacy seeds keep every cell comparable against the same-seed
/// reference (and the numbers identical to the old serial loop).
pub fn measure_surface(app: &str, seed: u64) -> Surface {
    let t = by_name(app).unwrap_or_else(|| panic!("unknown workload {app}"));
    let cpu_pstates = vec![1usize, 3, 5, 7];
    let imc_ratios = vec![24u8, 21, 18, 15, 12];
    let mut cells = vec![(
        "ref".to_string(),
        RunKind::Fixed {
            cpu: 1,
            imc_ratio: None,
        },
    )];
    for &ps in &cpu_pstates {
        for &r in &imc_ratios {
            cells.push((
                format!("cpu{ps}/imc{r}"),
                RunKind::Fixed {
                    cpu: ps,
                    imc_ratio: Some(r),
                },
            ));
        }
    }
    let run = run_matrix_engine(&t, &cells, &EngineConfig::new(1, seed).legacy_seeds());
    let all = run.all().unwrap_or_else(|| {
        panic!(
            "surface for {app}: cells failed: {}",
            run.failed_labels().join(", ")
        )
    });
    let reference = all[0].clone();
    let mut rel_energy = Vec::new();
    let mut rel_time = Vec::new();
    for (i, _) in cpu_pstates.iter().enumerate() {
        let mut e_row = Vec::new();
        let mut t_row = Vec::new();
        for (j, _) in imc_ratios.iter().enumerate() {
            let cell = &all[1 + i * imc_ratios.len() + j];
            e_row.push(cell.dc_energy_j / reference.dc_energy_j);
            t_row.push(cell.time_s / reference.time_s);
        }
        rel_energy.push(e_row);
        rel_time.push(t_row);
    }
    Surface {
        app: app.to_string(),
        cpu_pstates,
        imc_ratios,
        reference,
        rel_energy,
        rel_time,
    }
}

/// Renders a surface as a table plus the optima.
pub fn render_surface(s: &Surface) -> String {
    let mut header = vec!["CPU \\ IMC".to_string()];
    header.extend(
        s.imc_ratios
            .iter()
            .map(|r| format!("{:.1} GHz", *r as f64 * 0.1)),
    );
    let header_refs: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let rows: Vec<Vec<String>> = s
        .cpu_pstates
        .iter()
        .enumerate()
        .map(|(i, &ps)| {
            let mut row = vec![format!(
                "{:.1} GHz",
                // Display the nominal table frequency of the pstate.
                crate::harness::catalog(&s.app)
                    .platform
                    .node_config()
                    .pstates
                    .ghz(ps)
            )];
            row.extend(s.rel_energy[i].iter().map(|e| format!("{e:.3}")));
            row
        })
        .collect();
    let mut out = format_table(
        &format!(
            "Energy surface for {} (relative to nominal CPU + HW UFS)",
            s.app
        ),
        &header_refs,
        &rows,
    );
    let (ps, r, e) = s.energy_optimum();
    out.push_str(&format!(
        "unconstrained optimum: CPU pstate {ps}, IMC {:.1} GHz, {:.1}% energy saving\n",
        r as f64 * 0.1,
        (1.0 - e) * 100.0
    ));
    if let Some((ps, r, e)) = s.constrained_optimum(0.05) {
        out.push_str(&format!(
            "5%-penalty optimum:    CPU pstate {ps}, IMC {:.1} GHz, {:.1}% energy saving\n",
            r as f64 * 0.1,
            (1.0 - e) * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_shape_for_cpu_bound() {
        // Use the smallest kernel for speed.
        let s = measure_surface("BT-MZ.C (OpenMP)", 501);
        assert_eq!(s.rel_energy.len(), 4);
        assert_eq!(s.rel_energy[0].len(), 5);
        // Top-left cell (nominal CPU, max IMC) ≈ the reference.
        assert!((s.rel_energy[0][0] - 1.0).abs() < 0.02);
        // For a CPU-bound kernel, lowering only the uncore saves energy…
        assert!(s.rel_energy[0][2] < 0.99, "{:?}", s.rel_energy[0]);
        // …while the slowest CPU row costs energy (time blows up).
        assert!(s.rel_energy[3][0] > s.rel_energy[0][2]);
        // The constrained optimum keeps the CPU at/near nominal.
        let (ps, r, _) = s.constrained_optimum(0.05).expect("exists");
        assert!(ps <= 2, "cpu pstate {ps}");
        assert!(r < 24, "imc {r}");
    }

    #[test]
    fn render_includes_optima() {
        let s = measure_surface("BT-MZ.C (OpenMP)", 502);
        let txt = render_surface(&s);
        assert!(txt.contains("unconstrained optimum"));
        assert!(txt.contains("5%-penalty optimum"));
    }
}
