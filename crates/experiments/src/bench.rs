//! Dependency-free micro-benchmarks of the simulation hot path.
//!
//! The criterion suites under `crates/bench` give statistically rigorous
//! numbers but need a registry download; this module is the zero-dependency
//! trajectory the CI smoke job runs everywhere. It times the structures the
//! per-event hot path touches — DynAIS sampling (incremental vs the
//! reference eager detector), window indexing, counter snapshots, quantum
//! fast-forward, the trace bus dark vs live — plus the Table I wall clock,
//! and renders the results as
//! both a human-readable table and the `BENCH_hotpath.json` artifact.
//!
//! Timing uses best-of-N `std::time::Instant` wall clock: the minimum over
//! repetitions is the least noisy estimator for short deterministic loops.

use ear_archsim::{Node, NodeConfig, PhaseDemand};
use ear_dynais::{DynAis, DynaisConfig, ReferenceDynAis, SampleWindow};
use std::hint::black_box;
use std::time::Instant;

/// JSON schema identifier emitted in (and required of) the artifact.
pub const SCHEMA: &str = "earsim-bench-hotpath/v1";

/// Bench names that must appear in a valid artifact.
pub const REQUIRED_BENCHES: [&str; 19] = [
    "dynais_inloop_per_sample",
    "dynais_aperiodic_per_sample",
    "window_push_recent",
    "snapshot_per_call",
    "run_phase_one_simsec",
    "uncore_domain_step",
    "trace_emit_per_event",
    "mpi_job_step_parallel",
    "mpi_break_even",
    "frame_codec_roundtrip",
    "netd_uds_rtt",
    "netd_async_rtt",
    "eargm_tree_fanout",
    "sweep_grid_wall",
    "fitted_policy_decide",
    "rapl_enforce_step",
    "powercap_search_settle",
    "table1_wall",
    "cache_warm_all_wall",
];

/// Rows exempt from the sub-1.0 speedup gate of [`verify_speedups`].
/// Currently empty: every row with a reference measures an old
/// implementation the shipped one must beat. (`netd_uds_rtt` lived here
/// while its reference was read as a transport floor; measured numbers
/// showed the UDS path beating the pipe outright, so the exemption was
/// retired.)
pub const SPEEDUP_ALLOWLIST: [&str; 0] = [];

/// One timed hot-path measurement.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Stable identifier (see [`REQUIRED_BENCHES`]).
    pub name: &'static str,
    /// Unit of both numbers (e.g. `ns/op`).
    pub unit: &'static str,
    /// Pre-optimisation implementation, if one is runnable in-process.
    pub reference: Option<f64>,
    /// The shipped implementation.
    pub optimized: f64,
}

impl BenchEntry {
    /// `reference / optimized`, when a reference exists.
    pub fn speedup(&self) -> Option<f64> {
        self.reference.map(|r| r / self.optimized)
    }
}

/// A full bench run: what `earsim bench` serialises.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// True when run with `--quick` (CI smoke: fewer iterations).
    pub quick: bool,
    /// The measurements, in [`REQUIRED_BENCHES`] order.
    pub benches: Vec<BenchEntry>,
}

/// Unwraps a bench-infrastructure `Result`. A failure here is a harness
/// bug, not a measurement, so panicking (with context) is the right
/// response — and keeps the non-test code clean under the
/// `clippy::unwrap_used` gate.
fn must<T, E: std::fmt::Debug>(r: Result<T, E>, what: &str) -> T {
    r.unwrap_or_else(|e| panic!("bench harness: {what} failed: {e:?}"))
}

/// Minimum wall time over `reps` calls of `f`, in seconds.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// In-loop steady state: a period-100 signal on the paper configuration
/// (window 250, 4 levels). The incremental detector does one window compare
/// per sample; the reference rescans every candidate period.
fn bench_dynais_inloop(quick: bool) -> BenchEntry {
    let n = if quick { 50_000 } else { 1_000_000 };
    let pattern: Vec<u64> = (0..100u64).map(|i| i * 7919 + 3).collect();
    let cfg = DynaisConfig::default();

    // Warm each detector past detection so the timed region is pure in-loop.
    let mut opt = DynAis::new(&cfg);
    for i in 0..1_000usize {
        black_box(opt.sample(pattern[i % pattern.len()]));
    }
    let t_opt = best_secs(3, || {
        for i in 0..n {
            black_box(opt.sample(pattern[i % pattern.len()]));
        }
    }) / n as f64;

    let n_ref = n / 10; // the eager detector is slow; keep runtime bounded
    let mut rf = ReferenceDynAis::new(&cfg);
    for i in 0..1_000usize {
        black_box(rf.sample(pattern[i % pattern.len()]));
    }
    let t_ref = best_secs(3, || {
        for i in 0..n_ref {
            black_box(rf.sample(pattern[i % pattern.len()]));
        }
    }) / n_ref as f64;

    BenchEntry {
        name: "dynais_inloop_per_sample",
        unit: "ns/op",
        reference: Some(t_ref * 1e9),
        optimized: t_opt * 1e9,
    }
}

/// Aperiodic worst case: no value ever repeats, every candidate resets.
fn bench_dynais_aperiodic(quick: bool) -> BenchEntry {
    let n = if quick { 20_000 } else { 200_000 };
    let cfg = DynaisConfig::default();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };

    let mut opt = DynAis::new(&cfg);
    let t_opt = best_secs(3, || {
        for _ in 0..n {
            black_box(opt.sample(next()));
        }
    }) / n as f64;

    let n_ref = n / 4;
    let mut rf = ReferenceDynAis::new(&cfg);
    let t_ref = best_secs(3, || {
        for _ in 0..n_ref {
            black_box(rf.sample(next()));
        }
    }) / n_ref as f64;

    BenchEntry {
        name: "dynais_aperiodic_per_sample",
        unit: "ns/op",
        reference: Some(t_ref * 1e9),
        optimized: t_opt * 1e9,
    }
}

/// Ring-buffer indexing: conditional-subtract wrap (the shipped
/// [`SampleWindow`] scheme, reproduced inline) vs `%` on every access (the
/// pre-optimisation indexing). Both are local structs so codegen conditions
/// are identical, and the capacity goes through `black_box`: in production
/// the window size comes from `DynaisConfig` at runtime, so the modulo is a
/// genuine division — constant-propagating 250 would let LLVM strength-
/// reduce it and understate the difference.
fn bench_window(quick: bool) -> BenchEntry {
    struct CondWindow {
        buf: Vec<u64>,
        head: usize,
        len: usize,
    }
    impl CondWindow {
        fn push(&mut self, v: u64) {
            self.buf[self.head] = v;
            self.head += 1;
            if self.head == self.buf.len() {
                self.head = 0;
            }
            if self.len < self.buf.len() {
                self.len += 1;
            }
        }
        fn recent(&self, back: usize) -> Option<u64> {
            if back >= self.len {
                return None;
            }
            let cap = self.buf.len();
            let mut idx = self.head + cap - 1 - back;
            if idx >= cap {
                idx -= cap;
            }
            Some(self.buf[idx])
        }
    }
    struct ModWindow {
        buf: Vec<u64>,
        head: usize,
        len: usize,
    }
    impl ModWindow {
        fn push(&mut self, v: u64) {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.buf.len();
            if self.len < self.buf.len() {
                self.len += 1;
            }
        }
        fn recent(&self, back: usize) -> Option<u64> {
            if back >= self.len {
                return None;
            }
            let cap = self.buf.len();
            Some(self.buf[(self.head + cap - 1 - back) % cap])
        }
    }

    let n = if quick { 200_000 } else { 4_000_000 };

    let mut w = CondWindow {
        buf: vec![0; black_box(250)],
        head: 0,
        len: 0,
    };
    let t_opt = best_secs(3, || {
        for i in 0..n as u64 {
            w.push(i);
            black_box(w.recent(99));
        }
    }) / n as f64;

    let mut m = ModWindow {
        buf: vec![0; black_box(250)],
        head: 0,
        len: 0,
    };
    let t_ref = best_secs(3, || {
        for i in 0..n as u64 {
            m.push(i);
            black_box(m.recent(99));
        }
    }) / n as f64;

    // Sanity: the inline copy matches the shipped type sample for sample.
    let mut shipped = SampleWindow::new(250);
    let mut copy = CondWindow {
        buf: vec![0; 250],
        head: 0,
        len: 0,
    };
    for i in 0..600u64 {
        shipped.push(i * 31 + 7);
        copy.push(i * 31 + 7);
        for back in [0usize, 1, 99, 249, 250] {
            assert_eq!(shipped.recent(back), copy.recent(back));
        }
    }

    BenchEntry {
        name: "window_push_recent",
        unit: "ns/op",
        reference: Some(t_ref * 1e9),
        optimized: t_opt * 1e9,
    }
}

/// Counter snapshot: the inline-array return vs the old heap-allocated
/// per-socket `Vec` shape (reproduced by collecting the sockets out).
fn bench_snapshot(quick: bool) -> BenchEntry {
    let n = if quick { 50_000 } else { 500_000 };
    let mut node = Node::new(NodeConfig::sd530_6148(), 1);
    node.run_phase(&PhaseDemand {
        instructions: 1e10,
        mem_bytes: 2e9,
        active_cores: 40,
        ..Default::default()
    });

    let t_opt = best_secs(3, || {
        for _ in 0..n {
            black_box(node.snapshot());
        }
    }) / n as f64;

    let t_ref = best_secs(3, || {
        for _ in 0..n {
            let snap = node.snapshot();
            let v: Vec<_> = snap.sockets.iter().copied().collect();
            black_box(v);
        }
    }) / n as f64;

    BenchEntry {
        name: "snapshot_per_call",
        unit: "ns/op",
        reference: Some(t_ref * 1e9),
        optimized: t_opt * 1e9,
    }
}

/// One simulated second of settled spin: quantum stepping walks a hundred
/// 10 ms intervals; fast-forward integrates the remainder in one step.
fn bench_fast_forward(quick: bool) -> BenchEntry {
    let n = if quick { 200 } else { 2_000 };
    let spin = PhaseDemand {
        active_cores: 40,
        wait_seconds: 1.0,
        wait_busy: true,
        ..Default::default()
    };

    let mut stepped = Node::new(NodeConfig::sd530_6148(), 1);
    let t_ref = best_secs(3, || {
        for _ in 0..n {
            black_box(stepped.run_phase(&spin));
        }
    }) / n as f64;

    let mut cfg = NodeConfig::sd530_6148();
    cfg.fast_forward = true;
    let mut ff = Node::new(cfg, 1);
    let t_opt = best_secs(3, || {
        for _ in 0..n {
            black_box(ff.run_phase(&spin));
        }
    }) / n as f64;

    BenchEntry {
        name: "run_phase_one_simsec",
        unit: "us/simsec",
        reference: Some(t_ref * 1e6),
        optimized: t_opt * 1e6,
    }
}

/// Per-die fan-out overhead of the node step. `reference` runs one
/// simulated second of memory-bound phases on a node whose sockets expose
/// all four TPMI uncore domains — per-domain firmware UFS, per-domain
/// ratio-limit checks, per-domain bandwidth and power integration every
/// interval; `optimized` runs the identical demand on the legacy 1-domain
/// configuration, where the domain vector collapses to the scalar code the
/// pre-refactor tree ran. The speedup column therefore reads as "what the
/// maximum domain fan-out costs per step": the gate asserts the single
/// knob path never became the slower one, i.e. the refactor's N=1 fast
/// path really is free.
fn bench_uncore_domain_step(quick: bool) -> BenchEntry {
    let n = if quick { 200 } else { 2_000 };
    // Memory-bound and traffic on every die (uniform split by default), so
    // the per-domain machinery is exercised — not skipped as idle.
    let demand = PhaseDemand {
        instructions: 2e9,
        mem_bytes: 4e9,
        active_cores: 40,
        ..Default::default()
    };

    let mut fanned = Node::new(
        NodeConfig::sd530_6148().with_uncore_domains(ear_archsim::MAX_UNCORE_DOMAINS),
        1,
    );
    let t_ref = best_secs(3, || {
        for _ in 0..n {
            black_box(fanned.run_phase(&demand));
        }
    }) / n as f64;

    let mut single = Node::new(NodeConfig::sd530_6148(), 1);
    let t_opt = best_secs(3, || {
        for _ in 0..n {
            black_box(single.run_phase(&demand));
        }
    }) / n as f64;

    BenchEntry {
        name: "uncore_domain_step",
        unit: "us/phase",
        reference: Some(t_ref * 1e6),
        optimized: t_opt * 1e6,
    }
}

/// Trace-bus overhead per emission site. `optimized` is the disabled bus
/// (what every run without `--trace` pays at each instrumented point: one
/// relaxed atomic load, the closure never built); `reference` is the
/// enabled bus doing real work (construct the record, push it into the
/// ring — steady state, so once full each push also retires the oldest
/// record). The speedup column therefore reads as "how much cheaper a
/// dark emission site is than a live one".
fn bench_trace_emit(quick: bool) -> BenchEntry {
    let n = if quick { 200_000 } else { 4_000_000 };
    let record = |i: u64| ear_trace::TraceRecord {
        time_s: i as f64 * 1e-3,
        node: i % 8,
        event: ear_trace::TraceEvent::ImcSearchStep {
            max_ratio: 16 + i % 8,
        },
    };

    ear_trace::reset();
    ear_trace::set_enabled(false);
    let t_off = best_secs(3, || {
        for i in 0..n as u64 {
            let i = black_box(i);
            ear_trace::emit_with(|| record(i));
        }
    }) / n as f64;

    ear_trace::set_enabled(true);
    let t_on = best_secs(3, || {
        for i in 0..n as u64 {
            let i = black_box(i);
            ear_trace::emit_with(|| record(i));
        }
    }) / n as f64;
    ear_trace::set_enabled(false);
    ear_trace::reset();

    BenchEntry {
        name: "trace_emit_per_event",
        unit: "ns/op",
        reference: Some(t_on * 1e9),
        optimized: t_off * 1e9,
    }
}

/// One 8-node bulk-synchronous job. `reference` is an inline reproduction
/// of the pre-fix node-parallel driver — a horizon slot per worker, a
/// leader reduction over the slots, and **two** `std::sync::Barrier`
/// (mutex/condvar) waits per iteration — at the thread count that driver
/// fanned out to (`available_parallelism` clamped to `[2, 8]`), i.e. the
/// exact implementation and conditions the committed 0.51× regression was
/// measured under. `optimized` is the shipped adaptive [`run_job`]:
/// break-even gated, autotuned, one `fetch_max` rendezvous per iteration.
/// On a single-core machine the adaptive driver measures its way back to
/// serial stepping and the speedup records precisely what the old driver
/// lost to barrier thrash; with real cores it records the fan-out win.
/// All three drivers (serial, old parallel, adaptive) are asserted to
/// leave bit-identical cluster state before anything is timed.
fn bench_job_step(quick: bool) -> BenchEntry {
    use ear_archsim::{Cluster, SimTime};
    use ear_mpisim::{permits, run_job, run_job_serial, JobSpec, MpiCall, MpiEvent, NullRuntime};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    let iters = if quick { 30 } else { 150 };
    let job = JobSpec::homogeneous(
        "bench",
        8,
        40,
        vec![
            MpiEvent::new(MpiCall::Isend, 65536, 1),
            MpiEvent::new(MpiCall::Wait, 0, 0),
            MpiEvent::collective(MpiCall::Allreduce, 512),
        ],
        PhaseDemand {
            instructions: 4e9,
            mem_bytes: 2e9,
            active_cores: 40,
            wait_seconds: 0.002,
            ..Default::default()
        },
        iters,
    );
    let mk_cluster = || Cluster::new(NodeConfig::sd530_6148(), 8, 4242);

    // The pre-fix driver, reproduced inline. With `NullRuntime` the per
    // node step is exactly `run_phase`; everything else — the slot array,
    // the leader reduce, the double barrier — is the old synchronisation
    // structure this PR replaced, kept here as the honest reference.
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 8));
    let old_drive = |cluster: &mut Cluster| {
        let nodes = cluster.nodes_mut_slice();
        let chunk = nodes.len().div_ceil(threads);
        let chunks: Vec<&mut [ear_archsim::Node]> = nodes.chunks_mut(chunk).collect();
        let workers = chunks.len();
        let slots: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let horizon = AtomicU64::new(0);
        let barrier = Barrier::new(workers);
        std::thread::scope(|scope| {
            for (w, nodes) in chunks.into_iter().enumerate() {
                let (slots, horizon, barrier, job) = (&slots, &horizon, &barrier, &job);
                scope.spawn(move || {
                    for iter in &job.iterations {
                        for node in nodes.iter_mut() {
                            node.run_phase(&iter.demand);
                        }
                        let local = nodes.iter().map(|n| n.now().as_micros()).max().unwrap_or(0);
                        slots[w].store(local, Ordering::Release);
                        // Barrier 1: every local horizon is published.
                        if barrier.wait().is_leader() {
                            let max = slots
                                .iter()
                                .map(|s| s.load(Ordering::Acquire))
                                .max()
                                .unwrap_or(0);
                            horizon.store(max, Ordering::Release);
                        }
                        // Barrier 2: the reduced horizon is published.
                        barrier.wait();
                        let t = SimTime(horizon.load(Ordering::Acquire));
                        for node in nodes.iter_mut() {
                            let lag = t - node.now();
                            if lag > 0.0 {
                                node.run_idle(lag);
                            }
                        }
                    }
                });
            }
        });
    };

    // End-of-job cluster state, bit for bit: simulated clock and exact DC
    // energy of every node.
    let fingerprint = |c: &Cluster| -> Vec<(u64, u64)> {
        (0..c.len())
            .map(|i| {
                let n = c.node(i);
                (
                    n.now().as_micros(),
                    n.snapshot().dc_energy_exact_j.to_bits(),
                )
            })
            .collect()
    };

    // Sanity first: all three drivers must leave identical cluster state,
    // otherwise the timing compares different computations.
    let (serial_print, serial_report) = {
        let mut c = mk_cluster();
        let mut r = vec![NullRuntime; 8];
        let report = run_job_serial(&mut c, &job, &mut r);
        (fingerprint(&c), report)
    };
    let old_print = {
        let mut c = mk_cluster();
        old_drive(&mut c);
        fingerprint(&c)
    };
    assert_eq!(
        serial_print, old_print,
        "old double-barrier driver diverged from the serial driver"
    );
    permits::set_spare_threads(threads - 1);
    let (adaptive_print, adaptive_report) = {
        let mut c = mk_cluster();
        let mut r = vec![NullRuntime; 8];
        let report = run_job(&mut c, &job, &mut r);
        (fingerprint(&c), report)
    };
    assert_eq!(
        (serial_print, serial_report),
        (adaptive_print, adaptive_report),
        "adaptive driver diverged from the serial driver"
    );

    permits::set_spare_threads(0);
    let t_ref = best_secs(3, || {
        let mut c = mk_cluster();
        old_drive(&mut c);
    });
    let spare = threads - 1;
    let t_opt = best_secs(3, || {
        permits::set_spare_threads(spare);
        let mut c = mk_cluster();
        let mut r = vec![NullRuntime; 8];
        black_box(run_job(&mut c, &job, &mut r));
    });
    permits::set_spare_threads(0);

    BenchEntry {
        name: "mpi_job_step_parallel",
        unit: "ms/job",
        reference: Some(t_ref * 1e3),
        optimized: t_opt * 1e3,
    }
}

/// The measured node count below which the adaptive MPI driver refuses to
/// fan out on this machine (see `ear_mpisim::breakeven`). Recalibrated
/// fresh — never read from the persisted file — so the artifact records
/// this run's machine. No reference: the row is a calibration readout, not
/// an old-vs-new race; its value is that regressions in the parallel
/// driver show up as the break-even point drifting upwards.
fn bench_break_even() -> BenchEntry {
    let cal = ear_mpisim::breakeven::calibrate_now();
    BenchEntry {
        name: "mpi_break_even",
        unit: "nodes",
        reference: None,
        optimized: cal.break_even_nodes as f64,
    }
}

/// Wire-codec round trip: encode one signature-report frame and decode it
/// back. This is the marshalling cost every networked daemon request pays
/// twice (once per direction); no reference — the codec is new in this
/// revision.
fn bench_frame_codec(quick: bool) -> BenchEntry {
    use ear_netd::codec::{decode_frame, encode_frame};

    let n = if quick { 20_000 } else { 500_000 };
    let msg = ear_netd::loadgen::nth_request(3, 2); // a report_signature frame
    let t = best_secs(3, || {
        for _ in 0..n {
            let frame = must(encode_frame(black_box(&msg)), "encode_frame");
            black_box(must(decode_frame(&frame), "decode_frame"));
        }
    }) / n as f64;
    BenchEntry {
        name: "frame_codec_roundtrip",
        unit: "ns/op",
        reference: None,
        optimized: t * 1e9,
    }
}

/// Ping round-trip time through the full daemon server loop over a Unix
/// socket. `reference` is the same exchange over the in-memory pipe — the
/// transport floor with zero kernel in the path — so the "speedup" column
/// reads as how much of the UDS RTT is kernel socket cost.
fn bench_netd_rtt(quick: bool) -> BenchEntry {
    use ear_netd::{client, conn, server};
    use std::time::Duration;

    // Now that this row is speedup-gated (the allowlist exemption is
    // retired), the quick window must be long enough that one lucky
    // scheduling streak cannot dominate the best-of-N minimum: 300 pings
    // (~1.3 ms) flaked, 1500 is stable.
    let n = if quick { 1_500 } else { 3_000 };
    let cfg = || server::ServerConfig {
        read_timeout: Duration::from_secs(10),
        ..Default::default()
    };
    let client_cfg = client::ClientConfig {
        request_timeout: Duration::from_secs(10),
        ..Default::default()
    };

    // Transport floor: the in-memory pipe.
    let (listener, endpoint) = conn::NetListener::in_memory();
    let handle = server::spawn(listener, cfg());
    let mut c = client::NetClient::new(endpoint, client_cfg.clone());
    must(c.ping(0), "pipe warmup ping"); // connection + first-exchange warmup
    let t_pipe = best_secs(3, || {
        for i in 0..n {
            must(c.ping(i as u64), "pipe ping");
        }
    }) / n as f64;
    must(c.shutdown(), "pipe shutdown");
    if handle.join().is_err() {
        panic!("bench harness: pipe server thread panicked");
    }

    // The measured path: a real Unix-domain socket.
    let path = std::env::temp_dir().join(format!("earsim-bench-rtt-{}.sock", std::process::id()));
    let spec = path.to_string_lossy().to_string();
    let listener = must(conn::NetListener::bind(&spec), "bind");
    let handle = server::spawn(listener, cfg());
    let mut c = client::NetClient::new(conn::Endpoint::parse(&spec), client_cfg);
    must(c.ping(0), "uds warmup ping");
    let t_uds = best_secs(3, || {
        for i in 0..n {
            must(c.ping(i as u64), "uds ping");
        }
    }) / n as f64;
    must(c.shutdown(), "uds shutdown");
    if handle.join().is_err() {
        panic!("bench harness: uds server thread panicked");
    }

    BenchEntry {
        name: "netd_uds_rtt",
        unit: "us/rtt",
        reference: Some(t_pipe * 1e6),
        optimized: t_uds * 1e6,
    }
}

/// Concurrent service time over a Unix socket: 32 closed-loop loadgen
/// clients hammer the daemon and the row reports mean microseconds per
/// served request (aggregate: client-seconds divided by requests).
/// `reference` is the PR-5 blocking thread-per-connection server, whose
/// shared-service mutex serialises every request; `optimized` is the
/// nonblocking readiness loop, which owns the service outright and batches
/// reply flushes. Same codec, same socket, same client mix.
fn bench_netd_async_rtt(quick: bool) -> BenchEntry {
    use ear_netd::{conn, loadgen, server};
    use std::time::Duration;

    let clients = 32;
    let lg_cfg = loadgen::LoadgenConfig {
        clients,
        duration: if quick {
            Duration::from_millis(300)
        } else {
            Duration::from_secs(2)
        },
        shutdown_after: true,
        ..Default::default()
    };
    let srv_cfg = || server::ServerConfig {
        workers: clients + 8,
        read_timeout: Duration::from_secs(10),
        ..Default::default()
    };
    let drive =
        |tag: &str, spawn: fn(conn::NetListener, server::ServerConfig) -> server::ServerHandle| {
            let path = std::env::temp_dir().join(format!(
                "earsim-bench-async-{tag}-{}.sock",
                std::process::id()
            ));
            let spec = path.to_string_lossy().to_string();
            let listener = must(conn::NetListener::bind(&spec), "bind");
            let handle = spawn(listener, srv_cfg());
            let report = must(
                loadgen::run(&conn::Endpoint::parse(&spec), &lg_cfg),
                "loadgen",
            );
            if handle.join().is_err() {
                panic!("bench harness: {tag} server thread panicked");
            }
            let _ = std::fs::remove_file(&path);
            assert_eq!(report.errors, 0, "{tag} loadgen saw errors");
            // Mean service time seen by one client: its dial-excluded active
            // seconds divided by its share of the requests.
            clients as f64 * report.active_seconds / report.requests as f64
        };

    let t_blocking = drive("blocking", server::spawn);
    let t_async = drive("async", server::spawn_async);

    BenchEntry {
        name: "netd_async_rtt",
        unit: "us/req",
        reference: Some(t_blocking * 1e6),
        optimized: t_async * 1e6,
    }
}

/// One EARGM management round over 64 node daemons: poll every power
/// report, redistribute the budget, push and verify every cap.
/// `reference` is the flat PR-5 [`EargmPoller`] — one blocking client per
/// daemon, each served by its own thread-per-connection server over the
/// in-memory pipe. `optimized` is one aggregation-tree round of the
/// cluster scenario: the same protocol frames, folded level by level
/// through in-process daemons with no threads or pipes in the path.
fn bench_eargm_tree_fanout(quick: bool) -> BenchEntry {
    use ear_netd::{client, cluster, conn, poller, server};
    use std::time::Duration;

    let nodes = 64;
    let budget_w = 200.0 * nodes as f64;
    let rounds = if quick { 3 } else { 20 };
    let reps = if quick { 2 } else { 3 };

    // Flat reference: 64 blocking daemons behind in-memory pipes.
    let mut endpoints = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..nodes {
        let (listener, endpoint) = conn::NetListener::in_memory();
        handles.push(server::spawn(
            listener,
            server::ServerConfig {
                read_timeout: Duration::from_secs(10),
                ..Default::default()
            },
        ));
        endpoints.push(endpoint);
    }
    let client_cfg = client::ClientConfig {
        request_timeout: Duration::from_secs(10),
        ..Default::default()
    };
    let mut flat = poller::EargmPoller::new(endpoints.clone(), &client_cfg, budget_w);
    must(flat.poll_once(), "flat warmup round");
    let t_flat = best_secs(reps, || {
        for _ in 0..rounds {
            must(flat.poll_once(), "flat poll round");
        }
    }) / rounds as f64;
    drop(flat);
    for ep in &endpoints {
        let mut c = client::NetClient::new(ep.clone(), client_cfg.clone());
        must(c.shutdown(), "daemon shutdown");
    }
    for h in handles {
        if h.join().is_err() {
            panic!("bench harness: flat daemon thread panicked");
        }
    }

    // Tree-folded path: one cluster round over the same daemon count.
    let mut sim = must(
        cluster::SimCluster::new(cluster::ClusterConfig {
            nodes,
            budget_w: Some(budget_w),
            ..Default::default()
        }),
        "cluster build",
    );
    must(sim.round(), "tree warmup round");
    let t_tree = best_secs(reps, || {
        for _ in 0..rounds {
            must(sim.round(), "tree round");
        }
    }) / rounds as f64;

    BenchEntry {
        name: "eargm_tree_fanout",
        unit: "us/round",
        reference: Some(t_flat * 1e6),
        optimized: t_tree * 1e6,
    }
}

/// The sweep engine's structured grid path vs the naive per-cell loop it
/// replaced, on one small (pstate × uncore) grid. `reference` runs every
/// cell as its own engine invocation — the job re-synthesised per cell,
/// the grid never spreading across the pool; `optimized` is the shipped
/// [`crate::sweep::sweep_app`] fast path: one matrix over the whole grid,
/// one uncore row claimed per queue operation, cells scheduled in
/// result-cache key order. Both paths are first asserted to render
/// bit-identical artifacts (legacy seeds), then raced on the same grid.
/// The persistent result cache is off during `bench`, so both sides
/// simulate every cell: the measured gap is scheduling and setup, not
/// cache hits.
fn bench_sweep_grid_wall(quick: bool) -> BenchEntry {
    use crate::sweep::{render_artifact, sweep_app, SweepConfig};
    use ear_workloads::sweep::SweepSpec;

    let targets = ear_workloads::by_name("BT-MZ.C (OpenMP)")
        .unwrap_or_else(|| panic!("bench harness: catalog lookup failed"));
    let spec = SweepSpec {
        cpu_pstates: vec![1, 4, 7],
        imc_ratios: vec![24, 20, 16, 12],
    };
    let structured_cfg = SweepConfig::default();
    let naive_cfg = SweepConfig {
        naive: true,
        ..SweepConfig::default()
    };

    // The race runs a shortened variant of the workload: same per-iteration
    // physics (time and iteration count scaled together), fewer iterations.
    // The row measures the orchestration cost the structured path amortises
    // — per-invocation job synthesis, pool setup, bookkeeping — so the
    // per-cell simulation body is kept short relative to it, as `--quick`
    // modes do throughout this module.
    let mut short = targets.clone();
    short.iterations = 8;
    short.time_s = targets.time_s * short.iterations as f64 / targets.iterations as f64;

    // Warm the calibration cache and check the determinism contract before
    // anything is timed: both paths must produce byte-identical artifacts
    // on the grid about to be raced.
    let a = must(
        sweep_app(&short, &spec, &structured_cfg),
        "structured sweep",
    );
    let b = must(sweep_app(&short, &spec, &naive_cfg), "naive sweep");
    assert_eq!(
        render_artifact(&a),
        render_artifact(&b),
        "structured sweep diverged from the naive per-cell loop"
    );

    // Interleave the repetitions — naive then structured, back to back —
    // so ambient machine-speed drift (frequency scaling, a noisy
    // neighbour) hits both sides alike, and take each side's minimum.
    let reps = if quick { 6 } else { 10 };
    let (mut t_ref, mut t_opt) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(must(sweep_app(&short, &spec, &naive_cfg), "naive sweep"));
        t_ref = t_ref.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        black_box(must(
            sweep_app(&short, &spec, &structured_cfg),
            "structured sweep",
        ));
        t_opt = t_opt.min(t0.elapsed().as_secs_f64());
    }

    BenchEntry {
        name: "sweep_grid_wall",
        unit: "ms/grid",
        reference: Some(t_ref * 1e3),
        optimized: t_opt * 1e3,
    }
}

/// Policy decision latency, closed loop: how long until a policy has its
/// operating point, counting the signature windows it consumes to get
/// there. Each decision drives a real archsim node — run one signature
/// window, snapshot the counters, build the [`Signature`] from the delta,
/// invoke `node_policy`, apply the returned frequencies to the node —
/// until the policy returns `Ready`. `reference` is the paper's iterative
/// `min_energy_eufs`: the CPU stage, a settling window, then one
/// `IMC_FREQ_SEL` step per window until a penalty trips. `optimized` is
/// the one-shot `fitted` policy evaluating its pre-fitted T/P surfaces:
/// one window to observe, one `node_policy` call, done. The speedup
/// column therefore reads as the settle windows the surface evaluation
/// eliminates — the measured form of the sweep's "one evaluation instead
/// of an iterative settle sequence" claim.
fn bench_fitted_policy_decide(quick: bool) -> BenchEntry {
    use ear_archsim::{Node, NodeConfig, PstateTable};
    use ear_core::policy::{PolicyCtx, PolicyState, PowerPolicy};
    use ear_core::Signature;
    use ear_core::{Avx512Model, Fitted, FittedSurface, MinEnergyEufs, PolicySettings, Poly2};

    let n = if quick { 40 } else { 200 };
    let pstates = PstateTable::xeon_gold_6148();
    let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
    let plain = PolicySettings::default();
    // A memory-bound surface over the deployed window (what `earsim
    // sweep` fits for such workloads): time curves along both axes, so
    // the one-shot selection is a genuine 2-D trade-off.
    let surface = FittedSurface {
        time: Poly2 {
            coeffs: [90.0, -2.0, -10.0, 0.0, 2.0, 0.0],
        },
        power: Poly2 {
            coeffs: [80.0, 70.0, 30.0, 0.0, 0.0, 0.0],
        },
        f_range_ghz: (1.0, 2.4),
        u_range_ghz: (1.2, 2.4),
    };
    let with_surface = PolicySettings {
        fitted: Some(surface),
        ..Default::default()
    };
    fn ctx<'a>(
        pstates: &'a PstateTable,
        model: &'a Avx512Model,
        settings: &'a PolicySettings,
    ) -> PolicyCtx<'a> {
        PolicyCtx {
            pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model,
            settings,
        }
    }
    // Memory traffic keeps firmware UFS near the top of the window, so
    // the HW-guided iterative search has a real descent ahead of it.
    let window = ear_archsim::PhaseDemand {
        instructions: 4e8,
        mem_bytes: 2e9,
        active_cores: 40,
        ..Default::default()
    };

    // One decision: fresh policy, node re-armed at the defaults, then
    // window → signature → node_policy → apply, until Ready.
    fn decide(
        node: &mut Node,
        policy: &mut dyn PowerPolicy,
        ctx: &PolicyCtx<'_>,
        window: &ear_archsim::PhaseDemand,
    ) -> u32 {
        node.set_cpu_pstate(1);
        must(node.set_uncore_limits(12, 24), "re-arm uncore limits");
        let mut windows = 0u32;
        let mut prev = node.snapshot();
        loop {
            node.run_phase(window);
            let snap = node.snapshot();
            let sig = Signature::from_delta(&snap.delta(&prev), 1);
            prev = snap;
            windows += 1;
            let (freqs, state) = policy.node_policy(&sig, ctx);
            node.set_cpu_pstate(freqs.cpu);
            must(
                node.set_uncore_limits(freqs.imc_min_ratio, freqs.imc_max_ratio),
                "apply uncore limits",
            );
            if state == PolicyState::Ready {
                return windows;
            }
            assert!(windows < 50, "iterative settle sequence did not converge");
        }
    }

    let iter_ctx = ctx(&pstates, &model, &plain);
    let fit_ctx = ctx(&pstates, &model, &with_surface);
    let mut node = Node::new(NodeConfig::sd530_6148(), 7);

    // Warm-up + sanity: the iterative machine must actually iterate and
    // the fitted policy must decide in its single window.
    let w_ref = decide(&mut node, &mut MinEnergyEufs::default(), &iter_ctx, &window);
    let w_fit = decide(&mut node, &mut Fitted::default(), &fit_ctx, &window);
    assert!(w_ref > 1, "iterative policy converged without settling");
    assert_eq!(w_fit, 1, "fitted policy is one-shot");

    let t_ref = best_secs(3, || {
        for _ in 0..n {
            let mut p = MinEnergyEufs::default();
            black_box(decide(&mut node, &mut p, &iter_ctx, &window));
        }
    }) / n as f64;
    let t_opt = best_secs(3, || {
        for _ in 0..n {
            let mut p = Fitted::default();
            black_box(decide(&mut node, &mut p, &fit_ctx, &window));
        }
    }) / n as f64;

    BenchEntry {
        name: "fitted_policy_decide",
        unit: "us/decision",
        reference: Some(t_ref * 1e6),
        optimized: t_opt * 1e6,
    }
}

/// Per-quantum cost of the RAPL PL1 enforcement step. `optimized`
/// reproduces the shipped limiter shape (`ear_archsim::Node`): one
/// exponential running-average update — O(1) per quantum regardless of
/// the programmed averaging window — plus the threshold/hysteresis
/// compare. `reference` is the naive sliding-window limiter it displaced:
/// retain every sample inside the window in a ring and re-sum it each
/// quantum, O(window/quantum). Both are local structs so codegen
/// conditions are identical, and the window length goes through
/// `black_box`: in production it is decoded from `MSR_PKG_POWER_LIMIT` at
/// runtime, so nothing about it is a compile-time constant. Before
/// anything is timed the real archsim path is checked end to end: a
/// binding PL1 programmed through the MSR write path must record
/// throttle events on a live node.
fn bench_rapl_enforce_step(quick: bool) -> BenchEntry {
    // Sanity: the shipped limiter engages through the real write path.
    {
        let before = ear_archsim::stats::rapl_throttle_events();
        let mut node = Node::new(NodeConfig::sd530_6148(), 11);
        // Sized to run multiple averaging windows (~1.7 s at nominal), so
        // the window estimate genuinely climbs through the 100 W limit —
        // well below this phase's ~119 W per-socket draw.
        must(node.set_rapl_limit_w(100.0, 0.5), "program PL1");
        let demand = PhaseDemand {
            instructions: 4e11,
            mem_bytes: 40e9,
            cpi_core: 0.38,
            uncore_lat_cycles: 4.0,
            mem_overlap: 0.6,
            active_cores: 40,
            ..Default::default()
        };
        node.run_phase(&demand);
        assert!(
            ear_archsim::stats::rapl_throttle_events() > before,
            "binding PL1 recorded no throttle steps"
        );
    }

    // Both limiters see the same square-wave power trace straddling the
    // limit, so each throttles on the high plateau and relaxes on the low.
    const LIFT: f64 = 0.97;
    const MAX_THROTTLE: u32 = 10;
    let limit_w = 150.0;
    let quantum_s: f64 = black_box(0.01);
    let window_s: f64 = black_box(1.0);
    let samples: Vec<f64> = (0..1024)
        .map(|i| {
            let plateau = if (i / 64) % 2 == 0 { 190.0 } else { 110.0 };
            plateau + (i % 7) as f64
        })
        .collect();

    struct Ewma {
        avg: f64,
        alpha: f64,
        limit: f64,
        throttle: u32,
    }
    impl Ewma {
        fn step(&mut self, p: f64) -> u32 {
            self.avg += self.alpha * (p - self.avg);
            if self.avg > self.limit {
                self.throttle = (self.throttle + 1).min(MAX_THROTTLE);
            } else if self.avg < self.limit * LIFT && self.throttle > 0 {
                self.throttle -= 1;
            }
            self.throttle
        }
    }
    struct Sliding {
        buf: std::collections::VecDeque<f64>,
        cap: usize,
        limit: f64,
        throttle: u32,
    }
    impl Sliding {
        fn step(&mut self, p: f64) -> u32 {
            if self.buf.len() == self.cap {
                self.buf.pop_front();
            }
            self.buf.push_back(p);
            let avg = self.buf.iter().sum::<f64>() / self.buf.len() as f64;
            if avg > self.limit {
                self.throttle = (self.throttle + 1).min(MAX_THROTTLE);
            } else if avg < self.limit * LIFT && self.throttle > 0 {
                self.throttle -= 1;
            }
            self.throttle
        }
    }

    let cap = (window_s / quantum_s) as usize;
    let mut sld = Sliding {
        buf: std::collections::VecDeque::with_capacity(cap),
        cap,
        limit: limit_w,
        throttle: 0,
    };
    let mut ew = Ewma {
        avg: 0.0,
        alpha: (quantum_s / window_s).min(1.0),
        limit: limit_w,
        throttle: 0,
    };
    // Warm-up over the trace; both limiters must actually engage on it.
    let mut engaged = (0u32, 0u32);
    for s in &samples {
        engaged.0 = engaged.0.max(sld.step(*s));
        engaged.1 = engaged.1.max(ew.step(*s));
    }
    assert!(
        engaged.0 > 0 && engaged.1 > 0,
        "trace never tripped a limiter: {engaged:?}"
    );

    let n = if quick { 100_000 } else { 2_000_000 };
    let n_ref = n / 10; // O(window) per step; keep runtime bounded
    let t_ref = best_secs(3, || {
        for i in 0..n_ref {
            black_box(sld.step(black_box(samples[i & 1023])));
        }
    }) / n_ref as f64;
    let t_opt = best_secs(3, || {
        for i in 0..n {
            black_box(ew.step(black_box(samples[i & 1023])));
        }
    }) / n as f64;

    BenchEntry {
        name: "rapl_enforce_step",
        unit: "ns/quantum",
        reference: Some(t_ref * 1e9),
        optimized: t_opt * 1e9,
    }
}

/// Settle cost of the dual-knob powercap search, closed loop on a live
/// node: signature windows from "cap imposed" to the policy reporting
/// `Ready` at the cap, each decision driven by a real measured window.
/// `reference` is the cold search — no fitted surface, so the warm point
/// is the reference operating point and the measured hill-climb walks the
/// entire descent one evaluation per window. `optimized` warm-starts from
/// a surface calibrated in-bench from three probe windows (the `earsim
/// sweep` product, minus the ceremony) and lets the same hill-climb
/// refine the landing. Windows, not host microseconds, are the honest
/// unit: on a deployment each one is a full 10 s signature period spent
/// off the optimal point, while host wall time per settle skews toward
/// however many simulated quanta the throttled windows happen to cover.
/// Noise is off, so both counts are exactly reproducible.
fn bench_powercap_search_settle(quick: bool) -> BenchEntry {
    use ear_archsim::PstateTable;
    use ear_core::policy::{PolicyCtx, PolicyState, PowerPolicy, Powercap};
    use ear_core::{Avx512Model, FittedSurface, PolicySettings, Poly2, Signature};

    let pstates = PstateTable::xeon_gold_6148();
    let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
    let slowest = pstates.slowest();
    // Multi-second windows: the INM DC counter publishes once per second,
    // so sub-second windows read 0 W (the very reason the paper measures
    // over >= 10 s). Heavy memory traffic gives the uncore knob real watts
    // to shed, so the dual-knob search has a genuine 2-D descent.
    let window = PhaseDemand {
        instructions: 8e11,
        mem_bytes: 160e9,
        cpi_core: 0.38,
        uncore_lat_cycles: 4.0,
        mem_overlap: 0.6,
        active_cores: 40,
        ..Default::default()
    };

    fn ctx<'a>(
        pstates: &'a PstateTable,
        model: &'a Avx512Model,
        settings: &'a PolicySettings,
    ) -> PolicyCtx<'a> {
        PolicyCtx {
            pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model,
            settings,
        }
    }

    // One measured signature window at a pinned operating point.
    fn probe(node: &mut Node, window: &PhaseDemand, ps: ear_archsim::Pstate, ratio: u8) -> f64 {
        node.set_cpu_pstate(ps);
        must(node.set_uncore_limits(ratio, ratio), "pin probe uncore");
        let prev = node.snapshot();
        node.run_phase(window);
        Signature::from_delta(&node.snapshot().delta(&prev), 1).dc_power_w
    }

    // One full settle sequence: re-arm the node at the reference point,
    // then window → signature → node_policy → apply, until Ready.
    fn settle(
        node: &mut Node,
        policy: &mut Powercap,
        ctx: &PolicyCtx<'_>,
        window: &PhaseDemand,
    ) -> u32 {
        node.set_cpu_pstate(1);
        must(node.set_uncore_limits(12, 24), "re-arm uncore limits");
        let mut windows = 0u32;
        let mut prev = node.snapshot();
        loop {
            node.run_phase(window);
            let snap = node.snapshot();
            let sig = Signature::from_delta(&snap.delta(&prev), 1);
            prev = snap;
            windows += 1;
            let (freqs, state) = policy.node_policy(&sig, ctx);
            node.set_cpu_pstate(freqs.cpu);
            must(
                node.set_uncore_limits(freqs.imc_min_ratio, freqs.imc_max_ratio),
                "apply uncore limits",
            );
            if state == PolicyState::Ready {
                return windows;
            }
            assert!(windows < 60, "powercap search did not settle");
        }
    }

    // Noise off: probes, cap and settle trajectories are then exactly
    // reproducible, so the sanity assertions below hold on every machine.
    let mut cfg = NodeConfig::sd530_6148();
    cfg.noise_sigma = 0.0;
    let mut node = Node::new(cfg, 7);

    // Three probe windows calibrate a linear power surface — the same
    // measurements `earsim sweep` would take, collapsed to the corners —
    // and fix a deep but achievable cap between floor and reference draw.
    let (f_hi, f_mid) = (pstates.ghz(1), pstates.ghz(4));
    let p_ref = probe(&mut node, &window, 1, 24);
    let p_mid_f = probe(&mut node, &window, 4, 24);
    let p_low_u = probe(&mut node, &window, 1, 16);
    let p_floor = probe(&mut node, &window, slowest, 12);
    assert!(
        p_ref > p_floor + 1.0,
        "no dynamic range between reference ({p_ref:.1} W) and floor ({p_floor:.1} W)"
    );
    let cap_w = p_floor + 0.3 * (p_ref - p_floor);
    let b = (p_ref - p_mid_f) / (f_hi - f_mid);
    let c = (p_ref - p_low_u) / (2.4 - 1.6);
    let a = p_ref - b * f_hi - c * 2.4;
    let surface = FittedSurface {
        // Time falls with core frequency and (weakly) with uncore: enough
        // structure for the warm start's time-minimisation to order
        // admissible points sensibly.
        time: Poly2 {
            coeffs: [100.0, -20.0, -1.0, 0.0, 0.0, 0.0],
        },
        power: Poly2 {
            coeffs: [a, b, c, 0.0, 0.0, 0.0],
        },
        f_range_ghz: (pstates.ghz(slowest), f_hi),
        u_range_ghz: (1.2, 2.4),
    };

    let cold = PolicySettings {
        cap_w: Some(cap_w),
        ..Default::default()
    };
    let warm = PolicySettings {
        cap_w: Some(cap_w),
        fitted: Some(surface),
        ..Default::default()
    };
    let cold_ctx = ctx(&pstates, &model, &cold);
    let warm_ctx = ctx(&pstates, &model, &warm);

    let w_cold = settle(&mut node, &mut Powercap::default(), &cold_ctx, &window);
    let w_warm = settle(&mut node, &mut Powercap::default(), &warm_ctx, &window);
    assert!(
        w_warm < w_cold,
        "warm start saved no windows (cold {w_cold}, warm {w_warm})"
    );
    // Deterministic counts: nothing to average, quick and full agree.
    let _ = quick;

    BenchEntry {
        name: "powercap_search_settle",
        unit: "windows/settle",
        reference: Some(f64::from(w_cold)),
        optimized: f64::from(w_warm),
    }
}

/// Cold vs warm persistent result cache over the paper evaluation (the
/// whole `run_all` output; `--quick` trims it to Table I). `reference` is
/// the cold run that populates a fresh store, `optimized` the warm rerun
/// served entirely from disk; outputs are asserted byte-identical. Runs
/// last in the suite so the store it installs cannot leak into any other
/// measurement, and tears the store down afterwards.
fn bench_cache_warm(quick: bool) -> BenchEntry {
    let dir = std::env::temp_dir().join(format!("earsim-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    crate::cache::set_result_cache(Some(dir.clone()));

    let run_eval = || {
        if quick {
            crate::tables::table1()
        } else {
            crate::run_all()
        }
    };
    let t0 = Instant::now();
    let cold_out = run_eval();
    let t_ref = t0.elapsed().as_secs_f64();

    let mut warm_out = String::new();
    let t_opt = best_secs(if quick { 2 } else { 3 }, || {
        warm_out = run_eval();
    });
    assert_eq!(
        cold_out, warm_out,
        "warm-cache output diverged from the cold run"
    );

    crate::cache::set_result_cache(None);
    let _ = std::fs::remove_dir_all(&dir);

    BenchEntry {
        name: "cache_warm_all_wall",
        unit: "s",
        reference: Some(t_ref),
        optimized: t_opt,
    }
}

/// Full Table I regeneration wall clock. No in-process reference: the
/// committed artifact records the pre-optimisation binary's number.
fn bench_table1(quick: bool) -> BenchEntry {
    let reps = if quick { 1 } else { 3 };
    let t = best_secs(reps, || {
        black_box(crate::tables::table1());
    });
    BenchEntry {
        name: "table1_wall",
        unit: "s",
        reference: None,
        optimized: t,
    }
}

/// Runs the whole suite. `quick` trims iteration counts for CI smoke runs;
/// the measured operations are identical.
pub fn run(quick: bool) -> BenchReport {
    BenchReport {
        quick,
        benches: vec![
            bench_dynais_inloop(quick),
            bench_dynais_aperiodic(quick),
            bench_window(quick),
            bench_snapshot(quick),
            bench_fast_forward(quick),
            bench_uncore_domain_step(quick),
            bench_trace_emit(quick),
            bench_job_step(quick),
            bench_break_even(),
            bench_frame_codec(quick),
            bench_netd_rtt(quick),
            bench_netd_async_rtt(quick),
            bench_eargm_tree_fanout(quick),
            bench_sweep_grid_wall(quick),
            bench_fitted_policy_decide(quick),
            bench_rapl_enforce_step(quick),
            bench_powercap_search_settle(quick),
            bench_table1(quick),
            // Last: installs (and removes) a process-global result store.
            bench_cache_warm(quick),
        ],
    }
}

impl BenchReport {
    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "== Hot-path benchmarks ==\n\
                           bench          unit     reference     optimized  speedup\n",
        );
        for b in &self.benches {
            let rf = b
                .reference
                .map_or_else(|| "-".to_string(), |r| format!("{r:.3}"));
            let sp = b
                .speedup()
                .map_or_else(|| "-".to_string(), |s| format!("{s:.2}x"));
            out.push_str(&format!(
                "{:>28} {:>13} {:>13} {:>13.3} {:>8}\n",
                b.name, b.unit, rf, b.optimized, sp
            ));
        }
        out
    }

    /// The `BENCH_hotpath.json` artifact.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            format!("{v:.6}")
        }
        let mut out = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"quick\": {},\n  \"benches\": [\n",
            self.quick
        );
        for (i, b) in self.benches.iter().enumerate() {
            let rf = b.reference.map_or_else(|| "null".to_string(), num);
            let sp = b.speedup().map_or_else(|| "null".to_string(), num);
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\", \"reference\": {}, \"optimized\": {}, \"speedup\": {}}}{}\n",
                b.name,
                b.unit,
                rf,
                num(b.optimized),
                sp,
                if i + 1 < self.benches.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Artifact validation (hand-rolled JSON: the CI job must fail on a malformed
// or schema-violating BENCH_hotpath.json without pulling in a parser crate).
// ---------------------------------------------------------------------------

/// Minimal JSON value for validation purposes.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| self.err("bad \\u"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            self.i += 4;
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad \\u"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    match std::str::from_utf8(&self.b[start..self.i]) {
                        Ok(frag) => s.push_str(frag),
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => {
                self.i += 1;
                let mut kv = Vec::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    let v = self.value()?;
                    kv.push((k, v));
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(kv));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.ws();
        if self.i != self.b.len() {
            return Err(self.err("trailing data"));
        }
        Ok(v)
    }
}

/// Validates a `BENCH_hotpath.json` document: well-formed JSON, the right
/// schema tag, and every required bench present with sane numbers. Returns
/// the number of benches on success.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let root = Parser::new(text).parse()?;
    match root.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        Some(Json::Str(s)) => return Err(format!("wrong schema '{s}', expected '{SCHEMA}'")),
        _ => return Err("missing string field 'schema'".into()),
    }
    if !matches!(root.get("quick"), Some(Json::Bool(_))) {
        return Err("missing boolean field 'quick'".into());
    }
    let benches = match root.get("benches") {
        Some(Json::Arr(a)) if !a.is_empty() => a,
        Some(Json::Arr(_)) => return Err("'benches' is empty".into()),
        _ => return Err("missing array field 'benches'".into()),
    };
    let mut names = Vec::new();
    for (i, b) in benches.iter().enumerate() {
        let name = match b.get("name") {
            Some(Json::Str(s)) if !s.is_empty() => s.clone(),
            _ => return Err(format!("bench {i}: missing string field 'name'")),
        };
        if names.contains(&name) {
            return Err(format!("duplicate bench '{name}'"));
        }
        match b.get("unit") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(format!("bench '{name}': missing string field 'unit'")),
        }
        let optimized = match b.get("optimized") {
            Some(Json::Num(v)) if v.is_finite() && *v > 0.0 => *v,
            _ => {
                return Err(format!(
                    "bench '{name}': 'optimized' must be a positive number"
                ))
            }
        };
        let reference = match b.get("reference") {
            Some(Json::Null) => None,
            Some(Json::Num(v)) if v.is_finite() && *v > 0.0 => Some(*v),
            _ => {
                return Err(format!(
                    "bench '{name}': 'reference' must be null or a positive number"
                ))
            }
        };
        match (reference, b.get("speedup")) {
            (None, Some(Json::Null)) => {}
            (Some(r), Some(Json::Num(s))) if s.is_finite() && *s > 0.0 => {
                let expect = r / optimized;
                if (s - expect).abs() > 0.05 * expect {
                    return Err(format!(
                        "bench '{name}': speedup {s} inconsistent with reference/optimized {expect}"
                    ));
                }
            }
            _ => {
                return Err(format!(
                    "bench '{name}': 'speedup' must match the reference field"
                ))
            }
        }
        names.push(name);
    }
    for req in REQUIRED_BENCHES {
        if !names.iter().any(|n| n == req) {
            return Err(format!("required bench '{req}' missing"));
        }
    }
    Ok(benches.len())
}

/// The regression gate over a `BENCH_hotpath.json`: every row with a
/// non-null reference must report a speedup of at least 1.0 — an optimised
/// path that loses to the implementation it replaced is a regression, not
/// a measurement — unless the row is in [`SPEEDUP_ALLOWLIST`]. Returns the
/// number of gated rows on success; the error lists every offending row.
/// Call [`validate_json`] first: this gate assumes a structurally valid
/// artifact and skips anything malformed.
pub fn verify_speedups(text: &str) -> Result<usize, String> {
    let root = Parser::new(text).parse()?;
    let benches = match root.get("benches") {
        Some(Json::Arr(a)) => a,
        _ => return Err("missing array field 'benches'".into()),
    };
    let mut gated = 0;
    let mut regressions = Vec::new();
    for b in benches {
        let name = match b.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => continue,
        };
        let Some(Json::Num(speedup)) = b.get("speedup") else {
            continue;
        };
        if SPEEDUP_ALLOWLIST.contains(&name.as_str()) {
            continue;
        }
        gated += 1;
        if *speedup < 1.0 {
            regressions.push(format!("{name} ({speedup:.3}x)"));
        }
    }
    if regressions.is_empty() {
        Ok(gated)
    } else {
        Err(format!(
            "speedup below 1.0 (optimized slower than reference): {}",
            regressions.join(", ")
        ))
    }
}

/// Counter fields the nested `netd` telemetry object must carry.
const TELEMETRY_NETD_COUNTERS: [&str; 7] = [
    "accepted",
    "rejected",
    "timed_out",
    "retried",
    "requests",
    "decode_errors",
    "batched_flushes",
];

/// Counter fields the nested `cluster` telemetry object must carry
/// (besides the `level_reports` array, validated separately).
const TELEMETRY_CLUSTER_COUNTERS: [&str; 3] = ["daemons", "tree_depth", "batched_flushes"];

/// Entries the `ufs.ratio_steps` array must carry: one per supported
/// uncore domain index.
const TELEMETRY_UFS_DOMAINS: usize = 4;

/// Counter fields the nested `powercap` telemetry object must carry
/// (all-zero when no capped scenario ran in the process).
const TELEMETRY_POWERCAP_COUNTERS: [&str; 5] = [
    "caps_pushed",
    "throttle_events",
    "rebalances",
    "jobs_admitted",
    "jobs_completed",
];

/// Validates one `earsim-telemetry:` JSON payload (the part after the
/// prefix): well-formed, the right schema tag, the flat engine fields,
/// every nested netd counter present as a non-negative integer, and the
/// nested cluster object (all-zero when no cluster scenario ran) with its
/// per-level report array, the nested `ufs` object with its fixed-width
/// per-domain ratio-step array, and the nested `powercap` object with the
/// job-stream and RAPL enforcement counters.
pub fn validate_telemetry_json(text: &str) -> Result<(), String> {
    let root = Parser::new(text).parse()?;
    match root.get("schema") {
        Some(Json::Str(s)) if s == crate::engine::TELEMETRY_SCHEMA => {}
        Some(Json::Str(s)) => {
            return Err(format!(
                "wrong schema '{s}', expected '{}'",
                crate::engine::TELEMETRY_SCHEMA
            ))
        }
        _ => return Err("missing string field 'schema'".into()),
    }
    let counter = |obj: &Json, key: &str| -> Result<(), String> {
        match obj.get(key) {
            Some(Json::Num(v)) if v.is_finite() && *v >= 0.0 && v.fract() == 0.0 => Ok(()),
            _ => Err(format!("field '{key}' must be a non-negative integer")),
        }
    };
    for key in ["engine_runs", "tasks", "cal_hits", "result_hits"] {
        counter(&root, key)?;
    }
    let netd = root
        .get("netd")
        .ok_or_else(|| "missing object field 'netd'".to_string())?;
    if !matches!(netd, Json::Obj(_)) {
        return Err("'netd' is not an object".into());
    }
    for key in TELEMETRY_NETD_COUNTERS {
        counter(netd, key).map_err(|e| format!("netd: {e}"))?;
    }
    let cluster = root
        .get("cluster")
        .ok_or_else(|| "missing object field 'cluster'".to_string())?;
    if !matches!(cluster, Json::Obj(_)) {
        return Err("'cluster' is not an object".into());
    }
    for key in TELEMETRY_CLUSTER_COUNTERS {
        counter(cluster, key).map_err(|e| format!("cluster: {e}"))?;
    }
    match cluster.get("level_reports") {
        Some(Json::Arr(items)) => {
            for (i, v) in items.iter().enumerate() {
                match v {
                    Json::Num(n) if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 => {}
                    _ => {
                        return Err(format!(
                            "cluster: level_reports[{i}] must be a non-negative integer"
                        ))
                    }
                }
            }
        }
        _ => return Err("cluster: missing array field 'level_reports'".into()),
    }
    let ufs = root
        .get("ufs")
        .ok_or_else(|| "missing object field 'ufs'".to_string())?;
    if !matches!(ufs, Json::Obj(_)) {
        return Err("'ufs' is not an object".into());
    }
    counter(ufs, "max_domains").map_err(|e| format!("ufs: {e}"))?;
    match ufs.get("ratio_steps") {
        Some(Json::Arr(items)) => {
            if items.len() != TELEMETRY_UFS_DOMAINS {
                return Err(format!(
                    "ufs: ratio_steps must carry {TELEMETRY_UFS_DOMAINS} entries, got {}",
                    items.len()
                ));
            }
            for (i, v) in items.iter().enumerate() {
                match v {
                    Json::Num(n) if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 => {}
                    _ => {
                        return Err(format!(
                            "ufs: ratio_steps[{i}] must be a non-negative integer"
                        ))
                    }
                }
            }
        }
        _ => return Err("ufs: missing array field 'ratio_steps'".into()),
    }
    let sweep = root
        .get("sweep")
        .ok_or_else(|| "missing object field 'sweep'".to_string())?;
    if !matches!(sweep, Json::Obj(_)) {
        return Err("'sweep' is not an object".into());
    }
    for key in ["cells", "cache_hits"] {
        counter(sweep, key).map_err(|e| format!("sweep: {e}"))?;
    }
    match sweep.get("fit_residual_max") {
        Some(Json::Num(v)) if v.is_finite() && *v >= 0.0 => {}
        _ => return Err("sweep: 'fit_residual_max' must be a non-negative number".into()),
    }
    let powercap = root
        .get("powercap")
        .ok_or_else(|| "missing object field 'powercap'".to_string())?;
    if !matches!(powercap, Json::Obj(_)) {
        return Err("'powercap' is not an object".into());
    }
    for key in TELEMETRY_POWERCAP_COUNTERS {
        counter(powercap, key).map_err(|e| format!("powercap: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> String {
        let report = BenchReport {
            quick: true,
            benches: REQUIRED_BENCHES
                .iter()
                .map(|name| BenchEntry {
                    name,
                    unit: "ns/op",
                    // The rows that really ship without a reference.
                    reference: if matches!(*name, "table1_wall" | "mpi_break_even") {
                        None
                    } else {
                        Some(50.0)
                    },
                    optimized: 10.0,
                })
                .collect(),
        };
        report.to_json()
    }

    #[test]
    fn emitted_json_validates() {
        let json = sample_json();
        assert_eq!(validate_json(&json), Ok(REQUIRED_BENCHES.len()));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("").is_err());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn rejects_wrong_schema() {
        let json = sample_json().replace("hotpath/v1", "hotpath/v0");
        assert!(validate_json(&json).unwrap_err().contains("wrong schema"));
    }

    #[test]
    fn rejects_missing_required_bench() {
        let json = sample_json().replace("snapshot_per_call", "snapshot_renamed");
        assert!(validate_json(&json)
            .unwrap_err()
            .contains("snapshot_per_call"));
    }

    #[test]
    fn rejects_inconsistent_speedup() {
        let json = sample_json().replace("\"speedup\": 5.000000", "\"speedup\": 9.000000");
        assert!(validate_json(&json).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn speedup_gate_counts_the_gated_rows() {
        // 19 required rows minus the 2 null references; the allowlist is
        // empty, so every row with a reference is gated.
        assert_eq!(
            verify_speedups(&sample_json()),
            Ok(REQUIRED_BENCHES.len() - 2)
        );
    }

    #[test]
    fn speedup_gate_fails_sub_one_rows() {
        let report = BenchReport {
            quick: true,
            benches: vec![
                BenchEntry {
                    name: "window_push_recent",
                    unit: "ns/op",
                    reference: Some(5.0),
                    optimized: 10.0, // speedup 0.5: a regression
                },
                BenchEntry {
                    name: "dynais_inloop_per_sample",
                    unit: "ns/op",
                    reference: Some(50.0),
                    optimized: 10.0, // speedup 5.0: fine
                },
            ],
        };
        let err = verify_speedups(&report.to_json()).unwrap_err();
        assert!(err.contains("window_push_recent"), "{err}");
        assert!(!err.contains("dynais_inloop_per_sample"), "{err}");
    }

    #[test]
    fn speedup_gate_covers_the_formerly_allowlisted_row() {
        // netd_uds_rtt lost its exemption: a sub-1.0 speedup there is a
        // regression like anywhere else.
        let report = BenchReport {
            quick: true,
            benches: vec![BenchEntry {
                name: "netd_uds_rtt",
                unit: "us/rtt",
                reference: Some(5.0),
                optimized: 10.0,
            }],
        };
        let err = verify_speedups(&report.to_json()).unwrap_err();
        assert!(err.contains("netd_uds_rtt"), "{err}");
    }

    #[test]
    fn rejects_nonpositive_optimized() {
        let json = sample_json().replace("\"optimized\": 10.000000", "\"optimized\": 0.0");
        assert!(validate_json(&json).unwrap_err().contains("positive"));
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Parser::new(r#"{"a": [1, -2.5e3, "x\n\"A"], "b": {"c": null}}"#)
            .parse()
            .unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2500.0),
                Json::Str("x\n\"A".into())
            ]))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
    }

    #[test]
    fn telemetry_json_validates() {
        let sample = format!(
            "{{\"schema\":\"{}\",\"engine_runs\":1,\"jobs\":2,\"tasks\":3,\
             \"tasks_failed\":0,\"failed_cells\":[],\"wall_s\":1.0,\
             \"serial_estimate_s\":2.0,\"speedup\":2.00,\"cal_hits\":4,\
             \"cal_misses\":0,\"result_hits\":5,\"result_misses\":1,\
             \"result_invalidations\":0,\"netd\":{{\"accepted\":2,\
             \"rejected\":0,\"timed_out\":1,\"retried\":3,\"requests\":10,\
             \"decode_errors\":0,\"batched_flushes\":4}},\
             \"cluster\":{{\"daemons\":64,\"tree_depth\":2,\
             \"level_reports\":[640,40],\"batched_flushes\":4}},\
             \"ufs\":{{\"max_domains\":2,\"ratio_steps\":[7,3,0,0]}},\
             \"sweep\":{{\"cells\":40,\"cache_hits\":13,\
             \"fit_residual_max\":0.031200}},\
             \"powercap\":{{\"caps_pushed\":8,\"throttle_events\":2,\
             \"rebalances\":3,\"jobs_admitted\":5,\"jobs_completed\":5}}}}",
            crate::engine::TELEMETRY_SCHEMA
        );
        assert_eq!(validate_telemetry_json(&sample), Ok(()));
        // The real emitter must satisfy its own validator.
        if let Some(json) = crate::engine::process_summary_json() {
            assert_eq!(validate_telemetry_json(&json), Ok(()));
        }
        // Rejections: wrong schema, missing netd, non-integer counter,
        // missing cluster object, non-integer level report.
        assert!(validate_telemetry_json(&sample.replace("/v6", "/v1"))
            .unwrap_err()
            .contains("wrong schema"));
        assert!(
            validate_telemetry_json(&sample.replace("\"netd\"", "\"metd\""))
                .unwrap_err()
                .contains("netd")
        );
        assert!(
            validate_telemetry_json(&sample.replace("\"retried\":3", "\"retried\":3.5"))
                .unwrap_err()
                .contains("retried")
        );
        assert!(
            validate_telemetry_json(&sample.replace("\"cluster\"", "\"clusterx\""))
                .unwrap_err()
                .contains("cluster")
        );
        assert!(
            validate_telemetry_json(&sample.replace("[640,40]", "[640,40.5]"))
                .unwrap_err()
                .contains("level_reports[1]")
        );
        assert!(
            validate_telemetry_json(&sample.replace("\"ufs\"", "\"ufsx\""))
                .unwrap_err()
                .contains("ufs")
        );
        assert!(
            validate_telemetry_json(&sample.replace("[7,3,0,0]", "[7,3,0]"))
                .unwrap_err()
                .contains("4 entries")
        );
        assert!(
            validate_telemetry_json(&sample.replace("\"sweep\"", "\"sweepx\""))
                .unwrap_err()
                .contains("sweep")
        );
        assert!(validate_telemetry_json(
            &sample.replace("\"fit_residual_max\":0.031200", "\"fit_residual_max\":-1.0")
        )
        .unwrap_err()
        .contains("fit_residual_max"));
        assert!(
            validate_telemetry_json(&sample.replace("\"powercap\"", "\"powercapx\""))
                .unwrap_err()
                .contains("powercap")
        );
        assert!(validate_telemetry_json(
            &sample.replace("\"throttle_events\":2", "\"throttle_events\":-1")
        )
        .unwrap_err()
        .contains("throttle_events"));
    }

    #[test]
    fn quick_suite_reports_every_bench() {
        // One real (quick) run: the emitted artifact must self-validate and
        // the incremental DynAIS must beat the reference in-loop.
        let report = run(true);
        assert_eq!(validate_json(&report.to_json()), Ok(report.benches.len()));
        let inloop = report
            .benches
            .iter()
            .find(|b| b.name == "dynais_inloop_per_sample")
            .unwrap();
        assert!(
            inloop.speedup().unwrap() > 1.0,
            "incremental DynAIS slower than the reference: {:?}",
            inloop
        );
        // The point of the adaptive driver: it must never lose to the old
        // double-barrier parallel driver it replaced.
        let mpi = report
            .benches
            .iter()
            .find(|b| b.name == "mpi_job_step_parallel")
            .unwrap();
        assert!(
            mpi.speedup().unwrap() > 1.0,
            "adaptive MPI driver lost to the old double-barrier driver: {:?}",
            mpi
        );
    }
}
