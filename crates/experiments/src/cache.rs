//! Persistent content-addressed result cache.
//!
//! Repeated campaigns mostly re-run identical cells: the same workload
//! targets, the same policy configuration, the same seeds. Like a build
//! system, the engine therefore caches each cell's averaged [`RunResult`]
//! on disk, keyed by a digest of **everything that determines the
//! result** — workload characterisation (which fixes the node config),
//! cell label, run configuration (policy name, thresholds, fixed
//! frequencies), the effective energy model, run count, base seed, the
//! seed-salting mode, and the store schema version. A warm `earsim all`
//! re-emits byte-identical tables without simulating a single phase.
//!
//! Design points:
//!
//! - **Disabled by default at the library level.** Only the `earsim`
//!   front end turns the store on (`--no-cache` / `EAR_CACHE=0` /
//!   `EAR_CACHE_DIR` to relocate it), so unit tests and library callers
//!   see engine semantics unchanged unless they opt in.
//! - **Bit-exact round-trips.** Metrics are stored as the hex of
//!   [`f64::to_bits`]; a hit reproduces the fresh result to the last bit,
//!   which keeps tables byte-identical across cache states.
//! - **Corruption is a miss, never a failure.** Entry parsing is routed
//!   through [`EarError`]; truncated, garbled or stale-schema files are
//!   deleted, counted as invalidations, and the cell simply runs.
//! - **Whole-store versioning.** A `VERSION` file pins the schema; any
//!   mismatch wipes every entry (the key layout itself may have changed).
//! - **No dependencies.** Hand-rolled FNV-1a keys and line-based entry
//!   files; `std::fs` only, atomic publish via temp file + rename.

use crate::harness::{RunKind, RunResult};
use ear_errors::EarError;
use ear_workloads::WorkloadTargets;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Store schema: the entry file layout **and** the key derivation. Bump on
/// any change to either; the version check wipes stale stores wholesale.
pub const CACHE_SCHEMA: &str = "earsim-result-cache/v2";

/// Where results are cached unless `EAR_CACHE_DIR` overrides it.
pub const DEFAULT_CACHE_DIR: &str = "target/earsim-cache";

static STORE: Mutex<Option<PathBuf>> = Mutex::new(None);

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static INVALIDATIONS: AtomicU64 = AtomicU64::new(0);

fn store_dir() -> Option<PathBuf> {
    STORE.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// The default store location: `$EAR_CACHE_DIR` if set and non-empty,
/// else [`DEFAULT_CACHE_DIR`] relative to the working directory.
pub fn default_cache_dir() -> PathBuf {
    match std::env::var("EAR_CACHE_DIR") {
        Ok(d) if !d.trim().is_empty() => PathBuf::from(d),
        _ => PathBuf::from(DEFAULT_CACHE_DIR),
    }
}

/// Enables (`Some(dir)`) or disables (`None`) the persistent result
/// cache process-wide. Enabling prepares the store: the directory is
/// created if missing and wiped if its `VERSION` file disagrees with
/// [`CACHE_SCHEMA`] (counted as an invalidation). Preparation failures
/// (e.g. an unwritable path) disable the cache rather than erroring —
/// caching is an optimisation, never a correctness dependency.
pub fn set_result_cache(dir: Option<PathBuf>) {
    let prepared = dir.and_then(|d| match prepare_store(&d) {
        Ok(()) => Some(d),
        Err(e) => {
            eprintln!("earsim: result cache disabled: {e}");
            None
        }
    });
    *STORE.lock().unwrap_or_else(PoisonError::into_inner) = prepared;
}

/// `(hits, misses, invalidations)` since process start.
pub fn result_cache_stats() -> (u64, u64, u64) {
    (
        HITS.load(Ordering::Relaxed),
        MISSES.load(Ordering::Relaxed),
        INVALIDATIONS.load(Ordering::Relaxed),
    )
}

/// Creates the store directory and enforces the schema version: a missing
/// or mismatching `VERSION` file clears every entry and rewrites it.
fn prepare_store(dir: &Path) -> Result<(), EarError> {
    std::fs::create_dir_all(dir).map_err(|e| EarError::io(dir.display().to_string(), e))?;
    let version_path = dir.join("VERSION");
    let current = std::fs::read_to_string(&version_path).unwrap_or_default();
    if current.trim() != CACHE_SCHEMA {
        let mut wiped = false;
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let p = entry.path();
                if p.extension().is_some_and(|e| e == "entry") {
                    let _ = std::fs::remove_file(&p);
                    wiped = true;
                }
            }
        }
        if wiped || !current.trim().is_empty() {
            INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
        }
        std::fs::write(&version_path, format!("{CACHE_SCHEMA}\n"))
            .map_err(|e| EarError::io(version_path.display().to_string(), e))?;
    }
    Ok(())
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Digest of everything that determines a cell's averaged result. The
/// workload targets fix the calibrated node config and the synthesised
/// job; the [`RunKind`] debug rendering covers the policy name and every
/// threshold/setting; the model override changes every EARL instance; and
/// the seed inputs (`runs`, `base_seed`, salt mode and cell salt) fix the
/// noise streams.
#[allow(clippy::too_many_arguments)]
pub fn result_key(
    targets: &WorkloadTargets,
    label: &str,
    kind: &RunKind,
    model: Option<&str>,
    runs: usize,
    base_seed: u64,
    salt: u64,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv1a(&mut h, CACHE_SCHEMA.as_bytes());
    fnv1a(&mut h, b"|targets|");
    fnv1a(&mut h, format!("{targets:?}").as_bytes());
    fnv1a(&mut h, b"|label|");
    fnv1a(&mut h, label.as_bytes());
    fnv1a(&mut h, b"|kind|");
    fnv1a(&mut h, format!("{kind:?}").as_bytes());
    fnv1a(&mut h, b"|model|");
    fnv1a(&mut h, model.unwrap_or("default").as_bytes());
    fnv1a(&mut h, b"|seeds|");
    fnv1a(&mut h, format!("{runs}/{base_seed}/{salt}").as_bytes());
    h
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.entry"))
}

/// The metric fields of a [`RunResult`], in entry-file order. The domain
/// count rides along as an exactly-representable f64 so every field shares
/// the hex-of-bits encoding.
const METRIC_FIELDS: [&str; 14] = [
    "time_s",
    "dc_power_w",
    "pkg_power_w",
    "dc_energy_j",
    "pkg_energy_j",
    "avg_cpu_ghz",
    "avg_imc_ghz",
    "imc_domains",
    "imc_dom0_ghz",
    "imc_dom1_ghz",
    "imc_dom2_ghz",
    "imc_dom3_ghz",
    "cpi",
    "gbs",
];

fn metrics(r: &RunResult) -> [f64; 14] {
    [
        r.time_s,
        r.dc_power_w,
        r.pkg_power_w,
        r.dc_energy_j,
        r.pkg_energy_j,
        r.avg_cpu_ghz,
        r.avg_imc_ghz,
        r.imc_domains as f64,
        r.imc_dom_ghz[0],
        r.imc_dom_ghz[1],
        r.imc_dom_ghz[2],
        r.imc_dom_ghz[3],
        r.cpi,
        r.gbs,
    ]
}

fn render_entry(key: u64, result: &RunResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256);
    let _ = writeln!(out, "{CACHE_SCHEMA}");
    let _ = writeln!(out, "key {key:016x}");
    let _ = writeln!(out, "label {}", result.label);
    for (name, v) in METRIC_FIELDS.iter().zip(metrics(result)) {
        let _ = writeln!(out, "{name} {:016x}", v.to_bits());
    }
    out
}

/// Parses an entry file; any deviation from the expected layout is a
/// [`EarError::Parse`] naming the offending line.
fn parse_entry(key: u64, text: &str) -> Result<RunResult, EarError> {
    let parse_err = |line: usize, message: String| EarError::Parse { line, message };
    let mut lines = text.lines();
    let schema = lines.next().unwrap_or_default();
    if schema != CACHE_SCHEMA {
        return Err(parse_err(
            1,
            format!("schema '{schema}', want '{CACHE_SCHEMA}'"),
        ));
    }
    let key_line = lines.next().unwrap_or_default();
    if key_line != format!("key {key:016x}") {
        return Err(parse_err(
            2,
            format!("key line '{key_line}' does not match {key:016x}"),
        ));
    }
    let label = lines
        .next()
        .and_then(|l| l.strip_prefix("label "))
        .ok_or_else(|| parse_err(3, "missing label line".to_string()))?
        .to_string();
    let mut values = [0.0f64; 14];
    for (i, (name, slot)) in METRIC_FIELDS.iter().zip(values.iter_mut()).enumerate() {
        let lineno = 4 + i;
        let line = lines
            .next()
            .ok_or_else(|| parse_err(lineno, format!("missing field '{name}'")))?;
        let hex = line
            .strip_prefix(name)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| parse_err(lineno, format!("want field '{name}', got '{line}'")))?;
        let bits = u64::from_str_radix(hex.trim(), 16)
            .map_err(|e| parse_err(lineno, format!("field '{name}': {e}")))?;
        *slot = f64::from_bits(bits);
    }
    Ok(RunResult {
        label,
        time_s: values[0],
        dc_power_w: values[1],
        pkg_power_w: values[2],
        dc_energy_j: values[3],
        pkg_energy_j: values[4],
        avg_cpu_ghz: values[5],
        avg_imc_ghz: values[6],
        imc_domains: values[7] as usize,
        imc_dom_ghz: [values[8], values[9], values[10], values[11]],
        cpi: values[12],
        gbs: values[13],
    })
}

/// Looks `key` up in the store. Returns `None` — and counts a miss — when
/// the cache is disabled, the entry is absent, or the entry is corrupt
/// (which also deletes the file and counts an invalidation). Only a
/// bit-exact, well-formed entry counts as a hit.
pub fn lookup(key: u64) -> Option<RunResult> {
    let dir = store_dir()?;
    let path = entry_path(&dir, key);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            return None;
        }
    };
    match parse_entry(key, &text) {
        Ok(result) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            Some(result)
        }
        Err(e) => {
            // Corrupt entries degrade to a miss; the cell re-runs and the
            // store heals on the subsequent write.
            eprintln!(
                "earsim: dropping corrupt cache entry {}: {e}",
                path.display()
            );
            let _ = std::fs::remove_file(&path);
            INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
            MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Publishes `result` under `key`. Failures are swallowed (stderr only):
/// a cache that cannot write is merely cold, never an error.
pub fn store(key: u64, result: &RunResult) {
    let Some(dir) = store_dir() else { return };
    let path = entry_path(&dir, key);
    let tmp = dir.join(format!("{key:016x}.tmp{}", std::process::id()));
    let text = render_entry(key, result);
    let published = std::fs::write(&tmp, &text).and_then(|()| std::fs::rename(&tmp, &path));
    if let Err(e) = published {
        let _ = std::fs::remove_file(&tmp);
        eprintln!("earsim: cache write failed for {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(label: &str) -> RunResult {
        RunResult {
            label: label.into(),
            time_s: 123.456789,
            dc_power_w: 321.0984,
            pkg_power_w: 250.5,
            dc_energy_j: 39_630.1,
            pkg_energy_j: 30_925.2,
            avg_cpu_ghz: 2.397,
            avg_imc_ghz: 2.4,
            imc_domains: 2,
            imc_dom_ghz: [2.4, 1.2, 0.0, 0.0],
            cpi: 0.5123,
            gbs: 21.7,
        }
    }

    #[test]
    fn entry_round_trips_bit_exact() {
        let r = sample_result("ME+eU 2%");
        let text = render_entry(0xdead_beef, &r);
        let back = parse_entry(0xdead_beef, &text).expect("well-formed entry");
        assert_eq!(back, r);
        assert_eq!(back.time_s.to_bits(), r.time_s.to_bits());
    }

    #[test]
    fn parse_rejects_malformations() {
        let r = sample_result("x");
        let good = render_entry(7, &r);
        // Truncation.
        let cut = &good[..good.len() / 2];
        assert!(parse_entry(7, cut).is_err());
        // Wrong schema.
        let stale = good.replacen(CACHE_SCHEMA, "earsim-result-cache/v1", 1);
        assert!(parse_entry(7, &stale).is_err());
        // Key mismatch (entry content addressed under another digest).
        assert!(parse_entry(8, &good).is_err());
        // Garbled metric.
        let garbled = good.replace("cpi ", "cpi zz");
        assert!(parse_entry(7, &garbled).is_err());
    }

    #[test]
    fn keys_separate_configurations() {
        let t = ear_workloads::by_name("BQCD").expect("known workload");
        let k =
            |label: &str, kind: &RunKind, seed: u64| result_key(&t, label, kind, None, 3, seed, 0);
        let no_policy = RunKind::NoPolicy;
        let me = RunKind::me(0.1);
        let me2 = RunKind::me(0.2);
        assert_ne!(k("a", &no_policy, 1), k("a", &me, 1));
        assert_ne!(k("a", &me, 1), k("a", &me2, 1), "thresholds must key");
        assert_ne!(k("a", &me, 1), k("a", &me, 2), "seed must key");
        assert_ne!(k("a", &me, 1), k("b", &me, 1), "label must key");
        assert_ne!(
            result_key(&t, "a", &me, Some("avx512"), 3, 1, 0),
            result_key(&t, "a", &me, None, 3, 1, 0),
            "model must key"
        );
        assert_ne!(
            result_key(&t, "a", &me, None, 3, 1, 0),
            result_key(&t, "a", &me, None, 3, 1, 4),
            "cell salt must key"
        );
    }

    /// Regression for the v2 schema: the key digests the *whole* targets
    /// Debug rendering, so a per-die run (`uncore_domains > 1`) can never
    /// collide with the single-knob run of the same workload. A collision
    /// here would serve a per-die result to a single-knob campaign (or
    /// vice versa) from a warm store.
    #[test]
    fn keys_separate_uncore_domain_counts() {
        let t1 = ear_workloads::by_name("BQCD").expect("known workload");
        let mut t2 = t1.clone();
        t2.uncore_domains = 2;
        assert!(
            format!("{t1:?}").contains("uncore_domains"),
            "targets Debug rendering must expose the domain count the key relies on"
        );
        let me = RunKind::me(0.1);
        assert_ne!(
            result_key(&t1, "a", &me, None, 3, 1, 0),
            result_key(&t2, "a", &me, None, 3, 1, 0),
            "uncore-domain count must key"
        );
    }
}
