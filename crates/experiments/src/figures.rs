//! Regeneration of every figure in the paper (Fig. 1, 3–8), as data series
//! printed in table form (the series the paper plots).
//!
//! Every entry point returns `Result<_, EarError>`: an unknown workload or
//! a failed reference cell is a caller-visible error, not a panic — the
//! `earsim` front end turns it into an exit code, and `run_all` degrades
//! the one section instead of aborting the whole evaluation.

use crate::chart::{bar_chart, column_chart};
use crate::engine::run_matrix_default;
use crate::harness::{compare, format_table, run_cell, Comparison, RunKind};
use crate::tables::{app_cpu_th, RUNS};
use ear_errors::EarError;
use ear_workloads::by_name;

fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// Per-application panels of a multi-application figure (Fig. 7, Fig. 8):
/// each application's name with its labelled comparisons.
pub type AppPanels = Vec<(String, Vec<(String, Comparison)>)>;

/// One point of the Fig. 1 uncore sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The pinned uncore frequency (GHz).
    pub fixed_imc_ghz: f64,
    /// Comparison against the HW-UFS reference at the same CPU frequency.
    pub vs_hw: Comparison,
    /// Average IMC frequency actually measured.
    pub avg_imc_ghz: f64,
}

/// Fig. 1 data for one kernel: the HW-UFS reference average IMC and the
/// sweep from 2.4 GHz down to 1.2 GHz in 100 MHz steps (paper §II).
///
/// Errors on an unknown kernel or when the HW-UFS reference cell fails
/// (without it the sweep has nothing to compare against).
pub fn fig1_data(kernel: &str) -> Result<(f64, Vec<SweepPoint>), EarError> {
    let t = by_name(kernel).ok_or_else(|| EarError::unknown("workload", kernel))?;
    // The CPU frequency the ME policy would select (paper: sweeps run at
    // the policy-selected CPU frequency, fixed from the beginning).
    let me = run_cell(&t, &RunKind::me(0.05), "ME", RUNS, 108);
    let cpu_ps = t
        .platform
        .node_config()
        .pstates
        .pstate_for_khz((me.avg_cpu_ghz * 1e6).round() as u64);

    // Reference (same CPU pstate, hardware UFS) plus the whole sweep, as
    // one engine matrix: 14 cells × RUNS tasks scheduled across the pool.
    // Legacy seeds keep every cell's numbers identical to the serial
    // `run_cell` loop this replaced.
    let mut cells = vec![(
        "HW UFS".to_string(),
        RunKind::Fixed {
            cpu: cpu_ps,
            imc_ratio: None,
        },
    )];
    cells.extend((12..=24u8).rev().map(|ratio| {
        (
            format!("fixed {:.1}", ratio as f64 * 0.1),
            RunKind::Fixed {
                cpu: cpu_ps,
                imc_ratio: Some(ratio),
            },
        )
    }));
    let run = crate::engine::run_matrix_engine(
        &t,
        &cells,
        &crate::engine::EngineConfig::new(RUNS, 108).legacy_seeds(),
    );
    let reference = run
        .get(0)
        .ok_or_else(|| {
            EarError::config(format!(
                "fig 1 ({kernel}): the HW UFS reference cell failed, nothing to compare against"
            ))
        })?
        .clone();
    let points = (12..=24u8)
        .rev()
        .enumerate()
        .filter_map(|(i, ratio)| {
            let r = run.get(i + 1)?;
            Some(SweepPoint {
                fixed_imc_ghz: ratio as f64 * 0.1,
                vs_hw: compare(&reference, r),
                avg_imc_ghz: r.avg_imc_ghz,
            })
        })
        .collect();
    Ok((reference.avg_imc_ghz, points))
}

/// Renders Fig. 1 for one kernel.
pub fn fig1_render(kernel: &str) -> Result<String, EarError> {
    let (hw_imc, points) = fig1_data(kernel)?;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.fixed_imc_ghz),
                pct(p.vs_hw.time_penalty_pct),
                pct(p.vs_hw.power_saving_pct),
                pct(p.vs_hw.energy_saving_pct),
                pct(p.vs_hw.gbs_penalty_pct),
                format!("{:.2}", p.avg_imc_ghz),
            ]
        })
        .collect();
    let mut out = format_table(
        &format!("Fig 1: fixed-uncore sweep for {kernel} (HW UFS avg IMC = {hw_imc:.2} GHz)"),
        &[
            "IMC fix (GHz)",
            "time pen",
            "DC power save",
            "energy save",
            "GB/s pen",
            "avg IMC",
        ],
        &rows,
    );
    let series: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.fixed_imc_ghz, p.vs_hw.energy_saving_pct))
        .collect();
    out.push_str(&column_chart(
        "energy save vs fixed IMC (left = 2.4 GHz, right = 1.2 GHz)",
        &series,
        "%",
    ));
    Ok(out)
}

/// Renders both Fig. 1 panels (BT-MZ and LU, paper §II).
pub fn fig1() -> Result<String, EarError> {
    Ok(format!(
        "{}\n{}",
        fig1_render("BT-MZ.C (MPI)")?,
        fig1_render("LU.D (MPI)")?
    ))
}

/// A generic "policy comparison" figure: one application, several policy
/// configurations, each compared against No policy.
///
/// Runs through the engine; a failed configuration cell is dropped from
/// the figure (with a stderr note) instead of aborting the campaign. If
/// the reference cell itself fails there is nothing to compare against
/// and the figure is empty. An unknown application is an error.
pub fn policy_figure(
    app: &str,
    configs: &[(String, RunKind)],
    seed: u64,
) -> Result<Vec<(String, Comparison)>, EarError> {
    let t = by_name(app).ok_or_else(|| EarError::unknown("workload", app))?;
    let mut cells = vec![("No policy".to_string(), RunKind::NoPolicy)];
    cells.extend_from_slice(configs);
    let run = run_matrix_default(&t, &cells, RUNS, seed);
    for cell in run.cells.iter().filter(|c| c.result.is_none()) {
        eprintln!(
            "figures: {app} cell '{}' failed: {}",
            cell.label,
            cell.error.as_deref().unwrap_or("unknown error")
        );
    }
    let Some(reference) = run.get(0) else {
        return Ok(Vec::new());
    };
    Ok(run.cells[1..]
        .iter()
        .filter_map(|c| {
            let r = c.result.as_ref()?;
            Some((r.label.clone(), compare(reference, r)))
        })
        .collect())
}

fn render_policy_figure(title: &str, data: &[(String, Comparison)]) -> String {
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(label, c)| {
            vec![
                label.clone(),
                pct(c.time_penalty_pct),
                pct(c.power_saving_pct),
                pct(c.energy_saving_pct),
            ]
        })
        .collect();
    let mut out = format_table(
        title,
        &["config", "time penalty", "DC power save", "energy save"],
        &rows,
    );
    let bars: Vec<(String, f64)> = data
        .iter()
        .map(|(l, c)| (l.clone(), c.energy_saving_pct))
        .collect();
    out.push_str(&bar_chart("energy save", &bars, "%"));
    out
}

/// Fig. 3: BQCD under ME and ME+eU with unc_policy_th 1 %, 2 %, 3 %
/// (cpu_policy_th 3 %).
pub fn fig3_data() -> Result<Vec<(String, Comparison)>, EarError> {
    let th = app_cpu_th("BQCD");
    policy_figure(
        "BQCD",
        &[
            ("ME".to_string(), RunKind::me(th)),
            ("ME+eU 1%".to_string(), RunKind::me_eufs(th, 0.01)),
            ("ME+eU 2%".to_string(), RunKind::me_eufs(th, 0.02)),
            ("ME+eU 3%".to_string(), RunKind::me_eufs(th, 0.03)),
        ],
        203,
    )
}

/// Renders Fig. 3.
pub fn fig3() -> Result<String, EarError> {
    Ok(render_policy_figure(
        "Fig 3: BQCD (cpu_policy_th 3%)",
        &fig3_data()?,
    ))
}

/// Fig. 4: BT-MZ under ME and ME+eU with unc_policy_th 0 %, 1 %, 2 %
/// (cpu_policy_th 3 %).
pub fn fig4_data() -> Result<Vec<(String, Comparison)>, EarError> {
    policy_figure(
        "BT-MZ",
        &[
            ("ME".to_string(), RunKind::me(0.03)),
            ("ME+eU 0%".to_string(), RunKind::me_eufs(0.03, 0.0)),
            ("ME+eU 1%".to_string(), RunKind::me_eufs(0.03, 0.01)),
            ("ME+eU 2%".to_string(), RunKind::me_eufs(0.03, 0.02)),
        ],
        204,
    )
}

/// Renders Fig. 4.
pub fn fig4() -> Result<String, EarError> {
    Ok(render_policy_figure(
        "Fig 4: BT-MZ (cpu_policy_th 3%)",
        &fig4_data()?,
    ))
}

/// Fig. 5: GROMACS(I) with cpu_policy_th 3 % and 5 %: ME, ME with
/// not-guided uncore (linear search from the maximum) and ME+eU
/// (HW-guided).
pub fn fig5_data() -> Result<Vec<(String, Comparison)>, EarError> {
    let mut out = Vec::new();
    for th in [0.03, 0.05] {
        let label = |s: &str| format!("{s} (cpu {}%)", (th * 100.0) as u32);
        let data = policy_figure(
            "GROMACS (I)",
            &[
                (label("ME"), RunKind::me(th)),
                (label("ME+NG-U"), RunKind::me_ng_u(th, 0.02)),
                (label("ME+eU"), RunKind::me_eufs(th, 0.02)),
            ],
            205,
        )?;
        out.extend(data);
    }
    Ok(out)
}

/// Renders Fig. 5.
pub fn fig5() -> Result<String, EarError> {
    Ok(render_policy_figure(
        "Fig 5: GROMACS(I), guided vs not-guided uncore",
        &fig5_data()?,
    ))
}

/// Fig. 6: GROMACS(II), ME vs ME+eU (cpu_policy_th 5 %).
pub fn fig6_data() -> Result<Vec<(String, Comparison)>, EarError> {
    policy_figure(
        "GROMACS (II)",
        &[
            ("ME".to_string(), RunKind::me(0.05)),
            ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
        ],
        206,
    )
}

/// Renders Fig. 6.
pub fn fig6() -> Result<String, EarError> {
    Ok(render_policy_figure(
        "Fig 6: GROMACS(II) (cpu_policy_th 5%)",
        &fig6_data()?,
    ))
}

/// Fig. 7: HPCG and POP, ME vs ME+eU (cpu_policy_th 5 %).
pub fn fig7_data() -> Result<AppPanels, EarError> {
    ["HPCG", "POP"]
        .iter()
        .map(|app| {
            let data = policy_figure(
                app,
                &[
                    ("ME".to_string(), RunKind::me(0.05)),
                    ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
                ],
                207,
            )?;
            Ok((app.to_string(), data))
        })
        .collect()
}

/// Renders Fig. 7.
pub fn fig7() -> Result<String, EarError> {
    Ok(fig7_data()?
        .into_iter()
        .map(|(app, data)| render_policy_figure(&format!("Fig 7: {app} (cpu_policy_th 5%)"), &data))
        .collect::<Vec<_>>()
        .join("\n"))
}

/// Fig. 8: DUMSES and AFiD with cpu_policy_th 3 % and 5 %, ME vs ME+eU
/// (unc_policy_th 2 %).
pub fn fig8_data() -> Result<AppPanels, EarError> {
    ["DUMSES", "AFiD"]
        .iter()
        .map(|app| {
            let mut data = Vec::new();
            for th in [0.03, 0.05] {
                let label = |s: &str| format!("{s} (cpu {}%)", (th * 100.0) as u32);
                data.extend(policy_figure(
                    app,
                    &[
                        (label("ME"), RunKind::me(th)),
                        (label("ME+eU"), RunKind::me_eufs(th, 0.02)),
                    ],
                    208,
                )?);
            }
            Ok((app.to_string(), data))
        })
        .collect()
}

/// Renders Fig. 8.
pub fn fig8() -> Result<String, EarError> {
    Ok(fig8_data()?
        .into_iter()
        .map(|(app, data)| render_policy_figure(&format!("Fig 8: {app}"), &data))
        .collect::<Vec<_>>()
        .join("\n"))
}
