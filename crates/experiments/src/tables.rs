//! Regeneration of every table in the paper's evaluation (§II, §VI).
//!
//! Each `tableN()` returns the formatted table; `tableN_data()` exposes the
//! underlying numbers for tests and EXPERIMENTS.md. Every cell averages
//! three simulated runs, as the paper averages three real runs.

use crate::engine::run_matrix_default;
use crate::harness::{compare, format_table, run_cell, RunKind, RunResult};
use ear_workloads::{apps, kernels, WorkloadTargets};

/// Default number of runs per cell (the paper's three).
pub const RUNS: usize = 3;

/// Runs one workload's cells through the engine and returns all results,
/// or `None` (with a stderr note) if any cell failed — the tables compare
/// cells positionally against the first (reference) cell, so a partial
/// matrix would mislabel rows.
fn matrix_all(
    targets: &WorkloadTargets,
    cells: &[(String, RunKind)],
    seed: u64,
) -> Option<Vec<RunResult>> {
    let run = run_matrix_default(targets, cells, RUNS, seed);
    let all = run.all();
    if all.is_none() {
        eprintln!(
            "tables: skipping {} (failed cells: {})",
            targets.name,
            run.failed_labels().join(", ")
        );
    }
    all
}

fn f2(x: f64) -> String {
    format!("{x:.2}")
}

fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// Table I: kernel metrics under `min_energy_to_solution` with hardware
/// IMC selection — CPI, GB/s, average CPU and IMC frequency.
pub fn table1_data() -> Vec<(String, RunResult)> {
    ["BT-MZ.C (MPI)", "LU.D (MPI)"]
        .iter()
        .map(|name| {
            let t = crate::harness::catalog(name);
            let r = run_cell(&t, &RunKind::me(0.05), "ME", RUNS, 101);
            (name.to_string(), r)
        })
        .collect()
}

/// Renders Table I.
pub fn table1() -> String {
    let rows: Vec<Vec<String>> = table1_data()
        .into_iter()
        .map(|(name, r)| {
            vec![
                name,
                f2(r.cpi),
                f2(r.gbs),
                f2(r.avg_cpu_ghz),
                f2(r.avg_imc_ghz),
            ]
        })
        .collect();
    format_table(
        "Table I: kernels under ME with hardware IMC selection",
        &["kernel", "CPI", "GB/s", "CPU freq (GHz)", "IMC freq (GHz)"],
        &rows,
    )
}

/// Table II: single-node kernel characterisation at nominal frequency.
pub fn table2_data() -> Vec<(String, RunResult)> {
    kernels::table2_kernels()
        .iter()
        .map(|t| {
            let r = run_cell(t, &RunKind::NoPolicy, "No policy", RUNS, 102);
            (t.name.to_string(), r)
        })
        .collect()
}

/// Renders Table II.
pub fn table2() -> String {
    let rows: Vec<Vec<String>> = table2_data()
        .into_iter()
        .map(|(name, r)| {
            vec![
                name,
                format!("{:.0}", r.time_s),
                f2(r.cpi),
                f2(r.gbs),
                format!("{:.0}", r.dc_power_w),
            ]
        })
        .collect();
    format_table(
        "Table II: single node kernels (No policy)",
        &["kernel", "Time (s)", "CPI", "GB/s", "Avg DC Power (W)"],
        &rows,
    )
}

/// Table III cell: (kernel, ME comparison, ME+eU comparison).
pub type Table3Row = (
    String,
    crate::harness::Comparison,
    crate::harness::Comparison,
);

/// Table III: kernel time penalty / power saving / energy saving for ME and
/// ME+eU against No policy (cpu_th 5 %, unc_th 2 %).
pub fn table3_data() -> Vec<Table3Row> {
    kernels::table2_kernels()
        .iter()
        .filter_map(|t| {
            let cells = vec![
                ("No policy".to_string(), RunKind::NoPolicy),
                ("ME".to_string(), RunKind::me(0.05)),
                ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
            ];
            let results = matrix_all(t, &cells, 103)?;
            let me = compare(&results[0], &results[1]);
            let eu = compare(&results[0], &results[2]);
            Some((t.name.to_string(), me, eu))
        })
        .collect()
}

/// Renders Table III.
pub fn table3() -> String {
    let rows: Vec<Vec<String>> = table3_data()
        .into_iter()
        .map(|(name, me, eu)| {
            vec![
                name,
                pct(me.time_penalty_pct),
                pct(eu.time_penalty_pct),
                pct(me.power_saving_pct),
                pct(eu.power_saving_pct),
                pct(me.energy_saving_pct),
                pct(eu.energy_saving_pct),
            ]
        })
        .collect();
    format_table(
        "Table III: single node kernels evaluation (vs No policy)",
        &[
            "kernel",
            "Tpen ME",
            "Tpen ME+eU",
            "Psave ME",
            "Psave ME+eU",
            "Esave ME",
            "Esave ME+eU",
        ],
        &rows,
    )
}

/// Table IV: average CPU and IMC frequencies per kernel under No policy,
/// ME and ME+eU.
pub fn table4_data() -> Vec<(String, [RunResult; 3])> {
    kernels::table2_kernels()
        .iter()
        .filter_map(|t| {
            let cells = vec![
                ("No policy".to_string(), RunKind::NoPolicy),
                ("ME".to_string(), RunKind::me(0.05)),
                ("ME+eU".to_string(), RunKind::me_eufs(0.05, 0.02)),
            ];
            let mut results = matrix_all(t, &cells, 104)?.into_iter();
            Some((
                t.name.to_string(),
                [results.next()?, results.next()?, results.next()?],
            ))
        })
        .collect()
}

/// Renders Table IV.
pub fn table4() -> String {
    let mut rows = Vec::new();
    for (name, [none, me, eu]) in table4_data() {
        rows.push(vec![
            name.clone(),
            "CPU".into(),
            f2(none.avg_cpu_ghz),
            f2(me.avg_cpu_ghz),
            f2(eu.avg_cpu_ghz),
        ]);
        rows.push(vec![
            name,
            "IMC".into(),
            f2(none.avg_imc_ghz),
            f2(me.avg_imc_ghz),
            f2(eu.avg_imc_ghz),
        ]);
    }
    format_table(
        "Table IV: avg CPU and IMC frequency domains (kernels)",
        &["kernel", "Dom", "No policy", "ME", "ME+eU"],
        &rows,
    )
}

/// Table V: MPI application characterisation at nominal frequency.
pub fn table5_data() -> Vec<(String, RunResult)> {
    apps::table5_apps()
        .iter()
        .map(|t| {
            let r = run_cell(t, &RunKind::NoPolicy, "No policy", RUNS, 105);
            (t.name.to_string(), r)
        })
        .collect()
}

/// Renders Table V.
pub fn table5() -> String {
    let rows: Vec<Vec<String>> = table5_data()
        .into_iter()
        .map(|(name, r)| {
            vec![
                name,
                format!("{:.2}", r.time_s),
                f2(r.cpi),
                f2(r.gbs),
                format!("{:.2}", r.dc_power_w),
            ]
        })
        .collect();
    format_table(
        "Table V: MPI applications (No policy)",
        &["application", "Time (s)", "CPI", "GB/s", "Avg DC Power (W)"],
        &rows,
    )
}

/// The per-application `cpu_policy_th` used in the paper's §VI-B: 5 %
/// everywhere except BQCD (3 %).
pub fn app_cpu_th(name: &str) -> f64 {
    if name == "BQCD" {
        0.03
    } else {
        0.05
    }
}

/// Table VI: average CPU and IMC frequencies per application.
pub fn table6_data() -> Vec<(String, [RunResult; 3])> {
    apps::table5_apps()
        .iter()
        .filter_map(|t| {
            let th = app_cpu_th(t.name);
            let cells = vec![
                ("No policy".to_string(), RunKind::NoPolicy),
                ("ME".to_string(), RunKind::me(th)),
                ("ME+eU".to_string(), RunKind::me_eufs(th, 0.02)),
            ];
            let mut results = matrix_all(t, &cells, 106)?.into_iter();
            Some((
                t.name.to_string(),
                [results.next()?, results.next()?, results.next()?],
            ))
        })
        .collect()
}

/// Renders Table VI.
pub fn table6() -> String {
    let mut rows = Vec::new();
    for (name, [none, me, eu]) in table6_data() {
        rows.push(vec![
            name.clone(),
            "CPU".into(),
            f2(none.avg_cpu_ghz),
            f2(me.avg_cpu_ghz),
            f2(eu.avg_cpu_ghz),
        ]);
        rows.push(vec![
            name,
            "IMC".into(),
            f2(none.avg_imc_ghz),
            f2(me.avg_imc_ghz),
            f2(eu.avg_imc_ghz),
        ]);
    }
    format_table(
        "Table VI: avg CPU and IMC frequency domains (applications)",
        &["application", "Dom", "No policy", "ME", "ME+eU"],
        &rows,
    )
}

/// Table VII: DC node power savings vs RAPL PCK power savings under ME+eU
/// (the paper's argument for evaluating with DC power). The paper lists
/// seven applications (GROMACS (I) omitted).
pub fn table7_data() -> Vec<(String, f64, f64)> {
    [
        "BQCD",
        "BT-MZ",
        "GROMACS (II)",
        "HPCG",
        "POP",
        "DUMSES",
        "AFiD",
    ]
    .iter()
    .filter_map(|name| {
        let t = crate::harness::catalog(name);
        let th = app_cpu_th(name);
        let cells = vec![
            ("No policy".to_string(), RunKind::NoPolicy),
            ("ME+eU".to_string(), RunKind::me_eufs(th, 0.02)),
        ];
        let results = matrix_all(&t, &cells, 107)?;
        let c = compare(&results[0], &results[1]);
        Some((name.to_string(), c.power_saving_pct, c.pkg_power_saving_pct))
    })
    .collect()
}

/// Renders Table VII.
pub fn table7() -> String {
    let rows: Vec<Vec<String>> = table7_data()
        .into_iter()
        .map(|(name, dc, pck)| vec![name, pct(dc), pct(pck)])
        .collect();
    format_table(
        "Table VII: DC node power savings vs RAPL PCK power savings (ME+eU)",
        &["application", "DC Node Power", "RAPL PCK power"],
        &rows,
    )
}

/// Table VIII (per-die extension, not in the paper): the GPU-offload
/// workload on a two-die node under three configurations — no policy,
/// ME+eU with the legacy single knob (one `ImcFreqSel`, ceiling applied
/// package-wide), and ME+eU searching each uncore domain independently.
/// The per-domain run should keep the host-feed die (domain 0) fast while
/// flooring the compute-idle die; the single knob cannot separate them.
///
/// `EAR_UNCORE_DOMAINS` (when set to 2..=4) overrides the workload's
/// domain count; `EAR_UNCORE_DOMAINS=1` suppresses the table entirely
/// (see [`crate::uncore_domains_override`]).
pub fn table8_data() -> Option<Vec<RunResult>> {
    let mut t = crate::harness::catalog("BT.CUDA.D (offload)");
    if let Some(n) = crate::uncore_domains_override() {
        if n > 1 {
            t.uncore_domains = n;
        }
    }
    let cells = vec![
        ("No policy".to_string(), RunKind::NoPolicy),
        (
            "ME+eU single-knob".to_string(),
            RunKind::me_eufs_single_knob(0.05, 0.02),
        ),
        ("ME+eU per-domain".to_string(), RunKind::me_eufs(0.05, 0.02)),
    ];
    matrix_all(&t, &cells, 108)
}

/// Renders Table VIII.
pub fn table8() -> String {
    let Some(results) = table8_data() else {
        return "== Table VIII: per-die uncore domains (GPU-offload) ==\n\
                [skipped: cell failure]\n"
            .to_string();
    };
    let reference = results[0].clone();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let c = compare(&reference, r);
            vec![
                r.label.clone(),
                format!("{:.0}", r.time_s),
                pct(c.time_penalty_pct),
                f2(r.imc_dom_ghz[0]),
                f2(r.imc_dom_ghz[1]),
                format!("{:.0}", r.dc_power_w),
                pct(c.energy_saving_pct),
            ]
        })
        .collect();
    format_table(
        "Table VIII: per-die uncore domains (GPU-offload, 2 domains)",
        &[
            "configuration",
            "Time (s)",
            "Penalty",
            "feed dom (GHz)",
            "idle dom (GHz)",
            "DC Power (W)",
            "Energy saving",
        ],
        &rows,
    )
}
