//! Sweep determinism: the (pstate × uncore) grid artifact — measured
//! cells and fitted surface coefficients, rendered down to their bit
//! patterns — must not depend on the worker count or on whether the
//! persistent result cache is warm.

use ear_experiments::sweep::{render_artifact, sweep_app, SweepConfig};
use ear_experiments::{set_default_jobs, set_result_cache};
use ear_workloads::sweep::SweepSpec;
use ear_workloads::WorkloadTargets;
use std::sync::Mutex;

/// The worker-count override and the result cache are process-global;
/// tests that touch them must not interleave.
static GLOBALS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn short_targets() -> WorkloadTargets {
    let mut t = ear_workloads::by_name("BT-MZ.C (OpenMP)").expect("known workload");
    // Same per-iteration physics, fewer iterations: determinism does not
    // depend on workload length and the test stays fast.
    t.time_s *= 12.0 / t.iterations as f64;
    t.iterations = 12;
    t
}

fn spec() -> SweepSpec {
    SweepSpec {
        cpu_pstates: vec![1, 4, 7],
        imc_ratios: vec![24, 18, 12],
    }
}

#[test]
fn artifact_is_identical_for_any_worker_count() {
    let _g = lock();
    set_result_cache(None);
    let targets = short_targets();
    let cfg = SweepConfig::default();
    let mut renders = Vec::new();
    for jobs in [1usize, 2, 8] {
        set_default_jobs(jobs);
        let s = sweep_app(&targets, &spec(), &cfg).expect("sweep succeeds");
        renders.push(render_artifact(&s));
    }
    set_default_jobs(0);
    assert_eq!(renders[0], renders[1], "jobs=1 vs jobs=2 artifacts differ");
    assert_eq!(renders[0], renders[2], "jobs=1 vs jobs=8 artifacts differ");
}

#[test]
fn warm_cache_rerun_is_byte_identical_and_hits() {
    let _g = lock();
    let dir = std::env::temp_dir().join(format!("earsim-sweep-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let targets = short_targets();
    let cfg = SweepConfig::default();

    set_result_cache(Some(dir.clone()));
    let cold = sweep_app(&targets, &spec(), &cfg).expect("cold sweep succeeds");
    assert_eq!(cold.cache_hits, 0, "cold store must not hit");

    let warm = sweep_app(&targets, &spec(), &cfg).expect("warm sweep succeeds");
    assert_eq!(
        warm.cache_hits as usize, warm.cells,
        "warm sweep must serve every cell from disk"
    );
    assert_eq!(
        render_artifact(&cold),
        render_artifact(&warm),
        "warm artifact diverged from the cold one"
    );

    set_result_cache(None);
    let _ = std::fs::remove_dir_all(&dir);
}
