//! Persistent result-cache behaviour: warm runs are served from disk with
//! bit-identical results, corruption degrades to a miss (never a panic,
//! never a wrong table), and a schema bump invalidates the whole store.

use ear_experiments::engine::{run_matrix_engine, EngineConfig};
use ear_experiments::{set_result_cache, RunKind};
use std::path::PathBuf;
use std::sync::Mutex;

/// The result cache is process-global state; tests that enable it must
/// not interleave.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("earsim-cache-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cells() -> Vec<(String, RunKind)> {
    vec![
        ("No policy".to_string(), RunKind::NoPolicy),
        (
            "Fixed 2.0".to_string(),
            RunKind::Fixed {
                cpu: 5,
                imc_ratio: Some(18),
            },
        ),
    ]
}

fn run() -> ear_experiments::MatrixRun {
    let targets = ear_workloads::by_name("BQCD").expect("known workload");
    run_matrix_engine(&targets, &cells(), &EngineConfig::new(2, 42))
}

fn entry_files(dir: &PathBuf) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "entry"))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn warm_run_is_served_from_disk_bit_identically() {
    let _g = lock();
    let dir = temp_store("warm");

    // Reference: cache disabled.
    set_result_cache(None);
    let plain = run();

    // Cold: populates the store, serves nothing.
    set_result_cache(Some(dir.clone()));
    let cold = run();
    assert_eq!(cold.summary.result_hits, 0);
    assert_eq!(cold.summary.result_misses, 2);
    assert_eq!(cold.summary.tasks, 4, "cold run schedules every task");
    assert_eq!(entry_files(&dir).len(), 2, "both cells stored");

    // Warm: everything from disk, nothing simulated.
    let warm = run();
    assert_eq!(warm.summary.result_hits, 2);
    assert_eq!(warm.summary.result_misses, 0);
    assert_eq!(warm.summary.tasks, 0, "warm run schedules nothing");

    // Disabled, cold and warm agree to the bit (RunResult is PartialEq
    // over f64 fields; any difference fails).
    let expect = plain.all().expect("plain run succeeds");
    assert_eq!(cold.all().expect("cold run succeeds"), expect);
    assert_eq!(warm.all().expect("warm run succeeds"), expect);

    set_result_cache(None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_and_truncated_entries_degrade_to_misses() {
    let _g = lock();
    let dir = temp_store("corrupt");
    set_result_cache(Some(dir.clone()));
    let cold = run();
    let expect = cold.all().expect("cold run succeeds");

    let files = entry_files(&dir);
    assert_eq!(files.len(), 2);
    // Truncate one entry mid-file, garble the other's metrics.
    let text = std::fs::read_to_string(&files[0]).expect("entry readable");
    std::fs::write(&files[0], &text[..text.len() / 2]).expect("truncate");
    std::fs::write(&files[1], "key 0000000000000000\nnot a cache entry\n").expect("garble");

    let rerun = run();
    assert_eq!(rerun.summary.result_hits, 0, "corrupt entries must not hit");
    assert_eq!(rerun.summary.result_misses, 2);
    assert_eq!(
        rerun.summary.result_invalidations, 2,
        "both corrupt entries dropped"
    );
    assert_eq!(
        rerun.all().expect("rerun succeeds"),
        expect,
        "tables unchanged"
    );

    // The store healed: a further run hits again.
    let healed = run();
    assert_eq!(healed.summary.result_hits, 2);

    set_result_cache(None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_schema_entries_are_dropped() {
    let _g = lock();
    let dir = temp_store("stale");
    set_result_cache(Some(dir.clone()));
    let cold = run();
    let expect = cold.all().expect("cold run succeeds");

    for file in entry_files(&dir) {
        let text = std::fs::read_to_string(&file).expect("entry readable");
        let stale = text.replacen("/v2", "/v0", 1);
        assert_ne!(stale, text, "schema marker must be present to stale");
        std::fs::write(&file, stale).expect("stale rewrite");
    }

    let rerun = run();
    assert_eq!(rerun.summary.result_hits, 0);
    assert!(rerun.summary.result_invalidations >= 2);
    assert_eq!(rerun.all().expect("rerun succeeds"), expect);

    set_result_cache(None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_bump_invalidates_the_whole_store() {
    let _g = lock();
    let dir = temp_store("version");
    set_result_cache(Some(dir.clone()));
    run();
    assert_eq!(entry_files(&dir).len(), 2);

    // Simulate a store written by an older build.
    std::fs::write(dir.join("VERSION"), "earsim-result-cache/v0\n").expect("stamp old version");
    set_result_cache(Some(dir.clone()));
    assert!(
        entry_files(&dir).is_empty(),
        "schema mismatch must wipe every entry"
    );
    let version = std::fs::read_to_string(dir.join("VERSION")).expect("VERSION rewritten");
    assert_eq!(version.trim(), ear_experiments::cache::CACHE_SCHEMA);

    // And the wiped store is simply cold, not broken.
    let rerun = run();
    assert_eq!(rerun.summary.result_hits, 0);
    assert_eq!(rerun.summary.result_misses, 2);

    set_result_cache(None);
    let _ = std::fs::remove_dir_all(&dir);
}
