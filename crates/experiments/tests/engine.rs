//! Integration tests of the parallel experiment engine: determinism
//! across worker counts, the once-per-workload calibration cache, and
//! per-cell panic isolation.

use ear_core::PolicySettings;
use ear_experiments::engine::{self, EngineConfig};
use ear_experiments::{run_cell, run_matrix, RunKind};
use ear_workloads::{AppClass, Platform, WorkloadTargets};

fn small_cells() -> Vec<(String, RunKind)> {
    vec![
        ("No policy".to_string(), RunKind::NoPolicy),
        (
            "Fixed 2.0".to_string(),
            RunKind::Fixed {
                cpu: 5,
                imc_ratio: Some(18),
            },
        ),
        ("ME+eU".to_string(), RunKind::me_eufs(0.03, 0.02)),
    ]
}

/// The acceptance criterion: a fixed seed gives byte-identical results no
/// matter how many workers execute the matrix.
#[test]
fn results_are_bit_identical_across_worker_counts() {
    let targets = ear_workloads::by_name("BQCD").unwrap();
    let cells = small_cells();
    let serial =
        engine::run_matrix_engine(&targets, &cells, &EngineConfig::new(2, 9001).with_jobs(1));
    let parallel =
        engine::run_matrix_engine(&targets, &cells, &EngineConfig::new(2, 9001).with_jobs(8));
    let a = serial.all().expect("all cells succeed");
    let b = parallel.all().expect("all cells succeed");
    assert_eq!(a, b, "worker count changed the results");
    // The engine really scheduled at (cell × run) granularity.
    assert_eq!(serial.summary.tasks, cells.len() * 2);
    assert_eq!(serial.summary.jobs, 1);
    assert_eq!(parallel.summary.jobs, 8);
}

/// Seeds depend on (base_seed, cell, run) — different cells draw
/// different noise, different base seeds change everything.
#[test]
fn seeds_vary_by_cell_and_base() {
    let targets = ear_workloads::by_name("BQCD").unwrap();
    let cells = vec![
        ("a".to_string(), RunKind::NoPolicy),
        ("b".to_string(), RunKind::NoPolicy),
    ];
    let run = engine::run_matrix_default(&targets, &cells, 1, 4242);
    let a = run.get(0).unwrap();
    let b = run.get(1).unwrap();
    // Same configuration, different per-cell seeds: close but not equal.
    assert_ne!(a.dc_energy_j.to_bits(), b.dc_energy_j.to_bits());
    assert!((a.time_s - b.time_s).abs() / a.time_s < 0.02);
}

/// The calibration cache: N cells (and extra `run_cell`s) of one workload
/// calibrate exactly once.
#[test]
fn calibration_runs_once_per_workload() {
    let targets = WorkloadTargets {
        name: "ENGINE-CACHE-TEST",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 1,
        ranks_per_node: 40,
        active_cores: 40,
        time_s: 60.0,
        iterations: 30,
        cpi: 0.5,
        gbs: 20.0,
        dc_power_w: 330.0,
        vpi: 0.0,
        comm_fraction: 0.05,
        mem_overlap: 0.6,
        uncore_lat_cycles: 4.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    };
    let cells = small_cells();
    let run = engine::run_matrix_engine(&targets, &cells, &EngineConfig::new(2, 77).with_jobs(4));
    assert!(run.all().is_some());
    assert_eq!(
        engine::calibration_count("ENGINE-CACHE-TEST"),
        1,
        "N cells of one workload must calibrate once"
    );
    // A later single-cell run hits the same cache entry.
    let _ = run_cell(&targets, &RunKind::NoPolicy, "again", 1, 78);
    assert_eq!(engine::calibration_count("ENGINE-CACHE-TEST"), 1);
}

/// A panicking cell fails alone: the rest of the matrix survives, and the
/// summary names the failed cell.
#[test]
fn panicking_cell_does_not_tear_down_the_matrix() {
    let targets = ear_workloads::by_name("BQCD").unwrap();
    let cells = vec![
        ("good".to_string(), RunKind::NoPolicy),
        (
            "bad".to_string(),
            RunKind::Policy {
                name: "no-such-policy".to_string(),
                settings: PolicySettings::default(),
            },
        ),
    ];
    let run = engine::run_matrix_engine(&targets, &cells, &EngineConfig::new(1, 5).with_jobs(2));
    assert!(run.get(0).is_some(), "good cell must survive");
    assert!(run.get(1).is_none(), "bad cell must fail");
    assert_eq!(run.failed_labels(), vec!["bad".to_string()]);
    assert_eq!(run.summary.tasks_failed, 1);
    assert!(
        run.cells[1]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("unknown policy"),
        "error: {:?}",
        run.cells[1].error
    );
    let json = run.summary.to_json();
    assert!(json.contains("\"failed_cells\":[\"bad\"]"), "{json}");

    // The compatible wrapper drops the failed cell instead of panicking.
    let survivors = run_matrix(&targets, &cells, 1, 5);
    assert_eq!(survivors.len(), 1);
    assert_eq!(survivors[0].label, "good");
}

/// An infeasible workload fails every cell gracefully (no panic), with
/// the calibration error recorded.
#[test]
fn infeasible_calibration_fails_cells_without_panicking() {
    let mut targets = ear_workloads::by_name("BQCD").unwrap();
    targets.name = "ENGINE-INFEASIBLE-TEST";
    targets.gbs = 50_000.0; // far beyond any achievable bandwidth
    let cells = small_cells();
    let run = engine::run_matrix_engine(&targets, &cells, &EngineConfig::new(1, 6));
    assert!(run.all().is_none());
    assert_eq!(run.failed_labels().len(), cells.len());
    assert!(run.cells[0]
        .error
        .as_deref()
        .unwrap_or("")
        .contains("calibration"));
}

/// run_cell through the engine reproduces the historical serial seed
/// derivation: two calls with the same inputs agree bit-for-bit.
#[test]
fn run_cell_is_deterministic() {
    let targets = ear_workloads::by_name("BQCD").unwrap();
    let a = run_cell(&targets, &RunKind::NoPolicy, "x", 2, 123);
    let b = run_cell(&targets, &RunKind::NoPolicy, "x", 2, 123);
    assert_eq!(a, b);
}
