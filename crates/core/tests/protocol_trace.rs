//! Integration tests for the message protocol and the trace bus: a full
//! single-node kernel run under EARL behind its daemon, with the event
//! stream captured, round-tripped through JSONL and pinned against a
//! golden file, plus the daemon's clamp decisions asserted as typed
//! protocol messages.

use ear_archsim::Cluster;
use ear_core::{DaemonReply, EarDaemon, EarMessage, Earl, EarlConfig, EarlRequest};
use ear_mpisim::run_job;
use ear_workloads::{build_job, by_name, calibrate};
use std::sync::Mutex;

/// The trace bus is process-global: tests that enable it must not
/// interleave with each other.
static BUS_LOCK: Mutex<()> = Mutex::new(());

/// Runs the single-node BT-MZ.C (OpenMP) kernel under `min_energy_eufs`
/// behind a daemon (optionally power-capped) with tracing on, returning
/// the captured stream and the daemon.
fn traced_kernel_run(cap_w: Option<f64>) -> (Vec<ear_trace::TraceRecord>, EarDaemon<Earl>) {
    let targets = by_name("BT-MZ.C (OpenMP)").expect("catalog");
    let cal = calibrate(&targets).expect("calibration");
    let job = build_job(&cal);
    let mut cluster = Cluster::new(cal.node_config.clone(), 1, 4242);
    let earl = Earl::from_registry(EarlConfig::default()).expect("built-ins");
    let daemon = match cap_w {
        Some(w) => EarDaemon::with_cap(earl, cluster.node(0), w),
        None => EarDaemon::new(earl),
    };
    let mut rts = vec![daemon];
    ear_trace::reset();
    ear_trace::set_enabled(true);
    run_job(&mut cluster, &job, &mut rts);
    ear_trace::set_enabled(false);
    let records = ear_trace::drain();
    ear_trace::reset();
    (records, rts.pop().expect("one runtime"))
}

/// The full event stream of one kernel run is pinned byte-for-byte: any
/// change to emission sites, event payloads or the JSONL rendering shows
/// up as a golden-file diff. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p ear-core --test protocol_trace`.
#[test]
fn kernel_run_trace_matches_golden_file() {
    let _guard = BUS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let (records, _) = traced_kernel_run(None);
    assert!(
        records.len() >= 20,
        "suspiciously small stream: {} events",
        records.len()
    );
    let jsonl = ear_trace::to_jsonl(&records);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_trace.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &jsonl).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — regenerate with UPDATE_GOLDEN=1 cargo test -p ear-core");
    assert_eq!(
        jsonl, golden,
        "trace stream diverged from the golden file (UPDATE_GOLDEN=1 to re-pin)"
    );
}

/// A captured stream survives the JSONL round trip losslessly.
#[test]
fn kernel_run_trace_roundtrips_through_jsonl() {
    let _guard = BUS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let (records, _) = traced_kernel_run(None);
    let parsed = ear_trace::parse_jsonl(&ear_trace::to_jsonl(&records)).expect("parse back");
    assert_eq!(parsed, records);
}

/// Without a powercap the daemon is a pure pass-through: every EARL
/// request is granted verbatim and no message classifies as an override.
#[test]
fn capless_daemon_grants_every_request_verbatim() {
    let _guard = BUS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let (_, daemon) = traced_kernel_run(None);
    let messages = daemon.messages();
    let requests: Vec<_> = messages
        .iter()
        .filter_map(|m| match m {
            EarMessage::Request(EarlRequest::SetFreqs(f)) => Some(*f),
            _ => None,
        })
        .collect();
    let grants: Vec<_> = messages
        .iter()
        .filter_map(|m| match m {
            EarMessage::Reply(DaemonReply::FreqsApplied {
                granted, clamped, ..
            }) => Some((*granted, *clamped)),
            _ => None,
        })
        .collect();
    assert!(!requests.is_empty(), "EARL never requested frequencies");
    assert_eq!(requests.len(), grants.len());
    for (req, (granted, clamped)) in requests.iter().zip(&grants) {
        assert_eq!(req, granted, "pass-through daemon altered a request");
        assert!(!clamped);
    }
    assert!(messages.iter().all(|m| !m.is_override()));
    assert_eq!(daemon.clamps(), 0);
}

/// A tight powercap turns daemon decisions into first-class protocol
/// messages: clamped grants, powercap verdicts and enforcement overrides
/// all appear in the log, and the EARL side records the *granted*
/// frequencies, not its requested ones.
#[test]
fn capped_daemon_clamps_are_typed_protocol_messages() {
    let _guard = BUS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let (records, daemon) = traced_kernel_run(Some(240.0));
    let messages = daemon.messages();

    // The daemon evaluated its powercap and issued verdicts.
    assert!(
        messages
            .iter()
            .any(|m| matches!(m, EarMessage::PowercapVerdict { .. })),
        "no powercap verdicts in the log"
    );
    // At least one decision overrode the library.
    assert!(
        messages.iter().any(|m| m.is_override()),
        "cap at 240 W never overrode anything"
    );
    assert!(daemon.clamps() > 0);

    // Clamped grants carry both sides of the negotiation.
    let clamped_grant = messages.iter().find_map(|m| match m {
        EarMessage::Reply(DaemonReply::FreqsApplied {
            requested,
            granted,
            clamped: true,
        }) => Some((*requested, *granted)),
        _ => None,
    });
    if let Some((req, granted)) = clamped_grant {
        assert_ne!(req, granted);
        assert!(granted.cpu >= req.cpu, "clamp raised the pstate floor");
    }

    // The trace stream saw daemon-side events too.
    assert!(records
        .iter()
        .any(|r| matches!(r.event, ear_trace::TraceEvent::PowercapVerdict { .. })));

    // EARL's recorded frequency changes are the granted values: each one
    // respects the daemon ceiling the moment enforcement was active.
    let granted_changes = daemon.inner().freq_changes();
    assert!(!granted_changes.is_empty());
}

/// The daemon accepts cluster-manager commands over the same protocol and
/// logs them next to the node-level traffic.
#[test]
fn gm_commands_join_the_message_log() {
    let targets = by_name("BT-MZ.C (OpenMP)").expect("catalog");
    let cal = calibrate(&targets).expect("calibration");
    let cluster = Cluster::new(cal.node_config.clone(), 1, 7);
    let earl = Earl::from_registry(EarlConfig::default()).expect("built-ins");
    let mut daemon = EarDaemon::with_cap(earl, cluster.node(0), 400.0);
    daemon.handle_command(&ear_core::GmCommand {
        node: 0,
        cap_w: 350.0,
    });
    assert!(matches!(
        daemon.messages().last(),
        Some(EarMessage::GmCommand(ear_core::GmCommand { node: 0, cap_w })) if *cap_w == 350.0
    ));
}
