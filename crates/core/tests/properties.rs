//! Property-based tests for EARL's models and policies: the invariants
//! that hold for *any* signature, not just the calibrated workloads.

use ear_archsim::{NodeConfig, PstateTable};
use ear_core::policy::api::{ImcRange, ImcSearch, PolicyCtx, PolicySettings, PolicyState};
use ear_core::policy::min_energy::select_min_energy_pstate;
use ear_core::policy::min_time::select_min_time_pstate;
use ear_core::{Avx512Model, EnergyModel, MinEnergyEufs, PowerPolicy, Signature};
use proptest::prelude::*;

fn arb_signature() -> impl Strategy<Value = Signature> {
    (
        5.0..30.0f64,    // window
        0.2..4.0f64,     // cpi
        0.0..0.2f64,     // tpi
        0.0..200.0f64,   // gbs
        0.0..1.0f64,     // vpi
        250.0..400.0f64, // dc power
        1.0e6..2.4e6f64, // avg cpu khz
        1.2e6..2.4e6f64, // avg imc khz
    )
        .prop_map(|(w, cpi, tpi, gbs, vpi, p, fc, fu)| Signature {
            window_s: w,
            iterations: 5,
            cpi,
            tpi,
            gbs,
            vpi,
            dc_power_w: p,
            pkg_power_w: p * 0.7,
            avg_cpu_khz: fc,
            avg_imc_khz: fu,
            ..Default::default()
        })
}

fn with_ctx<T>(settings: &PolicySettings, f: impl FnOnce(&PolicyCtx<'_>) -> T) -> T {
    let pstates = PstateTable::xeon_gold_6148();
    let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
    let ctx = PolicyCtx {
        pstates: &pstates,
        uncore_min_ratio: 12,
        uncore_max_ratio: 24,
        uncore_domains: 1,
        model: &model,
        settings,
    };
    f(&ctx)
}

proptest! {
    /// Model projections are finite, positive, and the identity projection
    /// is exact — for any signature.
    #[test]
    fn projections_are_sane(sig in arb_signature(), to in 0usize..16) {
        let pstates = PstateTable::xeon_gold_6148();
        let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
        let p = model.project(&sig, 1, to, &pstates);
        prop_assert!(p.time_s.is_finite() && p.time_s > 0.0);
        prop_assert!(p.dc_power_w.is_finite() && p.dc_power_w > 0.0);
        let id = model.project(&sig, 1, 1, &pstates);
        if sig.vpi == 0.0 {
            // Scalar code: same-pstate projection is the identity.
            prop_assert!((id.time_s - sig.window_s).abs() < 1e-9);
            prop_assert!((id.dc_power_w - sig.dc_power_w).abs() < 1e-9);
        } else {
            // Vectorised code measured "at pstate 1" actually ran at the
            // licence frequency; the blend therefore predicts >= the
            // measured window when asked for pstate 1 again. (EARL avoids
            // the asymmetry by projecting from the *measured* pstate.)
            prop_assert!(id.time_s >= sig.window_s - 1e-9);
        }
    }

    /// Projected time never decreases when slowing down.
    #[test]
    fn projected_time_monotone(sig in arb_signature(), ps in 1usize..15) {
        let pstates = PstateTable::xeon_gold_6148();
        let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
        let t_fast = model.project(&sig, 1, ps, &pstates).time_s;
        let t_slow = model.project(&sig, 1, ps + 1, &pstates).time_s;
        prop_assert!(t_slow >= t_fast - 1e-9);
    }

    /// min_energy always returns a pstate within [default, slowest] and
    /// never predicts beyond the time threshold.
    #[test]
    fn min_energy_selection_is_bounded(sig in arb_signature()) {
        let settings = PolicySettings::default();
        with_ctx(&settings, |ctx| {
            let sel = select_min_energy_pstate(&sig, 1, ctx);
            prop_assert!(sel >= 1 && sel <= ctx.pstates.slowest());
            let t_ref = ctx.model.project(&sig, 1, 1, ctx.pstates).time_s;
            let t_sel = ctx.model.project(&sig, 1, sel, ctx.pstates).time_s;
            prop_assert!(t_sel <= t_ref * (1.0 + settings.cpu_policy_th) + 1e-9);
            Ok(())
        })?;
    }

    /// A looser cpu threshold never selects a *faster* pstate.
    #[test]
    fn min_energy_threshold_monotone(sig in arb_signature()) {
        let tight = PolicySettings { cpu_policy_th: 0.02, ..Default::default() };
        let loose = PolicySettings { cpu_policy_th: 0.10, ..Default::default() };
        let sel_tight = with_ctx(&tight, |c| select_min_energy_pstate(&sig, 1, c));
        let sel_loose = with_ctx(&loose, |c| select_min_energy_pstate(&sig, 1, c));
        prop_assert!(sel_loose >= sel_tight);
    }

    /// min_time never selects slower than its starting default.
    #[test]
    fn min_time_never_decelerates(sig in arb_signature(), def in 1usize..10) {
        let settings = PolicySettings { def_pstate: def, ..Default::default() };
        with_ctx(&settings, |ctx| {
            let sel = select_min_time_pstate(&sig, def, ctx);
            prop_assert!(sel <= def);
            Ok(())
        })?;
    }

    /// The eUFS state machine, fed ANY sequence of signatures, terminates
    /// within a bounded number of steps, never emits uncore limits outside
    /// the platform range, and never raises the minimum above the maximum.
    #[test]
    fn eufs_always_terminates_within_bounds(
        sigs in proptest::collection::vec(arb_signature(), 1..40),
        search_linear in any::<bool>(),
        range_mode in 0u8..3,
    ) {
        let settings = PolicySettings {
            imc_search: if search_linear { ImcSearch::Linear } else { ImcSearch::HwGuided },
            imc_range: match range_mode {
                0 => ImcRange::MaxOnly,
                1 => ImcRange::Pinned,
                _ => ImcRange::Band(2),
            },
            ..Default::default()
        };
        with_ctx(&settings, |ctx| {
            let mut policy = MinEnergyEufs::default();
            let mut continues_since_restart = 0u32;
            for sig in &sigs {
                let was_selected = policy.selected_cpu().is_some();
                let (freqs, state) = policy.node_policy(sig, ctx);
                prop_assert!(freqs.imc_min_ratio >= 12);
                prop_assert!(freqs.imc_max_ratio <= 24);
                prop_assert!(freqs.imc_min_ratio <= freqs.imc_max_ratio);
                prop_assert!(freqs.cpu >= 1 && freqs.cpu <= ctx.pstates.slowest());
                if was_selected && policy.selected_cpu().is_none() {
                    // Phase-change restart: the step budget resets.
                    continues_since_restart = 0;
                }
                if state == PolicyState::Continue {
                    continues_since_restart += 1;
                } else {
                    break;
                }
                // Between restarts the search is bounded by
                // 1 (cpu) + 1 (ref) + 12 (full ratio span) + slack.
                prop_assert!(continues_since_restart <= 16,
                    "{continues_since_restart} continues without restart");
            }
            Ok(())
        })?;
    }

    /// Feeding the SAME signature repeatedly converges (Ready) and the
    /// converged frequencies are stable thereafter.
    #[test]
    fn eufs_converges_on_steady_signature(sig in arb_signature()) {
        let settings = PolicySettings::default();
        with_ctx(&settings, |ctx| {
            let mut policy = MinEnergyEufs::default();
            let mut state = PolicyState::Continue;
            let mut guard = 0;
            let mut last = None;
            while state == PolicyState::Continue {
                let (freqs, s) = policy.node_policy(&sig, ctx);
                state = s;
                last = Some(freqs);
                guard += 1;
                prop_assert!(guard < 25, "did not converge");
            }
            prop_assert!(last.is_some());
            // Validation with the same signature holds.
            prop_assert!(policy.validate(&sig, ctx));
            Ok(())
        })?;
    }

    /// Signature change detection is symmetric enough: a signature never
    /// "changes significantly" from itself, and scaling CPI by more than
    /// the threshold always triggers.
    #[test]
    fn signature_change_detection(sig in arb_signature(), th in 0.05..0.3f64) {
        prop_assert!(!sig.changed_significantly(&sig, th));
        let mut scaled = sig;
        scaled.cpi = sig.cpi * (1.0 + th * 1.5);
        prop_assert!(sig.changed_significantly(&scaled, th));
    }
}
