//! EAR's monitoring service.
//!
//! Besides optimisation, EAR continuously *monitors*: per-node power and
//! frequency time series feed the accounting database and the sysadmin
//! dashboards (paper §III lists Monitoring as the first of EAR's four
//! services). [`Monitored`] wraps any [`NodeRuntime`] — EARL or the null
//! runtime — and records one sample per iteration without disturbing the
//! wrapped runtime's behaviour.

use crate::protocol::{DaemonEndpoint, DaemonReply, EarlRequest};
use crate::signature::rel_diff;
use ear_archsim::{CounterSnapshot, Node, SimTime};
use ear_mpisim::{MpiEvent, NodeRuntime};

/// One monitoring sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorSample {
    /// Sample timestamp.
    pub time: SimTime,
    /// Average DC power since the previous sample (W); 0 until the INM
    /// counter has published inside the window.
    pub dc_power_w: f64,
    /// Average CPU frequency since the previous sample (GHz).
    pub avg_cpu_ghz: f64,
    /// Average IMC frequency since the previous sample (GHz).
    pub avg_imc_ghz: f64,
    /// Memory bandwidth since the previous sample (GB/s).
    pub gbs: f64,
}

/// Summary statistics over a monitoring series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorSummary {
    /// Number of samples.
    pub samples: usize,
    /// Minimum observed power (W).
    pub min_power_w: f64,
    /// Maximum observed power (W).
    pub max_power_w: f64,
    /// Time-weighted average power (W).
    pub avg_power_w: f64,
    /// Largest power swing between consecutive samples, relative.
    pub max_power_step: f64,
}

/// A monitoring wrapper around another runtime.
pub struct Monitored<R> {
    inner: R,
    last: Option<CounterSnapshot>,
    series: Vec<MonitorSample>,
}

impl<R> Monitored<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            last: None,
            series: Vec::new(),
        }
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The recorded series.
    pub fn series(&self) -> &[MonitorSample] {
        &self.series
    }

    /// Summary statistics (None until at least one powered sample exists).
    pub fn summary(&self) -> Option<MonitorSummary> {
        let powered: Vec<&MonitorSample> =
            self.series.iter().filter(|s| s.dc_power_w > 0.0).collect();
        if powered.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut max_step = 0.0f64;
        let mut prev: Option<f64> = None;
        for s in &powered {
            min = min.min(s.dc_power_w);
            max = max.max(s.dc_power_w);
            sum += s.dc_power_w;
            if let Some(p) = prev {
                max_step = max_step.max(rel_diff(p, s.dc_power_w));
            }
            prev = Some(s.dc_power_w);
        }
        Some(MonitorSummary {
            samples: powered.len(),
            min_power_w: min,
            max_power_w: max,
            avg_power_w: sum / powered.len() as f64,
            max_power_step: max_step,
        })
    }

    fn sample(&mut self, node: &Node) {
        let now = node.snapshot();
        if let Some(last) = self.last.as_ref() {
            let d = now.delta(last);
            if d.seconds > 0.0 {
                self.series.push(MonitorSample {
                    time: now.time,
                    dc_power_w: d.dc_power_w(),
                    avg_cpu_ghz: d.avg_cpu_ghz(),
                    avg_imc_ghz: d.avg_imc_ghz(),
                    gbs: d.gbs(),
                });
            }
        }
        self.last = Some(now);
    }
}

impl<R: DaemonEndpoint> DaemonEndpoint for Monitored<R> {
    // A monitor between EARL and the daemon forwards the mailbox so the
    // daemon can wrap any stack of runtimes.
    fn drain_requests(&mut self) -> Vec<EarlRequest> {
        self.inner.drain_requests()
    }

    fn deliver(&mut self, reply: &DaemonReply) {
        self.inner.deliver(reply);
    }
}

impl<R: NodeRuntime> NodeRuntime for Monitored<R> {
    fn on_job_start(&mut self, node: &mut Node, job_name: &str, ranks_on_node: usize) {
        self.series.clear();
        self.last = Some(node.snapshot());
        self.inner.on_job_start(node, job_name, ranks_on_node);
    }

    fn on_mpi_call(&mut self, node: &mut Node, event: &MpiEvent) {
        self.inner.on_mpi_call(node, event);
    }

    fn on_tick(&mut self, node: &mut Node) {
        // Sample first so the wrapped runtime's frequency changes show up
        // from the *next* window on, like an external meter.
        self.sample(node);
        self.inner.on_tick(node);
    }

    fn on_job_end(&mut self, node: &mut Node) {
        self.sample(node);
        self.inner.on_job_end(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_archsim::{Cluster, NodeConfig};
    use ear_mpisim::{run_job, NullRuntime};
    use ear_workloads::{build_job, by_name, calibrate};

    #[test]
    fn records_series_and_summary() {
        let targets = by_name("BT-MZ.C (OpenMP)").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), 1, 55);
        let mut rts = vec![Monitored::new(NullRuntime)];
        run_job(&mut cluster, &job, &mut rts);
        let mon = &rts[0];
        assert!(mon.series().len() > 50, "samples {}", mon.series().len());
        let summary = mon.summary().expect("powered samples");
        assert!((summary.avg_power_w - 332.0).abs() < 20.0, "{summary:?}");
        // Steady workload: power is flat.
        assert!(summary.max_power_step < 0.1, "{summary:?}");
    }

    #[test]
    fn observes_the_policy_changing_frequencies() {
        let targets = by_name("BT-MZ.C (OpenMP)").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), 1, 56);
        let earl = crate::Earl::from_registry(crate::EarlConfig::default()).unwrap();
        let mut rts = vec![crate::EarDaemon::new(Monitored::new(earl))];
        run_job(&mut cluster, &job, &mut rts);
        let mon = rts[0].inner();
        // The monitor must see the uncore drop over the job.
        let first = mon.series().iter().find(|s| s.avg_imc_ghz > 0.0).unwrap();
        let last = mon.series().last().unwrap();
        assert!(first.avg_imc_ghz > 2.3, "start {}", first.avg_imc_ghz);
        assert!(last.avg_imc_ghz < 2.2, "end {}", last.avg_imc_ghz);
        // And the wrapped EARL still produced its record.
        assert!(mon.inner().job_record().is_some());
    }

    #[test]
    fn empty_series_has_no_summary() {
        let m: Monitored<NullRuntime> = Monitored::new(NullRuntime);
        assert!(m.summary().is_none());
        let _ = NodeConfig::sd530_6148();
    }
}
