//! # ear-core — EARL, the EAR runtime library, with explicit UFS
//!
//! The paper's contribution: a transparent runtime that detects an
//! application's iterative structure (DynAIS over intercepted MPI calls),
//! computes per-loop signatures, and applies pluggable energy policies that
//! now select **both** the CPU pstate and the IMC (uncore) frequency limits
//! on Intel Skylake — the `min_energy_to_solution` policy extended with the
//! CPU_FREQ_SEL → COMP_REF → IMC_FREQ_SEL state machine of the paper's
//! Fig. 2.
//!
//! Layout:
//! * [`signature`] — the loop signature and its change detection.
//! * [`models`] — the default (Bell/Brochard) energy model and the paper's
//!   AVX512 blended model (§V-A).
//! * [`policy`] — the plugin API and the policies: `monitoring`,
//!   `min_energy`, `min_energy_eufs` (the contribution), `min_time` and
//!   `min_time_eufs` (the announced future work).
//! * [`state`] — the EARL state machine (Code 1).
//! * [`earl`] — the runtime binding everything to a simulated node through
//!   the PMPI interception interface.
//! * [`manager`] — frequency actuation through MSR writes.
//! * [`protocol`] — the typed EARL↔EARD↔EARGM message protocol.
//! * [`eard`] / [`eargm`] — the node daemon (sole MSR-writing layer) and
//!   the cluster energy manager.
//! * [`accounting`] / [`powercap`] — EAR's accounting and energy-control
//!   services.

#![warn(missing_docs)]

pub mod accounting;
pub mod conf;
pub mod eard;
pub mod eargm;
pub mod earl;
pub mod fit;
pub mod manager;
pub mod models;
pub mod monitor;
pub mod policy;
pub mod powercap;
pub mod protocol;
pub mod signature;
pub mod state;

pub use accounting::{AccountingDb, JobRecord, SharedAccounting};
pub use conf::{parse_ear_conf, render_ear_conf, ConfError};
pub use ear_archsim::MAX_UNCORE_DOMAINS;
pub use ear_errors::{EarError, EarResult};
pub use eard::EarDaemon;
pub use eargm::{ClusterEnergyManager, GmStep};
pub use earl::{Earl, EarlConfig};
pub use fit::{fit_poly2, residuals, FitResidual, FittedSurface, Poly2};
pub use models::{
    learn_model_params, Avx512Model, DefaultModel, EnergyModel, ModelFactory, ModelParams,
    ModelRegistry, Projection,
};
pub use monitor::{MonitorSample, MonitorSummary, Monitored};
pub use policy::{
    DomainLimits, DomainSearch, Duf, Fitted, ImcRange, ImcSearch, MinEnergy, MinEnergyEufs,
    MinTime, MinTimeEufs, Monitoring, NodeFreqs, PolicyCtx, PolicyRegistry, PolicySettings,
    PolicyState, PowerPolicy,
};
pub use powercap::{distribute_budget, CapAction, PowercapController};
pub use protocol::{DaemonEndpoint, DaemonReply, EarMessage, EarlRequest, GmCommand, GmReport};
pub use signature::Signature;
pub use state::{EarState, EarlStateMachine, StateOutcome};
