//! EARGM — the cluster-level global energy manager.
//!
//! In the EAR architecture, node daemons (EARD) enforce per-node caps and a
//! global manager (EARGM) keeps the *cluster* within its contracted power
//! budget by redistributing caps between nodes by demand. This module
//! packages the [`PowercapController`] mechanism into that cluster-level
//! loop.

use crate::policy::api::NodeFreqs;
use crate::powercap::{distribute_budget, CapAction, PowercapController};
use crate::protocol::{EarMessage, GmCommand, GmReport};
use ear_archsim::Node;
use ear_trace::{self as trace, TraceEvent, TraceRecord};

/// One evaluation step's outcome.
#[derive(Debug, Clone)]
pub struct GmStep {
    /// Total observed cluster power (W).
    pub cluster_power_w: f64,
    /// Per-node caps assigned this step (W).
    pub assigned_caps_w: Vec<f64>,
    /// Per-node actions taken.
    pub actions: Vec<CapAction>,
    /// Per-node frequency ceilings after the step.
    pub ceilings: Vec<NodeFreqs>,
}

/// The global manager.
#[derive(Debug)]
pub struct ClusterEnergyManager {
    budget_w: f64,
    controllers: Vec<PowercapController>,
    steps: u64,
    log: Vec<EarMessage>,
}

impl ClusterEnergyManager {
    /// Creates a manager for `nodes` with a cluster budget.
    pub fn new(nodes: &[&Node], budget_w: f64) -> Self {
        assert!(!nodes.is_empty(), "a cluster manager needs nodes");
        assert!(budget_w > 0.0);
        let per = budget_w / nodes.len() as f64;
        Self {
            budget_w,
            controllers: nodes
                .iter()
                .map(|n| PowercapController::new(n, per))
                .collect(),
            steps: 0,
            log: Vec::new(),
        }
    }

    /// The cluster budget (W).
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// Changes the cluster budget (contract renegotiation, demand response
    /// events).
    pub fn set_budget_w(&mut self, budget_w: f64) {
        assert!(budget_w > 0.0);
        self.budget_w = budget_w;
    }

    /// Evaluation steps performed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// One management step: redistribute the budget by recent demand and
    /// let every node controller adjust its ceiling. The caller applies
    /// the returned ceilings (typically as a constraint on EARL's policy).
    pub fn step(&mut self, recent_node_powers_w: &[f64]) -> GmStep {
        assert_eq!(recent_node_powers_w.len(), self.controllers.len());
        self.steps += 1;
        let assigned = distribute_budget(self.budget_w, recent_node_powers_w);
        let mut actions = Vec::with_capacity(self.controllers.len());
        let mut ceilings = Vec::with_capacity(self.controllers.len());
        for ((ctl, &cap), &power) in self
            .controllers
            .iter_mut()
            .zip(&assigned)
            .zip(recent_node_powers_w)
        {
            ctl.set_cap_w(cap);
            actions.push(ctl.evaluate(power));
            ceilings.push(ctl.ceiling());
        }
        let cluster_power_w: f64 = recent_node_powers_w.iter().sum();
        let budget_w = self.budget_w;
        trace::emit_with(|| TraceRecord {
            time_s: 0.0,
            node: 0,
            event: TraceEvent::GmStep {
                cluster_power_w,
                budget_w,
            },
        });
        GmStep {
            cluster_power_w,
            assigned_caps_w: assigned,
            actions,
            ceilings,
        }
    }

    /// The message-protocol entry point: consume one [`GmReport`] per node
    /// and answer with the cap command for every node. Reports and
    /// commands are kept in the message log.
    ///
    /// # Panics
    ///
    /// Panics when a report names a node this manager does not control or
    /// the report set does not cover every node exactly once.
    pub fn handle_reports(&mut self, reports: &[GmReport]) -> Vec<GmCommand> {
        assert_eq!(
            reports.len(),
            self.controllers.len(),
            "one report per node expected"
        );
        let mut powers = vec![f64::NAN; self.controllers.len()];
        for r in reports {
            assert!(r.node < powers.len(), "report for unknown node {}", r.node);
            assert!(
                powers[r.node].is_nan(),
                "duplicate report for node {}",
                r.node
            );
            powers[r.node] = r.avg_power_w;
            self.log.push(EarMessage::GmReport(*r));
        }
        let step = self.step(&powers);
        let commands: Vec<GmCommand> = step
            .assigned_caps_w
            .iter()
            .enumerate()
            .map(|(node, &cap_w)| GmCommand { node, cap_w })
            .collect();
        for c in &commands {
            self.log.push(EarMessage::GmCommand(*c));
        }
        commands
    }

    /// Every protocol message exchanged, oldest first.
    pub fn messages(&self) -> &[EarMessage] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_archsim::NodeConfig;

    fn nodes(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| Node::new(NodeConfig::sd530_6148(), i as u64))
            .collect()
    }

    #[test]
    fn within_budget_nothing_happens() {
        let ns = nodes(4);
        let refs: Vec<&Node> = ns.iter().collect();
        let mut gm = ClusterEnergyManager::new(&refs, 1400.0);
        let step = gm.step(&[320.0, 320.0, 320.0, 320.0]);
        assert!((step.cluster_power_w - 1280.0).abs() < 1e-9);
        assert!(step.actions.iter().all(|a| *a == CapAction::Ok));
        assert!(step
            .ceilings
            .iter()
            .all(|c| c.imc_max_ratio == 24 && c.cpu == 1));
    }

    #[test]
    fn over_budget_throttles_heaviest_nodes_most() {
        let ns = nodes(2);
        let refs: Vec<&Node> = ns.iter().collect();
        let mut gm = ClusterEnergyManager::new(&refs, 600.0);
        // Node 0 draws far more: its proportional cap is higher, but it is
        // also the one over its cap.
        for _ in 0..6 {
            gm.step(&[400.0, 250.0]);
        }
        let step = gm.step(&[400.0, 250.0]);
        // Node 0's assigned cap: 600·400/650 ≈ 369 < 400 ⇒ throttled.
        assert!(step.ceilings[0].imc_max_ratio < 24);
        // Node 1: cap ≈ 231 < 250 ⇒ also trimmed, but less over.
        assert!((step.assigned_caps_w[0] - 369.2).abs() < 1.0);
    }

    #[test]
    fn budget_increase_relaxes() {
        let ns = nodes(1);
        let refs: Vec<&Node> = ns.iter().collect();
        let mut gm = ClusterEnergyManager::new(&refs, 250.0);
        for _ in 0..8 {
            gm.step(&[330.0]);
        }
        let throttled = gm.step(&[330.0]).ceilings[0];
        assert!(throttled.imc_max_ratio < 24);
        // Budget doubles: ceilings lift over the following steps.
        gm.set_budget_w(500.0);
        let mut relaxed = throttled;
        for _ in 0..20 {
            relaxed = gm.step(&[330.0]).ceilings[0];
        }
        assert!(relaxed.imc_max_ratio > throttled.imc_max_ratio || relaxed.cpu < throttled.cpu);
    }

    #[test]
    #[should_panic(expected = "needs nodes")]
    fn empty_cluster_rejected() {
        let _ = ClusterEnergyManager::new(&[], 100.0);
    }

    #[test]
    fn reports_in_commands_out() {
        let ns = nodes(2);
        let refs: Vec<&Node> = ns.iter().collect();
        let mut gm = ClusterEnergyManager::new(&refs, 600.0);
        // Reports may arrive in any node order.
        let commands = gm.handle_reports(&[
            GmReport {
                node: 1,
                avg_power_w: 250.0,
            },
            GmReport {
                node: 0,
                avg_power_w: 400.0,
            },
        ]);
        assert_eq!(commands.len(), 2);
        assert_eq!(commands[0].node, 0);
        assert!((commands[0].cap_w - 369.2).abs() < 1.0);
        // The exchange is auditable: 2 reports in, 2 commands out.
        let reports = gm
            .messages()
            .iter()
            .filter(|m| matches!(m, EarMessage::GmReport(_)))
            .count();
        let cmds = gm
            .messages()
            .iter()
            .filter(|m| matches!(m, EarMessage::GmCommand(_)))
            .count();
        assert_eq!((reports, cmds), (2, 2));
    }
}
