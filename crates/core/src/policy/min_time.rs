//! `min_time_to_solution`, and its explicit-UFS variant (the paper's
//! future work, §VIII).
//!
//! min_time starts from a configured default pstate *below* nominal and
//! climbs toward faster pstates as long as the model predicts the extra
//! frequency actually buys time: moving one pstate up (+100 MHz) must
//! reduce predicted time by at least `min_time_eff_gain` × the relative
//! frequency increase. CPU-bound codes climb to the top; memory-bound
//! codes stop early (the frequency doesn't help them).
//!
//! The eUFS variant appends the same iterative IMC stage as
//! `min_energy_eufs` — §VIII announces exactly this integration — and
//! additionally supports the "increase" search direction mentioned there:
//! if lowering the uncore immediately penalises the application and the
//! hardware is not already at the platform maximum, the search raises the
//! *minimum* ratio instead, pinning the uncore above the firmware's choice
//! for communication/latency-sensitive codes.

use super::api::{DomainLimits, ImcRange, NodeFreqs, PolicyCtx, PolicyState, PowerPolicy};
use super::domains::{hw_guided_starts, DomainSearch};
use super::min_energy::measured_pstate;
use crate::signature::Signature;
use ear_archsim::Pstate;

/// Selects the min_time pstate: the fastest pstate (turbo included) whose
/// marginal time gain stays efficient.
///
/// Efficiency of a step is the achieved time gain relative to the *ideal*
/// gain a fully frequency-scalable application would get from the same
/// step (`1 − f_cur/f_faster`); this makes the criterion independent of
/// step size (the turbo bucket is a 1.3 GHz jump on the 6148).
pub fn select_min_time_pstate(sig: &Signature, from: Pstate, ctx: &PolicyCtx<'_>) -> Pstate {
    let start = ctx.settings.def_pstate;
    let mut current = start;
    // Walk toward faster pstates (lower index), turbo included.
    while current > 0 {
        let faster = current - 1;
        let t_cur = ctx.model.project(sig, from, current, ctx.pstates).time_s;
        let t_fast = ctx.model.project(sig, from, faster, ctx.pstates).time_s;
        let ideal_gain = 1.0 - ctx.pstates.ghz(current) / ctx.pstates.ghz(faster);
        let time_gain = (t_cur - t_fast) / t_cur;
        if ideal_gain <= 0.0 || time_gain < ctx.settings.min_time_eff_gain * ideal_gain {
            break;
        }
        current = faster;
    }
    current
}

/// `min_time_to_solution` with hardware-managed uncore.
#[derive(Debug, Default, Clone)]
pub struct MinTime {
    ref_sig: Option<Signature>,
    selected: Option<Pstate>,
    /// The first validation after convergence replaces the reference with
    /// a signature measured *at the new frequency* — rate metrics (GB/s)
    /// legitimately change with the frequency itself and must not count
    /// as an application phase change.
    settled: bool,
}

impl MinTime {
    /// The selected pstate, if converged.
    pub fn selected(&self) -> Option<Pstate> {
        self.selected
    }
}

impl PowerPolicy for MinTime {
    fn name(&self) -> &'static str {
        "min_time"
    }

    fn node_policy(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState) {
        let from = measured_pstate(sig, ctx);
        let sel = select_min_time_pstate(sig, from, ctx);
        self.selected = Some(sel);
        self.ref_sig = Some(*sig);
        let (imc_min, imc_max) = ctx.full_uncore_range();
        (
            NodeFreqs {
                cpu: sel,
                imc_min_ratio: imc_min,
                imc_max_ratio: imc_max,
                // Release every domain to firmware on multi-domain parts
                // (the legacy scalar write only reaches domain 0).
                imc_dom: if ctx.uncore_domains > 1 {
                    DomainLimits::uniform(ctx.uncore_domains, imc_min, imc_max)
                } else {
                    DomainLimits::LEGACY
                },
            },
            PolicyState::Ready,
        )
    }

    fn validate(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> bool {
        if !self.settled {
            self.ref_sig = Some(*sig);
            self.settled = true;
            return true;
        }
        match self.ref_sig {
            Some(ref r) if r.changed_significantly(sig, ctx.settings.sig_change_th) => {
                self.reset();
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    fn reset(&mut self) {
        self.ref_sig = None;
        self.selected = None;
        self.settled = false;
    }
}

/// The uncore search direction of the eUFS stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Lower the maximum ratio (power savings; same as min_energy_eufs).
    Decrease,
    /// Raise the minimum ratio (performance; §VIII's "increasing the
    /// uncore frequency" strategy).
    Increase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    CpuFreqSel,
    ImcFreqSel,
}

/// `min_time_to_solution` + explicit UFS (future work implemented).
#[derive(Debug, Clone)]
pub struct MinTimeEufs {
    state: State,
    selected_cpu: Option<Pstate>,
    imc_ref: Option<Signature>,
    direction: Direction,
    cur_min_ratio: Option<u8>,
    cur_max_ratio: Option<u8>,
    /// The multi-domain descent (Decrease direction on >1-domain parts).
    dom: Option<DomainSearch>,
    stable_sig: Option<Signature>,
}

impl Default for MinTimeEufs {
    fn default() -> Self {
        Self {
            state: State::CpuFreqSel,
            selected_cpu: None,
            imc_ref: None,
            direction: Direction::Decrease,
            cur_min_ratio: None,
            cur_max_ratio: None,
            dom: None,
            stable_sig: None,
        }
    }
}

impl MinTimeEufs {
    fn freqs(&self, ctx: &PolicyCtx<'_>) -> NodeFreqs {
        if let Some(ds) = self.dom.as_ref() {
            let l = ds.limits(
                ImcRange::MaxOnly,
                ctx.uncore_min_ratio,
                ctx.uncore_max_ratio,
            );
            return NodeFreqs {
                cpu: self.selected_cpu.unwrap_or(ctx.settings.def_pstate),
                imc_min_ratio: l.min[0],
                imc_max_ratio: l.max[0],
                imc_dom: l,
            };
        }
        let imc_min = self.cur_min_ratio.unwrap_or(ctx.uncore_min_ratio);
        let imc_max = self.cur_max_ratio.unwrap_or(ctx.uncore_max_ratio);
        NodeFreqs {
            cpu: self.selected_cpu.unwrap_or(ctx.settings.def_pstate),
            imc_min_ratio: imc_min,
            imc_max_ratio: imc_max,
            // The Increase direction raises the minimum on every domain
            // alike (latency help is wanted everywhere traffic flows).
            imc_dom: if ctx.uncore_domains > 1 {
                DomainLimits::uniform(ctx.uncore_domains, imc_min, imc_max)
            } else {
                DomainLimits::LEGACY
            },
        }
    }
}

impl PowerPolicy for MinTimeEufs {
    fn name(&self) -> &'static str {
        "min_time_eufs"
    }

    fn node_policy(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState) {
        match self.state {
            State::CpuFreqSel => {
                let from = measured_pstate(sig, ctx);
                let sel = select_min_time_pstate(sig, from, ctx);
                self.selected_cpu = Some(sel);
                self.state = State::ImcFreqSel;
                self.imc_ref = Some(*sig);
                // Memory-sensitive signatures (the frequency climb stopped
                // early) pin the uncore UP; compute-bound ones scavenge it
                // DOWN.
                let hw_ratio = (sig.avg_imc_khz / 100_000.0).round() as u8;
                let hw_ratio = hw_ratio.clamp(ctx.uncore_min_ratio, ctx.uncore_max_ratio);
                if sel >= ctx.settings.def_pstate && sig.tpi > 0.05 {
                    self.direction = Direction::Increase;
                    let raised = (hw_ratio + 1).min(ctx.uncore_max_ratio);
                    self.cur_min_ratio = Some(raised);
                    self.cur_max_ratio = Some(ctx.uncore_max_ratio);
                } else {
                    self.direction = Direction::Decrease;
                    if ctx.uncore_domains > 1 {
                        // Per-domain descent from each die's settled ratio.
                        let starts =
                            hw_guided_starts(sig, ctx.uncore_min_ratio, ctx.uncore_max_ratio);
                        let mut ds =
                            DomainSearch::begin(ctx.uncore_domains, &starts, ctx.uncore_min_ratio);
                        ds.observe(sig, sig, ctx.settings.unc_policy_th);
                        self.dom = Some(ds);
                    } else {
                        self.cur_min_ratio = Some(ctx.uncore_min_ratio);
                        self.cur_max_ratio =
                            Some(hw_ratio.saturating_sub(1).max(ctx.uncore_min_ratio));
                    }
                }
                (self.freqs(ctx), PolicyState::Continue)
            }
            State::ImcFreqSel => {
                let th = ctx.settings.unc_policy_th;
                let Some(r) = self.imc_ref else {
                    // No reference yet (state injected externally): take
                    // this signature as the reference and hold.
                    self.imc_ref = Some(*sig);
                    return (self.freqs(ctx), PolicyState::Continue);
                };
                let worse = sig.cpi > r.cpi * (1.0 + th) || sig.gbs < r.gbs * (1.0 - th);
                match self.direction {
                    Direction::Decrease => {
                        if let Some(mut ds) = self.dom {
                            let done = ds.observe(sig, &r, th);
                            self.dom = Some(ds);
                            if done {
                                self.stable_sig = Some(*sig);
                                return (self.freqs(ctx), PolicyState::Ready);
                            }
                            return (self.freqs(ctx), PolicyState::Continue);
                        }
                        let cur = self.cur_max_ratio.unwrap_or(ctx.uncore_max_ratio);
                        if worse {
                            self.cur_max_ratio = Some((cur + 1).min(ctx.uncore_max_ratio));
                            self.stable_sig = Some(*sig);
                            (self.freqs(ctx), PolicyState::Ready)
                        } else if cur <= ctx.uncore_min_ratio {
                            self.stable_sig = Some(*sig);
                            (self.freqs(ctx), PolicyState::Ready)
                        } else {
                            self.cur_max_ratio = Some(cur - 1);
                            (self.freqs(ctx), PolicyState::Continue)
                        }
                    }
                    Direction::Increase => {
                        // Raising the minimum can only help or be neutral;
                        // stop when time stops improving (CPI stops
                        // dropping) or the ceiling is reached.
                        let cur = self.cur_min_ratio.unwrap_or(ctx.uncore_min_ratio);
                        let improved = sig.cpi < r.cpi * (1.0 - th / 2.0);
                        if cur >= ctx.uncore_max_ratio || !improved {
                            self.stable_sig = Some(*sig);
                            (self.freqs(ctx), PolicyState::Ready)
                        } else {
                            self.imc_ref = Some(*sig);
                            self.cur_min_ratio = Some(cur + 1);
                            (self.freqs(ctx), PolicyState::Continue)
                        }
                    }
                }
            }
        }
    }

    fn validate(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> bool {
        match self.stable_sig {
            Some(ref stable) if stable.changed_significantly(sig, ctx.settings.sig_change_th) => {
                *self = Self::default();
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    fn imc_ceiling(&self) -> Option<u8> {
        self.dom
            .as_ref()
            .map(DomainSearch::ceiling)
            .or(self.cur_max_ratio)
    }

    fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Avx512Model;
    use crate::policy::api::PolicySettings;
    use ear_archsim::{NodeConfig, PstateTable};

    fn fixture(settings: PolicySettings) -> (PstateTable, Avx512Model, PolicySettings) {
        (
            PstateTable::xeon_gold_6148(),
            Avx512Model::for_node(&NodeConfig::sd530_6148()),
            settings,
        )
    }

    fn ctx<'a>(p: &'a PstateTable, m: &'a Avx512Model, s: &'a PolicySettings) -> PolicyCtx<'a> {
        PolicyCtx {
            pstates: p,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: m,
            settings: s,
        }
    }

    fn cpu_bound() -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 0.4,
            tpi: 0.001,
            gbs: 8.0,
            vpi: 0.0,
            dc_power_w: 320.0,
            pkg_power_w: 235.0,
            avg_cpu_khz: 2.1e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    fn mem_bound() -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 3.1,
            tpi: 0.36,
            gbs: 177.0,
            vpi: 0.0,
            dc_power_w: 340.0,
            pkg_power_w: 250.0,
            avg_cpu_khz: 2.1e6,
            avg_imc_khz: 2.0e6,
            ..Default::default()
        }
    }

    #[test]
    fn cpu_bound_climbs_to_turbo() {
        // With a default pstate of 4 (2.1 GHz), compute-bound code climbs
        // all the way (turbo included) — every step buys ~proportional time.
        let (p, m, s) = fixture(PolicySettings {
            def_pstate: 4,
            ..Default::default()
        });
        let c = ctx(&p, &m, &s);
        let sel = select_min_time_pstate(&cpu_bound(), 4, &c);
        assert_eq!(sel, 0, "expected turbo, got pstate {sel}");
    }

    #[test]
    fn memory_bound_stops_early() {
        let (p, m, s) = fixture(PolicySettings {
            def_pstate: 4,
            ..Default::default()
        });
        let c = ctx(&p, &m, &s);
        let sel = select_min_time_pstate(&mem_bound(), 4, &c);
        assert!(sel >= 3, "memory-bound should not climb: got {sel}");
    }

    #[test]
    fn min_time_is_one_shot() {
        let (p, m, s) = fixture(PolicySettings {
            def_pstate: 4,
            ..Default::default()
        });
        let c = ctx(&p, &m, &s);
        let mut pol = MinTime::default();
        let (_, state) = pol.node_policy(&cpu_bound(), &c);
        assert_eq!(state, PolicyState::Ready);
        // First validation settles the reference at the new frequency.
        assert!(pol.validate(&cpu_bound(), &c));
        assert!(pol.validate(&cpu_bound(), &c));
        assert!(!pol.validate(&mem_bound(), &c));
    }

    #[test]
    fn eufs_variant_scavenges_uncore_for_cpu_bound() {
        let (p, m, s) = fixture(PolicySettings {
            def_pstate: 4,
            ..Default::default()
        });
        let c = ctx(&p, &m, &s);
        let mut pol = MinTimeEufs::default();
        let (freqs, state) = pol.node_policy(&cpu_bound(), &c);
        assert_eq!(state, PolicyState::Continue);
        assert_eq!(freqs.cpu, 0);
        // Decrease direction: max lowered below the HW selection.
        assert_eq!(freqs.imc_max_ratio, 23);
        assert_eq!(freqs.imc_min_ratio, 12);
    }

    #[test]
    fn eufs_variant_pins_uncore_up_for_memory_bound() {
        let (p, m, s) = fixture(PolicySettings {
            def_pstate: 4,
            ..Default::default()
        });
        let c = ctx(&p, &m, &s);
        let mut pol = MinTimeEufs::default();
        let (freqs, state) = pol.node_policy(&mem_bound(), &c);
        assert_eq!(state, PolicyState::Continue);
        // Increase direction: minimum raised above the HW's 2.0 GHz.
        assert_eq!(freqs.imc_min_ratio, 21);
        assert_eq!(freqs.imc_max_ratio, 24);
    }

    #[test]
    fn increase_direction_stops_when_no_improvement() {
        let (p, m, s) = fixture(PolicySettings {
            def_pstate: 4,
            ..Default::default()
        });
        let c = ctx(&p, &m, &s);
        let mut pol = MinTimeEufs::default();
        pol.node_policy(&mem_bound(), &c);
        // Second signature: CPI did not improve — converge.
        let (_, state) = pol.node_policy(&mem_bound(), &c);
        assert_eq!(state, PolicyState::Ready);
    }

    #[test]
    fn eufs_decrease_goes_per_domain_on_dual_die_parts() {
        let (p, m, s) = fixture(PolicySettings {
            def_pstate: 4,
            ..Default::default()
        });
        let mut c = ctx(&p, &m, &s);
        c.uncore_domains = 2;
        let mut pol = MinTimeEufs::default();
        // CPU-bound with all traffic on domain 0, domain 1 settled low.
        let sig = Signature {
            imc_domains: 2,
            imc_dom_khz: [2.4e6, 1.8e6, 0.0, 0.0],
            gbs_dom: [8.0, 0.0, 0.0, 0.0],
            ..cpu_bound()
        };
        let (freqs, state) = pol.node_policy(&sig, &c);
        assert_eq!(state, PolicyState::Continue);
        assert!(freqs.imc_dom.is_per_domain());
        // Each domain stepped below its own settled ratio.
        assert_eq!(freqs.imc_dom.max[0], 23);
        assert_eq!(freqs.imc_dom.max[1], 17);
        // With no penalty ever, both descend to the floor and converge.
        let mut state = state;
        let mut guard = 0;
        while state == PolicyState::Continue {
            state = pol.node_policy(&sig, &c).1;
            guard += 1;
            assert!(guard < 40);
        }
        assert_eq!(pol.imc_ceiling(), Some(12));
    }

    #[test]
    fn eufs_increase_raises_every_domain_alike() {
        let (p, m, s) = fixture(PolicySettings {
            def_pstate: 4,
            ..Default::default()
        });
        let mut c = ctx(&p, &m, &s);
        c.uncore_domains = 2;
        let mut pol = MinTimeEufs::default();
        let sig = Signature {
            imc_domains: 2,
            imc_dom_khz: [2.0e6, 2.0e6, 0.0, 0.0],
            gbs_dom: [90.0, 87.0, 0.0, 0.0],
            ..mem_bound()
        };
        let (freqs, _) = pol.node_policy(&sig, &c);
        assert!(freqs.imc_dom.is_per_domain());
        assert_eq!(freqs.imc_dom.min[0], 21);
        assert_eq!(freqs.imc_dom.min[1], 21);
        assert_eq!(freqs.imc_dom.max[0], 24);
    }

    #[test]
    fn decrease_direction_terminates() {
        let (p, m, s) = fixture(PolicySettings {
            def_pstate: 4,
            ..Default::default()
        });
        let c = ctx(&p, &m, &s);
        let mut pol = MinTimeEufs::default();
        let sig = cpu_bound();
        let mut state = pol.node_policy(&sig, &c).1;
        let mut guard = 0;
        while state == PolicyState::Continue {
            state = pol.node_policy(&sig, &c).1;
            guard += 1;
            assert!(guard < 40);
        }
    }
}
