//! The energy-policy plugin API.
//!
//! EAR loads policies as plugins implementing a fixed symbol table
//! (`policy_ops` in the paper's Code 1). [`PowerPolicy`] is that API;
//! [`PolicyRegistry`] is the plugin mechanism — policies register factories
//! under their names and EARL instantiates them by configuration string,
//! exactly how a sysadmin selects a policy in `ear.conf`.

use crate::models::EnergyModel;
use crate::signature::Signature;
use ear_archsim::{Pstate, PstateTable, MAX_UNCORE_DOMAINS};
use std::collections::HashMap;
use std::fmt;

/// Per-domain uncore ratio limits carried alongside the legacy scalar pair
/// in [`NodeFreqs`]. `count == 0` means "legacy single knob": the scalar
/// `imc_min_ratio`/`imc_max_ratio` apply through `MSR_UNCORE_RATIO_LIMIT`
/// and the arrays are ignored. With `count > 0`, entry `d` is programmed
/// into domain `d`'s TPMI ratio-limit register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomainLimits {
    /// Domains explicitly addressed (0 = legacy scalar path).
    pub count: u8,
    /// Per-domain minimum ratios (100 MHz units).
    pub min: [u8; MAX_UNCORE_DOMAINS],
    /// Per-domain maximum ratios (100 MHz units).
    pub max: [u8; MAX_UNCORE_DOMAINS],
}

impl DomainLimits {
    /// The legacy marker: no per-domain addressing.
    pub const LEGACY: Self = Self {
        count: 0,
        min: [0; MAX_UNCORE_DOMAINS],
        max: [0; MAX_UNCORE_DOMAINS],
    };

    /// The same (min, max) pair on each of `count` domains.
    pub fn uniform(count: usize, min: u8, max: u8) -> Self {
        let count = count.min(MAX_UNCORE_DOMAINS);
        let mut l = Self::LEGACY;
        l.count = count as u8;
        for d in 0..count {
            l.min[d] = min;
            l.max[d] = max;
        }
        l
    }

    /// Whether per-domain addressing is active.
    pub fn is_per_domain(&self) -> bool {
        self.count > 0
    }

    /// Domains explicitly addressed.
    pub fn count(&self) -> usize {
        (self.count as usize).min(MAX_UNCORE_DOMAINS)
    }
}

/// The frequency settings a policy selects for a node: one CPU pstate
/// (applied to every core) and the IMC ratio limits written to
/// `MSR_UNCORE_RATIO_LIMIT` (paper §V-B: eUFS changes the maximum, never
/// the minimum). On multi-domain parts `imc_dom` addresses each die's
/// TPMI register pair individually; the scalar pair then mirrors domain 0
/// for legacy consumers (traces, logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFreqs {
    /// CPU pstate for all cores.
    pub cpu: Pstate,
    /// Uncore minimum ratio (100 MHz units).
    pub imc_min_ratio: u8,
    /// Uncore maximum ratio (100 MHz units).
    pub imc_max_ratio: u8,
    /// Per-domain limits (`DomainLimits::LEGACY` for the scalar path).
    pub imc_dom: DomainLimits,
}

impl NodeFreqs {
    /// Clamps this request under a daemon ceiling: the CPU may not be
    /// faster than the ceiling's pstate (faster = smaller index) and no
    /// uncore limit may exceed the ceiling's maximum ratio. The per-domain
    /// block, when present, is clamped entry-wise.
    pub fn clamped_under(&self, ceiling: &NodeFreqs) -> NodeFreqs {
        let mut out = NodeFreqs {
            cpu: self.cpu.max(ceiling.cpu),
            imc_min_ratio: self.imc_min_ratio.min(ceiling.imc_max_ratio),
            imc_max_ratio: self.imc_max_ratio.min(ceiling.imc_max_ratio),
            imc_dom: self.imc_dom,
        };
        for d in 0..out.imc_dom.count() {
            out.imc_dom.min[d] = out.imc_dom.min[d].min(ceiling.imc_max_ratio);
            out.imc_dom.max[d] = out.imc_dom.max[d].min(ceiling.imc_max_ratio);
        }
        out
    }
}

/// What a policy returns to EARL (paper Code 1): `Ready` means the policy
/// converged and EARL moves to validation; `Continue` means re-apply the
/// policy at the next signature (iterative policies — the eUFS search).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyState {
    /// Converged; EARL transitions to `VALIDATE_POLICY`.
    Ready,
    /// Iterating; EARL re-invokes `node_policy` on the next signature.
    Continue,
}

/// How the eUFS search programs the uncore ratio range (§V-B: "different
/// alternatives could be applied such as setting max and min to the same
/// values, defining a given range (0.1 GHz for example) between max and
/// min, or reducing only the maximum"). The paper pre-evaluated these and
/// shipped `MaxOnly`; the others are provided for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImcRange {
    /// Lower only the maximum; the hardware may still dip below it in a
    /// different application phase (the paper's choice).
    MaxOnly,
    /// Pin min == max: the firmware control loop is fully overridden.
    Pinned,
    /// Keep a fixed band of `n` ratio steps between min and max.
    Band(u8),
}

/// The IMC search strategies of §V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImcSearch {
    /// Start from the frequency the hardware control loop settled at
    /// (the paper's default: faster convergence).
    HwGuided,
    /// Start from the platform maximum ("Not-Guided", Fig. 5's ME+NG-U).
    Linear,
}

/// Policy settings (EAR: runtime flags or `ear.conf` defaults).
#[derive(Debug, Clone)]
pub struct PolicySettings {
    /// Maximum predicted time penalty accepted by the CPU stage
    /// (`cpu_policy_th`; the paper evaluates 3 % and 5 %).
    pub cpu_policy_th: f64,
    /// Extra penalty budget for the uncore stage (`unc_policy_th`; the
    /// paper evaluates 0–3 %, default 2 %). Bounds CPI and GB/s drift.
    pub unc_policy_th: f64,
    /// IMC search strategy.
    pub imc_search: ImcSearch,
    /// How the selected uncore ceiling maps to the (min, max) limits.
    pub imc_range: ImcRange,
    /// Signature-change threshold before the policy is re-applied (the
    /// paper accepts 15 %).
    pub sig_change_th: f64,
    /// Default pstate (min_energy's reference: the nominal frequency).
    pub def_pstate: Pstate,
    /// min_time_to_solution: minimum efficiency gain per 100 MHz that
    /// justifies a faster pstate.
    pub min_time_eff_gain: f64,
    /// Search each uncore frequency domain independently on multi-domain
    /// nodes (default). When `false` the policies see a single knob even
    /// on per-die hardware: the `ImcFreqSel` scalar search runs once and
    /// EARD applies its ceiling package-wide — the baseline the per-domain
    /// experiment table compares against. Irrelevant on 1-domain nodes.
    pub per_domain_ufs: bool,
    /// Fitted T/P surfaces for the one-shot `fitted` policy, produced by
    /// `earsim sweep`. `None` (the default) makes `fitted` hold the
    /// default frequencies; the other policies ignore this field.
    pub fitted: Option<crate::fit::FittedSurface>,
    /// Node DC power cap (W) for the `powercap` policy: the budget share
    /// EARGM granted this node. `None` (the default) means uncapped; the
    /// optimisation policies ignore this field.
    pub cap_w: Option<f64>,
}

impl Default for PolicySettings {
    fn default() -> Self {
        Self {
            cpu_policy_th: 0.05,
            unc_policy_th: 0.02,
            imc_search: ImcSearch::HwGuided,
            imc_range: ImcRange::MaxOnly,
            sig_change_th: 0.15,
            def_pstate: 1,
            min_time_eff_gain: 0.5,
            per_domain_ufs: true,
            fitted: None,
            cap_w: None,
        }
    }
}

impl ImcRange {
    /// Maps a selected maximum ratio to the (min, max) pair written to
    /// `MSR_UNCORE_RATIO_LIMIT`, within the platform range.
    pub fn limits_for(self, max_ratio: u8, platform_min: u8, platform_max: u8) -> (u8, u8) {
        let max = max_ratio.clamp(platform_min, platform_max);
        let min = match self {
            ImcRange::MaxOnly => platform_min,
            ImcRange::Pinned => max,
            ImcRange::Band(n) => max.saturating_sub(n).max(platform_min),
        };
        (min, max)
    }
}

/// Everything a policy invocation can see.
pub struct PolicyCtx<'a> {
    /// The platform pstate table.
    pub pstates: &'a PstateTable,
    /// Platform uncore minimum ratio.
    pub uncore_min_ratio: u8,
    /// Platform uncore maximum ratio.
    pub uncore_max_ratio: u8,
    /// Uncore frequency domains per socket (1 = the legacy single knob;
    /// policies search each domain independently above that).
    pub uncore_domains: usize,
    /// The energy model for projections.
    pub model: &'a dyn EnergyModel,
    /// Policy settings.
    pub settings: &'a PolicySettings,
}

impl<'a> PolicyCtx<'a> {
    /// The hardware-managed uncore range (no software constraint).
    pub fn full_uncore_range(&self) -> (u8, u8) {
        (self.uncore_min_ratio, self.uncore_max_ratio)
    }

    /// Default frequencies: default pstate, hardware-managed uncore (all
    /// domains released to firmware on multi-domain parts).
    pub fn default_freqs(&self) -> NodeFreqs {
        NodeFreqs {
            cpu: self.settings.def_pstate,
            imc_min_ratio: self.uncore_min_ratio,
            imc_max_ratio: self.uncore_max_ratio,
            imc_dom: if self.uncore_domains > 1 {
                DomainLimits::uniform(
                    self.uncore_domains,
                    self.uncore_min_ratio,
                    self.uncore_max_ratio,
                )
            } else {
                DomainLimits::LEGACY
            },
        }
    }
}

impl fmt::Debug for PolicyCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyCtx")
            .field("uncore_min_ratio", &self.uncore_min_ratio)
            .field("uncore_max_ratio", &self.uncore_max_ratio)
            .field("uncore_domains", &self.uncore_domains)
            .field("settings", &self.settings)
            .finish_non_exhaustive()
    }
}

/// The policy plugin API (the paper's `policy_ops`).
pub trait PowerPolicy: Send {
    /// The policy's registered name.
    fn name(&self) -> &'static str;

    /// Selects node frequencies for a new signature. Returning
    /// [`PolicyState::Continue`] makes EARL re-invoke on the next
    /// signature (iterative policies).
    fn node_policy(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState);

    /// Validates that the application still behaves as when the policy
    /// converged. Returning `false` sends EARL back to `NODE_POLICY` with
    /// default frequencies (paper Code 1). Implementations reset their
    /// internal state when invalidating.
    fn validate(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> bool;

    /// The frequencies EARL applies while the policy restarts.
    fn default_freqs(&self, ctx: &PolicyCtx<'_>) -> NodeFreqs {
        ctx.default_freqs()
    }

    /// The current uncore ceiling of an in-progress IMC search, if this
    /// policy runs one (trace/introspection only — never drives control).
    fn imc_ceiling(&self) -> Option<u8> {
        None
    }

    /// Clears all internal state (job start).
    fn reset(&mut self);
}

/// Factory type stored in the registry.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn PowerPolicy> + Send + Sync>;

/// The plugin registry: name → factory.
pub struct PolicyRegistry {
    factories: HashMap<&'static str, PolicyFactory>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            factories: HashMap::new(),
        }
    }

    /// A registry with every built-in policy pre-registered, mirroring the
    /// plugins EAR ships with (plus this paper's and its future work).
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register("monitoring", || {
            Box::new(crate::policy::monitoring::Monitoring::default())
        });
        r.register("min_energy", || {
            Box::new(crate::policy::min_energy::MinEnergy::default())
        });
        r.register("min_energy_eufs", || {
            Box::new(crate::policy::min_energy_eufs::MinEnergyEufs::default())
        });
        r.register("min_time", || {
            Box::new(crate::policy::min_time::MinTime::default())
        });
        r.register("duf", || Box::new(crate::policy::duf::Duf::default()));
        r.register("min_time_eufs", || {
            Box::new(crate::policy::min_time::MinTimeEufs::default())
        });
        r.register("fitted", || {
            Box::new(crate::policy::fitted::Fitted::default())
        });
        r.register("powercap", || {
            Box::new(crate::policy::powercap::Powercap::default())
        });
        r.register("powercap_pstate", || {
            Box::new(crate::policy::powercap::Powercap::pstate_only())
        });
        r
    }

    /// Registers a factory under `name` (user plugins included).
    pub fn register(
        &mut self,
        name: &'static str,
        factory: impl Fn() -> Box<dyn PowerPolicy> + Send + Sync + 'static,
    ) {
        self.factories.insert(name, Box::new(factory));
    }

    /// Instantiates a policy by name.
    pub fn create(&self, name: &str) -> Option<Box<dyn PowerPolicy>> {
        self.factories.get(name).map(|f| f())
    }

    /// Registered policy names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut v: Vec<_> = self.factories.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_builtin_policies() {
        let r = PolicyRegistry::with_builtins();
        for name in [
            "monitoring",
            "min_energy",
            "min_energy_eufs",
            "min_time",
            "min_time_eufs",
            "duf",
            "fitted",
            "powercap",
            "powercap_pstate",
        ] {
            let p = r.create(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(p.name(), name);
        }
        assert!(r.create("nope").is_none());
    }

    #[test]
    fn registry_accepts_user_plugins() {
        let mut r = PolicyRegistry::new();
        r.register("monitoring", || {
            Box::new(crate::policy::monitoring::Monitoring::default())
        });
        assert_eq!(r.names(), vec!["monitoring"]);
        assert!(r.create("monitoring").is_some());
    }

    #[test]
    fn imc_range_modes() {
        // MaxOnly: the paper's choice — minimum untouched.
        assert_eq!(ImcRange::MaxOnly.limits_for(20, 12, 24), (12, 20));
        // Pinned: min == max, firmware fully overridden.
        assert_eq!(ImcRange::Pinned.limits_for(20, 12, 24), (20, 20));
        // Band: a window below the ceiling.
        assert_eq!(ImcRange::Band(2).limits_for(20, 12, 24), (18, 20));
        // Band clamps at the platform floor.
        assert_eq!(ImcRange::Band(5).limits_for(14, 12, 24), (12, 14));
        // Ceiling itself clamps into the platform range.
        assert_eq!(ImcRange::MaxOnly.limits_for(30, 12, 24), (12, 24));
        assert_eq!(ImcRange::Pinned.limits_for(5, 12, 24), (12, 12));
    }

    #[test]
    fn domain_limits_legacy_and_uniform() {
        assert!(!DomainLimits::LEGACY.is_per_domain());
        assert_eq!(DomainLimits::LEGACY.count(), 0);
        let u = DomainLimits::uniform(2, 12, 24);
        assert!(u.is_per_domain());
        assert_eq!(u.count(), 2);
        assert_eq!((u.min[0], u.max[0]), (12, 24));
        assert_eq!((u.min[1], u.max[1]), (12, 24));
        assert_eq!((u.min[2], u.max[2]), (0, 0), "unused entries stay zero");
        // Over-wide requests clamp to the supported maximum.
        assert_eq!(
            DomainLimits::uniform(99, 12, 24).count(),
            MAX_UNCORE_DOMAINS
        );
    }

    #[test]
    fn clamping_covers_the_domain_block() {
        let ceiling = NodeFreqs {
            cpu: 2,
            imc_min_ratio: 12,
            imc_max_ratio: 20,
            imc_dom: DomainLimits::LEGACY,
        };
        let req = NodeFreqs {
            cpu: 0,
            imc_min_ratio: 12,
            imc_max_ratio: 24,
            imc_dom: DomainLimits::uniform(2, 14, 24),
        };
        let got = req.clamped_under(&ceiling);
        assert_eq!(got.cpu, 2, "cpu clamped to the slower ceiling pstate");
        assert_eq!(got.imc_max_ratio, 20);
        assert_eq!(got.imc_dom.count(), 2);
        assert_eq!((got.imc_dom.min[0], got.imc_dom.max[0]), (14, 20));
        assert_eq!((got.imc_dom.min[1], got.imc_dom.max[1]), (14, 20));
        // A request already under the ceiling is untouched.
        let tame = NodeFreqs {
            cpu: 3,
            imc_min_ratio: 12,
            imc_max_ratio: 18,
            imc_dom: DomainLimits::LEGACY,
        };
        assert_eq!(tame.clamped_under(&ceiling), tame);
    }

    #[test]
    fn default_settings_match_paper() {
        let s = PolicySettings::default();
        assert!((s.cpu_policy_th - 0.05).abs() < 1e-12);
        assert!((s.unc_policy_th - 0.02).abs() < 1e-12);
        assert!((s.sig_change_th - 0.15).abs() < 1e-12);
        assert_eq!(s.imc_search, ImcSearch::HwGuided);
        assert_eq!(s.imc_range, ImcRange::MaxOnly);
        assert_eq!(s.def_pstate, 1);
    }
}
