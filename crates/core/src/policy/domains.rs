//! The shared per-domain IMC descent engine.
//!
//! On multi-die parts every uncore domain has its own ratio-limit register
//! and its own memory traffic share, so the eUFS search of §V-B
//! generalises to N concurrent descents: each domain steps its maximum
//! down by 0.1 GHz per signature until *its* traffic shows a bandwidth
//! penalty, while one global CPI gate protects the application as a whole
//! (CPI cannot be attributed to a single die). The three searching
//! policies (`min_energy_eufs`, `min_time_eufs`, `duf`) share this engine
//! so their convergence semantics stay aligned:
//!
//! * **per-domain bandwidth gate** — domain `d` reverts its last step and
//!   freezes when `gbs_dom[d]` falls below `ref · (1 − th)`;
//! * **global CPI gate** — a CPI excursion beyond `ref · (1 + th)` reverts
//!   every *traffic-bearing* domain that stepped in the previous round and
//!   freezes them (the shared convergence gate: among domains that serve
//!   memory traffic, blame cannot be localised, so every suspect backs
//!   off; a domain with no reference traffic charges no uncore latency
//!   and is exonerated);
//! * the search reports converged only when *all* domains froze or reached
//!   the platform floor.
//!
//! An idle domain (no traffic routed to it) never trips its bandwidth gate
//! and descends to the floor — exactly the behaviour that makes per-die
//! scaling pay on GPU-offload hosts where one die fronts the accelerator
//! and the other runs compute-idle.

use crate::policy::api::{DomainLimits, ImcRange};
use crate::signature::Signature;
use ear_archsim::MAX_UNCORE_DOMAINS;

/// One in-flight multi-domain descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainSearch {
    n: u8,
    floor: u8,
    cur_max: [u8; MAX_UNCORE_DOMAINS],
    start: [u8; MAX_UNCORE_DOMAINS],
    frozen: [bool; MAX_UNCORE_DOMAINS],
    /// Domains that stepped down in the previous round (the global CPI
    /// gate's revert set).
    stepped: [bool; MAX_UNCORE_DOMAINS],
}

impl DomainSearch {
    /// Begins a descent over `n` domains from the per-domain `starts`
    /// (the hardware's settled ratios under HW-guided search, the platform
    /// maximum under linear search), bounded below by `floor`.
    pub fn begin(n: usize, starts: &[u8], floor: u8) -> Self {
        let n = n.clamp(1, MAX_UNCORE_DOMAINS);
        let mut s = Self {
            n: n as u8,
            floor,
            cur_max: [0; MAX_UNCORE_DOMAINS],
            start: [0; MAX_UNCORE_DOMAINS],
            frozen: [false; MAX_UNCORE_DOMAINS],
            stepped: [false; MAX_UNCORE_DOMAINS],
        };
        for d in 0..n {
            let at = starts.get(d).copied().unwrap_or(floor).max(floor);
            s.start[d] = at;
            s.cur_max[d] = at;
            s.frozen[d] = at <= floor;
        }
        s
    }

    /// Domains under search.
    pub fn domain_count(&self) -> usize {
        self.n as usize
    }

    /// Whether every domain froze (converged or at the floor).
    pub fn converged(&self) -> bool {
        self.frozen[..self.n as usize].iter().all(|&f| f)
    }

    /// Current per-domain maximum ratios.
    pub fn current_max(&self) -> &[u8] {
        &self.cur_max[..self.n as usize]
    }

    /// The widest current maximum — the scalar ceiling reported through
    /// the legacy [`PowerPolicy::imc_ceiling`] introspection hook.
    ///
    /// [`PowerPolicy::imc_ceiling`]: crate::policy::api::PowerPolicy::imc_ceiling
    pub fn ceiling(&self) -> u8 {
        self.cur_max[..self.n as usize]
            .iter()
            .copied()
            .max()
            .unwrap_or(self.floor)
    }

    /// Takes the descent one signature forward. `reference` is the
    /// signature captured when the descent started; `th` the uncore
    /// penalty budget (`unc_policy_th`). Returns true when the search has
    /// fully converged (the caller then stops re-applying it).
    pub fn observe(&mut self, sig: &Signature, reference: &Signature, th: f64) -> bool {
        let n = self.n as usize;
        // Global CPI gate: revert last round's steps, freeze the steppers.
        // Blame is bounded by traffic: a domain that served no memory
        // transactions in the reference window charges no uncore latency,
        // so it cannot have caused the excursion — idle steppers are
        // exonerated and keep descending towards the floor.
        if sig.cpi > reference.cpi * (1.0 + th) {
            let mut blamed = false;
            for d in 0..n {
                let busy = reference.gbs_dom.get(d).copied().unwrap_or(0.0) > 0.0;
                if self.stepped[d] && !self.frozen[d] && busy {
                    self.cur_max[d] = (self.cur_max[d] + 1).min(self.start[d]);
                    self.frozen[d] = true;
                    blamed = true;
                }
            }
            if blamed {
                self.stepped = [false; MAX_UNCORE_DOMAINS];
                return self.converged();
            }
            // Only idle domains stepped: the excursion cannot stem from
            // the descent — fall through to the normal round.
        }
        // Per-domain bandwidth gate.
        for d in 0..n {
            if self.frozen[d] {
                continue;
            }
            let r = reference.gbs_dom.get(d).copied().unwrap_or(0.0);
            let got = sig.gbs_dom.get(d).copied().unwrap_or(0.0);
            if r > 0.0 && got < r * (1.0 - th) {
                self.cur_max[d] = (self.cur_max[d] + 1).min(self.start[d]);
                self.frozen[d] = true;
            }
        }
        // Unfrozen domains take their next step.
        self.stepped = [false; MAX_UNCORE_DOMAINS];
        for d in 0..n {
            if self.frozen[d] {
                continue;
            }
            if self.cur_max[d] <= self.floor {
                self.frozen[d] = true;
            } else {
                self.cur_max[d] -= 1;
                self.stepped[d] = true;
            }
        }
        self.converged()
    }

    /// Maps the current per-domain ceilings through the configured range
    /// mode into the [`DomainLimits`] block of a frequency request.
    pub fn limits(&self, range: ImcRange, platform_min: u8, platform_max: u8) -> DomainLimits {
        let mut l = DomainLimits::LEGACY;
        l.count = self.n;
        for d in 0..self.n as usize {
            let (min, max) = range.limits_for(self.cur_max[d], platform_min, platform_max);
            l.min[d] = min;
            l.max[d] = max;
        }
        l
    }
}

/// Per-domain search start ratios: the hardware's settled per-domain
/// frequencies rounded to 100 MHz ratios, clamped into the platform range
/// (HW-guided); callers pass the platform maximum per domain for linear.
pub fn hw_guided_starts(
    sig: &Signature,
    platform_min: u8,
    platform_max: u8,
) -> [u8; MAX_UNCORE_DOMAINS] {
    let mut starts = [platform_max; MAX_UNCORE_DOMAINS];
    for (d, out) in starts.iter_mut().enumerate().take(sig.domain_count()) {
        let ratio = (sig.imc_dom_khz[d] / 100_000.0).round() as u8;
        *out = ratio.clamp(platform_min, platform_max);
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom_sig(cpi: f64, gbs_dom: [f64; MAX_UNCORE_DOMAINS]) -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi,
            gbs: gbs_dom.iter().sum(),
            imc_domains: 2,
            imc_dom_khz: [2.4e6, 2.4e6, 0.0, 0.0],
            gbs_dom,
            ..Default::default()
        }
    }

    #[test]
    fn idle_domain_descends_to_floor_while_busy_domain_trips() {
        let reference = dom_sig(0.5, [40.0, 0.0, 0.0, 0.0]);
        let mut s = DomainSearch::begin(2, &[24, 24], 12);
        assert!(!s.converged());
        let mut sig = reference;
        let mut rounds = 0;
        while !s.observe(&sig, &reference, 0.02) {
            rounds += 1;
            assert!(rounds < 40, "no convergence");
            // The busy domain's bandwidth collapses once its max dips
            // under 20; the idle domain never shows a penalty.
            sig = if s.current_max()[0] < 20 {
                dom_sig(0.5, [35.0, 0.0, 0.0, 0.0])
            } else {
                reference
            };
        }
        // Busy domain reverted to ~20; idle domain reached the floor.
        assert!(s.current_max()[0] >= 19, "busy: {:?}", s.current_max());
        assert_eq!(s.current_max()[1], 12, "idle: {:?}", s.current_max());
        assert_eq!(s.ceiling(), s.current_max()[0]);
    }

    #[test]
    fn global_cpi_gate_reverts_last_steppers_only() {
        let reference = dom_sig(0.5, [20.0, 20.0, 0.0, 0.0]);
        let mut s = DomainSearch::begin(2, &[24, 24], 12);
        // Round 1: both step 24 → 23.
        assert!(!s.observe(&reference, &reference, 0.02));
        assert_eq!(s.current_max(), &[23, 23]);
        // CPI excursion: both stepped last round, both revert and freeze.
        let hurt = dom_sig(0.6, [20.0, 20.0, 0.0, 0.0]);
        assert!(s.observe(&hurt, &reference, 0.02));
        assert_eq!(s.current_max(), &[24, 24]);
        assert!(s.converged());
    }

    #[test]
    fn per_domain_bandwidth_gate_freezes_one_side() {
        let reference = dom_sig(0.5, [20.0, 20.0, 0.0, 0.0]);
        let mut s = DomainSearch::begin(2, &[24, 24], 12);
        s.observe(&reference, &reference, 0.02); // both → 23
                                                 // Domain 0's bandwidth collapses; domain 1 unaffected.
        let lop = dom_sig(0.5, [18.0, 20.0, 0.0, 0.0]);
        assert!(!s.observe(&lop, &reference, 0.02));
        assert_eq!(s.current_max()[0], 24, "reverted");
        assert_eq!(s.current_max()[1], 22, "kept stepping");
    }

    #[test]
    fn starts_at_floor_converge_immediately() {
        let s = DomainSearch::begin(2, &[12, 12], 12);
        assert!(s.converged());
        assert_eq!(s.current_max(), &[12, 12]);
    }

    #[test]
    fn limits_map_through_range_modes() {
        let s = DomainSearch::begin(2, &[20, 16], 12);
        let l = s.limits(ImcRange::MaxOnly, 12, 24);
        assert_eq!(l.count(), 2);
        assert_eq!((l.min[0], l.max[0]), (12, 20));
        assert_eq!((l.min[1], l.max[1]), (12, 16));
        let p = s.limits(ImcRange::Pinned, 12, 24);
        assert_eq!((p.min[0], p.max[0]), (20, 20));
        assert_eq!((p.min[1], p.max[1]), (16, 16));
    }

    #[test]
    fn hw_guided_starts_read_per_domain_frequencies() {
        let mut sig = dom_sig(0.5, [20.0, 0.0, 0.0, 0.0]);
        sig.imc_dom_khz = [2.4e6, 1.53e6, 0.0, 0.0];
        let starts = hw_guided_starts(&sig, 12, 24);
        assert_eq!(starts[0], 24);
        assert_eq!(starts[1], 15);
        // Entries past the signature's domain count stay at the maximum.
        assert_eq!(starts[2], 24);
    }
}
