//! Energy policies and the plugin API.

pub mod api;
pub mod domains;
pub mod duf;
pub mod fitted;
pub mod min_energy;
pub mod min_energy_eufs;
pub mod min_time;
pub mod monitoring;
pub mod powercap;

pub use api::{
    DomainLimits, ImcRange, ImcSearch, NodeFreqs, PolicyCtx, PolicyRegistry, PolicySettings,
    PolicyState, PowerPolicy,
};
pub use domains::DomainSearch;
pub use duf::Duf;
pub use fitted::Fitted;
pub use min_energy::MinEnergy;
pub use min_energy_eufs::MinEnergyEufs;
pub use min_time::{MinTime, MinTimeEufs};
pub use monitoring::Monitoring;
pub use powercap::{warm_start_under_cap, Powercap};
