//! A controller-based UFS baseline: DUF (Dulong et al., the paper's
//! ref \[19\]), reimplemented against the same policy API.
//!
//! The paper's §VII contrasts its model+threshold approach with
//! controller-based runtimes that "try to lower the uncore, then decide
//! whether this change has achieved the expected effect and decide
//! whether to keep lowering it, keep it, or raise it". DUF uses
//! application throughput (we use CPI, the inverse signal) and memory
//! bandwidth with a tolerated-slowdown budget, and *re-probes*
//! periodically to follow phase changes instead of relying on an energy
//! model. CPU frequency is left at the default — DUF is a pure uncore
//! controller — which is exactly what makes the comparison against
//! ME+eU interesting: EAR gets the DVFS savings on memory-bound codes
//! that a pure uncore controller cannot see.

use super::api::{DomainLimits, ImcRange, NodeFreqs, PolicyCtx, PolicyState, PowerPolicy};
use super::domains::DomainSearch;
use crate::signature::Signature;
use ear_archsim::MAX_UNCORE_DOMAINS;

/// Controller phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Lowering the uncore one step per signature.
    Descending,
    /// Holding a found setting, counting down to the next probe.
    Holding(u32),
}

/// The DUF-like controller.
#[derive(Debug, Clone)]
pub struct Duf {
    mode: Mode,
    /// Reference signature captured when descent (re)starts.
    reference: Option<Signature>,
    cur_max_ratio: Option<u8>,
    /// The multi-domain descent, on >1-domain parts.
    dom: Option<DomainSearch>,
    /// Signatures to hold between probes.
    hold_signatures: u32,
    /// Tolerated CPI degradation per descent (like DUF's slowdown budget).
    tolerance: f64,
    /// Total descents started (probe counter, for tests/ablation).
    probes: u32,
}

impl Default for Duf {
    fn default() -> Self {
        Self {
            mode: Mode::Descending,
            reference: None,
            cur_max_ratio: None,
            dom: None,
            hold_signatures: 6,
            tolerance: 0.02,
            probes: 0,
        }
    }
}

impl Duf {
    /// How many descents (initial + re-probes) have started.
    pub fn probes(&self) -> u32 {
        self.probes
    }

    fn freqs(&self, ctx: &PolicyCtx<'_>) -> NodeFreqs {
        if let Some(ds) = self.dom.as_ref() {
            let l = ds.limits(
                ImcRange::MaxOnly,
                ctx.uncore_min_ratio,
                ctx.uncore_max_ratio,
            );
            return NodeFreqs {
                cpu: ctx.settings.def_pstate,
                imc_min_ratio: l.min[0],
                imc_max_ratio: l.max[0],
                imc_dom: l,
            };
        }
        NodeFreqs {
            cpu: ctx.settings.def_pstate,
            imc_min_ratio: ctx.uncore_min_ratio,
            imc_max_ratio: self.cur_max_ratio.unwrap_or(ctx.uncore_max_ratio),
            imc_dom: DomainLimits::LEGACY,
        }
    }
}

impl PowerPolicy for Duf {
    fn name(&self) -> &'static str {
        "duf"
    }

    fn node_policy(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState) {
        match self.mode {
            Mode::Descending => {
                if ctx.uncore_domains > 1 {
                    // Per-domain controller: the shared engine descends
                    // each die independently under DUF's slowdown budget;
                    // full convergence maps to DUF's hold phase.
                    if self.reference.is_none() {
                        self.reference = Some(*sig);
                        self.probes += 1;
                    }
                    let reference = self.reference.unwrap_or(*sig);
                    let mut ds = self.dom.take().unwrap_or_else(|| {
                        DomainSearch::begin(
                            ctx.uncore_domains,
                            &[ctx.uncore_max_ratio; MAX_UNCORE_DOMAINS],
                            ctx.uncore_min_ratio,
                        )
                    });
                    let done = ds.observe(sig, &reference, self.tolerance);
                    self.dom = Some(ds);
                    if done {
                        self.mode = Mode::Holding(self.hold_signatures);
                    }
                    return (self.freqs(ctx), PolicyState::Continue);
                }
                let cur = self.cur_max_ratio.unwrap_or(ctx.uncore_max_ratio);
                let degraded = self
                    .reference
                    .as_ref()
                    .is_some_and(|r| sig.cpi > r.cpi * (1.0 + self.tolerance));
                if degraded {
                    // Raise one step back and hold.
                    self.cur_max_ratio = Some((cur + 1).min(ctx.uncore_max_ratio));
                    self.mode = Mode::Holding(self.hold_signatures);
                } else if cur <= ctx.uncore_min_ratio {
                    self.mode = Mode::Holding(self.hold_signatures);
                } else {
                    if self.reference.is_none() {
                        self.reference = Some(*sig);
                        self.probes += 1;
                    }
                    self.cur_max_ratio = Some(cur - 1);
                }
                // A controller never "converges": it stays in charge.
                (self.freqs(ctx), PolicyState::Continue)
            }
            Mode::Holding(remaining) => {
                if remaining == 0 {
                    // Re-probe: fresh reference, descend again (DUF's
                    // periodic exploration to follow phase changes).
                    self.mode = Mode::Descending;
                    self.reference = Some(*sig);
                    self.probes += 1;
                    if let Some(ds) = self.dom.as_ref() {
                        // Restart the per-domain descent from the held
                        // setting with cleared freeze state.
                        self.dom = Some(DomainSearch::begin(
                            ds.domain_count(),
                            ds.current_max(),
                            ctx.uncore_min_ratio,
                        ));
                    }
                } else {
                    self.mode = Mode::Holding(remaining - 1);
                }
                (self.freqs(ctx), PolicyState::Continue)
            }
        }
    }

    fn validate(&mut self, _sig: &Signature, _ctx: &PolicyCtx<'_>) -> bool {
        // Never reached: the controller always returns Continue.
        true
    }

    fn imc_ceiling(&self) -> Option<u8> {
        self.dom
            .as_ref()
            .map(DomainSearch::ceiling)
            .or(self.cur_max_ratio)
    }

    fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Avx512Model;
    use crate::policy::api::PolicySettings;
    use ear_archsim::{NodeConfig, PstateTable};

    fn sig(cpi: f64) -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi,
            tpi: 0.002,
            gbs: 10.0,
            vpi: 0.0,
            dc_power_w: 320.0,
            pkg_power_w: 235.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    fn run_steps(policy: &mut Duf, cpis: &[f64]) -> Vec<u8> {
        let pstates = PstateTable::xeon_gold_6148();
        let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
        let settings = PolicySettings::default();
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: &model,
            settings: &settings,
        };
        cpis.iter()
            .map(|&c| policy.node_policy(&sig(c), &ctx).0.imc_max_ratio)
            .collect()
    }

    #[test]
    fn descends_until_degradation_then_backs_off() {
        let mut p = Duf::default();
        // Flat CPI for four steps, then a 4 % degradation.
        let trace = run_steps(&mut p, &[0.40, 0.40, 0.40, 0.40, 0.417]);
        assert_eq!(trace[0], 23);
        assert_eq!(trace[3], 20);
        // Backed off one step on degradation.
        assert_eq!(trace[4], 21);
        assert_eq!(p.probes(), 1);
    }

    #[test]
    fn reprobes_after_the_hold() {
        let mut p = Duf::default();
        // Degrade immediately at 23 so it holds at 24... then feed flat
        // CPI through the hold; after hold_signatures it descends again.
        let mut cpis = vec![0.40, 0.42];
        cpis.extend(std::iter::repeat_n(0.40, 10));
        let trace = run_steps(&mut p, &cpis);
        assert_eq!(trace[1], 24, "backed off to max");
        // Somewhere after the hold the ratio descends again.
        assert!(trace[5..].iter().any(|&r| r < 24), "{trace:?}");
        assert!(p.probes() >= 2);
    }

    #[test]
    fn never_converges() {
        let pstates = PstateTable::xeon_gold_6148();
        let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
        let settings = PolicySettings::default();
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: &model,
            settings: &settings,
        };
        let mut p = Duf::default();
        for _ in 0..40 {
            let (f, state) = p.node_policy(&sig(0.4), &ctx);
            assert_eq!(state, PolicyState::Continue);
            assert!(f.imc_max_ratio >= 12 && f.imc_max_ratio <= 24);
            assert_eq!(f.cpu, 1, "DUF never touches the CPU");
        }
    }

    #[test]
    fn per_domain_controller_descends_and_reprobes() {
        let pstates = PstateTable::xeon_gold_6148();
        let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
        let settings = PolicySettings::default();
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 2,
            model: &model,
            settings: &settings,
        };
        let dual = |cpi: f64| Signature {
            imc_domains: 2,
            imc_dom_khz: [2.4e6, 2.4e6, 0.0, 0.0],
            gbs_dom: [10.0, 0.0, 0.0, 0.0],
            ..sig(cpi)
        };
        let mut p = Duf::default();
        // Flat CPI: both domains descend, the idle one to the floor; the
        // controller still never returns Ready.
        let mut last = None;
        for _ in 0..25 {
            let (f, state) = p.node_policy(&dual(0.40), &ctx);
            assert_eq!(state, PolicyState::Continue);
            assert!(f.imc_dom.is_per_domain());
            last = Some(f);
        }
        let f = last.unwrap();
        assert_eq!(
            f.imc_dom.max[1], 12,
            "idle domain at floor: {:?}",
            f.imc_dom
        );
        // After the hold expires it re-probes: probe counter advances.
        assert!(p.probes() >= 2, "probes: {}", p.probes());
    }
}
