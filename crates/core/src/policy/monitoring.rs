//! The monitoring (no-optimisation) policy.
//!
//! EAR always ships a `monitoring` policy that keeps default frequencies
//! and only observes. It doubles as the paper's "No policy" baseline when
//! EARL runs purely for accounting.

use super::api::{NodeFreqs, PolicyCtx, PolicyState, PowerPolicy};
use crate::signature::Signature;

/// The pass-through policy.
#[derive(Debug, Default, Clone)]
pub struct Monitoring {
    signatures_seen: u64,
}

impl Monitoring {
    /// How many signatures this instance has observed.
    pub fn signatures_seen(&self) -> u64 {
        self.signatures_seen
    }
}

impl PowerPolicy for Monitoring {
    fn name(&self) -> &'static str {
        "monitoring"
    }

    fn node_policy(&mut self, _sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState) {
        self.signatures_seen += 1;
        (ctx.default_freqs(), PolicyState::Ready)
    }

    fn validate(&mut self, _sig: &Signature, _ctx: &PolicyCtx<'_>) -> bool {
        self.signatures_seen += 1;
        true
    }

    fn reset(&mut self) {
        self.signatures_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Avx512Model;
    use crate::policy::api::PolicySettings;
    use ear_archsim::{NodeConfig, PstateTable};

    fn sig() -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 0.5,
            tpi: 0.01,
            gbs: 20.0,
            vpi: 0.0,
            dc_power_w: 330.0,
            pkg_power_w: 240.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    #[test]
    fn keeps_defaults_and_is_always_ready() {
        let pstates = PstateTable::xeon_gold_6148();
        let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
        let settings = PolicySettings::default();
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: &model,
            settings: &settings,
        };
        let mut p = Monitoring::default();
        let (freqs, state) = p.node_policy(&sig(), &ctx);
        assert_eq!(state, PolicyState::Ready);
        assert_eq!(freqs, ctx.default_freqs());
        assert!(p.validate(&sig(), &ctx));
        assert_eq!(p.signatures_seen(), 2);
        p.reset();
        assert_eq!(p.signatures_seen(), 0);
    }
}
