//! `min_energy_to_solution`: the basic CPU-frequency stage (paper §V-B).
//!
//! A linear search over pstates: using the energy model, project the
//! measured signature to every candidate pstate from the default (nominal)
//! downward, and select the one minimising predicted energy subject to
//! `T ≤ T_ref · (1 + cpu_policy_th)`, where `T_ref` is the predicted time
//! at the default pstate.

use super::api::{NodeFreqs, PolicyCtx, PolicyState, PowerPolicy};
use crate::signature::Signature;
use ear_archsim::Pstate;

/// Runs the basic min_energy linear search and returns the selected pstate.
///
/// `from` is the pstate the signature was measured at. The search space is
/// `def_pstate..=slowest` — min_energy never selects turbo.
pub fn select_min_energy_pstate(sig: &Signature, from: Pstate, ctx: &PolicyCtx<'_>) -> Pstate {
    let def = ctx.settings.def_pstate;
    let t_ref = ctx.model.project(sig, from, def, ctx.pstates).time_s;
    let limit = t_ref * (1.0 + ctx.settings.cpu_policy_th);

    let mut best = def;
    let mut best_energy = f64::INFINITY;
    for ps in def..=ctx.pstates.slowest() {
        let proj = ctx.model.project(sig, from, ps, ctx.pstates);
        if proj.time_s <= limit && proj.energy_j() < best_energy {
            best_energy = proj.energy_j();
            best = ps;
        }
    }
    best
}

/// The pstate a signature was measured at, inferred from its average CPU
/// frequency. AVX512 licence throttling lowers the *measured* average below
/// the requested pstate, so the inference snaps to the nearest pstate and
/// is intended for model `from` arguments only.
pub fn measured_pstate(sig: &Signature, ctx: &PolicyCtx<'_>) -> Pstate {
    ctx.pstates.pstate_for_khz(sig.avg_cpu_khz as u64)
}

/// `min_energy_to_solution` with hardware-managed uncore (the paper's "ME"
/// configuration).
#[derive(Debug, Default, Clone)]
pub struct MinEnergy {
    /// Signature at the time the current selection was made.
    ref_sig: Option<Signature>,
    /// The selected pstate.
    selected: Option<Pstate>,
    /// See `MinTime::settled`: the first post-convergence validation
    /// re-baselines the reference at the newly applied frequency.
    settled: bool,
}

impl MinEnergy {
    /// The pstate currently selected, if converged.
    pub fn selected(&self) -> Option<Pstate> {
        self.selected
    }
}

impl PowerPolicy for MinEnergy {
    fn name(&self) -> &'static str {
        "min_energy"
    }

    fn node_policy(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState) {
        let from = measured_pstate(sig, ctx);
        let sel = select_min_energy_pstate(sig, from, ctx);
        self.ref_sig = Some(*sig);
        self.selected = Some(sel);
        self.settled = false;
        let (imc_min, imc_max) = ctx.full_uncore_range();
        (
            NodeFreqs {
                cpu: sel,
                imc_min_ratio: imc_min,
                imc_max_ratio: imc_max,
                // Release every domain to firmware on multi-domain parts.
                imc_dom: if ctx.uncore_domains > 1 {
                    super::api::DomainLimits::uniform(ctx.uncore_domains, imc_min, imc_max)
                } else {
                    super::api::DomainLimits::LEGACY
                },
            },
            PolicyState::Ready,
        )
    }

    fn validate(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> bool {
        if !self.settled {
            self.ref_sig = Some(*sig);
            self.settled = true;
            return true;
        }
        match self.ref_sig {
            Some(ref r) if r.changed_significantly(sig, ctx.settings.sig_change_th) => {
                self.reset();
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    fn reset(&mut self) {
        self.ref_sig = None;
        self.selected = None;
        self.settled = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Avx512Model;
    use crate::policy::api::PolicySettings;
    use ear_archsim::{NodeConfig, PstateTable};

    fn fixtures() -> (PstateTable, Avx512Model, PolicySettings) {
        (
            PstateTable::xeon_gold_6148(),
            Avx512Model::for_node(&NodeConfig::sd530_6148()),
            PolicySettings::default(),
        )
    }

    fn ctx<'a>(
        pstates: &'a PstateTable,
        model: &'a Avx512Model,
        settings: &'a PolicySettings,
    ) -> PolicyCtx<'a> {
        PolicyCtx {
            pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model,
            settings,
        }
    }

    fn cpu_bound() -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 0.38,
            tpi: 0.0008,
            gbs: 6.6,
            vpi: 0.04,
            dc_power_w: 320.0,
            pkg_power_w: 235.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    fn mem_bound() -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 3.13,
            tpi: 0.36,
            gbs: 177.0,
            vpi: 0.02,
            dc_power_w: 340.0,
            pkg_power_w: 250.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    #[test]
    fn cpu_bound_keeps_nominal() {
        // Paper Table VI: BT-MZ/BQCD stay at 2.38 GHz under ME.
        let (p, m, s) = fixtures();
        let c = ctx(&p, &m, &s);
        assert_eq!(select_min_energy_pstate(&cpu_bound(), 1, &c), 1);
    }

    #[test]
    fn memory_bound_lowers_frequency() {
        // Paper Table VI: HPCG drops to ~1.75 GHz under ME with 5 %.
        let (p, m, s) = fixtures();
        let c = ctx(&p, &m, &s);
        let sel = select_min_energy_pstate(&mem_bound(), 1, &c);
        let f = p.ghz(sel);
        assert!(f < 2.1, "selected {f} GHz");
        assert!(f >= 1.2, "selected {f} GHz");
    }

    #[test]
    fn tighter_threshold_is_more_conservative() {
        let (p, m, _) = fixtures();
        let tight = PolicySettings {
            cpu_policy_th: 0.01,
            ..Default::default()
        };
        let loose = PolicySettings {
            cpu_policy_th: 0.10,
            ..Default::default()
        };
        let sel_tight = select_min_energy_pstate(&mem_bound(), 1, &ctx(&p, &m, &tight));
        let sel_loose = select_min_energy_pstate(&mem_bound(), 1, &ctx(&p, &m, &loose));
        assert!(sel_tight <= sel_loose, "{sel_tight} vs {sel_loose}");
    }

    #[test]
    fn policy_is_one_shot_ready() {
        let (p, m, s) = fixtures();
        let c = ctx(&p, &m, &s);
        let mut pol = MinEnergy::default();
        let (freqs, state) = pol.node_policy(&cpu_bound(), &c);
        assert_eq!(state, PolicyState::Ready);
        // Uncore left to the hardware: full platform range.
        assert_eq!((freqs.imc_min_ratio, freqs.imc_max_ratio), (12, 24));
        assert!(pol.validate(&cpu_bound(), &c));
    }

    #[test]
    fn validation_fails_on_phase_change() {
        let (p, m, s) = fixtures();
        let c = ctx(&p, &m, &s);
        let mut pol = MinEnergy::default();
        pol.node_policy(&cpu_bound(), &c);
        assert!(pol.validate(&cpu_bound(), &c)); // settles the reference
        assert!(!pol.validate(&mem_bound(), &c));
        // After invalidation the policy starts fresh.
        assert!(pol.selected().is_none());
    }
}
