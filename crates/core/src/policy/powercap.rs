//! `powercap`: online dual-knob (pstate, uncore-max) search under a cap.
//!
//! The open-loop pstate-floor throttle in [`crate::powercap`] reacts to a
//! cap by walking a fixed priority ladder; it never *optimises* under the
//! cap. Cuttlefish (PAPERS.md) shows where the money is: under low power
//! caps, searching core and uncore frequency **concurrently** online finds
//! operating points with the same power but materially better throughput,
//! because the two knobs buy back watts at very different performance
//! prices per application.
//!
//! This policy is that search, grounded in the machinery this repo already
//! has: the fitted T̂/P̂ surfaces from `earsim sweep` provide a warm-start
//! point (time-minimal subject to `P̂ ≤ cap`), and a measured hill-climb
//! refines it against live signatures — step down the cheaper knob while
//! over the cap, climb back toward the reference while the next step's
//! estimated cost fits the headroom. The node's RAPL PL1 limiter remains
//! the hard backstop underneath; this policy's job is to keep PL1 asleep
//! by operating the node *at* the cap rather than bouncing off it.

use super::api::{DomainLimits, NodeFreqs, PolicyCtx, PolicyState, PowerPolicy};
use crate::fit::FittedSurface;
use crate::signature::Signature;
use ear_archsim::Pstate;

/// Approximate watts one uncore ratio step is worth on the calibrated
/// platform (matches the open-loop controller's constant).
const UNCORE_STEP_W: f64 = 3.0;

/// Approximate watts one pstate step is worth near nominal. Climb steps
/// are only taken when their estimated cost fits the measured headroom,
/// so the search converges as close to the cap as the actuators'
/// granularity allows instead of stranding watts below it.
const PSTATE_STEP_W: f64 = 15.0;

/// Model headroom for the warm start: the surface carries fit residual,
/// so the predicted-power constraint is derated to land measurements
/// under the cap, not astride it.
const CAP_MODEL_HEADROOM: f64 = 0.02;

/// Most down-steps applied on one over-cap evaluation (mirrors the
/// open-loop controller: chasing a 30 W deficit one ratio step per
/// signature window would take minutes).
const MAX_STEPS: u32 = 6;

/// Selects the time-minimal (pstate, max uncore ratio) pair on a fitted
/// surface subject to `P̂(f, u) ≤ cap · (1 − CAP_MODEL_HEADROOM)`.
///
/// Scan order matches [`super::fitted::select_on_surface`] — (pstate,
/// descending ratio), first minimum wins — and uses the same partial
/// evaluation of the two quadratics, so the whole warm start costs a few
/// hundred fused multiply-adds. When no candidate satisfies the cap the
/// fully-throttled corner (slowest pstate, platform-minimum uncore) is
/// returned: the measured hill-climb cannot do better than the floor.
pub fn warm_start_under_cap(
    surface: &FittedSurface,
    ctx: &PolicyCtx<'_>,
    cap_w: f64,
) -> (Pstate, u8) {
    let def = ctx.settings.def_pstate;
    let floor = (ctx.pstates.slowest(), ctx.uncore_min_ratio);
    let p_limit = cap_w * (1.0 - CAP_MODEL_HEADROOM);

    let (u_lo, u_hi) = surface.u_range_ghz;
    let in_u = |r: u8| {
        let u = f64::from(r) * 0.1;
        u >= u_lo - 1e-9 && u <= u_hi + 1e-9
    };
    let (mut r_lo, mut r_hi) = (None, None);
    for r in ctx.uncore_min_ratio..=ctx.uncore_max_ratio {
        if in_u(r) {
            r_lo = r_lo.or(Some(r));
            r_hi = Some(r);
        }
    }
    let (Some(r_lo), Some(r_hi)) = (r_lo, r_hi) else {
        return floor;
    };

    let (f_lo, f_hi) = surface.f_range_ghz;
    let [t0, t1, t2, t3, t4, t5] = surface.time.coeffs;
    let [p0, p1, p2, p3, p4, p5] = surface.power.coeffs;
    let mut best = floor;
    let mut best_time = f64::INFINITY;
    for ps in def..=ctx.pstates.slowest() {
        let f = ctx.pstates.ghz(ps);
        if !(f >= f_lo - 1e-9 && f <= f_hi + 1e-9) {
            continue;
        }
        let (ta, tb) = (t0 + t1 * f + t3 * f * f, t2 + t5 * f);
        let (pa, pb) = (p0 + p1 * f + p3 * f * f, p2 + p5 * f);
        for ratio in (r_lo..=r_hi).rev() {
            let u = f64::from(ratio) * 0.1;
            let t = ta + u * (tb + t4 * u);
            let p = pa + u * (pb + p4 * u);
            if !(t.is_finite() && p.is_finite() && t > 0.0 && p > 0.0) {
                continue;
            }
            if p <= p_limit && t < best_time {
                best_time = t;
                best = (ps, ratio);
            }
        }
    }
    best
}

/// The Cuttlefish-style online powercap policy.
#[derive(Debug, Clone)]
pub struct Powercap {
    /// Current operating point (None until the warm start is applied).
    sel: Option<(Pstate, u8)>,
    /// Signature at convergence (validation reference).
    ref_sig: Option<Signature>,
    /// First post-convergence validation re-baselines the reference.
    settled: bool,
    /// Set when an up-step immediately pushed the node back over the cap:
    /// the climb found the frontier, stop probing it every window.
    climb_blocked: bool,
    /// Whether the previous evaluation stepped up (to detect overshoot).
    last_step_up: bool,
    /// Search both knobs (the policy proper) or the pstate only (the
    /// throttle baseline the frontier tables compare against).
    dual_knob: bool,
}

impl Default for Powercap {
    fn default() -> Self {
        Self {
            sel: None,
            ref_sig: None,
            settled: false,
            climb_blocked: false,
            last_step_up: false,
            dual_knob: true,
        }
    }
}

impl Powercap {
    /// The pstate-only throttle baseline: identical control loop, uncore
    /// ceiling held at the platform maximum (hardware UFS keeps floating
    /// underneath). Exists so the cap-vs-throughput frontier isolates
    /// exactly the second knob's contribution.
    pub fn pstate_only() -> Self {
        Self {
            dual_knob: false,
            ..Self::default()
        }
    }

    /// The current operating point, if the search has started.
    pub fn selected(&self) -> Option<(Pstate, u8)> {
        self.sel
    }

    fn freqs_for(&self, cpu: Pstate, ratio: u8, ctx: &PolicyCtx<'_>) -> NodeFreqs {
        let (imc_min, imc_max) =
            ctx.settings
                .imc_range
                .limits_for(ratio, ctx.uncore_min_ratio, ctx.uncore_max_ratio);
        NodeFreqs {
            cpu,
            imc_min_ratio: imc_min,
            imc_max_ratio: imc_max,
            imc_dom: if ctx.uncore_domains > 1 {
                DomainLimits::uniform(ctx.uncore_domains, imc_min, imc_max)
            } else {
                DomainLimits::LEGACY
            },
        }
    }

    fn warm_point(&self, ctx: &PolicyCtx<'_>, cap_w: f64) -> (Pstate, u8) {
        match ctx.settings.fitted.as_ref() {
            Some(surface) if self.dual_knob => warm_start_under_cap(surface, ctx, cap_w),
            // No surface (or single-knob baseline): start from the
            // defaults and let the measured loop walk down.
            _ => (ctx.settings.def_pstate, ctx.uncore_max_ratio),
        }
    }
}

impl PowerPolicy for Powercap {
    fn name(&self) -> &'static str {
        if self.dual_knob {
            "powercap"
        } else {
            "powercap_pstate"
        }
    }

    fn node_policy(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState) {
        let Some(cap_w) = ctx.settings.cap_w.filter(|c| c.is_finite()) else {
            // Uncapped: nothing to control. Hold the defaults.
            self.ref_sig = Some(*sig);
            self.sel = None;
            self.settled = false;
            return (ctx.default_freqs(), PolicyState::Ready);
        };

        let Some((mut ps, mut ratio)) = self.sel else {
            // First invocation: apply the warm start and ask for a
            // measurement there before settling.
            let start = self.warm_point(ctx, cap_w);
            self.sel = Some(start);
            self.ref_sig = Some(*sig);
            self.settled = false;
            return (self.freqs_for(start.0, start.1, ctx), PolicyState::Continue);
        };

        let p = sig.dc_power_w;
        let slowest = ctx.pstates.slowest();
        let state = if p > cap_w {
            // Over the cap: shed the cheaper knob first, proportionally to
            // the overshoot. An up-step that landed here found the
            // frontier — stop re-probing it.
            if self.last_step_up {
                self.climb_blocked = true;
            }
            self.last_step_up = false;
            let steps = ((p - cap_w) / UNCORE_STEP_W)
                .ceil()
                .clamp(1.0, MAX_STEPS as f64) as u32;
            for _ in 0..steps {
                if self.dual_knob && ratio > ctx.uncore_min_ratio {
                    ratio -= 1;
                } else if ps < slowest {
                    ps += 1;
                } else {
                    break;
                }
            }
            PolicyState::Continue
        } else if self.climb_blocked {
            // A previous climb found the frontier: hold.
            self.last_step_up = false;
            PolicyState::Ready
        } else if cap_w - p > PSTATE_STEP_W && ps > ctx.settings.def_pstate {
            // Headroom fits a pstate step — the knob whose throughput is
            // worth most per watt comes back first.
            self.last_step_up = true;
            ps -= 1;
            PolicyState::Continue
        } else if self.dual_knob && cap_w - p > UNCORE_STEP_W && ratio < ctx.uncore_max_ratio {
            // What remains fits an uncore step: fill toward the cap.
            self.last_step_up = true;
            ratio += 1;
            PolicyState::Continue
        } else {
            // Headroom smaller than the cheapest step (or already at the
            // reference point): converged.
            self.last_step_up = false;
            PolicyState::Ready
        };

        self.sel = Some((ps, ratio));
        self.ref_sig = Some(*sig);
        if state == PolicyState::Ready {
            self.settled = false; // validation re-baselines next window
        }
        (self.freqs_for(ps, ratio, ctx), state)
    }

    fn validate(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> bool {
        if !self.settled {
            self.ref_sig = Some(*sig);
            self.settled = true;
            return true;
        }
        // A converged point that drifts back over the cap is invalid no
        // matter how stable the signature looks.
        if let Some(cap_w) = ctx.settings.cap_w {
            if sig.dc_power_w > cap_w {
                self.reset();
                return false;
            }
        }
        match self.ref_sig {
            Some(ref r) if r.changed_significantly(sig, ctx.settings.sig_change_th) => {
                self.reset();
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    fn imc_ceiling(&self) -> Option<u8> {
        self.sel.map(|(_, r)| r)
    }

    fn reset(&mut self) {
        self.sel = None;
        self.ref_sig = None;
        self.settled = false;
        self.climb_blocked = false;
        self.last_step_up = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::Poly2;
    use crate::models::Avx512Model;
    use crate::policy::api::PolicySettings;
    use ear_archsim::{NodeConfig, PstateTable};

    /// Power rises with both knobs; time is steep in f, flat in u — the
    /// cap is cheapest to meet by shedding uncore.
    fn surface() -> FittedSurface {
        FittedSurface {
            time: Poly2 {
                coeffs: [120.0, -25.0, 0.0, 0.0, 0.0, 0.0],
            },
            power: Poly2 {
                coeffs: [100.0, 60.0, 25.0, 0.0, 0.0, 0.0],
            },
            f_range_ghz: (1.2, 2.4),
            u_range_ghz: (1.2, 2.4),
        }
    }

    struct Fixture {
        pstates: PstateTable,
        model: Avx512Model,
        settings: PolicySettings,
    }

    impl Fixture {
        fn new(cap_w: Option<f64>, fitted: Option<FittedSurface>) -> Self {
            Self {
                pstates: PstateTable::xeon_gold_6148(),
                model: Avx512Model::for_node(&NodeConfig::sd530_6148()),
                settings: PolicySettings {
                    cap_w,
                    fitted,
                    ..Default::default()
                },
            }
        }

        fn ctx(&self) -> PolicyCtx<'_> {
            PolicyCtx {
                pstates: &self.pstates,
                uncore_min_ratio: 12,
                uncore_max_ratio: 24,
                uncore_domains: 1,
                model: &self.model,
                settings: &self.settings,
            }
        }
    }

    fn sig(dc_power_w: f64) -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 0.4,
            tpi: 0.001,
            gbs: 10.0,
            dc_power_w,
            pkg_power_w: dc_power_w * 0.7,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    #[test]
    fn uncapped_holds_defaults() {
        let f = Fixture::new(None, None);
        let ctx = f.ctx();
        let mut p = Powercap::default();
        let (freqs, state) = p.node_policy(&sig(300.0), &ctx);
        assert_eq!(state, PolicyState::Ready);
        assert_eq!(freqs, ctx.default_freqs());
        let f_inf = Fixture::new(Some(f64::INFINITY), None);
        let ctx = f_inf.ctx();
        let (freqs, state) = Powercap::default().node_policy(&sig(300.0), &ctx);
        assert_eq!(state, PolicyState::Ready);
        assert_eq!(freqs, ctx.default_freqs());
    }

    #[test]
    fn warm_start_respects_predicted_cap() {
        let f = Fixture::new(Some(280.0), Some(surface()));
        let ctx = f.ctx();
        let s = surface();
        let (ps, ratio) = warm_start_under_cap(&s, &ctx, 280.0);
        let p_hat = s.power_w(f.pstates.ghz(ps), f64::from(ratio) * 0.1);
        assert!(
            p_hat <= 280.0 * (1.0 - CAP_MODEL_HEADROOM) + 1e-9,
            "{p_hat}"
        );
        // Time-minimal: a faster admissible point must not exist. At the
        // cap the surface admits nominal f only with a lowered uncore.
        assert_eq!(ps, 1, "keeps nominal pstate, sheds uncore instead");
        assert!(ratio < 24);
    }

    #[test]
    fn warm_start_without_any_admissible_point_floors() {
        let f = Fixture::new(Some(50.0), Some(surface()));
        let ctx = f.ctx();
        let (ps, ratio) = warm_start_under_cap(&surface(), &ctx, 50.0);
        assert_eq!(ps, f.pstates.slowest());
        assert_eq!(ratio, 12);
    }

    #[test]
    fn over_cap_sheds_uncore_first_then_pstate() {
        let f = Fixture::new(Some(300.0), None);
        let ctx = f.ctx();
        let mut p = Powercap::default();
        // First call applies the warm start (defaults without a surface).
        let (_, state) = p.node_policy(&sig(340.0), &ctx);
        assert_eq!(state, PolicyState::Continue);
        assert_eq!(p.selected(), Some((1, 24)));
        // 40 W over: several uncore steps at once, pstate untouched.
        let (freqs, state) = p.node_policy(&sig(340.0), &ctx);
        assert_eq!(state, PolicyState::Continue);
        assert_eq!(freqs.cpu, 1);
        assert_eq!(freqs.imc_max_ratio, 18);
        // Sustained overload eventually reaches the pstate.
        for _ in 0..4 {
            p.node_policy(&sig(340.0), &ctx);
        }
        let (ps, ratio) = p.selected().unwrap_or((0, 0));
        assert_eq!(ratio, 12);
        assert!(ps > 1);
    }

    #[test]
    fn pstate_only_baseline_never_touches_uncore() {
        let f = Fixture::new(Some(300.0), None);
        let ctx = f.ctx();
        let mut p = Powercap::pstate_only();
        p.node_policy(&sig(340.0), &ctx);
        for _ in 0..5 {
            let (freqs, _) = p.node_policy(&sig(340.0), &ctx);
            assert_eq!(freqs.imc_max_ratio, 24);
            assert_eq!(freqs.imc_min_ratio, 12);
        }
        let (ps, _) = p.selected().unwrap_or((0, 0));
        assert!(ps > 1, "all shedding went to the pstate");
    }

    #[test]
    fn headroom_climbs_then_blocks_after_overshoot() {
        let f = Fixture::new(Some(300.0), None);
        let ctx = f.ctx();
        let mut p = Powercap::default();
        p.node_policy(&sig(340.0), &ctx); // warm start
        for _ in 0..3 {
            p.node_policy(&sig(340.0), &ctx); // walk down
        }
        let (ps_down, _) = p.selected().unwrap_or((0, 0));
        assert!(ps_down > 1);
        // Deep headroom: climbs the pstate one step per window.
        p.node_policy(&sig(250.0), &ctx);
        let (ps_up, _) = p.selected().unwrap_or((0, 0));
        assert_eq!(ps_up, ps_down - 1);
        // The climb overshoots: down-step and stop probing.
        p.node_policy(&sig(310.0), &ctx);
        let before = p.selected();
        let (_, state) = p.node_policy(&sig(250.0), &ctx);
        assert_eq!(state, PolicyState::Ready, "climb blocked after overshoot");
        assert_eq!(p.selected(), before);
    }

    #[test]
    fn in_band_converges_ready() {
        let f = Fixture::new(Some(300.0), None);
        let ctx = f.ctx();
        let mut p = Powercap::default();
        p.node_policy(&sig(290.0), &ctx); // warm start: already at reference
        let (_, state) = p.node_policy(&sig(290.0), &ctx);
        assert_eq!(
            state,
            PolicyState::Ready,
            "under cap at the reference holds"
        );
    }

    #[test]
    fn small_headroom_climbs_uncore_not_pstate() {
        // 10 W under the cap: a pstate step (~15 W) would overshoot but an
        // uncore step (~3 W) fits — the climb must fill the gap with the
        // cheap knob instead of stranding the headroom.
        let f = Fixture::new(Some(300.0), None);
        let ctx = f.ctx();
        let mut p = Powercap::default();
        p.node_policy(&sig(340.0), &ctx); // warm start at (def, max)
        p.node_policy(&sig(340.0), &ctx); // sheds uncore
        let (_, r_down) = p.selected().unwrap_or((0, 0));
        assert!(r_down < 24);
        let (_, state) = p.node_policy(&sig(290.0), &ctx);
        assert_eq!(state, PolicyState::Continue);
        let (ps, r_up) = p.selected().unwrap_or((0, 0));
        assert_eq!(ps, 1, "pstate already at the reference");
        assert_eq!(r_up, r_down + 1, "uncore climbs one step");
        // 2 W under the cap: smaller than any step — converged.
        let (_, state) = p.node_policy(&sig(298.0), &ctx);
        assert_eq!(state, PolicyState::Ready);
    }

    #[test]
    fn validation_rejects_over_cap_drift() {
        let f = Fixture::new(Some(300.0), None);
        let ctx = f.ctx();
        let mut p = Powercap::default();
        p.node_policy(&sig(290.0), &ctx);
        p.node_policy(&sig(290.0), &ctx); // Ready
        assert!(p.validate(&sig(290.0), &ctx), "first validation settles");
        assert!(p.validate(&sig(295.0), &ctx));
        assert!(!p.validate(&sig(320.0), &ctx), "over-cap drift invalidates");
        assert_eq!(p.selected(), None, "reset restarts from the warm point");
    }
}
