//! `fitted`: one-shot (pstate, uncore) selection from a swept surface.
//!
//! The paper's `min_energy_eufs` searches the frequency space at runtime:
//! a linear pstate scan followed by the iterative `IMC_FREQ_SEL` settle
//! sequence, one signature window per 0.1 GHz uncore step. When the
//! workload has been characterised offline (`earsim sweep` fits T(f, u)
//! and P(f, u) surfaces — see [`crate::fit`]), the whole search collapses
//! into a single evaluation: walk every (pstate × ratio) candidate through
//! the two fitted polynomials and pick the energy minimum subject to the
//! combined time-penalty budget `cpu_policy_th + unc_policy_th`. No
//! settling windows, no reverts — the policy is `Ready` on its first
//! invocation, nanoseconds instead of signature windows.
//!
//! The surface arrives through [`super::api::PolicySettings::fitted`]; without one the
//! policy degrades to monitoring-at-defaults (it never guesses).

use super::api::{DomainLimits, NodeFreqs, PolicyCtx, PolicyState, PowerPolicy};
use crate::fit::FittedSurface;
use crate::signature::Signature;
use ear_archsim::Pstate;

/// Fraction of reference time the surface scan reserves as headroom below
/// the combined penalty budget. A candidate admitted at *exactly* the
/// predicted budget overshoots it in measurement about half the time —
/// fit residual, run-to-run noise and the model-point reference all cut
/// both ways — so the scan selects against the derated budget and the
/// measured penalty lands inside the nominal one.
pub const BUDGET_HEADROOM: f64 = 0.01;

/// Selects the energy-minimal (pstate, max uncore ratio) pair on a fitted
/// surface, subject to `T̂ ≤ T̂_ref · (1 + cpu_policy_th + unc_policy_th −
/// BUDGET_HEADROOM)` where `T̂_ref` is the prediction at the default
/// pstate with the uncore at the platform maximum (the hardware-managed
/// reference point).
///
/// Deterministic: candidates are scanned in (pstate, descending ratio)
/// order and ties keep the first minimum.
///
/// The scan is the whole runtime cost of the policy (the
/// `fitted_policy_decide` bench races it against the iterative settle
/// sequence it replaces), so it is structured to keep the inner loop
/// tiny: the covered ratio window is intersected once up front — the
/// candidate u values are monotone in the ratio, so coverage is a
/// contiguous band, not a per-candidate check — and at each pstate the
/// two bivariate quadratics are partially evaluated at the fixed f,
/// collapsing to `a + b·u + c·u²` so every ratio candidate costs four
/// multiplications instead of two full 6-term basis products.
pub fn select_on_surface(surface: &FittedSurface, ctx: &PolicyCtx<'_>) -> (Pstate, u8) {
    let def = ctx.settings.def_pstate;
    let fallback = (def, ctx.uncore_max_ratio);
    let u_max = f64::from(ctx.uncore_max_ratio) * 0.1;
    let t_ref = surface.time_s(ctx.pstates.ghz(def), u_max);
    if !(t_ref.is_finite() && t_ref > 0.0) {
        return fallback;
    }
    let budget = ctx.settings.cpu_policy_th + ctx.settings.unc_policy_th - BUDGET_HEADROOM;
    let limit = t_ref * (1.0 + budget.max(0.0));

    // The covered ratio band (same 1e-9 slack as `FittedSurface::covers`).
    let (u_lo, u_hi) = surface.u_range_ghz;
    let in_u = |r: u8| {
        let u = f64::from(r) * 0.1;
        u >= u_lo - 1e-9 && u <= u_hi + 1e-9
    };
    let (mut r_lo, mut r_hi) = (None, None);
    for r in ctx.uncore_min_ratio..=ctx.uncore_max_ratio {
        if in_u(r) {
            r_lo = r_lo.or(Some(r));
            r_hi = Some(r);
        }
    }
    let (Some(r_lo), Some(r_hi)) = (r_lo, r_hi) else {
        return fallback;
    };

    let (f_lo, f_hi) = surface.f_range_ghz;
    let [t0, t1, t2, t3, t4, t5] = surface.time.coeffs;
    let [p0, p1, p2, p3, p4, p5] = surface.power.coeffs;
    let mut best = fallback;
    let mut best_energy = f64::INFINITY;
    for ps in def..=ctx.pstates.slowest() {
        let f = ctx.pstates.ghz(ps);
        if !(f >= f_lo - 1e-9 && f <= f_hi + 1e-9) {
            continue;
        }
        // Partial evaluation at this f (basis [1, f, u, f², u², f·u]).
        let (ta, tb) = (t0 + t1 * f + t3 * f * f, t2 + t5 * f);
        let (pa, pb) = (p0 + p1 * f + p3 * f * f, p2 + p5 * f);
        for ratio in (r_lo..=r_hi).rev() {
            let u = f64::from(ratio) * 0.1;
            let t = ta + u * (tb + t4 * u);
            let p = pa + u * (pb + p4 * u);
            // Extrapolation guards: a quadratic can dip negative outside
            // the data; inside the swept window both stay positive.
            if !(t.is_finite() && p.is_finite() && t > 0.0 && p > 0.0) {
                continue;
            }
            let e = t * p;
            if t <= limit && e < best_energy {
                best_energy = e;
                best = (ps, ratio);
            }
        }
    }
    best
}

/// The one-shot fitted-surface policy.
#[derive(Debug, Default, Clone)]
pub struct Fitted {
    /// Signature at selection time (validation reference).
    ref_sig: Option<Signature>,
    /// The (pstate, max uncore ratio) pair selected.
    selected: Option<(Pstate, u8)>,
    /// First post-convergence validation re-baselines the reference at
    /// the newly applied frequencies (see `MinEnergy::settled`).
    settled: bool,
}

impl Fitted {
    /// The selection, if converged.
    pub fn selected(&self) -> Option<(Pstate, u8)> {
        self.selected
    }

    fn freqs_for(&self, ratio: u8, cpu: Pstate, ctx: &PolicyCtx<'_>) -> NodeFreqs {
        let (imc_min, imc_max) =
            ctx.settings
                .imc_range
                .limits_for(ratio, ctx.uncore_min_ratio, ctx.uncore_max_ratio);
        NodeFreqs {
            cpu,
            imc_min_ratio: imc_min,
            imc_max_ratio: imc_max,
            // The surface was swept with a uniform ratio across domains,
            // so the selection applies uniformly to every die.
            imc_dom: if ctx.uncore_domains > 1 {
                DomainLimits::uniform(ctx.uncore_domains, imc_min, imc_max)
            } else {
                DomainLimits::LEGACY
            },
        }
    }
}

impl PowerPolicy for Fitted {
    fn name(&self) -> &'static str {
        "fitted"
    }

    fn node_policy(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState) {
        let Some(surface) = ctx.settings.fitted.as_ref() else {
            // No surface for this workload: hold the defaults rather than
            // extrapolate from nothing.
            self.ref_sig = Some(*sig);
            self.selected = None;
            self.settled = false;
            return (ctx.default_freqs(), PolicyState::Ready);
        };
        let (cpu, ratio) = select_on_surface(surface, ctx);
        self.ref_sig = Some(*sig);
        self.selected = Some((cpu, ratio));
        self.settled = false;
        (self.freqs_for(ratio, cpu, ctx), PolicyState::Ready)
    }

    fn validate(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> bool {
        if !self.settled {
            self.ref_sig = Some(*sig);
            self.settled = true;
            return true;
        }
        match self.ref_sig {
            Some(ref r) if r.changed_significantly(sig, ctx.settings.sig_change_th) => {
                self.reset();
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    fn imc_ceiling(&self) -> Option<u8> {
        self.selected.map(|(_, r)| r)
    }

    fn reset(&mut self) {
        self.ref_sig = None;
        self.selected = None;
        self.settled = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::Poly2;
    use crate::models::Avx512Model;
    use crate::policy::api::PolicySettings;
    use ear_archsim::{NodeConfig, PstateTable};

    /// A surface with a CPU-bound shape: time explodes as f drops, power
    /// scales with both knobs — the optimum keeps nominal f and sheds
    /// uncore frequency only while the (flat) time stays in budget.
    fn cpu_bound_surface() -> FittedSurface {
        FittedSurface {
            // T = 60 · (2.4 / f), linearised around the window: steep in
            // f, flat in u.
            time: Poly2 {
                coeffs: [120.0, -25.0, 0.0, 0.0, 0.0, 0.0],
            },
            power: Poly2 {
                coeffs: [100.0, 60.0, 25.0, 0.0, 0.0, 0.0],
            },
            f_range_ghz: (1.2, 2.4),
            u_range_ghz: (1.2, 2.4),
        }
    }

    /// A memory-bound shape: time depends on u, barely on f.
    fn mem_bound_surface() -> FittedSurface {
        FittedSurface {
            time: Poly2 {
                coeffs: [90.0, -2.0, -10.0, 0.0, 2.0, 0.0],
            },
            power: Poly2 {
                coeffs: [80.0, 70.0, 30.0, 0.0, 0.0, 0.0],
            },
            f_range_ghz: (1.2, 2.4),
            u_range_ghz: (1.2, 2.4),
        }
    }

    struct Fixture {
        pstates: PstateTable,
        model: Avx512Model,
        settings: PolicySettings,
    }

    impl Fixture {
        fn new(surface: Option<FittedSurface>) -> Self {
            Self {
                pstates: PstateTable::xeon_gold_6148(),
                model: Avx512Model::for_node(&NodeConfig::sd530_6148()),
                settings: PolicySettings {
                    fitted: surface,
                    ..Default::default()
                },
            }
        }

        fn ctx(&self, uncore_domains: usize) -> PolicyCtx<'_> {
            PolicyCtx {
                pstates: &self.pstates,
                uncore_min_ratio: 12,
                uncore_max_ratio: 24,
                uncore_domains,
                model: &self.model,
                settings: &self.settings,
            }
        }
    }

    fn sig() -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 0.4,
            tpi: 0.001,
            gbs: 10.0,
            dc_power_w: 320.0,
            pkg_power_w: 235.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    #[test]
    fn one_shot_ready_and_uncore_reduction_on_cpu_bound() {
        let f = Fixture::new(Some(cpu_bound_surface()));
        let ctx = f.ctx(1);
        let mut p = Fitted::default();
        let (freqs, state) = p.node_policy(&sig(), &ctx);
        // The defining property: converged on the FIRST invocation.
        assert_eq!(state, PolicyState::Ready);
        // CPU-bound: nominal pstate kept, uncore ceiling lowered (time is
        // flat in u, so every ratio is admissible and lower power wins).
        assert_eq!(freqs.cpu, 1);
        assert_eq!(freqs.imc_max_ratio, 12);
        assert_eq!(freqs.imc_min_ratio, 12, "MaxOnly keeps the floor");
        assert_eq!(p.imc_ceiling(), Some(12));
    }

    #[test]
    fn mem_bound_surface_sheds_cpu_frequency() {
        let f = Fixture::new(Some(mem_bound_surface()));
        let ctx = f.ctx(1);
        let mut p = Fitted::default();
        let (freqs, state) = p.node_policy(&sig(), &ctx);
        assert_eq!(state, PolicyState::Ready);
        assert!(freqs.cpu > 1, "memory-bound: sub-nominal pstate");
        // Time rises as u drops: the budget stops the descent above the
        // platform floor.
        assert!(freqs.imc_max_ratio > 12);
    }

    #[test]
    fn selection_respects_the_time_budget() {
        let f = Fixture::new(Some(mem_bound_surface()));
        let ctx = f.ctx(1);
        let surface = f.settings.fitted.as_ref().unwrap();
        let (ps, ratio) = select_on_surface(surface, &ctx);
        let t_ref = surface.time_s(f.pstates.ghz(1), 2.4);
        let t_sel = surface.time_s(f.pstates.ghz(ps), f64::from(ratio) * 0.1);
        let budget = f.settings.cpu_policy_th + f.settings.unc_policy_th;
        assert!(t_sel <= t_ref * (1.0 + budget) + 1e-12);
    }

    #[test]
    fn no_surface_degrades_to_defaults() {
        let f = Fixture::new(None);
        let ctx = f.ctx(1);
        let mut p = Fitted::default();
        let (freqs, state) = p.node_policy(&sig(), &ctx);
        assert_eq!(state, PolicyState::Ready);
        assert_eq!(freqs, ctx.default_freqs());
        assert_eq!(p.selected(), None);
    }

    #[test]
    fn multi_domain_selection_is_uniform_across_dies() {
        let f = Fixture::new(Some(cpu_bound_surface()));
        let ctx = f.ctx(2);
        let mut p = Fitted::default();
        let (freqs, _) = p.node_policy(&sig(), &ctx);
        assert!(freqs.imc_dom.is_per_domain());
        assert_eq!(freqs.imc_dom.count(), 2);
        assert_eq!(freqs.imc_dom.max[0], freqs.imc_dom.max[1]);
        assert_eq!(freqs.imc_dom.max[0], freqs.imc_max_ratio);
    }

    #[test]
    fn validation_settles_then_detects_phase_change() {
        let f = Fixture::new(Some(cpu_bound_surface()));
        let ctx = f.ctx(1);
        let mut p = Fitted::default();
        p.node_policy(&sig(), &ctx);
        assert!(p.validate(&sig(), &ctx), "first validation settles");
        assert!(p.validate(&sig(), &ctx));
        let phase_change = Signature {
            cpi: 3.0,
            gbs: 170.0,
            ..sig()
        };
        assert!(!p.validate(&phase_change, &ctx));
        assert!(p.selected().is_none(), "reset after invalidation");
    }
}
