//! `min_energy_to_solution` with explicit uncore frequency selection —
//! the paper's contribution (§V-B, Fig. 2).
//!
//! The policy is a three-state machine re-applied on every signature until
//! it returns `Ready`:
//!
//! ```text
//! CPU_FREQ_SEL ──(selected == default)──────────────► IMC_FREQ_SEL ─► READY
//!      │                                                   ▲  │(loop ×N)
//!      └─(selected < default)──► COMP_REF ─────────────────┘  ▼
//!                                (reference metrics)      revert & READY
//! ```
//!
//! * **CPU_FREQ_SEL** runs the basic min_energy linear search.
//! * **COMP_REF** is one settling window at the new CPU frequency to
//!   compute reference CPI/GB/s before touching the uncore.
//! * **IMC_FREQ_SEL** iteratively lowers the `MSR_UNCORE_RATIO_LIMIT`
//!   *maximum* by 0.1 GHz per signature (the minimum is never raised).
//!   The search starts from the hardware's settled frequency (HW-guided,
//!   the paper's default) or the platform maximum (linear / "not guided").
//!   A step is reverted — and the policy returns `Ready` — when CPI grew
//!   beyond `ref · (1 + unc_policy_th)` or GB/s fell below
//!   `ref · (1 − unc_policy_th)`.
//!
//! If the signature changes by more than the 15 % threshold while the IMC
//! search runs (an application phase change, not policy-induced drift),
//! the state machine restarts from CPU_FREQ_SEL (§V-B, last paragraph).

use super::api::{DomainLimits, ImcSearch, NodeFreqs, PolicyCtx, PolicyState, PowerPolicy};
use super::domains::{hw_guided_starts, DomainSearch};
use super::min_energy::{measured_pstate, select_min_energy_pstate};
use crate::signature::Signature;
use ear_archsim::{Pstate, MAX_UNCORE_DOMAINS};

/// The policy's state (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Selecting the CPU pstate with the basic algorithm.
    CpuFreqSel,
    /// One settling window at the selected CPU frequency.
    CompRef,
    /// Iterative uncore-maximum reduction.
    ImcFreqSel,
}

/// `min_energy_to_solution` + explicit UFS.
#[derive(Debug, Clone)]
pub struct MinEnergyEufs {
    state: State,
    /// The pstate chosen by CPU_FREQ_SEL.
    selected_cpu: Option<Pstate>,
    /// Signature at CPU selection time (phase-change detection).
    cpu_sel_sig: Option<Signature>,
    /// Reference metrics for the uncore penalty checks.
    imc_ref: Option<Signature>,
    /// The maximum ratio currently programmed by the search.
    cur_max_ratio: Option<u8>,
    /// Where the search started (reverts cannot exceed it).
    start_ratio: Option<u8>,
    /// The multi-domain descent, when the platform exposes more than one
    /// uncore domain (the scalar fields above then stay unused).
    dom: Option<DomainSearch>,
    /// Signature when the policy last returned Ready (validation ref).
    stable_sig: Option<Signature>,
    /// Counts IMC search steps (exposed for convergence ablations).
    imc_steps: u32,
}

impl Default for MinEnergyEufs {
    fn default() -> Self {
        Self {
            state: State::CpuFreqSel,
            selected_cpu: None,
            cpu_sel_sig: None,
            imc_ref: None,
            cur_max_ratio: None,
            start_ratio: None,
            dom: None,
            stable_sig: None,
            imc_steps: 0,
        }
    }
}

impl MinEnergyEufs {
    /// The CPU pstate selected by the first stage, if any.
    pub fn selected_cpu(&self) -> Option<Pstate> {
        self.selected_cpu
    }

    /// IMC search steps taken so far (HW-guided vs linear ablation).
    pub fn imc_steps(&self) -> u32 {
        self.imc_steps
    }

    /// The uncore maximum currently programmed by the search.
    pub fn current_imc_max(&self) -> Option<u8> {
        self.cur_max_ratio
    }

    fn freqs(&self, ctx: &PolicyCtx<'_>) -> NodeFreqs {
        if let Some(ds) = self.dom.as_ref() {
            // Multi-domain: the per-domain block carries the decision; the
            // scalar pair mirrors domain 0 for legacy consumers.
            let l = ds.limits(
                ctx.settings.imc_range,
                ctx.uncore_min_ratio,
                ctx.uncore_max_ratio,
            );
            return NodeFreqs {
                cpu: self.selected_cpu.unwrap_or(ctx.settings.def_pstate),
                imc_min_ratio: l.min[0],
                imc_max_ratio: l.max[0],
                imc_dom: l,
            };
        }
        let max = self.cur_max_ratio.unwrap_or(ctx.uncore_max_ratio);
        let (imc_min, imc_max) =
            ctx.settings
                .imc_range
                .limits_for(max, ctx.uncore_min_ratio, ctx.uncore_max_ratio);
        NodeFreqs {
            cpu: self.selected_cpu.unwrap_or(ctx.settings.def_pstate),
            imc_min_ratio: imc_min,
            imc_max_ratio: imc_max,
            imc_dom: DomainLimits::LEGACY,
        }
    }

    /// The ratio the IMC search starts from.
    fn search_start(&self, sig: &Signature, ctx: &PolicyCtx<'_>) -> u8 {
        match ctx.settings.imc_search {
            ImcSearch::HwGuided => {
                // The hardware's settled choice, read from the measured
                // average IMC frequency (rounded to a 100 MHz ratio).
                let ratio = (sig.avg_imc_khz / 100_000.0).round() as u8;
                ratio.clamp(ctx.uncore_min_ratio, ctx.uncore_max_ratio)
            }
            ImcSearch::Linear => ctx.uncore_max_ratio,
        }
    }

    fn enter_imc_stage(
        &mut self,
        sig: &Signature,
        ctx: &PolicyCtx<'_>,
    ) -> (NodeFreqs, PolicyState) {
        self.state = State::ImcFreqSel;
        self.imc_ref = Some(*sig);
        if ctx.uncore_domains > 1 {
            // Multi-domain descent: every domain starts from its own
            // hardware-settled ratio (or the platform maximum under
            // linear search) and steps independently.
            let starts = match ctx.settings.imc_search {
                ImcSearch::HwGuided => {
                    hw_guided_starts(sig, ctx.uncore_min_ratio, ctx.uncore_max_ratio)
                }
                ImcSearch::Linear => [ctx.uncore_max_ratio; MAX_UNCORE_DOMAINS],
            };
            let mut ds = DomainSearch::begin(ctx.uncore_domains, &starts, ctx.uncore_min_ratio);
            if ds.converged() {
                self.dom = Some(ds);
                self.stable_sig = Some(*sig);
                return (self.freqs(ctx), PolicyState::Ready);
            }
            // First round: no penalty possible against itself, every
            // domain takes its first step.
            ds.observe(sig, sig, ctx.settings.unc_policy_th);
            self.imc_steps += 1;
            self.dom = Some(ds);
            return (self.freqs(ctx), PolicyState::Continue);
        }
        let start = self.search_start(sig, ctx);
        self.start_ratio = Some(start);
        if start <= ctx.uncore_min_ratio {
            // Nothing below the hardware's choice: converge immediately.
            self.cur_max_ratio = Some(start);
            self.stable_sig = Some(*sig);
            return (self.freqs(ctx), PolicyState::Ready);
        }
        // First try: one 0.1 GHz step below the start.
        self.cur_max_ratio = Some(start - 1);
        self.imc_steps += 1;
        (self.freqs(ctx), PolicyState::Continue)
    }

    fn imc_penalty_exceeded(&self, sig: &Signature, ctx: &PolicyCtx<'_>) -> bool {
        let Some(r) = self.imc_ref.as_ref() else {
            return false;
        };
        let th = ctx.settings.unc_policy_th;
        sig.cpi > r.cpi * (1.0 + th) || sig.gbs < r.gbs * (1.0 - th)
    }
}

impl PowerPolicy for MinEnergyEufs {
    fn name(&self) -> &'static str {
        "min_energy_eufs"
    }

    fn node_policy(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> (NodeFreqs, PolicyState) {
        match self.state {
            State::CpuFreqSel => {
                let from = measured_pstate(sig, ctx);
                let sel = select_min_energy_pstate(sig, from, ctx);
                self.selected_cpu = Some(sel);
                self.cpu_sel_sig = Some(*sig);
                self.cur_max_ratio = None; // uncore back to HW control
                self.dom = None;
                if sel == ctx.settings.def_pstate {
                    // Fig. 2: straight to IMC selection; the current
                    // signature is the reference (the CPU frequency is
                    // unchanged, so no settling window is needed).
                    self.enter_imc_stage(sig, ctx)
                } else {
                    self.state = State::CompRef;
                    (self.freqs(ctx), PolicyState::Continue)
                }
            }
            State::CompRef => {
                // This signature was measured at the new CPU frequency
                // with hardware UFS: it is the reference for the uncore
                // stage.
                self.enter_imc_stage(sig, ctx)
            }
            State::ImcFreqSel => {
                // Phase change during the search? Restart from scratch
                // (paper §V-B, final paragraph).
                if let Some(base) = self.cpu_sel_sig.as_ref() {
                    if base.changed_significantly(sig, ctx.settings.sig_change_th) {
                        let mut fresh = Self::default();
                        std::mem::swap(self, &mut fresh);
                        self.imc_steps = fresh.imc_steps; // preserve the counter
                        return (ctx.default_freqs(), PolicyState::Continue);
                    }
                }
                if let Some(mut ds) = self.dom {
                    // Multi-domain: one engine round per signature; the
                    // engine holds per-domain revert/freeze state.
                    let reference = self.imc_ref.unwrap_or(*sig);
                    let done = ds.observe(sig, &reference, ctx.settings.unc_policy_th);
                    self.imc_steps += 1;
                    self.dom = Some(ds);
                    if done {
                        self.stable_sig = Some(*sig);
                        return (self.freqs(ctx), PolicyState::Ready);
                    }
                    return (self.freqs(ctx), PolicyState::Continue);
                }
                let min = ctx.uncore_min_ratio;
                let cur = self.cur_max_ratio.unwrap_or(ctx.uncore_max_ratio);
                if self.imc_penalty_exceeded(sig, ctx) {
                    // Revert the last step and converge.
                    let reverted = (cur + 1).min(self.start_ratio.unwrap_or(ctx.uncore_max_ratio));
                    self.cur_max_ratio = Some(reverted);
                    self.stable_sig = Some(*sig);
                    (self.freqs(ctx), PolicyState::Ready)
                } else if cur <= min {
                    // Reached the platform floor without penalty.
                    self.stable_sig = Some(*sig);
                    (self.freqs(ctx), PolicyState::Ready)
                } else {
                    self.cur_max_ratio = Some(cur - 1);
                    self.imc_steps += 1;
                    (self.freqs(ctx), PolicyState::Continue)
                }
            }
        }
    }

    fn validate(&mut self, sig: &Signature, ctx: &PolicyCtx<'_>) -> bool {
        match self.stable_sig {
            Some(ref stable) if stable.changed_significantly(sig, ctx.settings.sig_change_th) => {
                *self = Self::default();
                false
            }
            Some(_) => true,
            None => false,
        }
    }

    fn imc_ceiling(&self) -> Option<u8> {
        self.dom
            .as_ref()
            .map(DomainSearch::ceiling)
            .or(self.cur_max_ratio)
    }

    fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Avx512Model;
    use crate::policy::api::PolicySettings;
    use ear_archsim::{NodeConfig, PstateTable};

    struct Fixture {
        pstates: PstateTable,
        model: Avx512Model,
        settings: PolicySettings,
    }

    impl Fixture {
        fn new(settings: PolicySettings) -> Self {
            Self {
                pstates: PstateTable::xeon_gold_6148(),
                model: Avx512Model::for_node(&NodeConfig::sd530_6148()),
                settings,
            }
        }

        fn ctx(&self) -> PolicyCtx<'_> {
            self.ctx_domains(1)
        }

        fn ctx_domains(&self, uncore_domains: usize) -> PolicyCtx<'_> {
            PolicyCtx {
                pstates: &self.pstates,
                uncore_min_ratio: 12,
                uncore_max_ratio: 24,
                uncore_domains,
                model: &self.model,
                settings: &self.settings,
            }
        }
    }

    fn cpu_bound_sig(cpi: f64, gbs: f64, imc_khz: f64) -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi,
            tpi: 0.001,
            gbs,
            vpi: 0.0,
            dc_power_w: 320.0,
            pkg_power_w: 235.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: imc_khz,
            ..Default::default()
        }
    }

    /// A two-domain signature: all traffic on domain 0, domain 1 idle.
    fn dual_domain_sig(cpi: f64, gbs: f64, imc_khz: f64) -> Signature {
        Signature {
            imc_domains: 2,
            imc_dom_khz: [imc_khz, imc_khz, 0.0, 0.0],
            gbs_dom: [gbs, 0.0, 0.0, 0.0],
            ..cpu_bound_sig(cpi, gbs, imc_khz)
        }
    }

    #[test]
    fn nominal_cpu_goes_straight_to_imc_stage() {
        let f = Fixture::new(PolicySettings::default());
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        let sig = cpu_bound_sig(0.38, 6.6, 2.39e6);
        let (freqs, state) = p.node_policy(&sig, &ctx);
        // CPU stays nominal; the first uncore step is below the HW choice.
        assert_eq!(freqs.cpu, 1);
        assert_eq!(state, PolicyState::Continue);
        assert_eq!(freqs.imc_max_ratio, 23); // HW at 24, one step down
        assert_eq!(freqs.imc_min_ratio, 12); // the minimum is never moved
    }

    #[test]
    fn search_continues_until_penalty_then_reverts() {
        let f = Fixture::new(PolicySettings::default());
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        // Reference at HW max.
        let (_, s) = p.node_policy(&cpu_bound_sig(0.40, 10.0, 2.4e6), &ctx);
        assert_eq!(s, PolicyState::Continue);
        // Three harmless steps (drift under 2 %).
        for _ in 0..3 {
            let (_, s) = p.node_policy(&cpu_bound_sig(0.403, 9.95, 2.4e6), &ctx);
            assert_eq!(s, PolicyState::Continue);
        }
        let before = p.current_imc_max().unwrap();
        // Now CPI jumps past the 2 % budget: revert + Ready.
        let (freqs, s) = p.node_policy(&cpu_bound_sig(0.42, 9.5, 2.4e6), &ctx);
        assert_eq!(s, PolicyState::Ready);
        assert_eq!(freqs.imc_max_ratio, before + 1);
    }

    #[test]
    fn gbs_drop_also_triggers_revert() {
        let f = Fixture::new(PolicySettings::default());
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        p.node_policy(&cpu_bound_sig(0.40, 100.0, 2.4e6), &ctx);
        // CPI fine, bandwidth collapsed by 5 %: revert.
        let (_, s) = p.node_policy(&cpu_bound_sig(0.40, 95.0, 2.4e6), &ctx);
        assert_eq!(s, PolicyState::Ready);
    }

    #[test]
    fn search_stops_at_platform_floor() {
        let f = Fixture::new(PolicySettings::default());
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        let sig = cpu_bound_sig(0.40, 10.0, 2.4e6);
        let mut state = p.node_policy(&sig, &ctx).1;
        let mut guard = 0;
        while state == PolicyState::Continue {
            state = p.node_policy(&sig, &ctx).1;
            guard += 1;
            assert!(guard < 50, "search did not terminate");
        }
        // No penalty ever: converged at the platform minimum.
        assert_eq!(p.current_imc_max(), Some(12));
    }

    #[test]
    fn hw_guided_starts_below_linear() {
        // HW settled at 2.0 GHz: HW-guided starts there; linear at max.
        let hw = Fixture::new(PolicySettings::default());
        let mut p = MinEnergyEufs::default();
        let (f1, _) = p.node_policy(&cpu_bound_sig(0.40, 10.0, 2.0e6), &hw.ctx());
        assert_eq!(f1.imc_max_ratio, 19); // 20 − 1

        let lin = Fixture::new(PolicySettings {
            imc_search: ImcSearch::Linear,
            ..Default::default()
        });
        let mut p = MinEnergyEufs::default();
        let (f2, _) = p.node_policy(&cpu_bound_sig(0.40, 10.0, 2.0e6), &lin.ctx());
        assert_eq!(f2.imc_max_ratio, 23); // 24 − 1
    }

    #[test]
    fn sub_nominal_cpu_passes_through_comp_ref() {
        let f = Fixture::new(PolicySettings::default());
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        // Memory-bound: the CPU stage picks a lower pstate.
        let mem = Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 3.13,
            tpi: 0.36,
            gbs: 177.0,
            vpi: 0.02,
            dc_power_w: 340.0,
            pkg_power_w: 250.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        };
        let (freqs, state) = p.node_policy(&mem, &ctx);
        assert!(freqs.cpu > 1, "expected sub-nominal selection");
        assert_eq!(state, PolicyState::Continue);
        // While settling, the uncore is left to the hardware.
        assert_eq!(freqs.imc_max_ratio, 24);
        // Next signature (measured at the new frequency) enters the IMC
        // stage.
        let mut settled = mem;
        settled.avg_cpu_khz = f.pstates.khz(freqs.cpu) as f64;
        settled.avg_imc_khz = 2.39e6;
        let (freqs2, state2) = p.node_policy(&settled, &ctx);
        assert_eq!(state2, PolicyState::Continue);
        assert_eq!(freqs2.imc_max_ratio, 23);
        assert_eq!(freqs2.cpu, freqs.cpu);
    }

    #[test]
    fn phase_change_during_imc_search_restarts() {
        let f = Fixture::new(PolicySettings::default());
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        p.node_policy(&cpu_bound_sig(0.40, 10.0, 2.4e6), &ctx);
        p.node_policy(&cpu_bound_sig(0.402, 9.98, 2.4e6), &ctx);
        // The application enters a wildly different phase.
        let (freqs, state) = p.node_policy(&cpu_bound_sig(1.2, 150.0, 2.4e6), &ctx);
        assert_eq!(state, PolicyState::Continue);
        assert_eq!(freqs, ctx.default_freqs());
        assert!(p.selected_cpu().is_none(), "restarted from CPU_FREQ_SEL");
    }

    #[test]
    fn validation_restarts_on_signature_change() {
        let f = Fixture::new(PolicySettings::default());
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        // Converge quickly by forcing an immediate penalty (above the 2 %
        // uncore budget, below the 15 % phase-change threshold).
        p.node_policy(&cpu_bound_sig(0.40, 10.0, 2.4e6), &ctx);
        let (_, s) = p.node_policy(&cpu_bound_sig(0.44, 9.2, 2.4e6), &ctx);
        assert_eq!(s, PolicyState::Ready);
        // Stable signature similar: validation passes.
        assert!(p.validate(&cpu_bound_sig(0.445, 9.21, 2.4e6), &ctx));
        // Phase change: validation fails and the policy resets.
        assert!(!p.validate(&cpu_bound_sig(1.5, 100.0, 2.4e6), &ctx));
        assert!(p.selected_cpu().is_none());
    }

    #[test]
    fn pinned_range_mode_pins_min_to_max() {
        use crate::policy::api::ImcRange;
        let f = Fixture::new(PolicySettings {
            imc_range: ImcRange::Pinned,
            ..Default::default()
        });
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        let (freqs, _) = p.node_policy(&cpu_bound_sig(0.40, 10.0, 2.4e6), &ctx);
        assert_eq!(freqs.imc_min_ratio, freqs.imc_max_ratio);
        assert_eq!(freqs.imc_max_ratio, 23);
    }

    #[test]
    fn band_range_mode_keeps_window() {
        use crate::policy::api::ImcRange;
        let f = Fixture::new(PolicySettings {
            imc_range: ImcRange::Band(2),
            ..Default::default()
        });
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        let (freqs, _) = p.node_policy(&cpu_bound_sig(0.40, 10.0, 2.4e6), &ctx);
        assert_eq!(freqs.imc_max_ratio - freqs.imc_min_ratio, 2);
    }

    #[test]
    fn multi_domain_search_frees_the_idle_domain() {
        let f = Fixture::new(PolicySettings::default());
        let ctx = f.ctx_domains(2);
        let mut p = MinEnergyEufs::default();
        let reference = dual_domain_sig(0.40, 40.0, 2.4e6);
        let (freqs, state) = p.node_policy(&reference, &ctx);
        assert_eq!(state, PolicyState::Continue);
        assert!(freqs.imc_dom.is_per_domain());
        assert_eq!(freqs.imc_dom.count(), 2);
        // Both domains stepped once below the hardware's 2.4 GHz.
        assert_eq!(freqs.imc_dom.max[0], 23);
        assert_eq!(freqs.imc_dom.max[1], 23);
        // Feed signatures where domain 0's bandwidth collapses below
        // 2.0 GHz but domain 1 (idle) never shows a penalty.
        let mut state = PolicyState::Continue;
        let mut last = freqs;
        let mut guard = 0;
        while state == PolicyState::Continue {
            let sig = if last.imc_dom.max[0] < 20 {
                dual_domain_sig(0.40, 36.0, 2.4e6) // 10 % bandwidth loss
            } else {
                reference
            };
            let (fr, st) = p.node_policy(&sig, &ctx);
            last = fr;
            state = st;
            guard += 1;
            assert!(guard < 40, "no convergence");
        }
        // The busy domain reverted near its trip point; the idle domain
        // descended to the platform floor.
        assert!(last.imc_dom.max[0] >= 19, "busy domain: {:?}", last.imc_dom);
        assert_eq!(last.imc_dom.max[1], 12, "idle domain: {:?}", last.imc_dom);
        assert_eq!(p.imc_ceiling(), Some(last.imc_dom.max[0]));
    }

    #[test]
    fn single_domain_ctx_keeps_the_legacy_scalar_path() {
        let f = Fixture::new(PolicySettings::default());
        let ctx = f.ctx();
        let mut p = MinEnergyEufs::default();
        let (freqs, _) = p.node_policy(&cpu_bound_sig(0.40, 10.0, 2.4e6), &ctx);
        assert!(!freqs.imc_dom.is_per_domain(), "no TPMI block at N=1");
    }

    #[test]
    fn tighter_unc_threshold_stops_earlier() {
        let run = |th: f64| {
            let f = Fixture::new(PolicySettings {
                unc_policy_th: th,
                ..Default::default()
            });
            let ctx = f.ctx();
            let mut p = MinEnergyEufs::default();
            // Each uncore step costs 1 % CPI, cumulative.
            let mut cpi = 0.40;
            let mut state = p.node_policy(&cpu_bound_sig(cpi, 10.0, 2.4e6), &ctx).1;
            let mut guard = 0;
            while state == PolicyState::Continue && guard < 50 {
                cpi *= 1.01;
                state = p.node_policy(&cpu_bound_sig(cpi, 10.0, 2.4e6), &ctx).1;
                guard += 1;
            }
            p.current_imc_max().unwrap()
        };
        let tight = run(0.01);
        let loose = run(0.03);
        assert!(tight > loose, "tight {tight} loose {loose}");
    }
}
