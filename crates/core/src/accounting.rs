//! EAR's accounting service.
//!
//! EAR stores per-job energy records in a database queried with `eacct`.
//! This module provides the in-memory equivalent: [`JobRecord`]s collected
//! into an [`AccountingDb`] with per-application aggregation and an
//! `eacct`-style text report.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// One job's accounting record (what `eacct` prints per job).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Application name.
    pub app: String,
    /// Policy the job ran under.
    pub policy: String,
    /// Execution time (s).
    pub seconds: f64,
    /// DC energy (J).
    pub dc_energy_j: f64,
    /// Package energy (J).
    pub pkg_energy_j: f64,
    /// Average DC power (W).
    pub avg_dc_power_w: f64,
    /// Average CPU frequency (GHz).
    pub avg_cpu_ghz: f64,
    /// Average IMC frequency (GHz).
    pub avg_imc_ghz: f64,
    /// Job-average CPI.
    pub cpi: f64,
    /// Job-average memory bandwidth (GB/s).
    pub gbs: f64,
    /// Signatures computed by EARL.
    pub signatures: u32,
    /// Frequency changes applied by EARL.
    pub freq_changes: u32,
}

/// The accounting database.
#[derive(Debug, Default)]
pub struct AccountingDb {
    records: Vec<JobRecord>,
}

impl AccountingDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a record.
    pub fn insert(&mut self, record: JobRecord) {
        self.records.push(record);
    }

    /// All records, insertion order.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Records for one application.
    pub fn by_app<'a>(&'a self, app: &'a str) -> impl Iterator<Item = &'a JobRecord> {
        self.records.iter().filter(move |r| r.app == app)
    }

    /// Total DC energy across all jobs (J).
    pub fn total_energy_j(&self) -> f64 {
        self.records.iter().map(|r| r.dc_energy_j).sum()
    }

    /// An `eacct`-style table of every job.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:<18} {:>9} {:>12} {:>9} {:>8} {:>8} {:>6} {:>8}",
            "APP",
            "POLICY",
            "TIME(s)",
            "ENERGY(J)",
            "POWER(W)",
            "CPU(GHz)",
            "IMC(GHz)",
            "CPI",
            "GB/s"
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{:<22} {:<18} {:>9.1} {:>12.0} {:>9.1} {:>8.2} {:>8.2} {:>6.2} {:>8.2}",
                r.app,
                r.policy,
                r.seconds,
                r.dc_energy_j,
                r.avg_dc_power_w,
                r.avg_cpu_ghz,
                r.avg_imc_ghz,
                r.cpi,
                r.gbs
            );
        }
        out
    }
}

/// A database shared across EARL instances and the harness.
pub type SharedAccounting = Arc<Mutex<AccountingDb>>;

/// Creates a shared database.
pub fn shared() -> SharedAccounting {
    Arc::new(Mutex::new(AccountingDb::new()))
}

/// Locks a shared database, recovering from poisoning: a writer that
/// panicked mid-`insert` leaves the `Vec` of records intact (pushes are
/// atomic from the reader's perspective), so the records are still valid
/// and losing the whole campaign's accounting over one poisoned lock
/// would be worse than reading through it.
pub fn lock(db: &SharedAccounting) -> MutexGuard<'_, AccountingDb> {
    db.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(app: &str, energy: f64) -> JobRecord {
        JobRecord {
            app: app.to_string(),
            policy: "min_energy_eufs".to_string(),
            seconds: 100.0,
            dc_energy_j: energy,
            pkg_energy_j: energy * 0.7,
            avg_dc_power_w: energy / 100.0,
            avg_cpu_ghz: 2.4,
            avg_imc_ghz: 2.0,
            cpi: 0.5,
            gbs: 20.0,
            signatures: 10,
            freq_changes: 4,
        }
    }

    #[test]
    fn insert_and_aggregate() {
        let mut db = AccountingDb::new();
        db.insert(record("A", 30_000.0));
        db.insert(record("B", 20_000.0));
        db.insert(record("A", 31_000.0));
        assert_eq!(db.records().len(), 3);
        assert_eq!(db.by_app("A").count(), 2);
        assert!((db.total_energy_j() - 81_000.0).abs() < 1e-9);
    }

    #[test]
    fn report_contains_each_job() {
        let mut db = AccountingDb::new();
        db.insert(record("HPCG", 50_000.0));
        let report = db.report();
        assert!(report.contains("HPCG"));
        assert!(report.contains("min_energy_eufs"));
        assert!(report.lines().count() >= 2);
    }

    #[test]
    fn shared_db_is_threadsafe() {
        let db = shared();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    lock(&db).insert(record(&format!("app{i}"), 1000.0));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock(&db).records().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let db = shared();
        {
            let db = db.clone();
            let _ = std::thread::spawn(move || {
                let _guard = db.lock().unwrap();
                panic!("poison the lock");
            })
            .join();
        }
        lock(&db).insert(record("after-poison", 500.0));
        assert_eq!(lock(&db).records().len(), 1);
    }
}
