//! Application signatures.
//!
//! The loop (or application) signature is the set of performance and power
//! metrics EARL computes per measurement window and feeds to the energy
//! policies (paper §III/§V): iteration time, CPI, TPI, GB/s, VPI and
//! average DC node power, plus the average CPU/IMC frequencies needed for
//! model projections and reporting.

use ear_archsim::{CounterDelta, MAX_UNCORE_DOMAINS};

/// One measurement window's signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signature {
    /// Window wall-clock length (s).
    pub window_s: f64,
    /// Loop iterations covered by the window (1 for time-guided mode).
    pub iterations: u32,
    /// Cycles per instruction.
    pub cpi: f64,
    /// Main-memory transactions per instruction.
    pub tpi: f64,
    /// Main-memory bandwidth (GB/s).
    pub gbs: f64,
    /// AVX512 instruction fraction.
    pub vpi: f64,
    /// Average DC node power over the window (W).
    pub dc_power_w: f64,
    /// Average RAPL package power over the window (W).
    pub pkg_power_w: f64,
    /// Average CPU frequency (kHz, all cores).
    pub avg_cpu_khz: f64,
    /// Average IMC frequency (kHz).
    pub avg_imc_khz: f64,
    /// Uncore frequency domains backing the per-domain fields below
    /// (1 on single-knob parts; the arrays are zero past this count).
    pub imc_domains: u8,
    /// Average IMC frequency per uncore domain (kHz). On a 1-domain
    /// platform entry 0 equals `avg_imc_khz` bit-for-bit.
    pub imc_dom_khz: [f64; MAX_UNCORE_DOMAINS],
    /// Main-memory bandwidth served per uncore domain (GB/s). Entries sum
    /// to `gbs` up to rounding of the per-domain CAS counters.
    pub gbs_dom: [f64; MAX_UNCORE_DOMAINS],
}

impl Default for Signature {
    /// An all-zero single-domain signature; tests and builders complete it
    /// with functional update syntax.
    fn default() -> Self {
        Self {
            window_s: 0.0,
            iterations: 1,
            cpi: 0.0,
            tpi: 0.0,
            gbs: 0.0,
            vpi: 0.0,
            dc_power_w: 0.0,
            pkg_power_w: 0.0,
            avg_cpu_khz: 0.0,
            avg_imc_khz: 0.0,
            imc_domains: 1,
            imc_dom_khz: [0.0; MAX_UNCORE_DOMAINS],
            gbs_dom: [0.0; MAX_UNCORE_DOMAINS],
        }
    }
}

impl Signature {
    /// Builds a signature from a counter delta.
    pub fn from_delta(d: &CounterDelta, iterations: u32) -> Self {
        let nd = d.uncore_domains.clamp(1, MAX_UNCORE_DOMAINS);
        let mut imc_dom_khz = [0.0; MAX_UNCORE_DOMAINS];
        let mut gbs_dom = [0.0; MAX_UNCORE_DOMAINS];
        for k in 0..nd {
            imc_dom_khz[k] = d.imc_dom_khz[k];
            gbs_dom[k] = d.gbs_dom(k);
        }
        Self {
            window_s: d.seconds,
            iterations: iterations.max(1),
            cpi: d.cpi(),
            tpi: d.tpi(),
            gbs: d.gbs(),
            vpi: d.vpi(),
            dc_power_w: d.dc_power_w(),
            pkg_power_w: d.pkg_power_w(),
            avg_cpu_khz: d.avg_cpu_khz,
            avg_imc_khz: d.avg_imc_khz,
            imc_domains: nd as u8,
            imc_dom_khz,
            gbs_dom,
        }
    }

    /// Uncore domain count, never below 1 (a zeroed count reads as the
    /// legacy single knob).
    pub fn domain_count(&self) -> usize {
        (self.imc_domains as usize).clamp(1, MAX_UNCORE_DOMAINS)
    }

    /// Per-iteration time (s).
    pub fn iter_time_s(&self) -> f64 {
        self.window_s / self.iterations.max(1) as f64
    }

    /// Window energy (J) from the DC power.
    pub fn dc_energy_j(&self) -> f64 {
        self.dc_power_w * self.window_s
    }

    /// Whether `other` differs significantly from `self`. The paper accepts
    /// up to 15 % variation before re-applying the policy, using CPI and
    /// GB/s as the change detectors (§V-B items 5–6).
    pub fn changed_significantly(&self, other: &Signature, threshold: f64) -> bool {
        rel_diff(self.cpi, other.cpi) > threshold || rel_diff(self.gbs, other.gbs) > threshold
    }

    /// True when the window's power reading is usable (the INM counter
    /// needs at least one publication inside the window).
    pub fn has_power(&self) -> bool {
        self.dc_power_w > 0.0
    }
}

/// Relative difference, safe at zero.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(1e-9);
    (a - b).abs() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(cpi: f64, gbs: f64) -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi,
            tpi: 0.01,
            gbs,
            vpi: 0.0,
            dc_power_w: 330.0,
            pkg_power_w: 240.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    #[test]
    fn default_is_single_domain() {
        let s = Signature::default();
        assert_eq!(s.domain_count(), 1);
        let forced = Signature {
            imc_domains: 0,
            ..Default::default()
        };
        assert_eq!(forced.domain_count(), 1, "zeroed count reads as legacy");
    }

    #[test]
    fn iter_time_and_energy() {
        let s = sig(0.5, 20.0);
        assert!((s.iter_time_s() - 2.0).abs() < 1e-12);
        assert!((s.dc_energy_j() - 3300.0).abs() < 1e-9);
    }

    #[test]
    fn change_detection_uses_cpi_and_gbs() {
        let a = sig(0.50, 20.0);
        // 10 % CPI drift: below the paper's 15 % threshold.
        assert!(!a.changed_significantly(&sig(0.55, 20.0), 0.15));
        // 20 % CPI drift: significant.
        assert!(a.changed_significantly(&sig(0.60, 20.0), 0.15));
        // 20 % bandwidth drift: significant.
        assert!(a.changed_significantly(&sig(0.50, 16.0), 0.15));
        // Power drift alone is NOT a change trigger.
        let mut b = sig(0.50, 20.0);
        b.dc_power_w = 500.0;
        assert!(!a.changed_significantly(&b, 0.15));
    }

    #[test]
    fn rel_diff_safe_at_zero() {
        assert!(rel_diff(0.0, 0.0) < 1e-3);
        assert!(rel_diff(0.0, 1.0) > 1.0);
    }
}
