//! Dependency-free least-squares surface fitting for the sweep engine.
//!
//! `earsim sweep` measures T(f, u) and P(f, u) over the full
//! (pstate × uncore-ratio) grid; this module fits each surface with a
//! bivariate quadratic by solving the normal equations over small, fixed
//! size matrices — no external linear-algebra crates. The fitted
//! coefficients feed the one-shot [`fitted`](crate::policy::fitted)
//! policy, which replaces the iterative `IMC_FREQ_SEL` settle sequence
//! with two polynomial evaluations per candidate point (Chadha & Gerndt's
//! "model the grid once, select in one shot" alternative to the paper's
//! runtime search).
//!
//! Both axes are in GHz: `f` is the CPU frequency, `u` the uncore
//! frequency (ratio × 0.1). The quadratic basis is
//! `[1, f, u, f², u², f·u]` — six coefficients, so any grid with at least
//! six distinct (f, u) points and both axes varying is well-posed.

use ear_errors::{EarError, EarResult};

/// Number of terms in the bivariate quadratic basis.
pub const POLY2_TERMS: usize = 6;

/// A bivariate quadratic `c0 + c1·f + c2·u + c3·f² + c4·u² + c5·f·u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poly2 {
    /// Coefficients in basis order `[1, f, u, f², u², f·u]`.
    pub coeffs: [f64; POLY2_TERMS],
}

impl Poly2 {
    /// Evaluates the polynomial at `(f, u)`.
    pub fn eval(&self, f: f64, u: f64) -> f64 {
        let c = &self.coeffs;
        c[0] + c[1] * f + c[2] * u + c[3] * f * f + c[4] * u * u + c[5] * f * u
    }

    /// The basis row for a sample point.
    fn basis(f: f64, u: f64) -> [f64; POLY2_TERMS] {
        [1.0, f, u, f * f, u * u, f * u]
    }
}

/// Fit quality against the sample set the surface was fitted from:
/// relative residuals `|fit − measured| / measured`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FitResidual {
    /// Largest relative residual over the samples.
    pub max_rel: f64,
    /// Mean relative residual over the samples.
    pub mean_rel: f64,
}

/// Least-squares fit of [`Poly2`] to `(f, u, value)` samples via the
/// normal equations `(AᵀA)·c = Aᵀb`, solved by Gaussian elimination with
/// partial pivoting. Deterministic: same samples in the same order give
/// bit-identical coefficients.
pub fn fit_poly2(samples: &[(f64, f64, f64)]) -> EarResult<Poly2> {
    if samples.len() < POLY2_TERMS {
        return Err(EarError::Invariant(format!(
            "fit: {} samples for a {POLY2_TERMS}-term basis",
            samples.len()
        )));
    }
    let mut ata = [[0.0f64; POLY2_TERMS]; POLY2_TERMS];
    let mut atb = [0.0f64; POLY2_TERMS];
    for &(f, u, v) in samples {
        if !(f.is_finite() && u.is_finite() && v.is_finite()) {
            return Err(EarError::Invariant(format!(
                "fit: non-finite sample ({f}, {u}, {v})"
            )));
        }
        let row = Poly2::basis(f, u);
        for i in 0..POLY2_TERMS {
            for j in 0..POLY2_TERMS {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * v;
        }
    }
    let coeffs = solve6(&mut ata, &mut atb)?;
    Ok(Poly2 { coeffs })
}

/// Solves the 6×6 system in place; errors on a (numerically) singular
/// matrix — a degenerate grid, e.g. a single uncore ratio.
fn solve6(
    a: &mut [[f64; POLY2_TERMS]; POLY2_TERMS],
    b: &mut [f64; POLY2_TERMS],
) -> EarResult<[f64; POLY2_TERMS]> {
    for col in 0..POLY2_TERMS {
        // Partial pivoting: bring the largest remaining entry up.
        let mut pivot = col;
        for row in (col + 1)..POLY2_TERMS {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return Err(EarError::Invariant(
                "fit: singular normal matrix (degenerate sample grid)".into(),
            ));
        }
        if pivot != col {
            a.swap(pivot, col);
            b.swap(pivot, col);
        }
        let upper = a[col];
        for row in (col + 1)..POLY2_TERMS {
            let factor = a[row][col] / upper[col];
            for (entry, &u) in a[row][col..].iter_mut().zip(&upper[col..]) {
                *entry -= factor * u;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; POLY2_TERMS];
    for col in (0..POLY2_TERMS).rev() {
        let mut acc = b[col];
        for k in (col + 1)..POLY2_TERMS {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Ok(x)
}

/// Relative residuals of a fitted polynomial against its sample set.
/// Samples with a non-positive measured value are skipped (nothing in the
/// sweep produces them; guarding keeps the ratio well-defined).
pub fn residuals(poly: &Poly2, samples: &[(f64, f64, f64)]) -> FitResidual {
    let mut max_rel = 0.0f64;
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for &(f, u, v) in samples {
        if v <= 0.0 {
            continue;
        }
        let rel = ((poly.eval(f, u) - v) / v).abs();
        max_rel = max_rel.max(rel);
        sum += rel;
        n += 1;
    }
    FitResidual {
        max_rel,
        mean_rel: if n == 0 { 0.0 } else { sum / n as f64 },
    }
}

/// A fitted (time, power) surface pair over the swept frequency window.
/// This is what `earsim sweep` produces per workload and what the
/// `fitted` policy consumes through
/// [`PolicySettings::fitted`](crate::policy::PolicySettings::fitted).
#[derive(Debug, Clone, PartialEq)]
pub struct FittedSurface {
    /// T̂(f, u): predicted execution time (s).
    pub time: Poly2,
    /// P̂(f, u): predicted DC node power (W).
    pub power: Poly2,
    /// Swept CPU frequency window (GHz).
    pub f_range_ghz: (f64, f64),
    /// Swept uncore frequency window (GHz).
    pub u_range_ghz: (f64, f64),
}

impl FittedSurface {
    /// Predicted execution time at `(f, u)` GHz.
    pub fn time_s(&self, f: f64, u: f64) -> f64 {
        self.time.eval(f, u)
    }

    /// Predicted DC node power at `(f, u)` GHz.
    pub fn power_w(&self, f: f64, u: f64) -> f64 {
        self.power.eval(f, u)
    }

    /// Predicted energy `T̂·P̂` at `(f, u)` GHz.
    pub fn energy_j(&self, f: f64, u: f64) -> f64 {
        self.time_s(f, u) * self.power_w(f, u)
    }

    /// Whether `(f, u)` lies inside the fitted window (with a small slack
    /// so the window edges themselves always qualify).
    pub fn covers(&self, f: f64, u: f64) -> bool {
        let eps = 1e-9;
        f >= self.f_range_ghz.0 - eps
            && f <= self.f_range_ghz.1 + eps
            && u >= self.u_range_ghz.0 - eps
            && u <= self.u_range_ghz.1 + eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                pts.push((1.2 + 0.3 * i as f64, 1.2 + 0.3 * j as f64));
            }
        }
        pts
    }

    #[test]
    fn recovers_an_exact_quadratic() {
        let truth = Poly2 {
            coeffs: [3.0, -1.5, 0.75, 0.2, -0.1, 0.4],
        };
        let samples: Vec<_> = grid()
            .into_iter()
            .map(|(f, u)| (f, u, truth.eval(f, u)))
            .collect();
        let fit = fit_poly2(&samples).unwrap();
        for (a, b) in fit.coeffs.iter().zip(truth.coeffs.iter()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        let r = residuals(&fit, &samples);
        assert!(r.max_rel < 1e-9, "max_rel {}", r.max_rel);
    }

    #[test]
    fn fit_is_bit_deterministic() {
        let samples: Vec<_> = grid()
            .into_iter()
            .map(|(f, u)| (f, u, 2.0 + f / u + 0.3 * f * f))
            .collect();
        let a = fit_poly2(&samples).unwrap();
        let b = fit_poly2(&samples).unwrap();
        for (x, y) in a.coeffs.iter().zip(b.coeffs.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn rejects_underdetermined_and_degenerate_inputs() {
        assert!(fit_poly2(&[(1.0, 1.0, 1.0); 5]).is_err(), "too few");
        // 25 samples all at one uncore point: u-columns are linearly
        // dependent, the normal matrix is singular.
        let samples: Vec<_> = (0..25).map(|i| (1.0 + 0.05 * i as f64, 2.4, 1.0)).collect();
        assert!(fit_poly2(&samples).is_err(), "degenerate");
    }

    #[test]
    fn surface_energy_and_coverage() {
        let s = FittedSurface {
            time: Poly2 {
                coeffs: [10.0, -1.0, -0.5, 0.0, 0.0, 0.0],
            },
            power: Poly2 {
                coeffs: [100.0, 20.0, 10.0, 0.0, 0.0, 0.0],
            },
            f_range_ghz: (1.2, 2.4),
            u_range_ghz: (1.2, 2.4),
        };
        let t = s.time_s(2.0, 2.0);
        let p = s.power_w(2.0, 2.0);
        assert!((s.energy_j(2.0, 2.0) - t * p).abs() < 1e-12);
        assert!(s.covers(1.2, 2.4));
        assert!(!s.covers(0.8, 2.0));
        assert!(!s.covers(2.0, 2.6));
    }
}
