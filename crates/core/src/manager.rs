//! Frequency actuation: turning a policy's [`NodeFreqs`] into MSR writes.
//!
//! This is EAR's node-manager path: the CPU pstate goes to `IA32_PERF_CTL`
//! on every socket (all cores), the uncore limits to
//! `MSR_UNCORE_RATIO_LIMIT` — the paper's §IV mechanism. Writes go through
//! the node's software MSR interface so the same validation real drivers
//! face (reserved bits, min ≤ max) is exercised. On multi-domain parts a
//! request carrying a [`DomainLimits`] block addresses each domain's TPMI
//! ratio-limit register individually; the legacy scalar pair keeps going
//! through 0x620, which aliases TPMI domain 0.

use crate::policy::api::{DomainLimits, NodeFreqs};
use ear_archsim::msr::{self, addr};
use ear_archsim::{MsrError, Node};

/// Applies `freqs` to every socket of `node`. A per-domain block, when
/// present, programs each domain's TPMI register pair; otherwise the
/// single legacy `MSR_UNCORE_RATIO_LIMIT` write is performed (which on
/// multi-domain hardware reaches domain 0 only — exactly the silent
/// single-knob assumption this refactor removed from the policies).
pub fn apply_freqs(node: &mut Node, freqs: &NodeFreqs) -> Result<(), MsrError> {
    let ratio = node.config.pstates.ratio_for(freqs.cpu);
    for s in 0..node.socket_count() {
        node.write_msr(s, addr::IA32_PERF_CTL, msr::pack_perf_ctl(ratio))?;
        if freqs.imc_dom.is_per_domain() {
            for d in 0..freqs.imc_dom.count() {
                let packed =
                    msr::pack_uncore_ratio_limit(freqs.imc_dom.min[d], freqs.imc_dom.max[d]);
                node.write_msr(s, addr::tpmi_ratio_limit(d), packed)?;
            }
        } else {
            // A scalar request is package-scope: the legacy register (an
            // alias of TPMI domain 0) plus every further die, so a
            // single-knob policy limits the whole package on per-die
            // hardware exactly as it does on legacy parts. On 1-domain
            // nodes the loop body never runs and the MSR traffic is
            // identical to the pre-domain code.
            let uncore = msr::pack_uncore_ratio_limit(freqs.imc_min_ratio, freqs.imc_max_ratio);
            node.write_msr(s, addr::MSR_UNCORE_RATIO_LIMIT, uncore)?;
            for d in 1..node.uncore_domain_count() {
                node.write_msr(s, addr::tpmi_ratio_limit(d), uncore)?;
            }
        }
    }
    Ok(())
}

/// Reads back the frequencies currently programmed (socket 0; EAR keeps
/// sockets in lock-step). On a multi-domain node the per-domain block is
/// populated from each domain's TPMI register; single-domain nodes report
/// the legacy scalar view only.
pub fn read_freqs(node: &Node) -> Result<NodeFreqs, MsrError> {
    let ratio = msr::unpack_perf_ratio(node.read_msr(0, addr::IA32_PERF_CTL)?);
    let (imc_min, imc_max) =
        msr::unpack_uncore_ratio_limit(node.read_msr(0, addr::MSR_UNCORE_RATIO_LIMIT)?);
    let nd = node.uncore_domain_count();
    let mut imc_dom = DomainLimits::LEGACY;
    if nd > 1 {
        imc_dom.count = nd as u8;
        for d in 0..nd {
            let v = node.read_msr(0, addr::tpmi_ratio_limit(d))?;
            let (min, max) = msr::unpack_uncore_ratio_limit(v);
            imc_dom.min[d] = min;
            imc_dom.max[d] = max;
        }
    }
    Ok(NodeFreqs {
        cpu: node.config.pstates.pstate_for_ratio(ratio),
        imc_min_ratio: imc_min,
        imc_max_ratio: imc_max,
        imc_dom,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_archsim::NodeConfig;

    #[test]
    fn apply_and_read_roundtrip() {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        let f = NodeFreqs {
            cpu: 4,
            imc_min_ratio: 12,
            imc_max_ratio: 18,
            imc_dom: DomainLimits::LEGACY,
        };
        apply_freqs(&mut node, &f).unwrap();
        assert_eq!(read_freqs(&node).unwrap(), f);
        // All sockets got the write.
        for s in 0..node.socket_count() {
            let v = node.read_msr(s, addr::MSR_UNCORE_RATIO_LIMIT).unwrap();
            assert_eq!(msr::unpack_uncore_ratio_limit(v), (12, 18));
        }
    }

    #[test]
    fn invalid_limits_are_rejected_by_the_msr_layer() {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        let f = NodeFreqs {
            cpu: 1,
            imc_min_ratio: 20,
            imc_max_ratio: 15,
            imc_dom: DomainLimits::LEGACY,
        };
        assert!(apply_freqs(&mut node, &f).is_err());
    }

    #[test]
    fn pinning_uncore_takes_effect() {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        let f = NodeFreqs {
            cpu: 1,
            imc_min_ratio: 15,
            imc_max_ratio: 15,
            imc_dom: DomainLimits::LEGACY,
        };
        apply_freqs(&mut node, &f).unwrap();
        assert!((node.current_uncore_ghz() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn per_domain_block_programs_each_domain() {
        let mut node = Node::new(NodeConfig::sd530_6148().with_uncore_domains(2), 1);
        let mut f = NodeFreqs {
            cpu: 1,
            imc_min_ratio: 12,
            imc_max_ratio: 22,
            imc_dom: DomainLimits::uniform(2, 12, 22),
        };
        f.imc_dom.max[1] = 14;
        apply_freqs(&mut node, &f).unwrap();
        let back = read_freqs(&node).unwrap();
        assert_eq!(back.imc_dom.count(), 2);
        assert_eq!((back.imc_dom.min[0], back.imc_dom.max[0]), (12, 22));
        assert_eq!((back.imc_dom.min[1], back.imc_dom.max[1]), (12, 14));
        // Domain 0's TPMI register aliases the legacy 0x620 pair.
        assert_eq!((back.imc_min_ratio, back.imc_max_ratio), (12, 22));
        // Limits are honoured independently by each firmware controller.
        assert_eq!(node.uncore_limits(0, 0), (12, 22));
        assert_eq!(node.uncore_limits(0, 1), (12, 14));
    }

    #[test]
    fn per_domain_block_faults_on_absent_domains() {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        let f = NodeFreqs {
            cpu: 1,
            imc_min_ratio: 12,
            imc_max_ratio: 22,
            imc_dom: DomainLimits::uniform(2, 12, 22),
        };
        // Domain 1 does not exist on a single-domain node: the TPMI write
        // faults and the whole request is rejected.
        assert!(apply_freqs(&mut node, &f).is_err());
    }
}
