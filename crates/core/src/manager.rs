//! Frequency actuation: turning a policy's [`NodeFreqs`] into MSR writes.
//!
//! This is EAR's node-manager path: the CPU pstate goes to `IA32_PERF_CTL`
//! on every socket (all cores), the uncore limits to
//! `MSR_UNCORE_RATIO_LIMIT` — the paper's §IV mechanism. Writes go through
//! the node's software MSR interface so the same validation real drivers
//! face (reserved bits, min ≤ max) is exercised.

use crate::policy::api::NodeFreqs;
use ear_archsim::msr::{self, addr};
use ear_archsim::{MsrError, Node};

/// Applies `freqs` to every socket of `node`.
pub fn apply_freqs(node: &mut Node, freqs: &NodeFreqs) -> Result<(), MsrError> {
    let ratio = node.config.pstates.ratio_for(freqs.cpu);
    let uncore = msr::pack_uncore_ratio_limit(freqs.imc_min_ratio, freqs.imc_max_ratio);
    for s in 0..node.socket_count() {
        node.write_msr(s, addr::IA32_PERF_CTL, msr::pack_perf_ctl(ratio))?;
        node.write_msr(s, addr::MSR_UNCORE_RATIO_LIMIT, uncore)?;
    }
    Ok(())
}

/// Reads back the frequencies currently programmed (socket 0; EAR keeps
/// sockets in lock-step).
pub fn read_freqs(node: &Node) -> Result<NodeFreqs, MsrError> {
    let ratio = msr::unpack_perf_ratio(node.read_msr(0, addr::IA32_PERF_CTL)?);
    let (imc_min, imc_max) =
        msr::unpack_uncore_ratio_limit(node.read_msr(0, addr::MSR_UNCORE_RATIO_LIMIT)?);
    Ok(NodeFreqs {
        cpu: node.config.pstates.pstate_for_ratio(ratio),
        imc_min_ratio: imc_min,
        imc_max_ratio: imc_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_archsim::NodeConfig;

    #[test]
    fn apply_and_read_roundtrip() {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        let f = NodeFreqs {
            cpu: 4,
            imc_min_ratio: 12,
            imc_max_ratio: 18,
        };
        apply_freqs(&mut node, &f).unwrap();
        assert_eq!(read_freqs(&node).unwrap(), f);
        // All sockets got the write.
        for s in 0..node.socket_count() {
            let v = node.read_msr(s, addr::MSR_UNCORE_RATIO_LIMIT).unwrap();
            assert_eq!(msr::unpack_uncore_ratio_limit(v), (12, 18));
        }
    }

    #[test]
    fn invalid_limits_are_rejected_by_the_msr_layer() {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        let f = NodeFreqs {
            cpu: 1,
            imc_min_ratio: 20,
            imc_max_ratio: 15,
        };
        assert!(apply_freqs(&mut node, &f).is_err());
    }

    #[test]
    fn pinning_uncore_takes_effect() {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        let f = NodeFreqs {
            cpu: 1,
            imc_min_ratio: 15,
            imc_max_ratio: 15,
        };
        apply_freqs(&mut node, &f).unwrap();
        assert!((node.current_uncore_ghz() - 1.5).abs() < 1e-9);
    }
}
