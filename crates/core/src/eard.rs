//! EARD — the node daemon.
//!
//! On production systems the EAR library is unprivileged: every frequency
//! request goes through the node daemon, which owns the MSRs and enforces
//! administrator limits (cluster power caps, frequency ceilings) *over*
//! whatever the user-side policy asks for. [`EarDaemon`] reproduces that
//! authority split: it wraps the per-node runtime (EARL), periodically
//! measures node power, runs the powercap controller and clamps the
//! programmed frequencies to the resulting ceiling.

use crate::manager;
use crate::policy::api::NodeFreqs;
use crate::powercap::PowercapController;
use ear_archsim::{CounterSnapshot, Node};
use ear_mpisim::{MpiEvent, NodeRuntime};

/// The daemon wrapping a node runtime.
pub struct EarDaemon<R> {
    inner: R,
    cap: Option<PowercapController>,
    /// Power-evaluation window (s).
    eval_window_s: f64,
    last_eval: Option<CounterSnapshot>,
    clamps: u32,
    evaluations: u32,
}

impl<R> EarDaemon<R> {
    /// Wraps `inner` without a power cap (pure pass-through + telemetry).
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            cap: None,
            eval_window_s: 10.0,
            last_eval: None,
            clamps: 0,
            evaluations: 0,
        }
    }

    /// Wraps `inner` with a node power cap (W).
    pub fn with_cap(inner: R, node: &Node, cap_w: f64) -> Self {
        let mut d = Self::new(inner);
        d.cap = Some(PowercapController::new(node, cap_w));
        d
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// How many times the daemon overrode the library's frequencies.
    pub fn clamps(&self) -> u32 {
        self.clamps
    }

    /// How many powercap evaluations ran.
    pub fn evaluations(&self) -> u32 {
        self.evaluations
    }

    /// Reassigns the node cap (from EARGM).
    pub fn set_cap_w(&mut self, cap_w: f64) {
        if let Some(cap) = self.cap.as_mut() {
            cap.set_cap_w(cap_w);
        }
    }

    /// Clamps the programmed frequencies to `ceiling` if they exceed it.
    /// Returns whether a clamp was applied.
    fn enforce(&mut self, node: &mut Node, ceiling: NodeFreqs) -> bool {
        let current = manager::read_freqs(node);
        // A faster CPU pstate is a *smaller* index; the ceiling is the
        // fastest allowed.
        let clamped = NodeFreqs {
            cpu: current.cpu.max(ceiling.cpu),
            imc_min_ratio: current.imc_min_ratio.min(ceiling.imc_max_ratio),
            imc_max_ratio: current.imc_max_ratio.min(ceiling.imc_max_ratio),
        };
        if clamped != current {
            manager::apply_freqs(node, &clamped).expect("clamped frequencies are valid");
            self.clamps += 1;
            true
        } else {
            false
        }
    }

    fn evaluate(&mut self, node: &mut Node) {
        let Some(cap) = self.cap.as_mut() else { return };
        let now = node.snapshot();
        let Some(last) = self.last_eval.as_ref() else {
            self.last_eval = Some(now);
            return;
        };
        if now.time - last.time < self.eval_window_s {
            return;
        }
        let window_s = now.time - last.time;
        let power_w = (now.dc_energy_exact_j - last.dc_energy_exact_j) / window_s;
        cap.evaluate(power_w);
        let ceiling = cap.ceiling();
        self.evaluations += 1;
        self.last_eval = Some(now);
        self.enforce(node, ceiling);
    }
}

impl<R: NodeRuntime> NodeRuntime for EarDaemon<R> {
    fn on_job_start(&mut self, node: &mut Node, job_name: &str, ranks: usize) {
        self.last_eval = Some(node.snapshot());
        self.clamps = 0;
        self.evaluations = 0;
        self.inner.on_job_start(node, job_name, ranks);
    }

    fn on_mpi_call(&mut self, node: &mut Node, event: &MpiEvent) {
        self.inner.on_mpi_call(node, event);
        self.evaluate(node);
    }

    fn on_tick(&mut self, node: &mut Node) {
        self.inner.on_tick(node);
        self.evaluate(node);
    }

    fn on_job_end(&mut self, node: &mut Node) {
        self.inner.on_job_end(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Earl, EarlConfig};
    use ear_archsim::Cluster;
    use ear_mpisim::{run_job, NullRuntime};
    use ear_workloads::{build_job, by_name, calibrate};

    #[test]
    fn passthrough_without_cap_never_clamps() {
        let targets = by_name("BQCD").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 71);
        let mut rts: Vec<EarDaemon<Earl>> = (0..targets.nodes)
            .map(|_| EarDaemon::new(Earl::from_registry(EarlConfig::default())))
            .collect();
        run_job(&mut cluster, &job, &mut rts);
        assert_eq!(rts[0].clamps(), 0);
        assert!(rts[0].inner().job_record().is_some());
    }

    #[test]
    fn cap_overrides_the_library() {
        // A cap far below the workload's draw (~330 W): the daemon must
        // throttle regardless of what EARL wants.
        let targets = by_name("BT-MZ.C (OpenMP)").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let run = |cap: Option<f64>| {
            let mut cluster = Cluster::new(cal.node_config.clone(), 1, 72);
            let earl = Earl::from_registry(EarlConfig::default());
            let mut rts = vec![match cap {
                Some(w) => EarDaemon::with_cap(earl, cluster.node(0), w),
                None => EarDaemon::new(earl),
            }];
            let report = run_job(&mut cluster, &job, &mut rts);
            (report.avg_dc_power_w(), rts.remove(0))
        };
        let (uncapped_w, _) = run(None);
        let (capped_w, daemon) = run(Some(280.0));
        assert!(daemon.clamps() > 0, "daemon never enforced");
        assert!(daemon.evaluations() > 3);
        assert!(
            capped_w < uncapped_w - 15.0,
            "cap ineffective: {capped_w} vs {uncapped_w}"
        );
    }

    #[test]
    fn generous_cap_is_invisible() {
        let targets = by_name("BQCD").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 73);
        let mut rts: Vec<EarDaemon<NullRuntime>> = (0..targets.nodes)
            .map(|i| EarDaemon::with_cap(NullRuntime, cluster.node(i), 500.0))
            .collect();
        let report = run_job(&mut cluster, &job, &mut rts);
        assert_eq!(rts[0].clamps(), 0);
        assert!((report.seconds() - targets.time_s).abs() / targets.time_s < 0.03);
    }
}
