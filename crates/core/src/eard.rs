//! EARD — the node daemon.
//!
//! On production systems the EAR library is unprivileged: every frequency
//! request goes through the node daemon, which owns the MSRs and enforces
//! administrator limits (cluster power caps, frequency ceilings) *over*
//! whatever the user-side policy asks for. [`EarDaemon`] reproduces that
//! authority split with the typed message protocol of
//! [`crate::protocol`]: after every inner-runtime hook it drains the
//! runtime's request mailbox, clamps `SetFreqs` requests against its
//! powercap ceiling, performs the MSR writes (the *only* layer that does),
//! and replies with what was actually granted. Periodically it measures
//! node power, runs the powercap controller and enforces the resulting
//! ceiling over the already-programmed frequencies. Every exchanged
//! [`EarMessage`] is kept in an inspectable log.

use crate::manager;
use crate::policy::api::NodeFreqs;
use crate::powercap::PowercapController;
use crate::protocol::{DaemonEndpoint, DaemonReply, EarMessage, EarlRequest, GmCommand};
use ear_archsim::{CounterSnapshot, Node};
use ear_mpisim::{MpiEvent, NodeRuntime};
use ear_trace::{self as trace, TraceEvent, TraceRecord};

/// The daemon wrapping a node runtime.
pub struct EarDaemon<R> {
    inner: R,
    cap: Option<PowercapController>,
    /// Power-evaluation window (s).
    eval_window_s: f64,
    last_eval: Option<CounterSnapshot>,
    clamps: u32,
    evaluations: u32,
    log: Vec<EarMessage>,
    node_id: u64,
}

impl<R> EarDaemon<R> {
    /// Wraps `inner` without a power cap (requests are granted verbatim).
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            cap: None,
            eval_window_s: 10.0,
            last_eval: None,
            clamps: 0,
            evaluations: 0,
            log: Vec::new(),
            node_id: 0,
        }
    }

    /// Wraps `inner` with a node power cap (W).
    pub fn with_cap(inner: R, node: &Node, cap_w: f64) -> Self {
        let mut d = Self::new(inner);
        d.cap = Some(PowercapController::new(node, cap_w));
        d
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Mutable access to the wrapped runtime.
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// How many times the daemon overrode the library's frequencies
    /// (clamped grants and periodic enforcements).
    pub fn clamps(&self) -> u32 {
        self.clamps
    }

    /// How many powercap evaluations ran.
    pub fn evaluations(&self) -> u32 {
        self.evaluations
    }

    /// Every protocol message exchanged since job start, oldest first.
    pub fn messages(&self) -> &[EarMessage] {
        &self.log
    }

    /// Sets the node index stamped on trace records (default 0).
    pub fn set_node_id(&mut self, node_id: u64) {
        self.node_id = node_id;
    }

    /// Reassigns the node cap (operator intervention; EARGM goes through
    /// [`EarDaemon::handle_command`]).
    pub fn set_cap_w(&mut self, cap_w: f64) {
        if let Some(cap) = self.cap.as_mut() {
            cap.set_cap_w(cap_w);
        }
    }

    /// Applies a cluster-manager cap command and logs it.
    pub fn handle_command(&mut self, cmd: &GmCommand) {
        self.log.push(EarMessage::GmCommand(*cmd));
        self.set_cap_w(cmd.cap_w);
    }

    /// The ceiling requests are clamped against (no cap: no constraint).
    fn request_ceiling(&self) -> Option<NodeFreqs> {
        self.cap.as_ref().map(|c| c.ceiling())
    }

    /// Clamps the programmed frequencies to `ceiling` if they exceed it.
    /// Returns whether a clamp was applied.
    fn enforce(&mut self, node: &mut Node, ceiling: NodeFreqs) -> bool {
        let Ok(current) = manager::read_freqs(node) else {
            return false;
        };
        // A faster CPU pstate is a *smaller* index; the ceiling is the
        // fastest allowed. Per-domain limits are clamped entry-wise.
        let clamped = current.clamped_under(&ceiling);
        if clamped != current && manager::apply_freqs(node, &clamped).is_ok() {
            self.clamps += 1;
            self.log.push(EarMessage::Enforce {
                before: current,
                after: clamped,
            });
            let t = node.now().as_secs();
            let node_id = self.node_id;
            trace::emit_with(|| TraceRecord {
                time_s: t,
                node: node_id,
                event: TraceEvent::DaemonClamp {
                    cpu: clamped.cpu as u64,
                    imc_min: u64::from(clamped.imc_min_ratio),
                    imc_max: u64::from(clamped.imc_max_ratio),
                },
            });
            true
        } else {
            false
        }
    }

    fn evaluate(&mut self, node: &mut Node) {
        let Some(cap) = self.cap.as_mut() else { return };
        let now = node.snapshot();
        let Some(last) = self.last_eval.as_ref() else {
            self.last_eval = Some(now);
            return;
        };
        if now.time - last.time < self.eval_window_s {
            return;
        }
        let window_s = now.time - last.time;
        let power_w = (now.dc_energy_exact_j - last.dc_energy_exact_j) / window_s;
        let action = cap.evaluate(power_w);
        let ceiling = cap.ceiling();
        self.evaluations += 1;
        self.last_eval = Some(now);
        self.log.push(EarMessage::PowercapVerdict {
            power_w,
            action,
            ceiling,
        });
        let t = node.now().as_secs();
        let node_id = self.node_id;
        trace::emit_with(|| TraceRecord {
            time_s: t,
            node: node_id,
            event: TraceEvent::PowercapVerdict {
                power_w,
                action: format!("{action:?}"),
            },
        });
        self.enforce(node, ceiling);
    }
}

impl<R: DaemonEndpoint> EarDaemon<R> {
    /// Drains and services the inner runtime's request mailbox: signature
    /// reports are logged, frequency requests are clamped against the
    /// powercap ceiling, written to the MSRs, and answered.
    fn service(&mut self, node: &mut Node) {
        for request in self.inner.drain_requests() {
            self.log.push(EarMessage::Request(request));
            let EarlRequest::SetFreqs(requested) = request else {
                continue;
            };
            let granted = match self.request_ceiling() {
                Some(ceiling) => requested.clamped_under(&ceiling),
                None => requested,
            };
            let clamped = granted != requested;
            let reply = match manager::apply_freqs(node, &granted) {
                Ok(()) => {
                    if clamped {
                        self.clamps += 1;
                    }
                    let t = node.now().as_secs();
                    let node_id = self.node_id;
                    trace::emit_with(|| TraceRecord {
                        time_s: t,
                        node: node_id,
                        event: TraceEvent::FreqGrant {
                            cpu: granted.cpu as u64,
                            imc_min: u64::from(granted.imc_min_ratio),
                            imc_max: u64::from(granted.imc_max_ratio),
                            clamped,
                        },
                    });
                    DaemonReply::FreqsApplied {
                        requested,
                        granted,
                        clamped,
                    }
                }
                Err(_) => DaemonReply::Rejected { requested },
            };
            self.log.push(EarMessage::Reply(reply));
            self.inner.deliver(&reply);
        }
    }
}

impl<R: NodeRuntime + DaemonEndpoint> NodeRuntime for EarDaemon<R> {
    fn on_job_start(&mut self, node: &mut Node, job_name: &str, ranks: usize) {
        self.last_eval = Some(node.snapshot());
        self.clamps = 0;
        self.evaluations = 0;
        self.log.clear();
        self.inner.on_job_start(node, job_name, ranks);
        self.service(node);
    }

    fn on_mpi_call(&mut self, node: &mut Node, event: &MpiEvent) {
        self.inner.on_mpi_call(node, event);
        self.service(node);
        self.evaluate(node);
    }

    fn on_tick(&mut self, node: &mut Node) {
        self.inner.on_tick(node);
        self.service(node);
        self.evaluate(node);
    }

    fn on_job_end(&mut self, node: &mut Node) {
        self.inner.on_job_end(node);
        self.service(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Earl, EarlConfig};
    use ear_archsim::Cluster;
    use ear_mpisim::{run_job, NullRuntime};
    use ear_workloads::{build_job, by_name, calibrate};

    fn earl() -> Earl {
        Earl::from_registry(EarlConfig::default()).expect("default config resolves")
    }

    #[test]
    fn passthrough_without_cap_never_clamps() {
        let targets = by_name("BQCD").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 71);
        let mut rts: Vec<EarDaemon<Earl>> =
            (0..targets.nodes).map(|_| EarDaemon::new(earl())).collect();
        run_job(&mut cluster, &job, &mut rts);
        assert_eq!(rts[0].clamps(), 0);
        assert!(rts[0].inner().job_record().is_some());
        // The protocol log shows requests and grants, none of them
        // overrides.
        let d = &rts[0];
        assert!(d
            .messages()
            .iter()
            .any(|m| matches!(m, EarMessage::Request(EarlRequest::SetFreqs(_)))));
        assert!(d
            .messages()
            .iter()
            .any(|m| matches!(m, EarMessage::Reply(DaemonReply::FreqsApplied { .. }))));
        assert!(d.messages().iter().all(|m| !m.is_override()));
    }

    #[test]
    fn cap_overrides_the_library() {
        // A cap far below the workload's draw (~330 W): the daemon must
        // throttle regardless of what EARL wants.
        let targets = by_name("BT-MZ.C (OpenMP)").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let run = |cap: Option<f64>| {
            let mut cluster = Cluster::new(cal.node_config.clone(), 1, 72);
            let mut rts = vec![match cap {
                Some(w) => EarDaemon::with_cap(earl(), cluster.node(0), w),
                None => EarDaemon::new(earl()),
            }];
            let report = run_job(&mut cluster, &job, &mut rts);
            (report.avg_dc_power_w(), rts.remove(0))
        };
        let (uncapped_w, _) = run(None);
        let (capped_w, daemon) = run(Some(280.0));
        assert!(daemon.clamps() > 0, "daemon never enforced");
        assert!(daemon.evaluations() > 3);
        assert!(
            capped_w < uncapped_w - 15.0,
            "cap ineffective: {capped_w} vs {uncapped_w}"
        );
        // The override decisions are visible as typed protocol messages.
        assert!(daemon.messages().iter().any(|m| m.is_override()));
        assert!(daemon
            .messages()
            .iter()
            .any(|m| matches!(m, EarMessage::PowercapVerdict { .. })));
    }

    #[test]
    fn generous_cap_is_invisible() {
        let targets = by_name("BQCD").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 73);
        let mut rts: Vec<EarDaemon<NullRuntime>> = (0..targets.nodes)
            .map(|i| EarDaemon::with_cap(NullRuntime, cluster.node(i), 500.0))
            .collect();
        let report = run_job(&mut cluster, &job, &mut rts);
        assert_eq!(rts[0].clamps(), 0);
        assert!((report.seconds() - targets.time_s).abs() / targets.time_s < 0.03);
    }

    #[test]
    fn gm_commands_reassign_the_cap() {
        let node = Node::new(ear_archsim::NodeConfig::sd530_6148(), 7);
        let mut d = EarDaemon::with_cap(NullRuntime, &node, 400.0);
        d.handle_command(&GmCommand {
            node: 0,
            cap_w: 250.0,
        });
        assert!(matches!(
            d.messages().last(),
            Some(EarMessage::GmCommand(GmCommand { node: 0, .. }))
        ));
    }
}
