//! `ear.conf` parsing.
//!
//! EAR is configured cluster-wide through `ear.conf`; the sysadmin sets the
//! default policy and thresholds there, and users may override a permitted
//! subset per job. This module parses the subset of that format this
//! reproduction uses into an [`EarlConfig`].
//!
//! Format: one `Key=Value` per line; `#` starts a comment; keys are
//! case-insensitive. Unknown keys and malformed values are hard errors —
//! a silently misread energy policy is worse than a failed job start.

use crate::earl::EarlConfig;
use crate::policy::api::{ImcRange, ImcSearch};
use std::fmt;

/// A configuration parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ConfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ear.conf line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfError {}

impl From<ConfError> for ear_errors::EarError {
    fn from(e: ConfError) -> Self {
        ear_errors::EarError::Config {
            line: Some(e.line),
            message: e.message,
        }
    }
}

/// Parses `ear.conf` text into an [`EarlConfig`], starting from defaults.
///
/// ```
/// let config = ear_core::parse_ear_conf(
///     "Policy=min_energy_eufs\nUncPolicyTh=0.03  # looser uncore budget",
/// )
/// .unwrap();
/// assert_eq!(config.policy_name, "min_energy_eufs");
/// assert!((config.settings.unc_policy_th - 0.03).abs() < 1e-12);
/// ```
pub fn parse_ear_conf(text: &str) -> Result<EarlConfig, ConfError> {
    let mut config = EarlConfig::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfError {
                line: line_no,
                message: format!("expected Key=Value, got '{line}'"),
            });
        };
        let key = key.trim().to_ascii_lowercase();
        let value = value.trim();
        let err = |message: String| ConfError {
            line: line_no,
            message,
        };
        let parse_f64 = |v: &str| {
            v.parse::<f64>()
                .map_err(|_| err(format!("'{v}' is not a number")))
        };
        let parse_usize = |v: &str| {
            v.parse::<usize>()
                .map_err(|_| err(format!("'{v}' is not an integer")))
        };
        match key.as_str() {
            "policy" => config.policy_name = value.to_string(),
            "model" => config.model_name = value.to_string(),
            "cpupolicyth" => {
                let v = parse_f64(value)?;
                if !(0.0..=0.5).contains(&v) {
                    return Err(err(format!("CpuPolicyTh {v} outside [0, 0.5]")));
                }
                config.settings.cpu_policy_th = v;
            }
            "uncpolicyth" => {
                let v = parse_f64(value)?;
                if !(0.0..=0.5).contains(&v) {
                    return Err(err(format!("UncPolicyTh {v} outside [0, 0.5]")));
                }
                config.settings.unc_policy_th = v;
            }
            "sigchangeth" => config.settings.sig_change_th = parse_f64(value)?,
            "defaultpstate" => config.settings.def_pstate = parse_usize(value)?,
            "mintimeeffgain" => config.settings.min_time_eff_gain = parse_f64(value)?,
            "imcsearch" => {
                config.settings.imc_search = match value.to_ascii_lowercase().as_str() {
                    "hw_guided" | "hwguided" | "hw" => ImcSearch::HwGuided,
                    "linear" | "not_guided" => ImcSearch::Linear,
                    other => return Err(err(format!("unknown ImcSearch '{other}'"))),
                };
            }
            "imcrange" => {
                let v = value.to_ascii_lowercase();
                config.settings.imc_range = if v == "max_only" || v == "maxonly" {
                    ImcRange::MaxOnly
                } else if v == "pinned" {
                    ImcRange::Pinned
                } else if let Some(n) = v.strip_prefix("band:") {
                    ImcRange::Band(
                        n.parse()
                            .map_err(|_| err(format!("bad band width '{n}'")))?,
                    )
                } else {
                    return Err(err(format!("unknown ImcRange '{value}'")));
                };
            }
            "minsignaturewindow" => {
                let v = parse_f64(value)?;
                if v <= 0.0 {
                    return Err(err("MinSignatureWindow must be positive".into()));
                }
                config.min_signature_window_s = v;
            }
            "dynaislevels" => {
                let v = parse_usize(value)?;
                if v == 0 {
                    return Err(err("DynaisLevels must be at least 1".into()));
                }
                config.dynais.levels = v;
            }
            "dynaiswindowsize" => {
                let v = parse_usize(value)?;
                if v < 4 {
                    return Err(err("DynaisWindowSize must be at least 4".into()));
                }
                config.dynais.window_size = v;
            }
            other => return Err(err(format!("unknown key '{other}'"))),
        }
    }
    Ok(config)
}

/// Renders an [`EarlConfig`] back to `ear.conf` text (round-trippable).
pub fn render_ear_conf(config: &EarlConfig) -> String {
    let search = match config.settings.imc_search {
        ImcSearch::HwGuided => "hw_guided",
        ImcSearch::Linear => "linear",
    };
    let range = match config.settings.imc_range {
        ImcRange::MaxOnly => "max_only".to_string(),
        ImcRange::Pinned => "pinned".to_string(),
        ImcRange::Band(n) => format!("band:{n}"),
    };
    format!(
        "# EAR configuration (generated)\n\
         Policy={}\n\
         Model={}\n\
         CpuPolicyTh={}\n\
         UncPolicyTh={}\n\
         SigChangeTh={}\n\
         DefaultPstate={}\n\
         MinTimeEffGain={}\n\
         ImcSearch={search}\n\
         ImcRange={range}\n\
         MinSignatureWindow={}\n\
         DynaisLevels={}\n\
         DynaisWindowSize={}\n",
        config.policy_name,
        config.model_name,
        config.settings.cpu_policy_th,
        config.settings.unc_policy_th,
        config.settings.sig_change_th,
        config.settings.def_pstate,
        config.settings.min_time_eff_gain,
        config.min_signature_window_s,
        config.dynais.levels,
        config.dynais.window_size,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_configuration() {
        let conf = "\
            # the paper's default setup\n\
            Policy=min_energy_eufs\n\
            CpuPolicyTh=0.05\n\
            UncPolicyTh=0.02   # extra uncore budget\n\
            ImcSearch=hw_guided\n\
            ImcRange=max_only\n\
            MinSignatureWindow=10\n";
        let c = parse_ear_conf(conf).unwrap();
        assert_eq!(c.policy_name, "min_energy_eufs");
        assert!((c.settings.cpu_policy_th - 0.05).abs() < 1e-12);
        assert!((c.settings.unc_policy_th - 0.02).abs() < 1e-12);
        assert_eq!(c.settings.imc_search, ImcSearch::HwGuided);
        assert_eq!(c.settings.imc_range, ImcRange::MaxOnly);
    }

    #[test]
    fn empty_conf_is_defaults() {
        let c = parse_ear_conf("").unwrap();
        let d = EarlConfig::default();
        assert_eq!(c.policy_name, d.policy_name);
        assert_eq!(c.min_signature_window_s, d.min_signature_window_s);
    }

    #[test]
    fn keys_are_case_insensitive() {
        let c = parse_ear_conf("POLICY=min_time\ncpupolicyth=0.03").unwrap();
        assert_eq!(c.policy_name, "min_time");
        assert!((c.settings.cpu_policy_th - 0.03).abs() < 1e-12);
    }

    #[test]
    fn band_range_parses() {
        let c = parse_ear_conf("ImcRange=band:3").unwrap();
        assert_eq!(c.settings.imc_range, ImcRange::Band(3));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_ear_conf("Policy=ok\nNotAKey=1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown key"));

        let e = parse_ear_conf("CpuPolicyTh=not_a_number").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse_ear_conf("just junk").unwrap_err();
        assert!(e.message.contains("Key=Value"));
    }

    #[test]
    fn out_of_range_thresholds_rejected() {
        assert!(parse_ear_conf("CpuPolicyTh=0.9").is_err());
        assert!(parse_ear_conf("UncPolicyTh=-0.1").is_err());
        assert!(parse_ear_conf("MinSignatureWindow=0").is_err());
        assert!(parse_ear_conf("DynaisLevels=0").is_err());
    }

    #[test]
    fn render_roundtrips() {
        let mut c = EarlConfig {
            policy_name: "min_time_eufs".into(),
            model_name: "default".into(),
            ..Default::default()
        };
        c.settings.unc_policy_th = 0.03;
        c.settings.imc_range = ImcRange::Band(2);
        c.dynais.levels = 6;
        let text = render_ear_conf(&c);
        let back = parse_ear_conf(&text).unwrap();
        assert_eq!(back.policy_name, c.policy_name);
        assert_eq!(back.model_name, "default");
        assert_eq!(back.settings.unc_policy_th, c.settings.unc_policy_th);
        assert_eq!(back.settings.imc_range, c.settings.imc_range);
        assert_eq!(back.dynais.levels, 6);
    }

    #[test]
    fn model_key_parses() {
        let c = parse_ear_conf("Model=default").unwrap();
        assert_eq!(c.model_name, "default");
        assert_eq!(parse_ear_conf("").unwrap().model_name, "avx512");
    }
}
