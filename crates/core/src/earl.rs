//! EARL — the EAR runtime library.
//!
//! One [`Earl`] instance attaches to each node of a job (on real systems it
//! is preloaded into every MPI process and coordinates per node through a
//! master rank). It is driven entirely by the PMPI event stream:
//!
//! 1. every MPI call is hashed and fed to DynAIS;
//! 2. at detected iteration boundaries, once the measurement window is
//!    long enough (≥ 10 s: the INM energy counter updates at 1 s), counters
//!    are read and a [`Signature`] computed;
//! 3. the signature drives the [`EarlStateMachine`] and the configured
//!    policy plugin, whose frequency selections are written to the MSRs.
//!
//! Non-MPI applications (OpenMP, CUDA, MKL) produce no PMPI events; EARL
//! then operates *time-guided* (paper §III) from the periodic tick.

use crate::accounting::JobRecord;
use crate::manager;
use crate::models::Avx512Model;
use crate::policy::api::{NodeFreqs, PolicyCtx, PolicySettings, PowerPolicy};
use crate::signature::Signature;
use crate::state::EarlStateMachine;
use ear_archsim::{CounterSnapshot, Node, PstateTable, SimTime};
use ear_dynais::{DynAis, DynaisConfig};
use ear_mpisim::{MpiEvent, NodeRuntime};

/// EARL configuration (the subset of `ear.conf` this paper exercises).
#[derive(Debug, Clone)]
pub struct EarlConfig {
    /// Policy plugin name (resolved through the registry by the caller) —
    /// kept for reporting.
    pub policy_name: String,
    /// Policy settings.
    pub settings: PolicySettings,
    /// Minimum measurement-window length before a signature is computed
    /// (paper: 10 s or more, constrained by the power-metering rate).
    pub min_signature_window_s: f64,
    /// DynAIS geometry.
    pub dynais: DynaisConfig,
}

impl Default for EarlConfig {
    fn default() -> Self {
        Self {
            policy_name: "min_energy_eufs".to_string(),
            settings: PolicySettings::default(),
            min_signature_window_s: 10.0,
            dynais: DynaisConfig::default(),
        }
    }
}

/// Per-job context captured at `MPI_Init`.
#[derive(Debug, Clone)]
struct JobCtx {
    name: String,
    start: CounterSnapshot,
    pstates: PstateTable,
    uncore_min_ratio: u8,
    uncore_max_ratio: u8,
}

/// The runtime library.
pub struct Earl {
    config: EarlConfig,
    policy: Box<dyn PowerPolicy>,
    model: Option<Avx512Model>,
    dynais: DynAis,
    sm: EarlStateMachine,
    job: Option<JobCtx>,
    last_snapshot: Option<CounterSnapshot>,
    window_iters: u32,
    mpi_mode: bool,
    signatures: Vec<Signature>,
    freq_changes: Vec<(SimTime, NodeFreqs)>,
    record: Option<JobRecord>,
}

impl Earl {
    /// Creates an EARL instance with an explicit policy object (most tests
    /// and the experiment harness resolve the policy through
    /// [`crate::policy::api::PolicyRegistry`] first).
    pub fn new(config: EarlConfig, policy: Box<dyn PowerPolicy>) -> Self {
        let dynais = DynAis::new(&config.dynais);
        Self {
            config,
            policy,
            model: None,
            dynais,
            sm: EarlStateMachine::new(),
            job: None,
            last_snapshot: None,
            window_iters: 0,
            mpi_mode: false,
            signatures: Vec::new(),
            freq_changes: Vec::new(),
            record: None,
        }
    }

    /// Creates an instance resolving `config.policy_name` from the built-in
    /// registry. Panics on unknown names (configuration error).
    pub fn from_registry(config: EarlConfig) -> Self {
        let registry = crate::policy::api::PolicyRegistry::with_builtins();
        let policy = registry
            .create(&config.policy_name)
            .unwrap_or_else(|| panic!("unknown policy '{}'", config.policy_name));
        Self::new(config, policy)
    }

    /// The signatures computed so far.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }

    /// Every frequency change applied, with its timestamp.
    pub fn freq_changes(&self) -> &[(SimTime, NodeFreqs)] {
        &self.freq_changes
    }

    /// The accounting record, available after `on_job_end`.
    pub fn job_record(&self) -> Option<&JobRecord> {
        self.record.as_ref()
    }

    /// Immutable access to the policy (for convergence inspection).
    pub fn policy(&self) -> &dyn PowerPolicy {
        self.policy.as_ref()
    }

    fn try_signature(&mut self, node: &mut Node) {
        let Some(job) = self.job.as_ref() else { return };
        let Some(last) = self.last_snapshot.as_ref() else {
            return;
        };
        if self.window_iters == 0 {
            return;
        }
        let now = node.snapshot();
        let window = now.time - last.time;
        if window < self.config.min_signature_window_s {
            return;
        }
        let delta = now.delta(last);
        let sig = Signature::from_delta(&delta, self.window_iters);
        if !sig.has_power() {
            // No INM publication inside the window yet: extend it.
            return;
        }
        self.signatures.push(sig);
        let model = self.model.as_ref().expect("model initialised at job start");
        let ctx = PolicyCtx {
            pstates: &job.pstates,
            uncore_min_ratio: job.uncore_min_ratio,
            uncore_max_ratio: job.uncore_max_ratio,
            model,
            settings: &self.config.settings,
        };
        let outcome = self.sm.on_signature(self.policy.as_mut(), &sig, &ctx);
        if let Some(freqs) = outcome.freqs {
            manager::apply_freqs(node, &freqs).expect("policy produced invalid frequencies");
            self.freq_changes.push((node.now(), freqs));
        }
        self.last_snapshot = Some(now);
        self.window_iters = 0;
    }
}

impl NodeRuntime for Earl {
    fn on_job_start(&mut self, node: &mut Node, job_name: &str, _ranks_on_node: usize) {
        self.model = Some(Avx512Model::for_node(&node.config));
        self.job = Some(JobCtx {
            name: job_name.to_string(),
            start: node.snapshot(),
            pstates: node.config.pstates.clone(),
            uncore_min_ratio: node.config.uncore_min_ratio,
            uncore_max_ratio: node.config.uncore_max_ratio,
        });
        self.last_snapshot = Some(node.snapshot());
        self.window_iters = 0;
        self.mpi_mode = false;
        self.dynais.reset();
        self.sm.reset();
        self.policy.reset();
        self.signatures.clear();
        self.freq_changes.clear();
        self.record = None;
    }

    fn on_mpi_call(&mut self, node: &mut Node, event: &MpiEvent) {
        self.mpi_mode = true;
        let result = self.dynais.sample(event.dynais_sample());
        if result.event.is_boundary() {
            self.window_iters += 1;
            self.try_signature(node);
        }
    }

    fn on_tick(&mut self, node: &mut Node) {
        if self.mpi_mode {
            return;
        }
        // Time-guided mode: every tick is an iteration boundary.
        self.window_iters += 1;
        self.try_signature(node);
    }

    fn on_job_end(&mut self, node: &mut Node) {
        let Some(job) = self.job.take() else { return };
        let end = node.snapshot();
        let d = end.delta(&job.start);
        self.record = Some(JobRecord {
            app: job.name,
            policy: self.config.policy_name.clone(),
            seconds: d.seconds,
            dc_energy_j: end.dc_energy_exact_j - job.start.dc_energy_exact_j,
            pkg_energy_j: d.pkg_energy_j,
            avg_dc_power_w: if d.seconds > 0.0 {
                (end.dc_energy_exact_j - job.start.dc_energy_exact_j) / d.seconds
            } else {
                0.0
            },
            avg_cpu_ghz: d.avg_cpu_ghz(),
            avg_imc_ghz: d.avg_imc_ghz(),
            cpi: d.cpi(),
            gbs: d.gbs(),
            signatures: self.signatures.len() as u32,
            freq_changes: self.freq_changes.len() as u32,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::min_energy_eufs::MinEnergyEufs;
    use ear_archsim::{Cluster, NodeConfig};
    use ear_mpisim::run_job;
    use ear_workloads::{build_job, calibrate};

    fn earl(policy_name: &str) -> Earl {
        let config = EarlConfig {
            policy_name: policy_name.into(),
            ..Default::default()
        };
        Earl::from_registry(config)
    }

    #[test]
    fn registry_resolution_works() {
        let e = earl("min_energy_eufs");
        assert_eq!(e.policy().name(), "min_energy_eufs");
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        let _ = earl("not_a_policy");
    }

    #[test]
    fn mpi_app_produces_signatures_and_freq_changes() {
        let targets = ear_workloads::by_name("BT-MZ").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 11);
        let mut rts: Vec<Earl> = (0..targets.nodes)
            .map(|_| earl("min_energy_eufs"))
            .collect();
        run_job(&mut cluster, &job, &mut rts);
        let e = &rts[0];
        assert!(
            e.signatures().len() >= 5,
            "signatures: {}",
            e.signatures().len()
        );
        assert!(!e.freq_changes().is_empty());
        let rec = e.job_record().expect("record after job end");
        assert_eq!(rec.app, "BT-MZ");
        assert!(rec.seconds > 100.0);
        // BT-MZ is CPU bound: the policy keeps nominal CPU but lowers the
        // uncore maximum (the paper's headline behaviour).
        let last = e.freq_changes().last().unwrap().1;
        assert_eq!(last.cpu, 1, "CPU must stay nominal");
        assert!(last.imc_max_ratio < 24, "uncore max must have been lowered");
    }

    #[test]
    fn time_guided_mode_for_openmp_kernel() {
        let targets = ear_workloads::by_name("BT-MZ.C (OpenMP)").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), 1, 13);
        let mut rts = vec![earl("min_energy_eufs")];
        run_job(&mut cluster, &job, &mut rts);
        // No MPI events, yet signatures exist: the time-guided path works.
        assert!(rts[0].signatures().len() >= 5);
        assert!(!rts[0].freq_changes().is_empty());
    }

    #[test]
    fn monitoring_policy_never_moves_frequencies() {
        let targets = ear_workloads::by_name("BQCD").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 17);
        let mut rts: Vec<Earl> = (0..targets.nodes).map(|_| earl("monitoring")).collect();
        run_job(&mut cluster, &job, &mut rts);
        for freq in rts[0].freq_changes() {
            assert_eq!(freq.1.cpu, 1);
            assert_eq!(freq.1.imc_max_ratio, 24);
        }
    }

    #[test]
    fn signature_windows_respect_minimum_length() {
        let targets = ear_workloads::by_name("BQCD").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 19);
        let mut rts: Vec<Earl> = (0..targets.nodes)
            .map(|_| earl("min_energy_eufs"))
            .collect();
        run_job(&mut cluster, &job, &mut rts);
        for sig in rts[0].signatures() {
            assert!(sig.window_s >= 10.0 - 1e-6, "window {}", sig.window_s);
            assert!(sig.has_power());
        }
    }

    #[test]
    fn direct_policy_injection_works() {
        // The plugin API allows handing EARL any policy object.
        let e = Earl::new(EarlConfig::default(), Box::new(MinEnergyEufs::default()));
        assert_eq!(e.policy().name(), "min_energy_eufs");
        let _ = NodeConfig::sd530_6148();
    }
}
