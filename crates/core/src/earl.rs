//! EARL — the EAR runtime library.
//!
//! One [`Earl`] instance attaches to each node of a job (on real systems it
//! is preloaded into every MPI process and coordinates per node through a
//! master rank). It is driven entirely by the PMPI event stream:
//!
//! 1. every MPI call is hashed and fed to DynAIS;
//! 2. at detected iteration boundaries, once the measurement window is
//!    long enough (≥ 10 s: the INM energy counter updates at 1 s), counters
//!    are read and a [`Signature`] computed;
//! 3. the signature drives the [`EarlStateMachine`] and the configured
//!    policy plugin; frequency selections are *requested* from the node
//!    daemon through the typed message protocol — EARL is unprivileged and
//!    never writes an MSR itself.
//!
//! Non-MPI applications (OpenMP, CUDA, MKL) produce no PMPI events; EARL
//! then operates *time-guided* (paper §III) from the periodic tick.
//!
//! The energy model used for projections is resolved by name through the
//! [`ModelRegistry`] (`ear.conf` `Model=`),
//! so EARL works against the [`EnergyModel`] trait only.

use crate::accounting::JobRecord;
use crate::models::{EnergyModel, ModelFactory, ModelRegistry};
use crate::policy::api::{NodeFreqs, PolicyCtx, PolicySettings, PowerPolicy};
use crate::protocol::{DaemonEndpoint, DaemonReply, EarlRequest};
use crate::signature::Signature;
use crate::state::EarlStateMachine;
use ear_archsim::{CounterSnapshot, Node, PstateTable, SimTime};
use ear_dynais::{DynAis, DynaisConfig};
use ear_errors::EarError;
use ear_mpisim::{MpiEvent, NodeRuntime};
use ear_trace::{self as trace, TraceEvent, TraceRecord};

/// EARL configuration (the subset of `ear.conf` this paper exercises).
#[derive(Debug, Clone)]
pub struct EarlConfig {
    /// Policy plugin name (resolved through the registry by the caller) —
    /// kept for reporting.
    pub policy_name: String,
    /// Energy-model plugin name, resolved through
    /// [`ModelRegistry::with_builtins`] at construction.
    pub model_name: String,
    /// Policy settings.
    pub settings: PolicySettings,
    /// Minimum measurement-window length before a signature is computed
    /// (paper: 10 s or more, constrained by the power-metering rate).
    pub min_signature_window_s: f64,
    /// DynAIS geometry.
    pub dynais: DynaisConfig,
}

impl Default for EarlConfig {
    fn default() -> Self {
        Self {
            policy_name: "min_energy_eufs".to_string(),
            model_name: "avx512".to_string(),
            settings: PolicySettings::default(),
            min_signature_window_s: 10.0,
            dynais: DynaisConfig::default(),
        }
    }
}

/// Per-job context captured at `MPI_Init`.
#[derive(Debug, Clone)]
struct JobCtx {
    name: String,
    start: CounterSnapshot,
    pstates: PstateTable,
    uncore_min_ratio: u8,
    uncore_max_ratio: u8,
    uncore_domains: usize,
}

/// The runtime library.
pub struct Earl {
    config: EarlConfig,
    policy: Box<dyn PowerPolicy>,
    model_factory: ModelFactory,
    model: Option<Box<dyn EnergyModel>>,
    dynais: DynAis,
    sm: EarlStateMachine,
    job: Option<JobCtx>,
    last_snapshot: Option<CounterSnapshot>,
    window_iters: u32,
    mpi_mode: bool,
    signatures: Vec<Signature>,
    freq_changes: Vec<(SimTime, NodeFreqs)>,
    record: Option<JobRecord>,
    /// Requests awaiting the daemon's next drain.
    outbox: Vec<EarlRequest>,
    /// Timestamp of the in-flight `SetFreqs` request (the daemon services
    /// it within the same event, so no simulated time passes in between).
    pending_request_t: Option<SimTime>,
    last_imc_ceiling: Option<u8>,
    node_id: u64,
}

impl Earl {
    /// Creates an EARL instance with an explicit policy object (most tests
    /// and the experiment harness resolve the policy through
    /// [`crate::policy::api::PolicyRegistry`] first). The energy model is
    /// resolved from `config.model_name`; unknown names are a configuration
    /// error.
    pub fn new(config: EarlConfig, policy: Box<dyn PowerPolicy>) -> Result<Self, EarError> {
        let factory = ModelRegistry::with_builtins().resolve(&config.model_name)?;
        Ok(Self::with_model_factory(config, policy, factory))
    }

    /// Creates an instance with an explicit model factory (user-supplied
    /// models that are not in the built-in registry).
    pub fn with_model_factory(
        config: EarlConfig,
        policy: Box<dyn PowerPolicy>,
        model_factory: ModelFactory,
    ) -> Self {
        let dynais = DynAis::new(&config.dynais);
        Self {
            config,
            policy,
            model_factory,
            model: None,
            dynais,
            sm: EarlStateMachine::new(),
            job: None,
            last_snapshot: None,
            window_iters: 0,
            mpi_mode: false,
            signatures: Vec::new(),
            freq_changes: Vec::new(),
            record: None,
            outbox: Vec::new(),
            pending_request_t: None,
            last_imc_ceiling: None,
            node_id: 0,
        }
    }

    /// Creates an instance resolving `config.policy_name` and
    /// `config.model_name` from the built-in registries.
    pub fn from_registry(config: EarlConfig) -> Result<Self, EarError> {
        let registry = crate::policy::api::PolicyRegistry::with_builtins();
        let policy = registry
            .create(&config.policy_name)
            .ok_or_else(|| EarError::unknown("policy", &config.policy_name))?;
        Self::new(config, policy)
    }

    /// Sets the node index stamped on trace records (default 0).
    pub fn set_node_id(&mut self, node_id: u64) {
        self.node_id = node_id;
    }

    /// The signatures computed so far.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }

    /// Every frequency change granted by the daemon, with its timestamp.
    pub fn freq_changes(&self) -> &[(SimTime, NodeFreqs)] {
        &self.freq_changes
    }

    /// The accounting record, available after `on_job_end`.
    pub fn job_record(&self) -> Option<&JobRecord> {
        self.record.as_ref()
    }

    /// Immutable access to the policy (for convergence inspection).
    pub fn policy(&self) -> &dyn PowerPolicy {
        self.policy.as_ref()
    }

    /// The configured energy-model name.
    pub fn model_name(&self) -> &str {
        &self.config.model_name
    }

    fn try_signature(&mut self, node: &mut Node) {
        let Some(job) = self.job.as_ref() else { return };
        let Some(last) = self.last_snapshot.as_ref() else {
            return;
        };
        if self.window_iters == 0 {
            return;
        }
        let now = node.snapshot();
        let window = now.time - last.time;
        if window < self.config.min_signature_window_s {
            return;
        }
        let delta = now.delta(last);
        let sig = Signature::from_delta(&delta, self.window_iters);
        if !sig.has_power() {
            // No INM publication inside the window yet: extend it.
            return;
        }
        self.signatures.push(sig);
        self.outbox.push(EarlRequest::ReportSignature(sig));
        let Some(model) = self.model.as_deref() else {
            return;
        };
        let ctx = PolicyCtx {
            pstates: &job.pstates,
            uncore_min_ratio: job.uncore_min_ratio,
            uncore_max_ratio: job.uncore_max_ratio,
            // A policy configured single-knob sees one domain even on
            // per-die hardware; EARD then applies its scalar ceiling
            // package-wide (see `manager::apply_freqs`).
            uncore_domains: if self.config.settings.per_domain_ufs {
                job.uncore_domains
            } else {
                1
            },
            model,
            settings: &self.config.settings,
        };
        let state_before = self.sm.state();
        let outcome = self.sm.on_signature(self.policy.as_mut(), &sig, &ctx);
        let t = node.now();
        let node_id = self.node_id;
        if outcome.state != state_before {
            trace::emit_with(|| TraceRecord {
                time_s: t.as_secs(),
                node: node_id,
                event: TraceEvent::StateTransition {
                    from: format!("{state_before:?}"),
                    to: format!("{:?}", outcome.state),
                },
            });
        }
        let ceiling = self.policy.imc_ceiling();
        if ceiling != self.last_imc_ceiling {
            if let Some(max_ratio) = ceiling {
                trace::emit_with(|| TraceRecord {
                    time_s: t.as_secs(),
                    node: node_id,
                    event: TraceEvent::ImcSearchStep {
                        max_ratio: u64::from(max_ratio),
                    },
                });
            }
            self.last_imc_ceiling = ceiling;
        }
        if let Some(freqs) = outcome.freqs {
            let policy_name = self.policy.name();
            trace::emit_with(|| TraceRecord {
                time_s: t.as_secs(),
                node: node_id,
                event: TraceEvent::PolicyDecision {
                    policy: policy_name.to_string(),
                    cpu: freqs.cpu as u64,
                    imc_min: u64::from(freqs.imc_min_ratio),
                    imc_max: u64::from(freqs.imc_max_ratio),
                    ready: outcome.state == crate::state::EarState::ValidatePolicy,
                },
            });
            trace::emit_with(|| TraceRecord {
                time_s: t.as_secs(),
                node: node_id,
                event: TraceEvent::FreqRequest {
                    cpu: freqs.cpu as u64,
                    imc_min: u64::from(freqs.imc_min_ratio),
                    imc_max: u64::from(freqs.imc_max_ratio),
                },
            });
            self.outbox.push(EarlRequest::SetFreqs(freqs));
            self.pending_request_t = Some(t);
        }
        self.last_snapshot = Some(now);
        self.window_iters = 0;
    }
}

impl DaemonEndpoint for Earl {
    fn drain_requests(&mut self) -> Vec<EarlRequest> {
        std::mem::take(&mut self.outbox)
    }

    fn deliver(&mut self, reply: &DaemonReply) {
        match reply {
            DaemonReply::FreqsApplied { granted, .. } => {
                if let Some(t) = self.pending_request_t.take() {
                    self.freq_changes.push((t, *granted));
                }
            }
            DaemonReply::Rejected { .. } => {
                self.pending_request_t = None;
            }
        }
    }
}

impl NodeRuntime for Earl {
    fn on_job_start(&mut self, node: &mut Node, job_name: &str, _ranks_on_node: usize) {
        self.model = Some((self.model_factory)(&node.config));
        self.job = Some(JobCtx {
            name: job_name.to_string(),
            start: node.snapshot(),
            pstates: node.config.pstates.clone(),
            uncore_min_ratio: node.config.uncore_min_ratio,
            uncore_max_ratio: node.config.uncore_max_ratio,
            uncore_domains: node.uncore_domain_count(),
        });
        self.last_snapshot = Some(node.snapshot());
        self.window_iters = 0;
        self.mpi_mode = false;
        self.dynais.reset();
        self.sm.reset();
        self.policy.reset();
        self.signatures.clear();
        self.freq_changes.clear();
        self.record = None;
        self.outbox.clear();
        self.pending_request_t = None;
        self.last_imc_ceiling = None;
        let t = node.now();
        let node_id = self.node_id;
        trace::emit_with(|| TraceRecord {
            time_s: t.as_secs(),
            node: node_id,
            event: TraceEvent::JobStart {
                job: job_name.to_string(),
            },
        });
    }

    fn on_mpi_call(&mut self, node: &mut Node, event: &MpiEvent) {
        self.mpi_mode = true;
        let result = self.dynais.sample(event.dynais_sample());
        if result.event.is_boundary() {
            self.window_iters += 1;
            self.try_signature(node);
        }
    }

    fn on_tick(&mut self, node: &mut Node) {
        if self.mpi_mode {
            return;
        }
        // Time-guided mode: every tick is an iteration boundary.
        self.window_iters += 1;
        self.try_signature(node);
    }

    fn on_job_end(&mut self, node: &mut Node) {
        let Some(job) = self.job.take() else { return };
        let end = node.snapshot();
        let d = end.delta(&job.start);
        self.record = Some(JobRecord {
            app: job.name,
            policy: self.config.policy_name.clone(),
            seconds: d.seconds,
            dc_energy_j: end.dc_energy_exact_j - job.start.dc_energy_exact_j,
            pkg_energy_j: d.pkg_energy_j,
            avg_dc_power_w: if d.seconds > 0.0 {
                (end.dc_energy_exact_j - job.start.dc_energy_exact_j) / d.seconds
            } else {
                0.0
            },
            avg_cpu_ghz: d.avg_cpu_ghz(),
            avg_imc_ghz: d.avg_imc_ghz(),
            cpi: d.cpi(),
            gbs: d.gbs(),
            signatures: self.signatures.len() as u32,
            freq_changes: self.freq_changes.len() as u32,
        });
        let t = node.now();
        let node_id = self.node_id;
        let n_sigs = self.signatures.len() as u64;
        trace::emit_with(|| TraceRecord {
            time_s: t.as_secs(),
            node: node_id,
            event: TraceEvent::JobEnd { signatures: n_sigs },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eard::EarDaemon;
    use crate::models::DefaultModel;
    use crate::policy::min_energy_eufs::MinEnergyEufs;
    use ear_archsim::{Cluster, NodeConfig};
    use ear_mpisim::run_job;
    use ear_workloads::{build_job, calibrate};
    use std::sync::Arc;

    fn earl(policy_name: &str) -> Earl {
        let config = EarlConfig {
            policy_name: policy_name.into(),
            ..Default::default()
        };
        Earl::from_registry(config).expect("builtin policy resolves")
    }

    fn stack(policy_name: &str) -> EarDaemon<Earl> {
        EarDaemon::new(earl(policy_name))
    }

    #[test]
    fn registry_resolution_works() {
        let e = earl("min_energy_eufs");
        assert_eq!(e.policy().name(), "min_energy_eufs");
        assert_eq!(e.model_name(), "avx512");
    }

    #[test]
    fn unknown_policy_is_a_config_error() {
        let config = EarlConfig {
            policy_name: "not_a_policy".into(),
            ..Default::default()
        };
        let err = Earl::from_registry(config).map(|_| ()).unwrap_err();
        assert_eq!(err.to_string(), "unknown policy 'not_a_policy'");
    }

    #[test]
    fn unknown_model_is_a_config_error() {
        let config = EarlConfig {
            model_name: "not_a_model".into(),
            ..Default::default()
        };
        let err = Earl::from_registry(config).map(|_| ()).unwrap_err();
        assert_eq!(err.to_string(), "unknown model 'not_a_model'");
    }

    #[test]
    fn mpi_app_produces_signatures_and_freq_changes() {
        let targets = ear_workloads::by_name("BT-MZ").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 11);
        let mut rts: Vec<EarDaemon<Earl>> = (0..targets.nodes)
            .map(|_| stack("min_energy_eufs"))
            .collect();
        run_job(&mut cluster, &job, &mut rts);
        let e = rts[0].inner();
        assert!(
            e.signatures().len() >= 5,
            "signatures: {}",
            e.signatures().len()
        );
        assert!(!e.freq_changes().is_empty());
        let rec = e.job_record().expect("record after job end");
        assert_eq!(rec.app, "BT-MZ");
        assert!(rec.seconds > 100.0);
        // BT-MZ is CPU bound: the policy keeps nominal CPU but lowers the
        // uncore maximum (the paper's headline behaviour).
        let last = e.freq_changes().last().unwrap().1;
        assert_eq!(last.cpu, 1, "CPU must stay nominal");
        assert!(last.imc_max_ratio < 24, "uncore max must have been lowered");
    }

    #[test]
    fn time_guided_mode_for_openmp_kernel() {
        let targets = ear_workloads::by_name("BT-MZ.C (OpenMP)").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), 1, 13);
        let mut rts = vec![stack("min_energy_eufs")];
        run_job(&mut cluster, &job, &mut rts);
        // No MPI events, yet signatures exist: the time-guided path works.
        assert!(rts[0].inner().signatures().len() >= 5);
        assert!(!rts[0].inner().freq_changes().is_empty());
    }

    #[test]
    fn monitoring_policy_never_moves_frequencies() {
        let targets = ear_workloads::by_name("BQCD").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 17);
        let mut rts: Vec<EarDaemon<Earl>> =
            (0..targets.nodes).map(|_| stack("monitoring")).collect();
        run_job(&mut cluster, &job, &mut rts);
        for freq in rts[0].inner().freq_changes() {
            assert_eq!(freq.1.cpu, 1);
            assert_eq!(freq.1.imc_max_ratio, 24);
        }
    }

    #[test]
    fn signature_windows_respect_minimum_length() {
        let targets = ear_workloads::by_name("BQCD").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 19);
        let mut rts: Vec<EarDaemon<Earl>> = (0..targets.nodes)
            .map(|_| stack("min_energy_eufs"))
            .collect();
        run_job(&mut cluster, &job, &mut rts);
        for sig in rts[0].inner().signatures() {
            assert!(sig.window_s >= 10.0 - 1e-6, "window {}", sig.window_s);
            assert!(sig.has_power());
        }
    }

    #[test]
    fn direct_policy_injection_works() {
        // The plugin API allows handing EARL any policy object.
        let e = Earl::new(EarlConfig::default(), Box::new(MinEnergyEufs::default())).unwrap();
        assert_eq!(e.policy().name(), "min_energy_eufs");
        let _ = NodeConfig::sd530_6148();
    }

    #[test]
    fn default_model_is_selectable_and_changes_projections() {
        // The same workload under the default (pre-paper) model: the run
        // completes and the library reports the configured model name.
        let targets = ear_workloads::by_name("BT-MZ").unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 11);
        let config = EarlConfig {
            model_name: "default".into(),
            ..Default::default()
        };
        let mut rts: Vec<EarDaemon<Earl>> = (0..targets.nodes)
            .map(|_| EarDaemon::new(Earl::from_registry(config.clone()).unwrap()))
            .collect();
        run_job(&mut cluster, &job, &mut rts);
        let e = rts[0].inner();
        assert_eq!(e.model_name(), "default");
        assert!(e.signatures().len() >= 5);
        assert!(!e.freq_changes().is_empty());
    }

    #[test]
    fn custom_model_factories_are_accepted() {
        let factory: ModelFactory = Arc::new(|cfg| Box::new(DefaultModel::for_node(cfg)));
        let e = Earl::with_model_factory(
            EarlConfig::default(),
            Box::new(MinEnergyEufs::default()),
            factory,
        );
        assert_eq!(e.policy().name(), "min_energy_eufs");
    }
}
