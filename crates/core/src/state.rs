//! The EARL state machine (the paper's Code 1).
//!
//! EARL alternates between applying the policy (`NODE_POLICY`) and watching
//! for behaviour changes (`VALIDATE_POLICY`). Iterative policies hold it in
//! `NODE_POLICY` by returning [`PolicyState::Continue`]; once a policy
//! returns `Ready`, EARL applies the frequencies and becomes stable until
//! validation fails, at which point default frequencies are restored and
//! the policy restarts.

use crate::policy::api::{NodeFreqs, PolicyCtx, PolicyState, PowerPolicy};
use crate::signature::Signature;

/// EARL's top-level states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EarState {
    /// Applying the energy policy.
    NodePolicy,
    /// Policy converged; validating each new signature.
    ValidatePolicy,
}

/// What the state machine decided for one signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateOutcome {
    /// Frequencies to apply now, if any.
    pub freqs: Option<NodeFreqs>,
    /// The state after processing.
    pub state: EarState,
}

/// The state machine. Owns no policy — it drives one passed per call,
/// mirroring EAR's separation between the library core and policy plugins.
#[derive(Debug, Clone)]
pub struct EarlStateMachine {
    state: EarState,
}

impl EarlStateMachine {
    /// Starts in `NODE_POLICY` (the policy runs on the first signature).
    pub fn new() -> Self {
        Self {
            state: EarState::NodePolicy,
        }
    }

    /// Current state.
    pub fn state(&self) -> EarState {
        self.state
    }

    /// Processes one new signature (the paper's `state_new_signature`).
    pub fn on_signature(
        &mut self,
        policy: &mut dyn PowerPolicy,
        sig: &Signature,
        ctx: &PolicyCtx<'_>,
    ) -> StateOutcome {
        match self.state {
            EarState::NodePolicy => {
                let (freqs, pstate) = policy.node_policy(sig, ctx);
                if pstate == PolicyState::Ready {
                    self.state = EarState::ValidatePolicy;
                }
                StateOutcome {
                    freqs: Some(freqs),
                    state: self.state,
                }
            }
            EarState::ValidatePolicy => {
                if policy.validate(sig, ctx) {
                    StateOutcome {
                        freqs: None,
                        state: self.state,
                    }
                } else {
                    // Code 1: back to NODE_POLICY with default frequencies.
                    self.state = EarState::NodePolicy;
                    StateOutcome {
                        freqs: Some(policy.default_freqs(ctx)),
                        state: self.state,
                    }
                }
            }
        }
    }

    /// Resets to the initial state (job start).
    pub fn reset(&mut self) {
        self.state = EarState::NodePolicy;
    }
}

impl Default for EarlStateMachine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Avx512Model;
    use crate::policy::api::PolicySettings;
    use crate::policy::min_energy_eufs::MinEnergyEufs;
    use crate::policy::monitoring::Monitoring;
    use ear_archsim::{NodeConfig, PstateTable};

    fn sig(cpi: f64, gbs: f64) -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi,
            tpi: 0.001,
            gbs,
            vpi: 0.0,
            dc_power_w: 320.0,
            pkg_power_w: 235.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    #[test]
    fn one_shot_policy_reaches_validate() {
        let pstates = PstateTable::xeon_gold_6148();
        let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
        let settings = PolicySettings::default();
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: &model,
            settings: &settings,
        };
        let mut sm = EarlStateMachine::new();
        let mut policy = Monitoring::default();
        let out = sm.on_signature(&mut policy, &sig(0.4, 10.0), &ctx);
        assert_eq!(out.state, EarState::ValidatePolicy);
        assert!(out.freqs.is_some());
        // Stable: no frequency changes while validating successfully.
        let out = sm.on_signature(&mut policy, &sig(0.4, 10.0), &ctx);
        assert_eq!(out.freqs, None);
    }

    #[test]
    fn iterative_policy_holds_node_policy_state() {
        let pstates = PstateTable::xeon_gold_6148();
        let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
        let settings = PolicySettings::default();
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: &model,
            settings: &settings,
        };
        let mut sm = EarlStateMachine::new();
        let mut policy = MinEnergyEufs::default();
        // First signature: enters the IMC search, still NODE_POLICY.
        let out = sm.on_signature(&mut policy, &sig(0.4, 10.0), &ctx);
        assert_eq!(out.state, EarState::NodePolicy);
        assert!(out.freqs.is_some());
        // A penalised step (above the 2 % uncore budget but below the
        // 15 % phase-change threshold) converges the policy.
        let out = sm.on_signature(&mut policy, &sig(0.44, 9.2), &ctx);
        assert_eq!(out.state, EarState::ValidatePolicy);
    }

    #[test]
    fn failed_validation_restores_defaults() {
        let pstates = PstateTable::xeon_gold_6148();
        let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
        let settings = PolicySettings::default();
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: &model,
            settings: &settings,
        };
        let mut sm = EarlStateMachine::new();
        let mut policy = MinEnergyEufs::default();
        sm.on_signature(&mut policy, &sig(0.4, 10.0), &ctx);
        sm.on_signature(&mut policy, &sig(0.44, 9.2), &ctx); // converges
        assert_eq!(sm.state(), EarState::ValidatePolicy);
        // Phase change: defaults restored, back to NODE_POLICY.
        let out = sm.on_signature(&mut policy, &sig(2.0, 150.0), &ctx);
        assert_eq!(out.state, EarState::NodePolicy);
        assert_eq!(out.freqs, Some(ctx.default_freqs()));
    }
}
