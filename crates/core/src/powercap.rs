//! Cluster power capping — EAR's energy-*control* service.
//!
//! Beyond optimisation, EAR offers control: keeping a cluster under a power
//! budget by distributing per-node caps. This module implements the
//! node-level mechanism the EAR daemon uses: monitor recent node power and,
//! when the assigned cap is exceeded, lower the maximum CPU pstate (and,
//! with this paper's machinery available, the uncore maximum) until the
//! node complies; lift the restriction when there is headroom.

use crate::policy::api::NodeFreqs;
use ear_archsim::{Node, Pstate};

/// Per-node powercap controller.
#[derive(Debug, Clone)]
pub struct PowercapController {
    /// Assigned DC power cap (W); `f64::INFINITY` disables capping.
    cap_w: f64,
    /// Current pstate ceiling imposed by the cap (0 = unconstrained).
    pstate_floor: Pstate,
    /// Current uncore maximum imposed by the cap.
    imc_max: u8,
    /// Platform limits.
    imc_platform_max: u8,
    imc_platform_min: u8,
    slowest_pstate: Pstate,
    /// Hysteresis: fraction of the cap below which restrictions lift.
    lift_fraction: f64,
}

/// What the controller decided on one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapAction {
    /// Within budget; nothing changed.
    Ok,
    /// Throttled further (CPU pstate and/or uncore max lowered).
    Throttled,
    /// Restrictions partially lifted.
    Relaxed,
}

impl PowercapController {
    /// Creates a controller for a node with the given cap.
    pub fn new(node: &Node, cap_w: f64) -> Self {
        Self {
            cap_w,
            pstate_floor: node.config.pstates.nominal(),
            imc_max: node.config.uncore_max_ratio,
            imc_platform_max: node.config.uncore_max_ratio,
            imc_platform_min: node.config.uncore_min_ratio,
            slowest_pstate: node.config.pstates.slowest(),
            lift_fraction: 0.92,
        }
    }

    /// The cap (W).
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Reassigns the cap (cluster-level redistribution).
    pub fn set_cap_w(&mut self, cap_w: f64) {
        self.cap_w = cap_w;
    }

    /// The frequency ceiling currently imposed. The ceiling is expressed
    /// in the legacy scalar form; clamping applies it to every uncore
    /// domain of a request (see `NodeFreqs::clamped_under`).
    pub fn ceiling(&self) -> NodeFreqs {
        NodeFreqs {
            cpu: self.pstate_floor,
            imc_min_ratio: self.imc_platform_min,
            imc_max_ratio: self.imc_max,
            imc_dom: crate::policy::api::DomainLimits::LEGACY,
        }
    }

    /// Evaluates recent average power and adjusts the ceiling. The caller
    /// applies [`PowercapController::ceiling`] if the action is not `Ok`
    /// (the cap constrains the *policy*, which still optimises below it).
    ///
    /// Throttling is proportional: a large overshoot takes several steps
    /// at once (an uncore ratio step is worth only a few watts; waiting a
    /// full evaluation window per step would chase a 30 W deficit for
    /// minutes).
    pub fn evaluate(&mut self, recent_power_w: f64) -> CapAction {
        if recent_power_w > self.cap_w {
            // ~3 W per uncore ratio step on the calibrated platform.
            let steps = ((recent_power_w - self.cap_w) / 3.0).ceil().clamp(1.0, 6.0) as u32;
            let mut moved = false;
            for _ in 0..steps {
                // Alternate CPU and uncore throttling: uncore first
                // (cheaper in performance for most codes — the premise of
                // the paper).
                if self.imc_max > self.imc_platform_min {
                    self.imc_max -= 1;
                    moved = true;
                } else if self.pstate_floor < self.slowest_pstate {
                    self.pstate_floor += 1;
                    moved = true;
                } else {
                    break;
                }
            }
            if !moved {
                return CapAction::Ok; // fully throttled already
            }
            CapAction::Throttled
        } else if recent_power_w < self.cap_w * self.lift_fraction {
            if self.pstate_floor > 1 {
                self.pstate_floor -= 1;
                CapAction::Relaxed
            } else if self.imc_max < self.imc_platform_max {
                self.imc_max += 1;
                CapAction::Relaxed
            } else {
                CapAction::Ok
            }
        } else {
            CapAction::Ok
        }
    }
}

/// Distributes a cluster budget over nodes proportionally to their recent
/// power demand (EAR's cluster powercap redistribution).
pub fn distribute_budget(budget_w: f64, demands_w: &[f64]) -> Vec<f64> {
    let total: f64 = demands_w.iter().sum();
    if total <= 0.0 || demands_w.is_empty() {
        let n = demands_w.len().max(1) as f64;
        return demands_w.iter().map(|_| budget_w / n).collect();
    }
    demands_w.iter().map(|d| budget_w * d / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ear_archsim::NodeConfig;

    fn node() -> Node {
        Node::new(NodeConfig::sd530_6148(), 1)
    }

    #[test]
    fn within_budget_is_untouched() {
        let n = node();
        let mut c = PowercapController::new(&n, 350.0);
        assert_eq!(c.evaluate(330.0), CapAction::Ok);
        assert_eq!(c.ceiling().cpu, 1);
        assert_eq!(c.ceiling().imc_max_ratio, 24);
    }

    #[test]
    fn over_budget_throttles_uncore_first() {
        let n = node();
        let mut c = PowercapController::new(&n, 300.0);
        // 40 W over: several uncore steps at once, CPU untouched.
        assert_eq!(c.evaluate(340.0), CapAction::Throttled);
        assert_eq!(c.ceiling().imc_max_ratio, 18);
        assert_eq!(c.ceiling().cpu, 1);
        // Barely over: a single step.
        assert_eq!(c.evaluate(302.0), CapAction::Throttled);
        assert_eq!(c.ceiling().imc_max_ratio, 17);
    }

    #[test]
    fn sustained_overload_reaches_cpu_throttling() {
        let n = node();
        let mut c = PowercapController::new(&n, 250.0);
        for _ in 0..5 {
            c.evaluate(340.0);
        }
        // Uncore exhausted (12 steps), CPU throttling began.
        assert_eq!(c.ceiling().imc_max_ratio, 12);
        assert!(c.ceiling().cpu > 1);
    }

    #[test]
    fn headroom_lifts_restrictions() {
        let n = node();
        let mut c = PowercapController::new(&n, 300.0);
        for _ in 0..6 {
            c.evaluate(400.0);
        }
        let throttled_cpu = c.ceiling().cpu;
        assert!(throttled_cpu > 1);
        assert_eq!(c.evaluate(200.0), CapAction::Relaxed);
        assert!(c.ceiling().cpu < throttled_cpu);
    }

    #[test]
    fn fully_throttled_is_stable() {
        let n = node();
        let mut c = PowercapController::new(&n, 100.0);
        for _ in 0..100 {
            c.evaluate(500.0);
        }
        assert_eq!(c.evaluate(500.0), CapAction::Ok);
        assert_eq!(c.ceiling().imc_max_ratio, 12);
        assert_eq!(c.ceiling().cpu, c.slowest_pstate);
    }

    #[test]
    fn power_exactly_at_lift_fraction_holds_steady() {
        // The hysteresis band is half-open: relaxation requires power
        // strictly below cap·lift_fraction, so sitting exactly on the
        // boundary (or anywhere inside the band) changes nothing.
        let n = node();
        let mut c = PowercapController::new(&n, 300.0);
        c.evaluate(340.0); // throttle a few uncore steps
        let ceiling = c.ceiling();
        assert_eq!(c.evaluate(300.0 * 0.92), CapAction::Ok);
        assert_eq!(c.evaluate(300.0), CapAction::Ok);
        assert_eq!(c.ceiling(), ceiling);
    }

    #[test]
    fn infinite_cap_never_throttles_and_fully_relaxes() {
        let n = node();
        let mut c = PowercapController::new(&n, f64::INFINITY);
        // No finite power reading can exceed (or approach) the cap.
        for p in [0.0, 500.0, 1e12] {
            let a = c.evaluate(p);
            assert_ne!(a, CapAction::Throttled, "throttled at {p} W");
        }
        assert_eq!(c.ceiling().cpu, 1);
        assert_eq!(c.ceiling().imc_max_ratio, 24);
        // Pre-existing restrictions (a finite cap later lifted to ∞) are
        // released one step per evaluation until the ceiling is clean.
        c.set_cap_w(250.0);
        for _ in 0..4 {
            c.evaluate(400.0);
        }
        c.set_cap_w(f64::INFINITY);
        let mut guard = 0;
        while c.evaluate(300.0) == CapAction::Relaxed {
            guard += 1;
            assert!(guard < 64, "relaxation did not terminate");
        }
        assert_eq!(c.ceiling().cpu, 1);
        assert_eq!(c.ceiling().imc_max_ratio, 24);
    }

    #[test]
    fn throttle_relax_oscillation_is_bounded() {
        // Alternating overshoot/headroom readings must not walk the
        // ceiling outside platform limits or grow the swing over time:
        // each relax step is single, so the cycle is confined to a narrow
        // band once it settles.
        let n = node();
        let mut c = PowercapController::new(&n, 300.0);
        let mut ceilings = Vec::new();
        for i in 0..100 {
            let p = if i % 2 == 0 { 310.0 } else { 250.0 };
            c.evaluate(p);
            let ceil = c.ceiling();
            assert!(ceil.cpu >= 1 && ceil.cpu <= c.slowest_pstate);
            assert!(ceil.imc_max_ratio >= 12 && ceil.imc_max_ratio <= 24);
            ceilings.push((ceil.cpu, ceil.imc_max_ratio));
        }
        // After settling, the oscillation repeats with period 2 — the
        // last four states must be two identical pairs, not a drift.
        let tail = &ceilings[ceilings.len() - 4..];
        assert_eq!(tail[0], tail[2]);
        assert_eq!(tail[1], tail[3]);
    }

    #[test]
    fn budget_distribution_proportional() {
        let caps = distribute_budget(1000.0, &[300.0, 100.0]);
        assert!((caps[0] - 750.0).abs() < 1e-9);
        assert!((caps[1] - 250.0).abs() < 1e-9);
        // Degenerate: zero demand splits evenly.
        let caps = distribute_budget(1000.0, &[0.0, 0.0]);
        assert!((caps[0] - 500.0).abs() < 1e-9);
    }
}
