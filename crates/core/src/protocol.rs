//! The typed EARL↔EARD↔EARGM message protocol.
//!
//! On production systems the three EAR components live in separate
//! processes: EARL (unprivileged, preloaded into the application), EARD
//! (the root node daemon owning the MSRs) and EARGM (the cluster manager).
//! Every frequency request crosses the EARL→EARD boundary as an RPC, the
//! daemon enforces administrator limits before touching
//! `IA32_PERF_CTL`/`MSR_UNCORE_RATIO_LIMIT`, and daemons exchange power
//! reports and cap commands with EARGM.
//!
//! This module reproduces that split in-process: [`EarlRequest`] and
//! [`DaemonReply`] are the node-local mailbox pair ([`Earl`] enqueues,
//! [`EarDaemon`] drains, services and replies), [`GmReport`]/[`GmCommand`]
//! the daemon↔manager pair, and [`EarMessage`] the sum type under which
//! every exchanged message is logged for inspection — a daemon clamp is a
//! first-class, assertable event rather than a silent MSR write.
//!
//! [`Earl`]: crate::earl::Earl
//! [`EarDaemon`]: crate::eard::EarDaemon

use crate::policy::api::NodeFreqs;
use crate::powercap::CapAction;
use crate::signature::Signature;

/// A request EARL sends to its node daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EarlRequest {
    /// Program these frequencies (CPU pstate + uncore ratio limits) on
    /// every socket. The daemon — never the library — performs the MSR
    /// writes, after clamping against its administrative ceiling.
    SetFreqs(NodeFreqs),
    /// Report a freshly computed application signature (accounting and
    /// cluster-level reporting feed off these).
    ReportSignature(Signature),
}

/// A reply from the node daemon to EARL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DaemonReply {
    /// A [`EarlRequest::SetFreqs`] was serviced. `granted` is what was
    /// actually programmed; `clamped` is true when the daemon's ceiling
    /// overrode part of the request.
    FreqsApplied {
        /// The frequencies EARL asked for.
        requested: NodeFreqs,
        /// The frequencies the daemon programmed.
        granted: NodeFreqs,
        /// Whether `granted` differs from `requested`.
        clamped: bool,
    },
    /// The MSR layer refused the (clamped) write; nothing was programmed.
    Rejected {
        /// The frequencies EARL asked for.
        requested: NodeFreqs,
    },
}

/// A power report a node daemon sends up to the cluster manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmReport {
    /// Reporting node index.
    pub node: usize,
    /// Average DC node power over the recent window (W).
    pub avg_power_w: f64,
}

/// A command the cluster manager sends down to one node daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmCommand {
    /// Target node index.
    pub node: usize,
    /// The node's newly assigned power cap (W).
    pub cap_w: f64,
}

/// Every message exchanged on the EARL↔EARD↔EARGM path. Daemons and the
/// manager keep a log of these so tests (and operators) can audit exactly
/// which layer decided what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EarMessage {
    /// A request received from EARL.
    Request(EarlRequest),
    /// The daemon's reply.
    Reply(DaemonReply),
    /// A periodic powercap evaluation ran in the daemon.
    PowercapVerdict {
        /// Average node power over the evaluation window (W).
        power_w: f64,
        /// What the controller decided.
        action: CapAction,
        /// The frequency ceiling after the evaluation.
        ceiling: NodeFreqs,
    },
    /// The daemon overrode already-programmed frequencies outside any
    /// request (periodic powercap enforcement).
    Enforce {
        /// Frequencies found programmed.
        before: NodeFreqs,
        /// Frequencies after the clamp.
        after: NodeFreqs,
    },
    /// A node power report sent to the cluster manager.
    GmReport(GmReport),
    /// A cap command received from the cluster manager.
    GmCommand(GmCommand),
}

impl EarMessage {
    /// Whether this message records the daemon overriding EARL or the
    /// already-programmed frequencies (a clamped grant or an enforcement).
    pub fn is_override(&self) -> bool {
        matches!(
            self,
            EarMessage::Reply(DaemonReply::FreqsApplied { clamped: true, .. })
                | EarMessage::Enforce { .. }
        )
    }
}

/// The mailbox side of a node runtime: how a daemon exchanges protocol
/// messages with whatever runtime it wraps.
///
/// The default implementation is an empty mailbox, so runtimes that never
/// talk to the daemon ([`NullRuntime`](ear_mpisim::NullRuntime), fixed-
/// frequency runtimes) satisfy the trait for free. Wrapper runtimes
/// (monitoring, tracing) forward to their inner runtime so a daemon can sit
/// outside any stack of wrappers.
pub trait DaemonEndpoint {
    /// Takes every request enqueued since the last drain, oldest first.
    fn drain_requests(&mut self) -> Vec<EarlRequest> {
        Vec::new()
    }

    /// Delivers the daemon's reply to a serviced request.
    fn deliver(&mut self, reply: &DaemonReply) {
        let _ = reply;
    }
}

impl<T: DaemonEndpoint + ?Sized> DaemonEndpoint for Box<T> {
    fn drain_requests(&mut self) -> Vec<EarlRequest> {
        (**self).drain_requests()
    }

    fn deliver(&mut self, reply: &DaemonReply) {
        (**self).deliver(reply);
    }
}

impl DaemonEndpoint for ear_mpisim::NullRuntime {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_runtime_has_an_empty_mailbox() {
        let mut null = ear_mpisim::NullRuntime;
        assert!(null.drain_requests().is_empty());
        null.deliver(&DaemonReply::Rejected {
            requested: NodeFreqs {
                cpu: 1,
                imc_min_ratio: 12,
                imc_max_ratio: 24,
                imc_dom: crate::policy::api::DomainLimits::LEGACY,
            },
        });
    }

    #[test]
    fn override_classification() {
        let f = NodeFreqs {
            cpu: 1,
            imc_min_ratio: 12,
            imc_max_ratio: 24,
            imc_dom: crate::policy::api::DomainLimits::LEGACY,
        };
        let g = NodeFreqs {
            imc_max_ratio: 20,
            ..f
        };
        assert!(EarMessage::Reply(DaemonReply::FreqsApplied {
            requested: f,
            granted: g,
            clamped: true,
        })
        .is_override());
        assert!(EarMessage::Enforce {
            before: f,
            after: g
        }
        .is_override());
        assert!(!EarMessage::Reply(DaemonReply::FreqsApplied {
            requested: f,
            granted: f,
            clamped: false,
        })
        .is_override());
        assert!(!EarMessage::Request(EarlRequest::SetFreqs(f)).is_override());
    }
}
