//! The default (pre-paper) EAR energy model.
//!
//! Following Bell/Brochard (paper refs \[8\], \[9\]), the model splits the
//! measured behaviour into a frequency-scalable part and a
//! frequency-insensitive part and projects time and power accordingly:
//!
//! * **Time**: `T(to) = T(from) · (k · f_from/f_to + (1 − k))`, where the
//!   scalable fraction `k = 1 − s` comes from the signature. The
//!   memory-share estimator `s` is learned per architecture during EAR's
//!   installation "learning phase"; the form used here is a power law of
//!   the bandwidth-pressure product `x = (GB/s / BW_ref) · CPI` with a
//!   discount for vectorised code (AVX512-dense kernels stream through
//!   prefetchers and stay compute-bound even at high bandwidth — DGEMM):
//!   `s = c · x^q · (1 − d·VPI)`, clamped.
//! * **Power**: DC node power decomposes into a static part (platform,
//!   DRAM, uncore, package static — none of which scale with the *CPU*
//!   frequency) and a dynamic part following `f^α`:
//!   `P(to) = P_static + (P(from) − P_static) · (f_to/f_from)^α`.

use super::{EnergyModel, Projection};
use crate::signature::Signature;
use ear_archsim::{NodeConfig, Pstate, PstateTable};

/// Learned coefficients of the default model.
#[derive(Debug, Clone)]
pub struct ModelParams {
    /// Coefficient `c` of the memory-share power law.
    pub share_coef: f64,
    /// Exponent `q` of the memory-share power law.
    pub share_exp: f64,
    /// VPI discount `d` (vectorised code is compute-dense).
    pub vpi_discount: f64,
    /// Reference bandwidth (GB/s) normalising the pressure product.
    pub bw_ref_gbs: f64,
    /// Upper clamp on the memory share (some part always scales).
    pub max_share: f64,
    /// Static share of DC node power (W) that does not scale with CPU
    /// frequency.
    pub static_power_w: f64,
    /// Exponent of the dynamic power law.
    pub power_exp: f64,
}

impl ModelParams {
    /// Coefficients for a platform, as EAR's learning phase would produce:
    /// the static share covers platform + DRAM + package static + uncore.
    pub fn for_node(cfg: &NodeConfig) -> Self {
        let p = &cfg.power;
        // Uncore at a mid activity point and nominal max ratio.
        let uncore_w = cfg.sockets as f64
            * p.uncore_w
            * (cfg.uncore_max_ratio as f64 * 0.1).powf(p.uncore_freq_exp)
            * (p.uncore_base_frac + 0.5 * (1.0 - p.uncore_base_frac));
        let static_w = p.platform_w
            + p.dram_static_w
            + 12.0 // a representative DRAM traffic share
            + cfg.sockets as f64 * p.pkg_static_w
            + uncore_w
            + cfg.gpus as f64 * p.gpu_idle_w;
        Self {
            share_coef: 0.663,
            share_exp: 0.271,
            vpi_discount: 0.7,
            bw_ref_gbs: cfg.perf.bw_peak_bytes / 1e9,
            max_share: 0.95,
            static_power_w: static_w,
            power_exp: p.core_freq_exp,
        }
    }

    /// The estimated memory (frequency-insensitive) share of execution.
    pub fn memory_share(&self, sig: &Signature) -> f64 {
        if sig.cpi <= 0.0 {
            return 0.0;
        }
        let x = (sig.gbs / self.bw_ref_gbs).max(0.0) * sig.cpi;
        if x <= 0.0 {
            return 0.0;
        }
        let vpi_factor = 1.0 - self.vpi_discount * sig.vpi.clamp(0.0, 1.0);
        (self.share_coef * x.powf(self.share_exp) * vpi_factor).clamp(0.0, self.max_share)
    }

    /// The frequency-scalable fraction of execution for a signature.
    pub fn scalable_fraction(&self, sig: &Signature) -> f64 {
        1.0 - self.memory_share(sig)
    }
}

/// The default model.
#[derive(Debug, Clone)]
pub struct DefaultModel {
    /// Model coefficients.
    pub params: ModelParams,
}

impl DefaultModel {
    /// Builds the model with coefficients for `cfg`.
    pub fn for_node(cfg: &NodeConfig) -> Self {
        Self {
            params: ModelParams::for_node(cfg),
        }
    }
}

impl EnergyModel for DefaultModel {
    fn project(
        &self,
        sig: &Signature,
        from: Pstate,
        to: Pstate,
        pstates: &PstateTable,
    ) -> Projection {
        let f_from = pstates.ghz(from);
        let f_to = pstates.ghz(to);
        let k = self.params.scalable_fraction(sig);
        let time_s = sig.window_s * (k * (f_from / f_to) + (1.0 - k));
        let p_dyn = (sig.dc_power_w - self.params.static_power_w).max(0.0);
        let dc_power_w = self.params.static_power_w.min(sig.dc_power_w)
            + p_dyn * (f_to / f_from).powf(self.params.power_exp);
        Projection { time_s, dc_power_w }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pstates() -> PstateTable {
        PstateTable::xeon_gold_6148()
    }

    fn model() -> DefaultModel {
        DefaultModel::for_node(&NodeConfig::sd530_6148())
    }

    fn cpu_bound_sig() -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 0.4,
            tpi: 0.001,
            gbs: 6.6,
            vpi: 0.0,
            dc_power_w: 330.0,
            pkg_power_w: 240.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    fn mem_bound_sig() -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 3.1,
            tpi: 0.13,
            gbs: 177.0,
            vpi: 0.0,
            dc_power_w: 340.0,
            pkg_power_w: 250.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        }
    }

    #[test]
    fn identity_projection() {
        let m = model();
        let s = cpu_bound_sig();
        let p = m.project(&s, 1, 1, &pstates());
        assert!((p.time_s - s.window_s).abs() < 1e-9);
        assert!((p.dc_power_w - s.dc_power_w).abs() < 1e-9);
    }

    #[test]
    fn cpu_bound_time_scales_with_frequency() {
        let m = model();
        let s = cpu_bound_sig();
        // 2.4 → 1.2 GHz: close to 2× time for a CPU-bound signature.
        let p = m.project(&s, 1, 13, &pstates());
        assert!(
            p.time_s / s.window_s > 1.7,
            "scale {}",
            p.time_s / s.window_s
        );
    }

    #[test]
    fn memory_bound_time_barely_scales() {
        let m = model();
        let s = mem_bound_sig();
        let p = m.project(&s, 1, 5, &pstates()); // 2.4 → 2.0 GHz
        let penalty = p.time_s / s.window_s - 1.0;
        assert!(penalty < 0.05, "penalty {penalty}");
    }

    #[test]
    fn power_decreases_with_frequency() {
        let m = model();
        let s = cpu_bound_sig();
        let p = m.project(&s, 1, 5, &pstates());
        assert!(p.dc_power_w < s.dc_power_w);
        assert!(p.dc_power_w > m.params.static_power_w * 0.9);
    }

    #[test]
    fn cpu_bound_energy_increases_when_slowing() {
        // The paper's ME policy keeps CPU-bound apps at nominal: the static
        // DC share makes slowing down a net energy loss.
        let m = model();
        let s = cpu_bound_sig();
        let e_nominal = s.window_s * s.dc_power_w;
        let p = m.project(&s, 1, 2, &pstates());
        assert!(p.energy_j() > e_nominal, "{} vs {e_nominal}", p.energy_j());
    }

    #[test]
    fn memory_bound_energy_decreases_when_slowing() {
        let m = model();
        let s = mem_bound_sig();
        let e_nominal = s.window_s * s.dc_power_w;
        let p = m.project(&s, 1, 4, &pstates());
        assert!(p.energy_j() < e_nominal, "{} vs {e_nominal}", p.energy_j());
    }

    #[test]
    fn scalable_fraction_ordering() {
        let m = model();
        let k_cpu = m.params.scalable_fraction(&cpu_bound_sig());
        let k_mem = m.params.scalable_fraction(&mem_bound_sig());
        assert!(k_cpu > 0.7, "k_cpu {k_cpu}");
        assert!(k_mem < 0.25, "k_mem {k_mem}");
        assert!(k_cpu > k_mem + 0.4);
    }

    #[test]
    fn vpi_discount_keeps_dgemm_compute_bound() {
        // DGEMM: 98 GB/s AND CPI 0.45 AND pure AVX512 — high bandwidth but
        // compute bound; POP-like signatures with the same bandwidth
        // pressure but no vectorisation are memory bound.
        let m = model();
        let dgemm = Signature {
            cpi: 0.45,
            gbs: 98.0,
            vpi: 1.0,
            ..cpu_bound_sig()
        };
        let pop_like = Signature {
            cpi: 0.72,
            gbs: 100.0,
            vpi: 0.0,
            ..cpu_bound_sig()
        };
        let s_dgemm = m.params.memory_share(&dgemm);
        let s_pop = m.params.memory_share(&pop_like);
        assert!(s_dgemm < 0.25, "dgemm share {s_dgemm}");
        assert!(s_pop > 0.4, "pop share {s_pop}");
    }

    #[test]
    fn share_is_clamped_and_safe() {
        let m = model();
        let extreme = Signature {
            cpi: 50.0,
            gbs: 1000.0,
            ..mem_bound_sig()
        };
        assert!(m.params.memory_share(&extreme) <= m.params.max_share);
        let zero = Signature {
            cpi: 0.0,
            gbs: 0.0,
            ..cpu_bound_sig()
        };
        assert_eq!(m.params.memory_share(&zero), 0.0);
    }
}
