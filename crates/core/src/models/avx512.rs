//! The paper's AVX512-aware energy model (§V-A).
//!
//! AVX512 instructions cannot exceed the all-core licence frequency
//! (pstate 3 / 2.2 GHz on the evaluation's Xeon 6148), so projecting a
//! 100 %-AVX512 workload to 2.4 GHz must predict *no* speedup and *no*
//! extra dynamic power beyond the licensed frequency. The model therefore
//! combines two predictions per target pstate:
//!
//! 1. `default_pred` — the default model at the requested pstate, and
//! 2. `avx512_pred` — the default model at the pstate limited by the
//!    AVX512 all-core maximum,
//!
//! blended with the signature's VPI:
//! `pred = (1 − VPI) · default_pred + VPI · avx512_pred`.

use super::default_model::DefaultModel;
use super::{EnergyModel, Projection};
use crate::signature::Signature;
use ear_archsim::{NodeConfig, Pstate, PstateTable};

/// The blended model.
#[derive(Debug, Clone)]
pub struct Avx512Model {
    inner: DefaultModel,
}

impl Avx512Model {
    /// Wraps a default model.
    pub fn new(inner: DefaultModel) -> Self {
        Self { inner }
    }

    /// Builds the model with coefficients for `cfg`.
    pub fn for_node(cfg: &NodeConfig) -> Self {
        Self::new(DefaultModel::for_node(cfg))
    }

    /// Access to the wrapped default model (for ablation benches).
    pub fn inner(&self) -> &DefaultModel {
        &self.inner
    }
}

impl EnergyModel for Avx512Model {
    fn project(
        &self,
        sig: &Signature,
        from: Pstate,
        to: Pstate,
        pstates: &PstateTable,
    ) -> Projection {
        let default_pred = self.inner.project(sig, from, to, pstates);
        let vpi = sig.vpi.clamp(0.0, 1.0);
        if vpi <= 0.0 {
            return default_pred;
        }
        // Limit the target pstate to the AVX512 licence maximum (a larger
        // pstate index is a lower frequency).
        let capped = to.max(pstates.avx512_pstate());
        let avx_pred = self.inner.project(sig, from, capped, pstates);
        Projection {
            time_s: (1.0 - vpi) * default_pred.time_s + vpi * avx_pred.time_s,
            dc_power_w: (1.0 - vpi) * default_pred.dc_power_w + vpi * avx_pred.dc_power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pstates() -> PstateTable {
        PstateTable::xeon_gold_6148()
    }

    fn model() -> Avx512Model {
        Avx512Model::for_node(&NodeConfig::sd530_6148())
    }

    fn sig(vpi: f64) -> Signature {
        Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 0.45,
            tpi: 0.02,
            gbs: 98.0,
            vpi,
            dc_power_w: 369.0,
            pkg_power_w: 260.0,
            avg_cpu_khz: 2.2e6,
            avg_imc_khz: 2.0e6,
            ..Default::default()
        }
    }

    #[test]
    fn zero_vpi_matches_default() {
        let m = model();
        let s = sig(0.0);
        let a = m.project(&s, 3, 6, &pstates());
        let b = m.inner().project(&s, 3, 6, &pstates());
        assert_eq!(a, b);
    }

    #[test]
    fn full_avx512_sees_no_gain_above_licence() {
        // DGEMM's case: projecting from the licence pstate (3) up to
        // nominal (1) predicts no speedup — AVX512 can't clock higher.
        let m = model();
        let s = sig(1.0);
        let p = m.project(&s, 3, 1, &pstates());
        assert!(
            (p.time_s - s.window_s).abs() / s.window_s < 1e-9,
            "time {} vs {}",
            p.time_s,
            s.window_s
        );
        assert!((p.dc_power_w - s.dc_power_w).abs() < 1e-9);
    }

    #[test]
    fn below_licence_both_models_agree() {
        // Below the AVX512 cap the licence is not binding.
        let m = model();
        let s = sig(1.0);
        let a = m.project(&s, 3, 8, &pstates());
        let b = m.inner().project(&s, 3, 8, &pstates());
        assert_eq!(a, b);
    }

    #[test]
    fn partial_vpi_blends() {
        // For a fixed signature, the blended prediction is exactly the
        // VPI-weighted combination of the inner model's uncapped and
        // licence-capped projections (paper §V-A).
        let m = model();
        let s = sig(0.5);
        let default_pred = m.inner().project(&s, 3, 1, &pstates());
        let capped_pred = m.inner().project(&s, 3, 3, &pstates());
        let mid = m.project(&s, 3, 1, &pstates());
        let expected_t = 0.5 * default_pred.time_s + 0.5 * capped_pred.time_s;
        let expected_p = 0.5 * default_pred.dc_power_w + 0.5 * capped_pred.dc_power_w;
        assert!((mid.time_s - expected_t).abs() < 1e-9);
        assert!((mid.dc_power_w - expected_p).abs() < 1e-9);
    }

    #[test]
    fn captures_the_paper_example() {
        // §V-A: "this model captures the fact AVX512 instructions will not
        // take benefit of higher CPU frequencies": energy at nominal is
        // NOT better than at the licence pstate for pure AVX512.
        let m = model();
        let s = sig(1.0);
        let at_nominal = m.project(&s, 3, 1, &pstates());
        let at_licence = m.project(&s, 3, 3, &pstates());
        assert!(at_nominal.energy_j() >= at_licence.energy_j() - 1e-9);
    }
}
