//! Energy models: predicting time and power at other CPU pstates.
//!
//! EAR's policies never search by trial-and-error over CPU frequencies —
//! they *project* the measured signature to every candidate pstate using an
//! energy model, then pick the optimum in one shot (paper §V). Two models
//! are provided:
//!
//! * [`DefaultModel`] — the CPI/TPI projection model of Bell/Brochard
//!   (paper refs \[8\], \[9\]), as used by EAR before this paper.
//! * [`Avx512Model`] — the paper's new model (§V-A): blends the default
//!   prediction with one whose target pstate is capped at the AVX512
//!   licence frequency, weighted by VPI.

pub mod avx512;
pub mod default_model;
pub mod learning;

pub use avx512::Avx512Model;
pub use default_model::{DefaultModel, ModelParams};
pub use learning::learn_model_params;

use crate::signature::Signature;
use ear_archsim::{NodeConfig, Pstate, PstateTable};
use ear_errors::EarError;
use std::sync::Arc;

/// A projected (time, power) pair at a target pstate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// Predicted window time (same unit as the signature's window).
    pub time_s: f64,
    /// Predicted average DC node power (W).
    pub dc_power_w: f64,
}

impl Projection {
    /// Predicted energy (J).
    pub fn energy_j(&self) -> f64 {
        self.time_s * self.dc_power_w
    }
}

/// The model interface policies program against. `from` is the pstate the
/// signature was measured at; `to` is the candidate.
pub trait EnergyModel: Send {
    /// Projects `sig` from pstate `from` to pstate `to`.
    fn project(
        &self,
        sig: &Signature,
        from: Pstate,
        to: Pstate,
        pstates: &PstateTable,
    ) -> Projection;
}

/// Builds a model instance for a node (models calibrate their coefficients
/// against the node's pstate table at job start).
pub type ModelFactory = Arc<dyn Fn(&NodeConfig) -> Box<dyn EnergyModel> + Send + Sync>;

/// Name→factory registry for energy models, mirroring the policy registry:
/// EAR loads its projection model as a plugin selected in `ear.conf`, so
/// EARL never names a concrete model type.
pub struct ModelRegistry {
    entries: Vec<(String, ModelFactory)>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// A registry with the built-in models registered: `"default"` (the
    /// Bell/Brochard CPI/TPI projection) and `"avx512"` (the paper's
    /// AVX512-aware blend).
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register("default", |cfg| Box::new(DefaultModel::for_node(cfg)));
        r.register("avx512", |cfg| Box::new(Avx512Model::for_node(cfg)));
        r
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(
        &mut self,
        name: &str,
        factory: impl Fn(&NodeConfig) -> Box<dyn EnergyModel> + Send + Sync + 'static,
    ) {
        self.entries.retain(|(n, _)| n != name);
        self.entries.push((name.to_string(), Arc::new(factory)));
    }

    /// Resolves `name` to its factory.
    pub fn resolve(&self, name: &str) -> Result<ModelFactory, EarError> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| Arc::clone(f))
            .ok_or_else(|| EarError::unknown("model", name))
    }

    /// The registered model names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn builtins_resolve_and_unknowns_error() {
        let r = ModelRegistry::with_builtins();
        assert_eq!(r.names(), vec!["default", "avx512"]);
        let cfg = NodeConfig::sd530_6148();
        for name in ["default", "avx512"] {
            let factory = r.resolve(name).unwrap();
            let _model = factory(&cfg);
        }
        let err = r.resolve("perceptron").map(|_| ()).unwrap_err();
        assert_eq!(err.to_string(), "unknown model 'perceptron'");
    }
}
