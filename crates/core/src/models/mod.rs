//! Energy models: predicting time and power at other CPU pstates.
//!
//! EAR's policies never search by trial-and-error over CPU frequencies —
//! they *project* the measured signature to every candidate pstate using an
//! energy model, then pick the optimum in one shot (paper §V). Two models
//! are provided:
//!
//! * [`DefaultModel`] — the CPI/TPI projection model of Bell/Brochard
//!   (paper refs \[8\], \[9\]), as used by EAR before this paper.
//! * [`Avx512Model`] — the paper's new model (§V-A): blends the default
//!   prediction with one whose target pstate is capped at the AVX512
//!   licence frequency, weighted by VPI.

pub mod avx512;
pub mod default_model;
pub mod learning;

pub use avx512::Avx512Model;
pub use default_model::{DefaultModel, ModelParams};
pub use learning::learn_model_params;

use crate::signature::Signature;
use ear_archsim::{Pstate, PstateTable};

/// A projected (time, power) pair at a target pstate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// Predicted window time (same unit as the signature's window).
    pub time_s: f64,
    /// Predicted average DC node power (W).
    pub dc_power_w: f64,
}

impl Projection {
    /// Predicted energy (J).
    pub fn energy_j(&self) -> f64 {
        self.time_s * self.dc_power_w
    }
}

/// The model interface policies program against. `from` is the pstate the
/// signature was measured at; `to` is the candidate.
pub trait EnergyModel: Send {
    /// Projects `sig` from pstate `from` to pstate `to`.
    fn project(
        &self,
        sig: &Signature,
        from: Pstate,
        to: Pstate,
        pstates: &PstateTable,
    ) -> Projection;
}
