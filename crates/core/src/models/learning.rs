//! The EAR learning phase.
//!
//! EAR does not ship energy-model coefficients: at installation time it
//! runs a benchmark suite at several frequencies on each node class and
//! *fits* the coefficients (paper refs \[8\], \[9\] describe the original
//! regression). This module reproduces that workflow against the
//! simulator: run parametric workloads at two pstates, measure, and fit
//!
//! * the static DC power share (linear least squares of `P` on `f^α`
//!   over a compute-bound benchmark's pstate sweep), and
//! * the memory-share power law `s = c·x^q` (log-log least squares of
//!   the observed frequency sensitivity on the bandwidth-pressure
//!   product `x`).
//!
//! The fitted parameters land close to [`ModelParams::for_node`]'s
//! hand-calibrated defaults — that is the point: the defaults are what
//! the learning phase would produce.

use super::default_model::ModelParams;
use ear_archsim::{Cluster, NodeConfig};
use ear_mpisim::{run_job, NullRuntime};
use ear_workloads::synthetic::parametric;
use ear_workloads::{build_job, calibrate};

/// One measured point of the learning suite.
#[derive(Debug, Clone, Copy)]
struct LearnPoint {
    /// Bandwidth-pressure product at nominal: (GB/s / BW_ref) · CPI.
    x: f64,
    /// Observed memory share: 1 − measured scalable fraction.
    s: f64,
}

/// Runs the learning suite and fits [`ModelParams`] for `cfg`.
///
/// `seed` controls simulation noise; the fit is robust to it (each point
/// is a full benchmark run).
pub fn learn_model_params(cfg: &NodeConfig, seed: u64) -> ModelParams {
    let mut params = ModelParams::for_node(cfg);
    let f_hi = cfg.pstates.ghz(1);
    let ps_lo = 5usize; // 2.0 GHz on the 6148: a 17 % frequency step
    let f_lo = cfg.pstates.ghz(ps_lo);

    // --- Pass 1: frequency sweep of a compute-bound benchmark for the
    // static power share. P(f) = P_static + C·f^α ⇒ linear LSQ on f^α.
    let sweep_ps = [1usize, 3, 5, 7, 9];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let compute = parametric(0.05);
    let Ok(cal) = calibrate(&compute) else {
        // The learning suite cannot run on this configuration: keep the
        // analytic defaults (what the fit converges to anyway).
        return params;
    };
    for &ps in &sweep_ps {
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cfg.clone(), 1, seed.wrapping_add(ps as u64));
        cluster.node_mut(0).set_cpu_pstate(ps);
        // Pin the uncore at the platform maximum: the learning sweep must
        // isolate the CPU-frequency power response from the firmware's
        // uncore reaction (the eUFS stage owns the uncore axis).
        if cluster
            .node_mut(0)
            .set_uncore_limits(cfg.uncore_max_ratio, cfg.uncore_max_ratio)
            .is_err()
        {
            continue;
        }
        let mut rts = vec![NullRuntime];
        let report = run_job(&mut cluster, &job, &mut rts);
        xs.push(cfg.pstates.ghz(ps).powf(params.power_exp));
        ys.push(report.avg_dc_power_w());
    }
    if xs.is_empty() {
        return params;
    }
    let (intercept, _slope) = linear_fit(&xs, &ys);
    // Guard against pathological fits on exotic configs.
    if intercept.is_finite() && intercept > 50.0 && intercept < ys[0] {
        params.static_power_w = intercept;
    }

    // --- Pass 2: memory-intensity sweep at two pstates for the share law.
    let mut points = Vec::new();
    for (i, m) in [0.05f64, 0.2, 0.4, 0.6, 0.8, 1.0].iter().enumerate() {
        let t = parametric(*m);
        let cal = match calibrate(&t) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let run_at = |ps: usize, salt: u64| {
            let job = build_job(&cal);
            let mut cluster = Cluster::new(cfg.clone(), 1, seed.wrapping_add(100 + salt));
            cluster.node_mut(0).set_cpu_pstate(ps);
            cluster
                .node_mut(0)
                .set_uncore_limits(cfg.uncore_max_ratio, cfg.uncore_max_ratio)
                .ok()?;
            let mut rts = vec![NullRuntime];
            Some(run_job(&mut cluster, &job, &mut rts))
        };
        let (Some(hi), Some(lo)) = (run_at(1, i as u64 * 2), run_at(ps_lo, i as u64 * 2 + 1))
        else {
            continue;
        };
        // Observed scalable fraction from the two-point sensitivity:
        // T_lo/T_hi = k·(f_hi/f_lo) + (1 − k).
        let ratio = lo.seconds() / hi.seconds();
        let k = ((ratio - 1.0) / (f_hi / f_lo - 1.0)).clamp(0.0, 1.0);
        let s = 1.0 - k;
        let x = (hi.gbs() / params.bw_ref_gbs) * hi.cpi();
        if s > 1e-3 && x > 1e-6 {
            points.push(LearnPoint { x, s });
        }
    }
    if points.len() >= 3 {
        // log s = log c + q·log x
        let lx: Vec<f64> = points.iter().map(|p| p.x.ln()).collect();
        let ls: Vec<f64> = points.iter().map(|p| p.s.ln()).collect();
        let (log_c, q) = linear_fit(&lx, &ls);
        let c = log_c.exp();
        if c.is_finite() && q.is_finite() && c > 0.1 && c < 2.0 && q > 0.05 && q < 1.0 {
            params.share_coef = c;
            params.share_exp = q;
        }
    }
    params
}

/// Ordinary least squares `y = a + b·x`, returning `(a, b)`.
fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    let n = x.len() as f64;
    if x.len() < 2 {
        return (f64::NAN, f64::NAN);
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx) * (v - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(u, v)| (u - mx) * (v - my)).sum();
    if sxx <= 0.0 {
        return (f64::NAN, f64::NAN);
    }
    let b = sxy / sxx;
    (my - b * mx, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Avx512Model, DefaultModel, EnergyModel};
    use crate::policy::api::{PolicyCtx, PolicySettings};
    use crate::policy::min_energy::select_min_energy_pstate;
    use crate::signature::Signature;

    #[test]
    fn linear_fit_recovers_a_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
        let (a, b) = linear_fit(&x, &y);
        assert!((a - 1.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn learned_params_are_near_the_defaults() {
        let cfg = NodeConfig::sd530_6148();
        let defaults = ModelParams::for_node(&cfg);
        let learned = learn_model_params(&cfg, 777);
        // Static power within 25 % of the hand calibration: the default is
        // an analytic estimate (uncore at a nominal activity point); the
        // learned value is the empirical intercept, which also absorbs the
        // DRAM traffic's frequency-dependence. Both drive the same policy
        // decisions (next test).
        let rel =
            (learned.static_power_w - defaults.static_power_w).abs() / defaults.static_power_w;
        assert!(
            rel < 0.25,
            "static {} vs {}",
            learned.static_power_w,
            defaults.static_power_w
        );
        assert!(learned.static_power_w > 150.0 && learned.static_power_w < 300.0);
        // The share law is in the same family (coefficients same order).
        assert!(
            (0.3..1.4).contains(&learned.share_coef),
            "c = {}",
            learned.share_coef
        );
        // The exponent depends on the benchmark suite: the parametric
        // sweep yields a steeper law than the hand fit against the
        // heterogeneous paper applications. Same family, same decisions.
        assert!(
            (0.1..0.8).contains(&learned.share_exp),
            "q = {}",
            learned.share_exp
        );
    }

    #[test]
    fn policies_behave_the_same_with_learned_params() {
        let cfg = NodeConfig::sd530_6148();
        let learned = learn_model_params(&cfg, 778);
        let model = Avx512Model::new(DefaultModel { params: learned });
        let pstates = cfg.pstates.clone();
        let settings = PolicySettings::default();
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: &model,
            settings: &settings,
        };
        // BT-MZ-like: stays nominal.
        let cpu_bound = Signature {
            window_s: 10.0,
            iterations: 5,
            cpi: 0.38,
            tpi: 0.0008,
            gbs: 6.6,
            vpi: 0.04,
            dc_power_w: 320.0,
            pkg_power_w: 235.0,
            avg_cpu_khz: 2.4e6,
            avg_imc_khz: 2.4e6,
            ..Default::default()
        };
        assert_eq!(select_min_energy_pstate(&cpu_bound, 1, &ctx), 1);
        // HPCG-like: lowered substantially.
        let mem_bound = Signature {
            cpi: 3.13,
            tpi: 0.13,
            gbs: 177.0,
            vpi: 0.02,
            dc_power_w: 340.0,
            ..cpu_bound
        };
        let sel = select_min_energy_pstate(&mem_bound, 1, &ctx);
        assert!(pstates.ghz(sel) < 2.1, "selected {}", pstates.ghz(sel));
        // Identity projection still exact for scalar signatures.
        let scalar = Signature {
            vpi: 0.0,
            ..cpu_bound
        };
        let p = model.project(&scalar, 1, 1, &pstates);
        assert!((p.time_s - 10.0).abs() < 1e-9);
    }
}
