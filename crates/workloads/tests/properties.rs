//! Property tests for workload calibration: any *feasible* target set must
//! calibrate, and the calibrated demand must reproduce the targets when
//! replayed on the simulator — the closed-form inversion is exact.

use ear_archsim::Cluster;
use ear_mpisim::{run_job, JobSpec, MpiCall, MpiEvent, NullRuntime};
use ear_workloads::calibrate;
use ear_workloads::spec::{AppClass, Platform, WorkloadTargets};
use proptest::prelude::*;

/// Feasible target space: ranges where the closed-form solution exists
/// (bandwidth below saturation headroom, CPI above the spin floor, power
/// within the node's physical envelope).
fn arb_targets() -> impl Strategy<Value = WorkloadTargets> {
    (
        0.4..2.0f64,     // cpi
        2.0..120.0f64,   // gbs
        300.0..360.0f64, // dc power
        0.0..0.25f64,    // comm fraction
        0.0..0.3f64,     // vpi
        0.5..0.85f64,    // overlap
        4.0..10.0f64,    // uncore lat cycles
    )
        .prop_map(
            |(cpi, gbs, power, comm, vpi, overlap, lat)| WorkloadTargets {
                name: "prop",
                class: AppClass::CpuBound,
                platform: Platform::Sd530,
                nodes: 1,
                ranks_per_node: 1,
                active_cores: 40,
                time_s: 18.0,
                iterations: 12,
                cpi,
                gbs,
                dc_power_w: power,
                vpi,
                comm_fraction: comm,
                mem_overlap: overlap,
                uncore_lat_cycles: lat,
                hw_ufs_bias: 0.0,
                calib_uncore_ghz: 2.4,
                uncore_domains: 1,
            },
        )
}

proptest! {
    // Simulation-backed cases are slow-ish; 32 cases keep the test under
    // a few seconds while covering the space.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn calibration_roundtrips_on_feasible_targets(t in arb_targets()) {
        let cal = match calibrate(&t) {
            Ok(c) => c,
            // Some corners are legitimately infeasible (e.g. high CPI with
            // high comm: spin instructions exceed the budget). Rejecting
            // with an error is correct behaviour; only panics are bugs.
            Err(_) => return Ok(()),
        };
        let job = JobSpec::homogeneous(
            "prop",
            1,
            1,
            vec![
                MpiEvent::new(MpiCall::Isend, 4096, 1),
                MpiEvent::new(MpiCall::Irecv, 4096, 1),
            ],
            cal.demand.clone(),
            t.iterations,
        );
        let mut cluster = Cluster::new(cal.node_config.clone(), 1, 4242);
        let mut rts = vec![NullRuntime];
        let report = run_job(&mut cluster, &job, &mut rts);

        let rel = |got: f64, want: f64| (got - want).abs() / want.max(1e-9);
        prop_assert!(rel(report.seconds(), t.time_s) < 0.04,
            "time {} vs {}", report.seconds(), t.time_s);
        prop_assert!(rel(report.cpi(), t.cpi) < 0.06,
            "cpi {} vs {}", report.cpi(), t.cpi);
        prop_assert!(rel(report.gbs(), t.gbs) < 0.06,
            "gbs {} vs {}", report.gbs(), t.gbs);
        // Power may clamp at the activity bound; allow a wider band.
        prop_assert!(rel(report.avg_dc_power_w(), t.dc_power_w) < 0.10,
            "power {} vs {}", report.avg_dc_power_w(), t.dc_power_w);
    }

    /// Calibration never panics anywhere in a much wider (often
    /// infeasible) target space — errors are returned, not thrown.
    #[test]
    fn calibration_never_panics(
        cpi in 0.1..6.0f64,
        gbs in 0.0..400.0f64,
        power in 100.0..600.0f64,
        comm in 0.0..0.99f64,
    ) {
        let t = WorkloadTargets {
            name: "wild",
            class: AppClass::MemoryBound,
            platform: Platform::Sd530,
            nodes: 2,
            ranks_per_node: 10,
            active_cores: 40,
            time_s: 30.0,
            iterations: 20,
            cpi,
            gbs,
            dc_power_w: power,
            vpi: 0.0,
            comm_fraction: comm,
            mem_overlap: 0.7,
            uncore_lat_cycles: 6.0,
            hw_ufs_bias: 0.0,
            calib_uncore_ghz: 2.4,
            uncore_domains: 1,
        };
        let _ = calibrate(&t); // Ok or Err, never panic
    }
}
