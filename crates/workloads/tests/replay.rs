//! Replay test: simulating each calibrated workload at nominal frequency
//! with no policy must reproduce the paper's characterisation (Tables I,
//! II and V) — time, CPI, GB/s and DC node power — within tolerance.
//!
//! This is the foundation of the whole reproduction: the policies only see
//! signatures, so matching signatures here means the policies face the
//! paper's decision problems.

use ear_archsim::Cluster;
use ear_mpisim::{run_job, NullRuntime};
use ear_workloads::spec::AppClass;
use ear_workloads::{build_job, calibrate, full_catalog};

#[test]
fn every_workload_reproduces_its_characterisation() {
    for targets in full_catalog() {
        let cal = calibrate(&targets).unwrap_or_else(|e| panic!("{e}"));
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 12345);
        let mut rts = vec![NullRuntime; targets.nodes];
        let report = run_job(&mut cluster, &job, &mut rts);

        let name = targets.name;
        let rel = |got: f64, want: f64| (got - want).abs() / want;

        // Time within 3 %.
        assert!(
            rel(report.seconds(), targets.time_s) < 0.03,
            "{name}: time {} vs target {}",
            report.seconds(),
            targets.time_s
        );
        // DC power within 6 % (DGEMM's activity clamps slightly).
        assert!(
            rel(report.avg_dc_power_w(), targets.dc_power_w) < 0.06,
            "{name}: power {} vs target {}",
            report.avg_dc_power_w(),
            targets.dc_power_w
        );
        if targets.class == AppClass::Gpu {
            // GPU kernels: CPI is the spin loop's; GB/s is ~0.
            assert!(
                (report.cpi() - 0.5).abs() < 0.05,
                "{name}: cpi {} (spin expected)",
                report.cpi()
            );
            assert!(report.gbs() < 0.5, "{name}: gbs {}", report.gbs());
        } else {
            assert!(
                rel(report.cpi(), targets.cpi) < 0.05,
                "{name}: cpi {} vs target {}",
                report.cpi(),
                targets.cpi
            );
            assert!(
                rel(report.gbs(), targets.gbs) < 0.05,
                "{name}: gbs {} vs target {}",
                report.gbs(),
                targets.gbs
            );
        }
    }
}

#[test]
fn characterisation_runs_at_nominal_cpu_frequency() {
    // "No policy" executions run at the nominal CPU frequency; DGEMM's
    // AVX512 licence caps delivery at 2.2 GHz (paper Table IV: 2.18).
    for targets in full_catalog() {
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 7);
        let mut rts = vec![NullRuntime; targets.nodes];
        let report = run_job(&mut cluster, &job, &mut rts);
        let nominal = cal.node_config.pstates.nominal_khz() as f64 * 1e-6;
        // DGEMM: AVX512 licence cap (paper Table IV measures 2.18).
        // CUDA kernels: one core at nominal, 31 halted cores waking for
        // housekeeping at low frequency — the all-core average lands near
        // 2.0 GHz (the paper's LU.CUDA row reports 2.02; its BT.CUDA row
        // reports 2.44, a deviation documented in EXPERIMENTS.md).
        let expect = match targets.class {
            AppClass::Gpu => 2.0,
            // Offload feed: 8 active cores at nominal 2.6, 24 halted cores
            // waking at 2 % duty for housekeeping — APERF/MPERF averages to
            // (4·2.6 + 12·0.02·1.0)/(4 + 12·0.02) ≈ 2.51 per socket.
            AppClass::GpuOffload => 2.51,
            _ if targets.name == "DGEMM" => 2.2,
            _ => nominal,
        };
        assert!(
            (report.avg_cpu_ghz() - expect).abs() < 0.08,
            "{}: avg cpu {} vs {}",
            targets.name,
            report.avg_cpu_ghz(),
            expect
        );
    }
}

#[test]
fn hardware_uncore_matches_table_4_no_policy() {
    // Table IV "No policy": IMC pegged at max (2.39) everywhere except
    // DGEMM, where the AVX512-capped cores lead the firmware to ~1.98.
    for (name, expect, tol) in [
        ("BT-MZ.C (OpenMP)", 2.4, 0.05),
        ("SP-MZ.C (OpenMP)", 2.4, 0.05),
        ("BT.CUDA.D", 2.4, 0.05),
        ("LU.CUDA.D", 2.4, 0.05),
        ("DGEMM", 1.98, 0.12),
    ] {
        let targets = ear_workloads::by_name(name).unwrap();
        let cal = calibrate(&targets).unwrap();
        let job = build_job(&cal);
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, 99);
        let mut rts = vec![NullRuntime; targets.nodes];
        let report = run_job(&mut cluster, &job, &mut rts);
        assert!(
            (report.avg_imc_ghz() - expect).abs() < tol,
            "{name}: imc {} vs {expect}",
            report.avg_imc_ghz()
        );
    }
}

#[test]
fn replays_are_reproducible_per_seed() {
    let targets = ear_workloads::by_name("BQCD").unwrap();
    let cal = calibrate(&targets).unwrap();
    let job = build_job(&cal);
    let run = |seed| {
        let mut cluster = Cluster::new(cal.node_config.clone(), targets.nodes, seed);
        let mut rts = vec![NullRuntime; targets.nodes];
        let r = run_job(&mut cluster, &job, &mut rts);
        (r.seconds(), r.total_dc_energy_j())
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
