//! Synthetic workloads beyond the paper's evaluation set.
//!
//! The paper's future work (§VIII) names two directions we exercise here:
//! the `min_time_to_solution` integration and "the potential impact on
//! high communication intensive applications". These generators produce
//! workloads with controlled characteristics for those experiments and for
//! stress tests.

use crate::spec::{AppClass, Platform, WorkloadTargets};

/// A highly communication-intensive application: half of every iteration
/// is MPI waiting (e.g. a strongly-scaled halo-exchange code past its
/// scaling sweet spot). The interesting question from §VIII: during MPI
/// busy-waits the memory system idles, so how much uncore headroom exists?
pub fn comm_intensive() -> WorkloadTargets {
    WorkloadTargets {
        name: "COMM-HEAVY (synthetic)",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 8,
        ranks_per_node: 40,
        active_cores: 40,
        time_s: 180.0,
        iterations: 120,
        cpi: 0.55,
        gbs: 5.0,
        dc_power_w: 295.0,
        vpi: 0.02,
        comm_fraction: 0.5,
        mem_overlap: 0.6,
        uncore_lat_cycles: 10.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// A configurable synthetic workload for sweeps: `mem_intensity` in [0, 1]
/// interpolates between a compute-dense kernel (≈BT-MZ-like) and a
/// bandwidth-saturating one (≈HPCG-like).
pub fn parametric(mem_intensity: f64) -> WorkloadTargets {
    let m = mem_intensity.clamp(0.0, 1.0);
    WorkloadTargets {
        name: "PARAMETRIC (synthetic)",
        class: if m > 0.5 {
            AppClass::MemoryBound
        } else {
            AppClass::CpuBound
        },
        platform: Platform::Sd530,
        nodes: 1,
        ranks_per_node: 1,
        active_cores: 40,
        time_s: 120.0,
        iterations: 80,
        cpi: 0.4 + 2.5 * m,
        gbs: 8.0 + 165.0 * m,
        dc_power_w: 320.0 + 20.0 * m,
        vpi: 0.02,
        comm_fraction: 0.0,
        mem_overlap: 0.6 - 0.25 * m,
        uncore_lat_cycles: 6.0 + 2.0 * m,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibrate;

    #[test]
    fn comm_intensive_calibrates() {
        let c = calibrate(&comm_intensive()).unwrap();
        // Half the iteration is waiting.
        assert!((c.demand.wait_seconds - 0.75).abs() < 1e-9);
        assert!(c.demand.wait_busy);
    }

    #[test]
    fn parametric_spans_the_intensity_range() {
        for m in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let t = parametric(m);
            calibrate(&t).unwrap_or_else(|e| panic!("m={m}: {e}"));
        }
        assert_eq!(parametric(0.1).class, AppClass::CpuBound);
        assert_eq!(parametric(0.9).class, AppClass::MemoryBound);
        assert!(parametric(1.0).gbs > parametric(0.0).gbs * 10.0);
    }
}
