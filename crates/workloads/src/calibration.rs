//! Inverting the simulator models to hit the paper's measured numbers.
//!
//! Given a [`WorkloadTargets`] (time, CPI, GB/s, DC power at nominal
//! frequency), calibration solves — in closed form — for the per-iteration
//! [`PhaseDemand`] that reproduces those numbers when replayed on the
//! simulated node at nominal frequency:
//!
//! 1. `bytes` from the GB/s target and iteration time.
//! 2. Total instructions from the CPI target, given that cycles accrue at
//!    the effective frequency during work and the spin frequency during
//!    MPI waits (spin instructions retire at [`SPIN_CPI`]).
//! 3. `cpi_core` residually from the performance model's time
//!    decomposition: whatever part of the work time is not uncore latency
//!    or exposed DRAM bandwidth must be core-scalable cycles.
//! 4. The core `activity` factor (or GPU draw, for GPU workloads)
//!    residually from the power model and the DC power target.
//!
//! Errors are returned (not panics) when targets are physically
//! infeasible — e.g. a GB/s target above the bandwidth the performance
//! model can deliver, or a communication fraction that leaves no room for
//! the instruction budget.

use crate::spec::{AppClass, WorkloadTargets};
use ear_archsim::perf::achievable_bw;
use ear_archsim::power::{self, SocketPowerInput};
use ear_archsim::{NodeConfig, PhaseDemand, SPIN_CPI};

/// A workload whose demand reproduces its paper characterisation.
#[derive(Debug, Clone)]
pub struct CalibratedWorkload {
    /// The original targets.
    pub targets: WorkloadTargets,
    /// Per-iteration, per-node demand at nominal frequency.
    pub demand: PhaseDemand,
    /// The node configuration the demand was calibrated against.
    pub node_config: NodeConfig,
}

/// Calibration failure: the targets cannot be realised by the models.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationError {
    /// Workload name.
    pub workload: &'static str,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "calibration of {} failed: {}",
            self.workload, self.reason
        )
    }
}

impl std::error::Error for CalibrationError {}

impl From<CalibrationError> for ear_errors::EarError {
    fn from(e: CalibrationError) -> Self {
        ear_errors::EarError::Calibration(e.to_string())
    }
}

/// Calibrates `targets` against its platform's node configuration.
pub fn calibrate(targets: &WorkloadTargets) -> Result<CalibratedWorkload, CalibrationError> {
    let err = |reason: String| CalibrationError {
        workload: targets.name,
        reason,
    };
    targets.validate().map_err(|e| err(e.to_string()))?;
    let cfg = targets
        .platform
        .node_config()
        .with_uncore_domains(targets.uncore_domains);

    match targets.class {
        AppClass::Gpu => calibrate_gpu(targets, cfg),
        AppClass::GpuOffload => calibrate_gpu_offload(targets, cfg),
        _ => calibrate_cpu(targets, cfg),
    }
}

/// CPU/memory workloads: work portion plus optional MPI busy-wait.
fn calibrate_cpu(
    t: &WorkloadTargets,
    cfg: NodeConfig,
) -> Result<CalibratedWorkload, CalibrationError> {
    let err = |reason: String| CalibrationError {
        workload: t.name,
        reason,
    };

    let a = t.active_cores as f64;
    let nominal_ps = cfg.pstates.nominal();
    let f_eff = cfg.pstates.effective_khz(nominal_ps, t.vpi) * 1e3; // Hz
    let f_spin = cfg.pstates.nominal_khz() as f64 * 1e3;

    let t_iter = t.iter_time_s();
    let wait_s = t.comm_fraction * t_iter;
    let t_work = t_iter - wait_s;
    if t_work <= 0.0 {
        return Err(err("communication fraction leaves no work time".into()));
    }

    let bytes = t.bytes_per_iter();
    let trans = bytes / 64.0;

    // Instruction budget from the CPI target.
    let cycles_total = a * f_eff * t_work + a * f_spin * wait_s;
    let inst_total = cycles_total / t.cpi;
    let spin_inst = a * f_spin * wait_s / SPIN_CPI;
    let inst_work = inst_total - spin_inst;
    if inst_work <= 0.0 {
        return Err(err(format!(
            "CPI target {} infeasible: spin instructions alone exceed the budget",
            t.cpi
        )));
    }

    // Time decomposition at the calibration uncore frequency.
    let f_u = t.calib_uncore_ghz;
    let t_unc = trans * t.uncore_lat_cycles / (a * f_u * 1e9);
    let t_bw_raw = bytes / achievable_bw(&cfg.perf, f_u);
    if t_bw_raw > t_work {
        return Err(err(format!(
            "GB/s target {} exceeds what the bandwidth model allows in the work time",
            t.gbs
        )));
    }
    let exposed = (1.0 - t.mem_overlap) * t_bw_raw;
    let t_core = t_work - t_unc - exposed;
    if t_core <= 0.0 {
        return Err(err(
            "uncore latency + exposed bandwidth exceed the work time; \
             lower uncore_lat_cycles or raise mem_overlap"
                .into(),
        ));
    }
    let cpi_core = t_core * a * f_eff / inst_work;

    // Activity factor from the DC power target (time-weighted between the
    // work and wait portions of the iteration).
    let mem_util_work = (bytes / t_work / cfg.perf.bw_peak_bytes).clamp(0.0, 1.0);
    let gbs_work = bytes / t_work / 1e9;
    let socket_active = split_active(t.active_cores, cfg.sockets);

    let mut k_work = 0.0; // dP/d(activity) during work, node total
    let mut p_rest_work = cfg.power.platform_w + power::dram_power(&cfg.power, gbs_work);
    let mut p_wait = cfg.power.platform_w + power::dram_power(&cfg.power, 0.0);
    for &active in &socket_active {
        let idle = cfg.cores_per_socket - active;
        let avx_factor = 1.0 + (cfg.power.avx512_power_factor - 1.0) * t.vpi;
        k_work += active as f64
            * cfg.power.core_dyn_w
            * (f_eff * 1e-9).powf(cfg.power.core_freq_exp)
            * avx_factor;
        p_rest_work += cfg.power.pkg_static_w
            + power::uncore_power(&cfg.power, f_u, mem_util_work)
            + idle as f64 * cfg.power.core_idle_w;
        // Wait portion: cores spin at nominal, scalar, no memory traffic.
        let spin = SocketPowerInput {
            active_cores: active,
            total_cores: cfg.cores_per_socket,
            f_core_ghz: f_spin * 1e-9,
            activity: cfg.power.spin_activity,
            avx512_fraction: 0.0,
            f_uncore_ghz: f_u,
            mem_util: 0.0,
        };
        p_wait += power::pkg_power(&cfg.power, &spin);
    }

    let needed_work_power = (t.dc_power_w * t_iter - p_wait * wait_s) / t_work;
    let activity = (needed_work_power - p_rest_work) / k_work;
    if !(0.05..=1.3).contains(&activity) {
        return Err(err(format!(
            "DC power target {} W needs activity {activity:.2}, outside the physical range",
            t.dc_power_w
        )));
    }
    let activity = activity.clamp(0.05, 1.0);

    let demand = PhaseDemand {
        instructions: inst_work,
        avx512_fraction: t.vpi,
        mem_bytes: bytes,
        cpi_core,
        uncore_lat_cycles: t.uncore_lat_cycles,
        mem_overlap: t.mem_overlap,
        active_cores: t.active_cores,
        activity,
        wait_seconds: wait_s,
        wait_busy: true,
        gpu_power_w: 0.0,
        hw_ufs_bias: t.hw_ufs_bias,
        domain_mem_frac: None,
    };
    demand.validate().map_err(err)?;
    Ok(CalibratedWorkload {
        targets: t.clone(),
        demand,
        node_config: cfg,
    })
}

/// GPU kernels: a single busy-waiting core; the accelerator sets the pace.
/// The whole iteration is modelled as busy-wait (time is CPU-frequency
/// independent, CPI is the spin loop's — matching the paper's Table II
/// where the CUDA kernels show CPI ≈ 0.5 and ≈ 0 GB/s).
fn calibrate_gpu(
    t: &WorkloadTargets,
    cfg: NodeConfig,
) -> Result<CalibratedWorkload, CalibrationError> {
    let err = |reason: String| CalibrationError {
        workload: t.name,
        reason,
    };
    let t_iter = t.iter_time_s();
    let f_spin = cfg.pstates.nominal_khz() as f64 * 1e-6; // GHz

    // Node power without the active GPU draw.
    let socket_active = split_active(t.active_cores, cfg.sockets);
    let mut p_node = cfg.power.platform_w
        + power::dram_power(&cfg.power, t.gbs)
        + cfg.gpus as f64 * cfg.power.gpu_idle_w;
    for &active in &socket_active {
        let spin = SocketPowerInput {
            active_cores: active,
            total_cores: cfg.cores_per_socket,
            f_core_ghz: f_spin,
            activity: cfg.power.spin_activity,
            avx512_fraction: 0.0,
            f_uncore_ghz: 2.4,
            mem_util: 0.0,
        };
        p_node += power::pkg_power(&cfg.power, &spin);
    }
    let gpu_power_w = t.dc_power_w - p_node;
    if gpu_power_w < 0.0 {
        return Err(err(format!(
            "DC power target {} W is below the node's own draw {p_node:.0} W",
            t.dc_power_w
        )));
    }

    let demand = PhaseDemand {
        instructions: 0.0,
        avx512_fraction: 0.0,
        mem_bytes: 0.0,
        cpi_core: 1.0,
        uncore_lat_cycles: t.uncore_lat_cycles,
        mem_overlap: t.mem_overlap,
        active_cores: t.active_cores,
        activity: cfg.power.spin_activity,
        wait_seconds: t_iter,
        wait_busy: true,
        gpu_power_w,
        hw_ufs_bias: t.hw_ufs_bias,
        domain_mem_frac: None,
    };
    Ok(CalibratedWorkload {
        targets: t.clone(),
        demand,
        node_config: cfg,
    })
}

/// Core activity of the host-feed streaming loop of a GPU-offload
/// workload (a copy/pack loop: mostly load/store, some address math).
const FEED_ACTIVITY: f64 = 0.7;

/// GPU-offload workloads: a few host cores stream staging traffic to the
/// accelerator (all of it through uncore domain 0, the die fronting the
/// GPU), then busy-wait on the kernel. The work portion is calibrated like
/// a CPU workload — so its duration stretches when the host-feed domain's
/// uncore slows, which is exactly the feed-rate throttling the per-domain
/// experiments measure — while the accelerator draw is solved residually
/// from the power target with the feed activity pinned at
/// [`FEED_ACTIVITY`].
fn calibrate_gpu_offload(
    t: &WorkloadTargets,
    cfg: NodeConfig,
) -> Result<CalibratedWorkload, CalibrationError> {
    let err = |reason: String| CalibrationError {
        workload: t.name,
        reason,
    };

    let a = t.active_cores as f64;
    let nominal_ps = cfg.pstates.nominal();
    let f_eff = cfg.pstates.effective_khz(nominal_ps, t.vpi) * 1e3; // Hz
    let f_spin = cfg.pstates.nominal_khz() as f64 * 1e3;

    let t_iter = t.iter_time_s();
    // comm_fraction is the kernel-synchronisation busy-wait here.
    let wait_s = t.comm_fraction * t_iter;
    let t_work = t_iter - wait_s;
    if t_work <= 0.0 {
        return Err(err("sync fraction leaves no feed time".into()));
    }

    let bytes = t.bytes_per_iter();
    let trans = bytes / 64.0;

    // Instruction budget from the CPI target (identical to the CPU path).
    let cycles_total = a * f_eff * t_work + a * f_spin * wait_s;
    let inst_total = cycles_total / t.cpi;
    let spin_inst = a * f_spin * wait_s / SPIN_CPI;
    let inst_work = inst_total - spin_inst;
    if inst_work <= 0.0 {
        return Err(err(format!(
            "CPI target {} infeasible: spin instructions alone exceed the budget",
            t.cpi
        )));
    }

    // Time decomposition of the feed portion at the calibration uncore.
    // All feed traffic streams through domain 0, which owns only 1/nd of
    // the node's memory-controller capacity (each die fronts its own
    // controllers), so its bandwidth term is the full-node one scaled by
    // the domain count.
    let f_u = t.calib_uncore_ghz;
    let nd = t.uncore_domains as f64;
    let t_unc = trans * t.uncore_lat_cycles / (a * f_u * 1e9);
    let t_bw_raw = bytes * nd / achievable_bw(&cfg.perf, f_u);
    if t_bw_raw > t_work {
        return Err(err(format!(
            "GB/s target {} exceeds what the bandwidth model allows in the feed time",
            t.gbs
        )));
    }
    let exposed = (1.0 - t.mem_overlap) * t_bw_raw;
    let t_core = t_work - t_unc - exposed;
    if t_core <= 0.0 {
        return Err(err(
            "uncore latency + exposed bandwidth exceed the feed time".into(),
        ));
    }
    let cpi_core = t_core * a * f_eff / inst_work;

    // Host power with the feed activity pinned; the accelerator draw is
    // the residual that hits the DC target over the whole iteration.
    let gbs_work = bytes / t_work / 1e9;
    let mem_util_work = (bytes / t_work / cfg.perf.bw_peak_bytes).clamp(0.0, 1.0);
    let socket_active = split_active(t.active_cores, cfg.sockets);
    let gpu_idle = cfg.gpus as f64 * cfg.power.gpu_idle_w;
    let mut p_work = cfg.power.platform_w + power::dram_power(&cfg.power, gbs_work) + gpu_idle;
    let mut p_wait = cfg.power.platform_w + power::dram_power(&cfg.power, 0.0) + gpu_idle;
    for &active in &socket_active {
        let feed = SocketPowerInput {
            active_cores: active,
            total_cores: cfg.cores_per_socket,
            f_core_ghz: f_eff * 1e-9,
            activity: FEED_ACTIVITY,
            avx512_fraction: t.vpi,
            f_uncore_ghz: f_u,
            mem_util: mem_util_work,
        };
        p_work += power::pkg_power(&cfg.power, &feed);
        let spin = SocketPowerInput {
            active_cores: active,
            total_cores: cfg.cores_per_socket,
            f_core_ghz: f_spin * 1e-9,
            activity: cfg.power.spin_activity,
            avx512_fraction: 0.0,
            f_uncore_ghz: f_u,
            mem_util: 0.0,
        };
        p_wait += power::pkg_power(&cfg.power, &spin);
    }
    let gpu_power_w = (t.dc_power_w * t_iter - p_work * t_work - p_wait * wait_s) / t_iter;
    if gpu_power_w < 0.0 {
        return Err(err(format!(
            "DC power target {} W is below the host feed's own draw",
            t.dc_power_w
        )));
    }

    // The whole feed stream goes through the die fronting the accelerator.
    let mut frac = [0.0; ear_archsim::MAX_UNCORE_DOMAINS];
    frac[0] = 1.0;

    let demand = PhaseDemand {
        instructions: inst_work,
        avx512_fraction: t.vpi,
        mem_bytes: bytes,
        cpi_core,
        uncore_lat_cycles: t.uncore_lat_cycles,
        mem_overlap: t.mem_overlap,
        active_cores: t.active_cores,
        activity: FEED_ACTIVITY,
        wait_seconds: wait_s,
        wait_busy: true,
        gpu_power_w,
        hw_ufs_bias: t.hw_ufs_bias,
        domain_mem_frac: Some(frac),
    };
    demand.validate().map_err(err)?;
    Ok(CalibratedWorkload {
        targets: t.clone(),
        demand,
        node_config: cfg,
    })
}

/// Distributes active cores over sockets, filling socket 0 first for
/// single-core workloads but balancing full-node ones.
fn split_active(total_active: usize, sockets: usize) -> Vec<usize> {
    let per = total_active / sockets;
    let rem = total_active % sockets;
    (0..sockets).map(|i| per + usize::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Platform;

    fn targets() -> WorkloadTargets {
        WorkloadTargets {
            name: "unit",
            class: AppClass::CpuBound,
            platform: Platform::Sd530,
            nodes: 1,
            ranks_per_node: 40,
            active_cores: 40,
            time_s: 120.0,
            iterations: 60,
            cpi: 0.5,
            gbs: 20.0,
            dc_power_w: 330.0,
            vpi: 0.0,
            comm_fraction: 0.05,
            mem_overlap: 0.6,
            uncore_lat_cycles: 4.0,
            hw_ufs_bias: 0.0,
            calib_uncore_ghz: 2.4,
            uncore_domains: 1,
        }
    }

    #[test]
    fn calibration_produces_valid_demand() {
        let c = calibrate(&targets()).expect("calibrates");
        assert!(c.demand.validate().is_ok());
        assert!(c.demand.instructions > 0.0);
        assert!(c.demand.cpi_core > 0.0);
        assert!((0.05..=1.0).contains(&c.demand.activity));
    }

    #[test]
    fn infeasible_bandwidth_rejected() {
        let mut t = targets();
        t.gbs = 500.0; // above any achievable bandwidth
        let e = calibrate(&t).unwrap_err();
        assert!(e.reason.contains("GB/s"), "{e}");
    }

    #[test]
    fn infeasible_cpi_rejected() {
        let mut t = targets();
        // Nearly all time is communication: spin instructions blow the
        // budget implied by a high CPI target.
        t.comm_fraction = 0.95;
        t.cpi = 5.0;
        let e = calibrate(&t).unwrap_err();
        assert!(e.reason.contains("CPI"), "{e}");
    }

    #[test]
    fn absurd_power_target_rejected() {
        let mut t = targets();
        t.dc_power_w = 5000.0;
        assert!(calibrate(&t).is_err());
        t.dc_power_w = 50.0;
        assert!(calibrate(&t).is_err());
    }

    #[test]
    fn gpu_calibration_solves_gpu_draw() {
        let t = WorkloadTargets {
            name: "gpu-unit",
            class: AppClass::Gpu,
            platform: Platform::GpuNode,
            nodes: 1,
            ranks_per_node: 1,
            active_cores: 1,
            time_s: 400.0,
            iterations: 200,
            cpi: 0.5,
            gbs: 0.1,
            dc_power_w: 305.0,
            vpi: 0.0,
            comm_fraction: 0.0,
            mem_overlap: 0.5,
            uncore_lat_cycles: 4.0,
            hw_ufs_bias: 0.0,
            calib_uncore_ghz: 2.4,
            uncore_domains: 1,
        };
        let c = calibrate(&t).expect("calibrates");
        assert!(
            c.demand.gpu_power_w > 20.0 && c.demand.gpu_power_w < 250.0,
            "gpu draw {}",
            c.demand.gpu_power_w
        );
        assert_eq!(c.demand.active_cores, 1);
        assert!((c.demand.wait_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn split_active_balances() {
        assert_eq!(split_active(40, 2), vec![20, 20]);
        assert_eq!(split_active(1, 2), vec![1, 0]);
        assert_eq!(split_active(39, 2), vec![20, 19]);
    }
}
