//! # ear-workloads — calibrated models of the paper's applications
//!
//! The paper evaluates five single-node kernels (Table II) and eight MPI
//! applications (Table V). We cannot run BQCD, GROMACS, HPCG, POP, DUMSES
//! or AFiD here, so each is replaced by a synthetic workload whose
//! *signature* — execution time, CPI, GB/s, VPI and DC node power at
//! nominal frequency — is calibrated to the paper's measured
//! characterisation. The EAR policies only ever observe signatures, so a
//! workload with the paper's signature drives the policies through the
//! same decisions (see DESIGN.md for the substitution argument).
//!
//! Calibration is exact and closed-form ([`calibration`]); a replay test
//! in `tests/replay.rs` asserts that simulating each workload at nominal
//! frequency reproduces the paper's Tables II and V within tolerance.

#![warn(missing_docs)]

pub mod apps;
pub mod builder;
pub mod calibration;
pub mod kernels;
pub mod phases;
pub mod spec;
pub mod sweep;
pub mod synthetic;

pub use builder::{build_job, build_phase_change_job, event_pattern, is_mpi};
pub use calibration::{calibrate, CalibratedWorkload, CalibrationError};
pub use phases::{MultiPhaseApp, PhaseSpec};
pub use spec::{AppClass, Platform, WorkloadTargets};
pub use sweep::{quick_spec, sweep_spec, SweepSpec};

/// Every workload in the paper's evaluation — Table II kernels, the
/// Table I MPI kernels, the Table V applications — plus the per-die
/// extension's GPU-offload probe workload.
pub fn full_catalog() -> Vec<WorkloadTargets> {
    let mut v = kernels::table2_kernels();
    v.push(kernels::bt_mz_mpi_c());
    v.push(kernels::lu_mpi_d());
    v.extend(apps::table5_apps());
    v.push(kernels::bt_cuda_d_offload());
    v
}

/// Looks a workload up by its paper name.
pub fn by_name(name: &str) -> Option<WorkloadTargets> {
    full_catalog().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete() {
        // 5 Table II kernels + 2 Table I MPI kernels + 8 Table V apps +
        // the GPU-offload probe workload.
        assert_eq!(full_catalog().len(), 16);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = full_catalog().iter().map(|w| w.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("HPCG").is_some());
        assert!(by_name("BQCD").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
