//! Per-workload sweep grids for `earsim sweep`.
//!
//! The full characterisation space is (pstate × uncore-ratio); sweeping
//! it at a uniform resolution for every workload wastes cells — a
//! CPU-bound kernel's surface is flat along the uncore axis, a
//! memory-bound one flat along the pstate axis. Each [`AppClass`] gets a
//! grid dense where its surface curves and coarse where it is flat,
//! keeping every grid well-posed for the 6-term quadratic fit (both axes
//! vary, ≥ 6 distinct points) while holding the cold sweep to a tractable
//! cell count.

use crate::spec::{AppClass, WorkloadTargets};

/// The platform uncore ratio window in 100 MHz units (1.2–2.4 GHz,
/// paper §II).
pub const UNCORE_RATIO_MIN: u8 = 12;
/// See [`UNCORE_RATIO_MIN`].
pub const UNCORE_RATIO_MAX: u8 = 24;

/// One workload's sweep grid: the pstates and uncore max-ratios whose
/// cross product `earsim sweep` measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// CPU pstates to sweep (1 = nominal; turbo is never swept, matching
    /// the policies' search space).
    pub cpu_pstates: Vec<usize>,
    /// Uncore maximum ratios to sweep (100 MHz units), descending — the
    /// order the iterative `IMC_FREQ_SEL` search walks them.
    pub imc_ratios: Vec<u8>,
}

impl SweepSpec {
    /// Number of grid cells (excluding the reference cell).
    pub fn cells(&self) -> usize {
        self.cpu_pstates.len() * self.imc_ratios.len()
    }
}

fn descending(from: u8, to: u8, step: u8) -> Vec<u8> {
    let mut v = Vec::new();
    let mut r = from;
    loop {
        v.push(r);
        if r < to + step && r >= to {
            if r != to {
                v.push(to);
            }
            break;
        }
        r -= step;
    }
    v
}

/// The sweep grid for a workload, by application class:
///
/// * CPU bound — the optimum sits at nominal pstate with a deep uncore
///   cut: every 0.1 GHz uncore step, coarse pstates.
/// * Memory bound — the optimum trades pstate against bandwidth: every
///   pstate, 0.2 GHz uncore steps.
/// * GPU / GPU-offload — both axes nearly flat for the busy-wait host;
///   a coarse grid on each.
pub fn sweep_spec(targets: &WorkloadTargets) -> SweepSpec {
    match targets.class {
        AppClass::CpuBound => SweepSpec {
            cpu_pstates: vec![1, 3, 5, 7],
            imc_ratios: descending(UNCORE_RATIO_MAX, UNCORE_RATIO_MIN, 1),
        },
        AppClass::MemoryBound => SweepSpec {
            cpu_pstates: vec![1, 2, 3, 4, 5, 6, 7],
            imc_ratios: descending(UNCORE_RATIO_MAX, UNCORE_RATIO_MIN, 2),
        },
        AppClass::Gpu | AppClass::GpuOffload => SweepSpec {
            cpu_pstates: vec![1, 3, 5, 7],
            imc_ratios: descending(UNCORE_RATIO_MAX, UNCORE_RATIO_MIN, 3),
        },
    }
}

/// The reduced grid for `earsim sweep --quick` (CI smoke and the
/// determinism tests): 3 × 3, still well-posed for the quadratic fit.
pub fn quick_spec(_targets: &WorkloadTargets) -> SweepSpec {
    SweepSpec {
        cpu_pstates: vec![1, 4, 7],
        imc_ratios: vec![24, 18, 12],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_catalog;

    #[test]
    fn every_grid_is_well_posed_for_a_quadratic() {
        for w in full_catalog() {
            for spec in [sweep_spec(&w), quick_spec(&w)] {
                assert!(spec.cpu_pstates.len() >= 2, "{}: pstate axis", w.name);
                assert!(spec.imc_ratios.len() >= 3, "{}: uncore axis", w.name);
                assert!(spec.cells() >= 6, "{}: {} cells", w.name, spec.cells());
            }
        }
    }

    #[test]
    fn ratios_descend_within_the_platform_window() {
        for w in full_catalog() {
            let spec = sweep_spec(&w);
            for pair in spec.imc_ratios.windows(2) {
                assert!(pair[0] > pair[1], "{}: {:?}", w.name, spec.imc_ratios);
            }
            assert_eq!(spec.imc_ratios[0], UNCORE_RATIO_MAX);
            assert_eq!(
                *spec.imc_ratios.last().unwrap_or(&0),
                UNCORE_RATIO_MIN,
                "{}: sweep reaches the platform floor",
                w.name
            );
        }
    }

    #[test]
    fn memory_bound_grids_are_pstate_dense() {
        let hpcg = crate::by_name("HPCG").map(|w| sweep_spec(&w));
        let bqcd = crate::by_name("BQCD").map(|w| sweep_spec(&w));
        let (Some(mem), Some(cpu)) = (hpcg, bqcd) else {
            panic!("catalog lookup failed");
        };
        assert!(mem.cpu_pstates.len() > cpu.cpu_pstates.len());
        assert!(cpu.imc_ratios.len() > mem.imc_ratios.len());
    }
}
