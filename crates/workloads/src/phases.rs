//! Multi-phase applications.
//!
//! Real applications alternate phases (GROMACS: bonded forces vs PME;
//! DUMSES: hydro step vs output). EARL handles this with signature-change
//! detection and policy restarts (paper §V-B); this module builds jobs
//! whose iterations cycle through differently-characterised phases so
//! those paths can be evaluated, not just unit-tested.

use crate::builder::event_pattern;
use crate::calibration::{calibrate, CalibratedWorkload, CalibrationError};
use crate::spec::WorkloadTargets;
use ear_mpisim::{IterationSpec, JobSpec, MpiCall, MpiEvent};

/// One phase: a fully-specified workload plus how many consecutive outer
/// iterations it lasts per cycle.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// The phase's characterisation (same shape as a whole application's).
    pub targets: WorkloadTargets,
    /// Consecutive iterations of this phase per cycle.
    pub iterations_per_cycle: usize,
}

/// A multi-phase application: phases cycle until `total_iterations`.
#[derive(Debug, Clone)]
pub struct MultiPhaseApp {
    /// Display name.
    pub name: String,
    /// The phases, in cycle order. All phases must share the topology
    /// (nodes, ranks) of the first.
    pub phases: Vec<PhaseSpec>,
    /// Total outer iterations.
    pub total_iterations: usize,
}

impl MultiPhaseApp {
    /// Builds the runnable job: each phase is calibrated independently and
    /// its MPI pattern gets a phase-distinct marker collective so DynAIS
    /// sees the structural change.
    pub fn build_job(&self) -> Result<JobSpec, CalibrationError> {
        assert!(!self.phases.is_empty(), "a multi-phase app needs phases");
        let nodes = self.phases[0].targets.nodes;
        let ranks = self.phases[0].targets.ranks_per_node;
        for p in &self.phases {
            assert_eq!(p.targets.nodes, nodes, "phases must share topology");
            assert_eq!(
                p.targets.ranks_per_node, ranks,
                "phases must share topology"
            );
        }
        let calibrated: Vec<CalibratedWorkload> = self
            .phases
            .iter()
            .map(|p| calibrate(&p.targets))
            .collect::<Result<_, _>>()?;

        let mut iterations = Vec::with_capacity(self.total_iterations);
        let cycle_len: usize = self
            .phases
            .iter()
            .map(|p| p.iterations_per_cycle.max(1))
            .sum();
        let mut produced = 0;
        while produced < self.total_iterations {
            for (idx, (phase, cal)) in self.phases.iter().zip(&calibrated).enumerate() {
                for _ in 0..phase.iterations_per_cycle.max(1) {
                    if produced >= self.total_iterations {
                        break;
                    }
                    let mut events = event_pattern(phase.targets.name, nodes);
                    // Phase marker: a collective with a phase-unique size,
                    // so each phase has a distinct DynAIS fingerprint.
                    events.push(MpiEvent::collective(MpiCall::Allreduce, 64 + idx as u64));
                    iterations.push(IterationSpec {
                        events,
                        demand: cal.demand.clone(),
                        comm: None,
                    });
                    produced += 1;
                }
            }
            debug_assert!(cycle_len > 0);
        }
        Ok(JobSpec {
            name: self.name.clone(),
            nodes,
            ranks_per_node: ranks,
            iterations,
        })
    }
}

/// A ready-made two-phase app: long compute-bound stretches interrupted by
/// memory-bound I/O-like bursts (the DUMSES output pattern).
pub fn compute_with_memory_bursts() -> MultiPhaseApp {
    let mut compute = crate::apps::bt_mz_d();
    compute.iterations = 1; // per-phase targets use their own time base
    compute.time_s = 1.5;
    let mut burst = crate::apps::hpcg();
    burst.iterations = 1;
    burst.time_s = 1.5;
    burst.nodes = compute.nodes;
    burst.ranks_per_node = compute.ranks_per_node;
    burst.active_cores = compute.active_cores;
    MultiPhaseApp {
        name: "BT-MZ + HPCG bursts (synthetic phases)".to_string(),
        phases: vec![
            PhaseSpec {
                targets: compute,
                iterations_per_cycle: 30,
            },
            PhaseSpec {
                targets: burst,
                iterations_per_cycle: 10,
            },
        ],
        total_iterations: 160,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_cycling_job() {
        let app = compute_with_memory_bursts();
        let job = app.build_job().unwrap();
        assert_eq!(job.iterations.len(), 160);
        assert!(job.validate().is_ok());
        // Phases differ in demand.
        let a = &job.iterations[0].demand;
        let b = &job.iterations[35].demand;
        assert!(
            b.mem_bytes > a.mem_bytes * 5.0,
            "{} vs {}",
            b.mem_bytes,
            a.mem_bytes
        );
        // Phase markers differ.
        assert_ne!(
            job.iterations[0].events.last(),
            job.iterations[35].events.last()
        );
        // The cycle repeats: iteration 40 is compute again.
        assert_eq!(job.iterations[40].demand, job.iterations[0].demand);
    }

    #[test]
    #[should_panic(expected = "share topology")]
    fn mismatched_topology_rejected() {
        let mut app = compute_with_memory_bursts();
        app.phases[1].targets.nodes = 2;
        let _ = app.build_job();
    }
}
