//! Workload target specifications.
//!
//! Each application the paper evaluates is described by the *measured*
//! characterisation the paper reports (execution time, CPI, GB/s, DC power
//! at nominal frequency — Tables I, II and V) plus a small set of
//! structural parameters (communication fraction, memory overlap, uncore
//! latency weight) chosen per application class. The calibration module
//! inverts the simulator's performance/power models so that replaying the
//! workload at nominal frequency reproduces the paper's numbers.

use ear_archsim::NodeConfig;
use ear_errors::EarError;

/// Application classes, as the paper groups them (§VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppClass {
    /// CPU bound: BQCD, GROMACS, BT-MZ — DVFS keeps nominal frequency.
    CpuBound,
    /// Memory bound: HPCG, POP, DUMSES, AFiD — DVFS lowers CPU frequency.
    MemoryBound,
    /// GPU kernels: one busy-waiting core, compute on the accelerator.
    Gpu,
    /// GPU offload with an active host feed: a few host cores stream
    /// staging traffic through the uncore domain fronting the accelerator
    /// while the compute runs on the GPU. The feed traffic pins to domain
    /// 0, so on a multi-die part the other domain is compute-idle — the
    /// per-domain UFS case the single knob cannot express (down-scaling
    /// the host-feed domain throttles the feed rate; down-scaling the idle
    /// domain costs nothing).
    GpuOffload,
}

/// Which node model the workload ran on in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Lenovo SD530, 2× Xeon Gold 6148 (compute nodes).
    Sd530,
    /// 2× Xeon Gold 6142M + 2× V100 (GPU nodes).
    GpuNode,
}

impl Platform {
    /// The node configuration for this platform.
    pub fn node_config(self) -> NodeConfig {
        match self {
            Platform::Sd530 => NodeConfig::sd530_6148(),
            Platform::GpuNode => NodeConfig::gpu_node_6142m(),
        }
    }
}

/// Everything needed to calibrate and instantiate one workload.
#[derive(Debug, Clone)]
pub struct WorkloadTargets {
    /// Application name as the paper spells it.
    pub name: &'static str,
    /// Application class.
    pub class: AppClass,
    /// Node model.
    pub platform: Platform,
    /// Number of nodes.
    pub nodes: usize,
    /// MPI ranks per node (1 for OpenMP/CUDA kernels).
    pub ranks_per_node: usize,
    /// Cores doing work per node.
    pub active_cores: usize,
    /// Target: total execution time at nominal frequency (s).
    pub time_s: f64,
    /// Number of outer iterations to synthesise.
    pub iterations: usize,
    /// Target: job-average CPI at nominal frequency.
    pub cpi: f64,
    /// Target: job-average main-memory bandwidth per node (GB/s).
    pub gbs: f64,
    /// Target: average DC node power at nominal frequency (W).
    pub dc_power_w: f64,
    /// AVX512 instruction fraction of the work portion.
    pub vpi: f64,
    /// Fraction of iteration time spent in MPI waiting (design parameter;
    /// higher for larger rank counts).
    pub comm_fraction: f64,
    /// Fraction of DRAM service time hidden under compute (class choice).
    pub mem_overlap: f64,
    /// Uncore latency cycles charged per memory transaction (class choice).
    pub uncore_lat_cycles: f64,
    /// Calibration bias for the firmware UFS heuristic (see archsim docs).
    pub hw_ufs_bias: f64,
    /// Uncore frequency (GHz) the hardware settles at during the nominal
    /// characterisation run — 2.4 for everything except AVX512-capped
    /// DGEMM, where the paper measured 1.98 (Table IV).
    pub calib_uncore_ghz: f64,
    /// Uncore frequency domains per socket the workload's node exposes
    /// (1 = the legacy single knob; >1 instantiates TPMI-style per-die
    /// register pairs and the policies search each domain independently).
    pub uncore_domains: usize,
}

impl WorkloadTargets {
    /// Iteration duration implied by the targets (s).
    pub fn iter_time_s(&self) -> f64 {
        self.time_s / self.iterations as f64
    }

    /// Main-memory bytes moved per iteration per node.
    pub fn bytes_per_iter(&self) -> f64 {
        self.gbs * 1e9 * self.iter_time_s()
    }

    /// Basic consistency checks.
    pub fn validate(&self) -> Result<(), EarError> {
        if self.nodes == 0 || self.ranks_per_node == 0 || self.iterations == 0 {
            return Err(EarError::config(format!(
                "{}: degenerate topology",
                self.name
            )));
        }
        if self.time_s <= 0.0 || self.cpi <= 0.0 || self.dc_power_w <= 0.0 {
            return Err(EarError::config(format!(
                "{}: non-positive targets",
                self.name
            )));
        }
        if !(0.0..=1.0).contains(&self.comm_fraction) || !(0.0..=1.0).contains(&self.vpi) {
            return Err(EarError::config(format!(
                "{}: fraction out of range",
                self.name
            )));
        }
        let cfg = self.platform.node_config();
        if self.active_cores > cfg.total_cores() {
            return Err(EarError::config(format!(
                "{}: more active cores than the node has",
                self.name
            )));
        }
        if !(1..=ear_archsim::MAX_UNCORE_DOMAINS).contains(&self.uncore_domains) {
            return Err(EarError::config(format!(
                "{}: uncore_domains must be 1..={}, got {}",
                self.name,
                ear_archsim::MAX_UNCORE_DOMAINS,
                self.uncore_domains
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadTargets {
        WorkloadTargets {
            name: "unit",
            class: AppClass::CpuBound,
            platform: Platform::Sd530,
            nodes: 4,
            ranks_per_node: 40,
            active_cores: 40,
            time_s: 100.0,
            iterations: 50,
            cpi: 0.5,
            gbs: 10.0,
            dc_power_w: 320.0,
            vpi: 0.0,
            comm_fraction: 0.1,
            mem_overlap: 0.6,
            uncore_lat_cycles: 4.0,
            hw_ufs_bias: 0.0,
            calib_uncore_ghz: 2.4,
            uncore_domains: 1,
        }
    }

    #[test]
    fn derived_quantities() {
        let s = spec();
        assert!((s.iter_time_s() - 2.0).abs() < 1e-12);
        assert!((s.bytes_per_iter() - 20e9).abs() < 1.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validation_catches_errors() {
        let mut s = spec();
        s.active_cores = 100;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.iterations = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.comm_fraction = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn platform_configs_differ() {
        assert_eq!(Platform::Sd530.node_config().total_cores(), 40);
        assert_eq!(Platform::GpuNode.node_config().total_cores(), 32);
    }
}
