//! Building runnable jobs from calibrated workloads.

use crate::calibration::CalibratedWorkload;
use crate::spec::AppClass;
use ear_mpisim::{IterationSpec, JobSpec, MpiCall, MpiEvent};

/// The per-iteration MPI call pattern of an application.
///
/// Patterns are distinctive per application (DynAIS must tell them apart)
/// and stable across iterations (DynAIS must detect the loop). Non-MPI
/// kernels return an empty pattern — EARL then operates time-guided.
pub fn event_pattern(name: &str, nodes: usize) -> Vec<MpiEvent> {
    let n = nodes as u64;
    match name {
        "BQCD" => vec![
            MpiEvent::new(MpiCall::Isend, 196_608, 1),
            MpiEvent::new(MpiCall::Irecv, 196_608, 1),
            MpiEvent::new(MpiCall::Wait, 0, 0),
            MpiEvent::collective(MpiCall::Allreduce, 64),
        ],
        "BT-MZ" | "BT-MZ.C (MPI)" => vec![
            MpiEvent::new(MpiCall::Isend, 524_288, 1),
            MpiEvent::new(MpiCall::Irecv, 524_288, 1),
            MpiEvent::new(MpiCall::Isend, 524_288, 2),
            MpiEvent::new(MpiCall::Irecv, 524_288, 2),
            MpiEvent::new(MpiCall::Wait, 0, 0),
        ],
        "GROMACS (I)" | "GROMACS (II)" => vec![
            MpiEvent::new(MpiCall::Sendrecv, 131_072, 1),
            MpiEvent::new(MpiCall::Sendrecv, 131_072, 2),
            MpiEvent::collective(MpiCall::Allreduce, 1024),
        ],
        "HPCG" => vec![
            MpiEvent::new(MpiCall::Isend, 65_536, 1),
            MpiEvent::new(MpiCall::Irecv, 65_536, 1),
            MpiEvent::new(MpiCall::Wait, 0, 0),
            MpiEvent::collective(MpiCall::Allreduce, 8),
            MpiEvent::collective(MpiCall::Allreduce, 8),
        ],
        "POP" => vec![
            MpiEvent::new(MpiCall::Isend, 262_144, 1),
            MpiEvent::new(MpiCall::Irecv, 262_144, 1),
            MpiEvent::new(MpiCall::Wait, 0, 0),
            MpiEvent::collective(MpiCall::Allreduce, 16),
            MpiEvent::collective(MpiCall::Bcast, 256),
        ],
        "DUMSES" => vec![
            MpiEvent::new(MpiCall::Isend, 1_048_576, 1),
            MpiEvent::new(MpiCall::Irecv, 1_048_576, 1),
            MpiEvent::new(MpiCall::Wait, 0, 0),
            MpiEvent::collective(MpiCall::Barrier, 0),
        ],
        "AFiD" => vec![
            MpiEvent::collective(MpiCall::Alltoall, 2_097_152 / n.max(1)),
            MpiEvent::collective(MpiCall::Allreduce, 64),
        ],
        "COMM-HEAVY (synthetic)" => vec![
            MpiEvent::new(MpiCall::Isend, 65_536, 1),
            MpiEvent::new(MpiCall::Irecv, 65_536, 1),
            MpiEvent::new(MpiCall::Isend, 65_536, 2),
            MpiEvent::new(MpiCall::Irecv, 65_536, 2),
            MpiEvent::new(MpiCall::Wait, 0, 0),
            MpiEvent::collective(MpiCall::Allreduce, 16),
            MpiEvent::collective(MpiCall::Barrier, 0),
        ],
        "LU.D (MPI)" => vec![
            MpiEvent::new(MpiCall::Send, 40_960, 1),
            MpiEvent::new(MpiCall::Recv, 40_960, 1),
            MpiEvent::collective(MpiCall::Allreduce, 40),
        ],
        // OpenMP / CUDA / MKL kernels issue no MPI calls.
        _ => vec![],
    }
}

/// Builds the runnable [`JobSpec`] of a calibrated workload.
pub fn build_job(w: &CalibratedWorkload) -> JobSpec {
    let t = &w.targets;
    JobSpec::homogeneous(
        t.name,
        t.nodes,
        t.ranks_per_node,
        event_pattern(t.name, t.nodes),
        w.demand.clone(),
        t.iterations,
    )
}

/// Builds a job whose signature changes mid-run: the first `head` iterations
/// use the calibrated demand, the rest scale instructions and memory by the
/// given factors (used to exercise EARL's phase-change paths and the
/// paper's "signature changes during IMC selection" check).
pub fn build_phase_change_job(
    w: &CalibratedWorkload,
    head: usize,
    inst_factor: f64,
    mem_factor: f64,
) -> JobSpec {
    let t = &w.targets;
    let events_a = event_pattern(t.name, t.nodes);
    // A different (still repetitive) MPI pattern for the second phase, so
    // DynAIS sees the structural change too.
    let mut events_b = events_a.clone();
    events_b.push(MpiEvent::collective(MpiCall::Barrier, 0));
    let mut demand_b = w.demand.clone();
    demand_b.instructions *= inst_factor;
    demand_b.mem_bytes *= mem_factor;

    let iterations = (0..t.iterations)
        .map(|i| {
            if i < head {
                IterationSpec {
                    events: events_a.clone(),
                    demand: w.demand.clone(),
                    comm: None,
                }
            } else {
                IterationSpec {
                    events: events_b.clone(),
                    demand: demand_b.clone(),
                    comm: None,
                }
            }
        })
        .collect();
    JobSpec {
        name: format!("{} (phase change)", t.name),
        nodes: t.nodes,
        ranks_per_node: t.ranks_per_node,
        iterations,
    }
}

/// True when the workload drives EARL through MPI interception (vs the
/// time-guided fallback).
pub fn is_mpi(w: &CalibratedWorkload) -> bool {
    !event_pattern(w.targets.name, w.targets.nodes).is_empty() && w.targets.class != AppClass::Gpu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::calibration::calibrate;
    use crate::kernels;

    #[test]
    fn mpi_apps_have_patterns() {
        for a in apps::table5_apps() {
            let p = event_pattern(a.name, a.nodes);
            assert!(!p.is_empty(), "{} should have an MPI pattern", a.name);
        }
    }

    #[test]
    fn kernels_have_no_patterns() {
        for k in [
            kernels::bt_mz_omp_c(),
            kernels::sp_mz_omp_c(),
            kernels::dgemm(),
        ] {
            assert!(event_pattern(k.name, k.nodes).is_empty(), "{}", k.name);
        }
    }

    #[test]
    fn patterns_are_distinct_across_apps() {
        let mut hashes: Vec<Vec<u64>> = apps::table5_apps()
            .iter()
            .map(|a| {
                event_pattern(a.name, a.nodes)
                    .iter()
                    .map(|e| e.dynais_sample())
                    .collect()
            })
            .collect();
        hashes.sort();
        let before = hashes.len();
        hashes.dedup();
        // GROMACS I and II share a pattern (same application); everything
        // else must differ.
        assert!(hashes.len() >= before - 1, "too many identical patterns");
    }

    #[test]
    fn build_job_shape() {
        let c = calibrate(&apps::bqcd()).unwrap();
        let job = build_job(&c);
        assert_eq!(job.nodes, 4);
        assert_eq!(job.iterations.len(), 87);
        assert!(job.validate().is_ok());
    }

    #[test]
    fn phase_change_job_switches_demand() {
        let c = calibrate(&apps::bqcd()).unwrap();
        let job = build_phase_change_job(&c, 10, 2.0, 0.5);
        assert_eq!(job.iterations.len(), 87);
        let a = &job.iterations[0];
        let b = &job.iterations[20];
        assert!(b.demand.instructions > a.demand.instructions * 1.5);
        assert!(b.events.len() > a.events.len());
        assert!(job.validate().is_ok());
    }
}
