//! The paper's MPI applications (Table V characterisation).
//!
//! Topologies follow §VI-B: BT-MZ.D 160 procs / 4 nodes, BQCD 40 procs ×
//! 4 threads / 4 nodes, GROMACS(I) 160/4, GROMACS(II) 640/16, POP 384/10,
//! DUMSES 512/13, AFiD 576/15. HPCG's node count is not stated; we use 4.

use crate::spec::{AppClass, Platform, WorkloadTargets};

/// BQCD: Hybrid Monte-Carlo lattice QCD. CPU bound, modest bandwidth.
pub fn bqcd() -> WorkloadTargets {
    WorkloadTargets {
        name: "BQCD",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 4,
        ranks_per_node: 10, // 40 MPI procs × 4 threads
        active_cores: 40,
        time_s: 130.54,
        iterations: 87,
        cpi: 0.68,
        gbs: 10.98,
        dc_power_w: 302.15,
        vpi: 0.05,
        comm_fraction: 0.15,
        mem_overlap: 0.6,
        uncore_lat_cycles: 19.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// BT-MZ class D: 160 MPI processes, four nodes.
pub fn bt_mz_d() -> WorkloadTargets {
    WorkloadTargets {
        name: "BT-MZ",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 4,
        ranks_per_node: 40,
        active_cores: 40,
        time_s: 465.01,
        iterations: 310,
        cpi: 0.38,
        gbs: 6.60,
        dc_power_w: 320.74,
        vpi: 0.04,
        comm_fraction: 0.06,
        mem_overlap: 0.6,
        uncore_lat_cycles: 44.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// GROMACS with the `ion_channel` input: 160 procs, four nodes.
pub fn gromacs_i() -> WorkloadTargets {
    WorkloadTargets {
        name: "GROMACS (I)",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 4,
        ranks_per_node: 40,
        active_cores: 40,
        time_s: 313.92,
        iterations: 209,
        cpi: 0.48,
        gbs: 10.39,
        dc_power_w: 319.35,
        vpi: 0.15,
        comm_fraction: 0.18,
        mem_overlap: 0.6,
        uncore_lat_cycles: 24.0,
        // Table VI: the firmware keeps ~2.0 GHz once GROMACS(I) runs
        // sub-nominal under ME.
        hw_ufs_bias: 0.45,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// GROMACS with the `lignocellulose-rf` input: 640 procs, 16 nodes. More
/// communication, and the firmware picks a much lower uncore (Table VI:
/// 1.45 GHz under ME).
pub fn gromacs_ii() -> WorkloadTargets {
    WorkloadTargets {
        name: "GROMACS (II)",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 16,
        ranks_per_node: 40,
        active_cores: 40,
        time_s: 390.60,
        iterations: 260,
        cpi: 0.63,
        gbs: 13.34,
        dc_power_w: 315.48,
        vpi: 0.15,
        comm_fraction: 0.32,
        mem_overlap: 0.6,
        uncore_lat_cycles: 16.0,
        hw_ufs_bias: -0.02,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// HPCG: the most memory-bound application in the evaluation.
pub fn hpcg() -> WorkloadTargets {
    WorkloadTargets {
        name: "HPCG",
        class: AppClass::MemoryBound,
        platform: Platform::Sd530,
        nodes: 4,
        ranks_per_node: 40,
        active_cores: 40,
        time_s: 169.61,
        iterations: 113,
        cpi: 3.13,
        gbs: 177.45,
        dc_power_w: 339.88,
        vpi: 0.02,
        comm_fraction: 0.08,
        mem_overlap: 0.35,
        uncore_lat_cycles: 8.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// POP: Parallel Ocean Program v2, 384 procs, 10 nodes.
pub fn pop() -> WorkloadTargets {
    WorkloadTargets {
        name: "POP",
        class: AppClass::MemoryBound,
        platform: Platform::Sd530,
        nodes: 10,
        ranks_per_node: 38,
        active_cores: 38,
        time_s: 1533.03,
        iterations: 511,
        cpi: 0.72,
        gbs: 100.66,
        dc_power_w: 347.18,
        vpi: 0.02,
        comm_fraction: 0.20,
        mem_overlap: 0.6,
        uncore_lat_cycles: 6.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// DUMSES: Godunov MHD code, 512 procs, 13 nodes.
pub fn dumses() -> WorkloadTargets {
    WorkloadTargets {
        name: "DUMSES",
        class: AppClass::MemoryBound,
        platform: Platform::Sd530,
        nodes: 13,
        ranks_per_node: 39,
        active_cores: 39,
        time_s: 813.21,
        iterations: 407,
        cpi: 1.08,
        gbs: 119.07,
        dc_power_w: 333.69,
        vpi: 0.02,
        comm_fraction: 0.12,
        mem_overlap: 0.45,
        uncore_lat_cycles: 13.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// AFiD: Rayleigh-Bénard / Taylor-Couette flows, 576 procs, 15 nodes.
pub fn afid() -> WorkloadTargets {
    WorkloadTargets {
        name: "AFiD",
        class: AppClass::MemoryBound,
        platform: Platform::Sd530,
        nodes: 15,
        ranks_per_node: 38,
        active_cores: 38,
        time_s: 268.22,
        iterations: 134,
        cpi: 0.77,
        gbs: 115.20,
        dc_power_w: 333.65,
        vpi: 0.02,
        comm_fraction: 0.15,
        mem_overlap: 0.6,
        uncore_lat_cycles: 9.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// All Table V applications, in table order.
pub fn table5_apps() -> Vec<WorkloadTargets> {
    vec![
        bqcd(),
        bt_mz_d(),
        gromacs_i(),
        gromacs_ii(),
        hpcg(),
        pop(),
        dumses(),
        afid(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibrate;

    #[test]
    fn every_app_calibrates() {
        for a in table5_apps() {
            calibrate(&a).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn topologies_match_the_paper() {
        assert_eq!(bt_mz_d().nodes * bt_mz_d().ranks_per_node, 160);
        assert_eq!(gromacs_i().nodes * gromacs_i().ranks_per_node, 160);
        assert_eq!(gromacs_ii().nodes * gromacs_ii().ranks_per_node, 640);
        assert_eq!(bqcd().nodes, 4);
        assert_eq!(pop().nodes, 10);
        assert_eq!(dumses().nodes, 13);
        assert_eq!(afid().nodes, 15);
    }

    #[test]
    fn classes_match_section_vi() {
        use crate::spec::AppClass::*;
        for (t, c) in [
            (bqcd(), CpuBound),
            (bt_mz_d(), CpuBound),
            (gromacs_i(), CpuBound),
            (gromacs_ii(), CpuBound),
            (hpcg(), MemoryBound),
            (pop(), MemoryBound),
            (dumses(), MemoryBound),
            (afid(), MemoryBound),
        ] {
            assert_eq!(t.class, c, "{}", t.name);
        }
    }

    #[test]
    fn iteration_times_reasonable() {
        for a in table5_apps() {
            let t = a.iter_time_s();
            assert!((0.8..4.0).contains(&t), "{}: {t}", a.name);
        }
    }
}
