//! Single-node kernels (paper Table II, plus the Table I MPI kernels).
//!
//! Targets are the paper's measured characterisation at nominal frequency.
//! Structural parameters (overlap, uncore latency weight, communication
//! fraction) are class choices documented per kernel; `hw_ufs_bias`
//! calibrates the opaque firmware uncore heuristic to the hardware
//! selections the paper reports (Table IV).

use crate::spec::{AppClass, Platform, WorkloadTargets};

/// BT-MZ class C, OpenMP, one node (Table II row 1).
pub fn bt_mz_omp_c() -> WorkloadTargets {
    WorkloadTargets {
        name: "BT-MZ.C (OpenMP)",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 1,
        ranks_per_node: 1,
        active_cores: 40,
        time_s: 145.0,
        iterations: 96,
        cpi: 0.39,
        gbs: 28.0,
        dc_power_w: 332.0,
        vpi: 0.04,
        comm_fraction: 0.0,
        mem_overlap: 0.6,
        uncore_lat_cycles: 11.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// SP-MZ class C, OpenMP, one node (Table II row 2).
pub fn sp_mz_omp_c() -> WorkloadTargets {
    WorkloadTargets {
        name: "SP-MZ.C (OpenMP)",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 1,
        ranks_per_node: 1,
        active_cores: 40,
        time_s: 264.0,
        iterations: 176,
        cpi: 0.53,
        gbs: 78.0,
        dc_power_w: 358.0,
        vpi: 0.04,
        comm_fraction: 0.0,
        mem_overlap: 0.8,
        uncore_lat_cycles: 6.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// BT class D, CUDA: one busy-waiting core, one V100 (Table II row 3).
pub fn bt_cuda_d() -> WorkloadTargets {
    WorkloadTargets {
        name: "BT.CUDA.D",
        class: AppClass::Gpu,
        platform: Platform::GpuNode,
        nodes: 1,
        ranks_per_node: 1,
        active_cores: 1,
        time_s: 465.0,
        iterations: 310,
        cpi: 0.49,
        gbs: 0.09,
        dc_power_w: 305.0,
        vpi: 0.0,
        comm_fraction: 0.0,
        mem_overlap: 0.5,
        uncore_lat_cycles: 4.0,
        // Table IV: the firmware settles near 1.5 GHz once DVFS goes
        // sub-nominal on the spin core.
        hw_ufs_bias: 0.22,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// LU class D, CUDA (Table II row 4).
pub fn lu_cuda_d() -> WorkloadTargets {
    WorkloadTargets {
        name: "LU.CUDA.D",
        class: AppClass::Gpu,
        platform: Platform::GpuNode,
        nodes: 1,
        ranks_per_node: 1,
        active_cores: 1,
        time_s: 256.0,
        iterations: 170,
        cpi: 0.54,
        gbs: 0.19,
        dc_power_w: 290.0,
        vpi: 0.0,
        comm_fraction: 0.0,
        mem_overlap: 0.5,
        uncore_lat_cycles: 4.0,
        hw_ufs_bias: 0.22,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// DGEMM (MKL): 100 % AVX512, one node (Table II row 5). The AVX licence
/// caps the delivered frequency at 2.2 GHz, so the firmware picks a
/// sub-maximum uncore even with no policy (Table IV: 1.98 GHz).
pub fn dgemm() -> WorkloadTargets {
    WorkloadTargets {
        name: "DGEMM",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 1,
        ranks_per_node: 1,
        active_cores: 40,
        time_s: 160.0,
        iterations: 107,
        cpi: 0.45,
        gbs: 98.0,
        dc_power_w: 369.0,
        vpi: 1.0,
        comm_fraction: 0.0,
        mem_overlap: 0.85,
        uncore_lat_cycles: 5.0,
        hw_ufs_bias: -0.35,
        calib_uncore_ghz: 1.98,
        uncore_domains: 1,
    }
}

/// BT-MZ class C as the paper's Table I runs it: 160 MPI processes over
/// four nodes. Time and power are not reported in Table I; we use values
/// consistent with the class-D MPI run (documented estimate).
pub fn bt_mz_mpi_c() -> WorkloadTargets {
    WorkloadTargets {
        name: "BT-MZ.C (MPI)",
        class: AppClass::CpuBound,
        platform: Platform::Sd530,
        nodes: 4,
        ranks_per_node: 40,
        active_cores: 40,
        time_s: 200.0,
        iterations: 133,
        cpi: 0.38,
        gbs: 10.19,
        dc_power_w: 330.0,
        vpi: 0.04,
        comm_fraction: 0.06,
        mem_overlap: 0.6,
        uncore_lat_cycles: 28.0,
        hw_ufs_bias: 0.0,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// LU class D as Table I runs it: 2 processes on two nodes, 40 OpenMP
/// threads each — the memory-intensive motivation case. Time and power are
/// estimates (not in Table I).
pub fn lu_mpi_d() -> WorkloadTargets {
    WorkloadTargets {
        name: "LU.D (MPI)",
        class: AppClass::MemoryBound,
        platform: Platform::Sd530,
        nodes: 2,
        ranks_per_node: 1,
        active_cores: 40,
        time_s: 300.0,
        iterations: 200,
        cpi: 1.04,
        gbs: 75.93,
        dc_power_w: 345.0,
        vpi: 0.02,
        comm_fraction: 0.05,
        mem_overlap: 0.85,
        uncore_lat_cycles: 8.0,
        hw_ufs_bias: 0.2,
        calib_uncore_ghz: 2.4,
        uncore_domains: 1,
    }
}

/// BT class D offloaded with an active host feed, on a two-die part: 8
/// host cores stream staging buffers to the V100 through the uncore
/// domain fronting it (domain 0) while the second die is compute-idle.
/// Not a paper workload — the per-die extension's probe case: a single
/// uncore knob must keep both dies fast to protect the feed rate, a
/// per-domain policy can floor the idle die for free.
pub fn bt_cuda_d_offload() -> WorkloadTargets {
    WorkloadTargets {
        name: "BT.CUDA.D (offload)",
        class: AppClass::GpuOffload,
        platform: Platform::GpuNode,
        nodes: 1,
        ranks_per_node: 1,
        active_cores: 8,
        time_s: 465.0,
        iterations: 310,
        cpi: 0.62,
        gbs: 22.0,
        dc_power_w: 340.0,
        vpi: 0.0,
        // Kernel-synchronisation busy-wait between feed bursts.
        comm_fraction: 0.55,
        mem_overlap: 0.5,
        uncore_lat_cycles: 9.0,
        hw_ufs_bias: 0.22,
        calib_uncore_ghz: 2.4,
        uncore_domains: 2,
    }
}

/// All Table II kernels, in table order.
pub fn table2_kernels() -> Vec<WorkloadTargets> {
    vec![
        bt_mz_omp_c(),
        sp_mz_omp_c(),
        bt_cuda_d(),
        lu_cuda_d(),
        dgemm(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::calibrate;

    #[test]
    fn every_kernel_calibrates() {
        for k in table2_kernels() {
            calibrate(&k).unwrap_or_else(|e| panic!("{e}"));
        }
        calibrate(&bt_mz_mpi_c()).unwrap();
        calibrate(&lu_mpi_d()).unwrap();
    }

    #[test]
    fn gpu_offload_pins_its_feed_to_domain_zero() {
        let t = bt_cuda_d_offload();
        assert_eq!(t.uncore_domains, 2);
        let c = calibrate(&t).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(c.node_config.uncore_domains, 2);
        let frac = c.demand.domain_mem_frac.expect("feed must pin traffic");
        assert_eq!(frac[0], 1.0);
        assert_eq!(frac[1], 0.0);
        assert!(
            c.demand.gpu_power_w > 20.0,
            "accelerator draw {} implausibly small",
            c.demand.gpu_power_w
        );
        assert!(c.demand.instructions > 0.0 && c.demand.mem_bytes > 0.0);
    }

    #[test]
    fn kernel_iteration_times_are_policy_friendly() {
        // EARL computes signatures per iteration; iterations in the low
        // seconds keep the INM 1 s counter meaningful.
        for k in table2_kernels() {
            let t = k.iter_time_s();
            assert!((0.8..4.0).contains(&t), "{}: iter time {t}", k.name);
        }
    }

    #[test]
    fn cuda_kernels_use_one_core() {
        assert_eq!(bt_cuda_d().active_cores, 1);
        assert_eq!(lu_cuda_d().active_cores, 1);
        assert_eq!(bt_cuda_d().platform, Platform::GpuNode);
    }

    #[test]
    fn dgemm_is_pure_avx512() {
        let d = dgemm();
        assert_eq!(d.vpi, 1.0);
        assert!(d.calib_uncore_ghz < 2.4);
    }
}
