//! `earsim cluster`: thousands of in-process simulated daemons behind an
//! EARGM aggregation tree, every byte through the real codec.
//!
//! Production EAR runs one EARD per node with per-island EARGMs
//! aggregating upward; a single flat poller (PR 5's [`crate::poller`])
//! stops scaling long before thousands of nodes. This module builds the
//! hierarchical shape: [`SimCluster`] instantiates `--nodes` simulated
//! daemons — each a real [`EardService`] state machine fed through a
//! [`FrameBuffer`], exactly the readiness-loop server's receive path — and
//! a tree of aggregators (fan-in `--fanout`) whose levels exchange
//! *encoded* [`WireMsg::Report`] frames upward and distribute the power
//! budget downward with [`distribute_budget`], capping every daemon with a
//! real `Command`/`CapAck` exchange.
//!
//! The load driver is closed-loop per daemon and pipelined: it encodes a
//! batch of requests with [`codec::encode_frame_into`], feeds the bytes to
//! the daemon's frame buffer (periodically in adversarial split sizes, so
//! partial-frame reassembly is exercised at scale, not just in unit
//! tests), services every decoded frame, and verifies each reply frame.
//! Everything is in-process and kernel-free, so the aggregate throughput
//! measures the protocol stack itself — codec, buffering, state machine —
//! which is the quantity the ≥1M req/s roadmap target is about.

use crate::codec::{self, FrameBuffer, WireMsg};
use crate::loadgen::{nth_request, reply_matches};
use crate::server::{EardConfig, EardService};
use crate::stats;
use ear_core::powercap::distribute_budget;
use ear_core::protocol::GmReport;
use ear_errors::{EarError, EarResult};
use std::time::{Duration, Instant};

/// Cluster scenario knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Simulated daemons (one per node).
    pub nodes: usize,
    /// Children per aggregator (tree fan-in).
    pub fanout: usize,
    /// Worker threads driving load (defaults to available parallelism).
    pub shards: Option<usize>,
    /// How long to drive load.
    pub duration: Duration,
    /// How often the aggregation tree runs a full poll/cap round.
    pub poll_every: Duration,
    /// Requests pipelined per daemon per batch.
    pub batch: usize,
    /// Cluster power budget the root distributes (W); defaults to
    /// 200 W × nodes.
    pub budget_w: Option<f64>,
    /// Seed for the adversarial chunking pattern.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4096,
            fanout: 16,
            shards: None,
            duration: Duration::from_secs(10),
            poll_every: Duration::from_millis(100),
            batch: 32,
            budget_w: None,
            seed: 0xC1_057E2,
        }
    }
}

/// One simulated daemon: the pure service state machine behind the same
/// `FrameBuffer` receive path the readiness-loop server uses.
struct SimDaemon {
    service: EardService,
    inbuf: FrameBuffer,
    out: Vec<u8>,
    rng: u64,
    seq: u64,
    batches: u64,
    requests: u64,
    errors: u64,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl SimDaemon {
    fn new(node: u64, seed: u64) -> Self {
        SimDaemon {
            service: EardService::new(EardConfig {
                node,
                ceiling: None,
                idle_power_w: 120.0 + (node % 64) as f64,
            }),
            inbuf: FrameBuffer::new(),
            out: Vec::new(),
            rng: seed | 1,
            seq: 0,
            batches: 0,
            requests: 0,
            errors: 0,
        }
    }

    /// Decodes every complete buffered frame, services it and appends the
    /// encoded reply to `out`.
    fn service_buffered(&mut self) {
        loop {
            match self.inbuf.next_frame() {
                Ok(None) => break,
                Ok(Some(msg)) => {
                    let (reply, _) = self.service.respond(&msg);
                    if codec::encode_frame_into(&mut self.out, &reply).is_err() {
                        self.errors += 1;
                    }
                }
                Err(_) => {
                    // A decode error inside the in-process cluster means
                    // the codec or the driver is broken; count and stop.
                    self.errors += 1;
                    break;
                }
            }
        }
    }

    /// One request/reply exchange through encoded frames, used by the
    /// aggregation tree (poll and cap paths).
    fn exchange(&mut self, scratch: &mut Vec<u8>, msg: &WireMsg) -> EarResult<WireMsg> {
        scratch.clear();
        codec::encode_frame_into(scratch, msg)?;
        self.inbuf.push_bytes(scratch);
        self.service_buffered();
        let (reply, used) = codec::decode_frame(&self.out)?;
        if used != self.out.len() {
            return Err(EarError::Protocol(
                "daemon produced more than one reply frame".to_string(),
            ));
        }
        self.out.clear();
        Ok(reply)
    }

    /// Drives one pipelined batch of the loadgen request mix: encode
    /// `batch` frames, feed the bytes (every 16th batch in adversarial
    /// split sizes with interleaved drains), service, then decode and
    /// verify every reply.
    fn drive_batch(&mut self, scratch: &mut Vec<u8>, node: usize, batch: usize) {
        scratch.clear();
        let first = self.seq;
        for k in 0..batch as u64 {
            // The request mix only produces well-formed frames; an encode
            // failure cannot happen, but stay total.
            if codec::encode_frame_into(scratch, &nth_request(node, first + k)).is_err() {
                self.errors += 1;
            }
        }
        self.seq += batch as u64;
        self.batches += 1;
        if self.batches.is_multiple_of(16) {
            // Adversarial feed: odd-sized chunks with a drain between
            // each, so frames straddle push boundaries and the decoder's
            // incomplete-frame path runs at scale.
            let mut off = 0;
            while off < scratch.len() {
                let step = 1 + (xorshift(&mut self.rng) as usize) % 97;
                let end = (off + step).min(scratch.len());
                self.inbuf.push_bytes(&scratch[off..end]);
                self.service_buffered();
                off = end;
            }
        } else {
            self.inbuf.push_bytes(scratch);
            self.service_buffered();
        }
        // Verify replies straight from the output queue (complete frames
        // by construction).
        let mut pos = 0;
        let mut k = 0u64;
        while pos < self.out.len() {
            match codec::decode_frame(&self.out[pos..]) {
                Ok((reply, used)) => {
                    pos += used;
                    if reply_matches(&nth_request(node, first + k), &reply) {
                        self.requests += 1;
                    } else {
                        self.errors += 1;
                    }
                    k += 1;
                }
                Err(_) => {
                    self.errors += 1;
                    break;
                }
            }
        }
        self.out.clear();
    }
}

/// One aggregator node: children are a contiguous range of the level
/// below (daemons for level 0, aggregators for higher levels).
struct Agg {
    child_lo: usize,
    child_hi: usize,
    /// Power sum folded on the last upward pass (W).
    last_sum_w: f64,
    /// Per-child power sums from the last upward pass, reused for the
    /// downward budget split.
    child_w: Vec<f64>,
}

/// What one aggregation-tree round measured.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Cluster power folded at the root (W).
    pub cluster_power_w: f64,
    /// Caps pushed to daemons (one `Command`/`CapAck` per daemon).
    pub caps_pushed: u64,
    /// Reports folded per tree level, leaves first.
    pub level_reports: Vec<u64>,
}

/// What a full cluster run measured.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Simulated daemons.
    pub nodes: usize,
    /// Aggregator levels above the daemons.
    pub tree_depth: usize,
    /// Successful request/reply exchanges (load mix + tree traffic).
    pub requests: u64,
    /// Protocol or decode errors anywhere in the run.
    pub errors: u64,
    /// Aggregation-tree rounds completed.
    pub rounds: u64,
    /// Reports folded per tree level across all rounds, leaves first.
    pub level_reports: Vec<u64>,
    /// Caps pushed across all rounds.
    pub caps_pushed: u64,
    /// Cluster power at the last round's root fold (W).
    pub cluster_power_w: f64,
    /// Wall-clock duration of the run (s).
    pub seconds: f64,
}

impl ClusterReport {
    /// Successful requests per second, aggregate across the cluster.
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.requests as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Renders the human-readable summary `earsim cluster` prints.
    pub fn render(&self) -> String {
        format!(
            "cluster nodes {}  tree depth {}  rounds {}  caps {}  power {:.0} W\n\
             requests {}  errors {}  seconds {:.2}  throughput {:.0} req/s\n\
             level reports [{}]",
            self.nodes,
            self.tree_depth,
            self.rounds,
            self.caps_pushed,
            self.cluster_power_w,
            self.requests,
            self.errors,
            self.seconds,
            self.throughput(),
            self.level_reports
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
}

/// An in-process cluster: `nodes` simulated daemons under an EARGM
/// aggregation tree.
pub struct SimCluster {
    cfg: ClusterConfig,
    daemons: Vec<SimDaemon>,
    /// `levels[0]` are the leaf aggregators (children are daemons);
    /// `levels.last()` is the single root.
    levels: Vec<Vec<Agg>>,
    scratch: Vec<u8>,
}

impl SimCluster {
    /// Builds the daemons and the aggregation tree.
    pub fn new(cfg: ClusterConfig) -> EarResult<SimCluster> {
        if cfg.nodes == 0 {
            return Err(EarError::Protocol(
                "cluster needs at least one node".to_string(),
            ));
        }
        if cfg.fanout < 2 {
            return Err(EarError::Protocol(
                "cluster fan-out must be at least 2".to_string(),
            ));
        }
        if cfg.batch == 0 {
            return Err(EarError::Protocol(
                "cluster batch must be nonzero".to_string(),
            ));
        }
        let daemons: Vec<SimDaemon> = (0..cfg.nodes)
            .map(|n| SimDaemon::new(n as u64, cfg.seed.wrapping_add(n as u64)))
            .collect();
        // Build levels bottom-up until a single root remains.
        let mut levels: Vec<Vec<Agg>> = Vec::new();
        let mut below = cfg.nodes;
        loop {
            let count = below.div_ceil(cfg.fanout);
            let aggs = (0..count)
                .map(|i| {
                    let lo = i * cfg.fanout;
                    let hi = ((i + 1) * cfg.fanout).min(below);
                    Agg {
                        child_lo: lo,
                        child_hi: hi,
                        last_sum_w: 0.0,
                        child_w: vec![0.0; hi - lo],
                    }
                })
                .collect();
            levels.push(aggs);
            if count == 1 {
                break;
            }
            below = count;
        }
        stats::cluster_started(cfg.nodes as u64, levels.len() as u64);
        Ok(SimCluster {
            cfg,
            daemons,
            levels,
            scratch: Vec::new(),
        })
    }

    /// Aggregator levels above the daemons.
    pub fn tree_depth(&self) -> usize {
        self.levels.len()
    }

    /// Simulated daemons.
    pub fn nodes(&self) -> usize {
        self.daemons.len()
    }

    /// One full aggregation round: poll every daemon upward through the
    /// tree (encoded `Report` frames at every level), distribute the power
    /// budget downward, cap every daemon with a `Command`/`CapAck`
    /// exchange. Returns the round's fold; protocol errors are returned,
    /// never panicked.
    pub fn round(&mut self) -> EarResult<RoundReport> {
        let budget = self
            .cfg
            .budget_w
            .unwrap_or(200.0 * self.daemons.len() as f64);
        let mut level_reports = vec![0u64; self.levels.len()];

        // Upward: leaves poll daemons with a real PollPower exchange;
        // every higher level folds its children's *encoded* Report frames.
        let mut wire: Vec<Vec<u8>> = Vec::new();
        for (level, aggs) in self.levels.iter_mut().enumerate() {
            let mut next_wire: Vec<Vec<u8>> = Vec::with_capacity(aggs.len());
            for (agg_id, agg) in aggs.iter_mut().enumerate() {
                let mut sum = 0.0f64;
                for child in agg.child_lo..agg.child_hi {
                    let report = if level == 0 {
                        let d = &mut self.daemons[child];
                        match d.exchange(
                            &mut self.scratch,
                            &WireMsg::PollPower { node: child as u64 },
                        )? {
                            WireMsg::Report(r) if r.node == child => r,
                            other => {
                                return Err(EarError::Protocol(format!(
                                    "expected report from node {child}, got '{}'",
                                    other.kind()
                                )))
                            }
                        }
                    } else {
                        // Decode the child aggregator's frame from the
                        // previous level's wire buffers.
                        let child_frame = wire.get(child).ok_or_else(|| {
                            EarError::Protocol(format!(
                                "aggregation tree references missing child {child}"
                            ))
                        })?;
                        let (msg, used) = codec::decode_frame(child_frame)?;
                        if used != child_frame.len() {
                            return Err(EarError::Protocol(
                                "trailing bytes after aggregated report".to_string(),
                            ));
                        }
                        match msg {
                            WireMsg::Report(r) => r,
                            other => {
                                return Err(EarError::Protocol(format!(
                                    "expected aggregated report, got '{}'",
                                    other.kind()
                                )))
                            }
                        }
                    };
                    agg.child_w[child - agg.child_lo] = report.avg_power_w;
                    sum += report.avg_power_w;
                    level_reports[level] += 1;
                }
                agg.last_sum_w = sum;
                // Encode this aggregator's fold for its parent — the same
                // frame a networked per-island EARGM would send.
                let mut frame = Vec::with_capacity(codec::HEADER_LEN + 16);
                codec::encode_frame_into(
                    &mut frame,
                    &WireMsg::Report(GmReport {
                        node: agg_id,
                        avg_power_w: sum,
                    }),
                )?;
                next_wire.push(frame);
            }
            wire = next_wire;
        }
        let cluster_power_w = self.levels.last().map_or(0.0, |l| l[0].last_sum_w);

        // Downward: split the budget proportionally to each child's folded
        // power at every level, then cap daemons at the leaves.
        let mut caps_pushed = 0u64;
        let mut budgets = vec![budget];
        for level in (0..self.levels.len()).rev() {
            let mut child_budgets = Vec::new();
            for (agg, agg_budget) in self.levels[level].iter().zip(&budgets) {
                let split = distribute_budget(*agg_budget, &agg.child_w);
                if level == 0 {
                    for (child, cap_w) in (agg.child_lo..agg.child_hi).zip(&split) {
                        let d = &mut self.daemons[child];
                        let expected_cap = *cap_w;
                        let cmd = ear_core::protocol::GmCommand {
                            node: child,
                            cap_w: expected_cap,
                        };
                        match d.exchange(&mut self.scratch, &WireMsg::Command(cmd))? {
                            WireMsg::CapAck { node, cap_w: acked }
                                if node == child as u64
                                    && acked.to_bits() == expected_cap.to_bits() =>
                            {
                                caps_pushed += 1;
                            }
                            other => {
                                return Err(EarError::Protocol(format!(
                                    "expected cap_ack from node {child}, got '{}'",
                                    other.kind()
                                )))
                            }
                        }
                    }
                } else {
                    child_budgets.extend(split);
                }
            }
            budgets = child_budgets;
        }

        for (level, n) in level_reports.iter().enumerate() {
            stats::level_reports(level, *n);
        }
        Ok(RoundReport {
            cluster_power_w,
            caps_pushed,
            level_reports,
        })
    }

    /// Runs the full scenario: shard the daemons over worker threads and
    /// drive the pipelined load mix, interleaving a tree round every
    /// `poll_every`, until `duration` elapses.
    pub fn run(&mut self) -> EarResult<ClusterReport> {
        let shards = self
            .cfg
            .shards
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .max(1);
        let batch = self.cfg.batch;
        let started = Instant::now();
        let deadline = started + self.cfg.duration;
        let mut rounds = 0u64;
        let mut caps_pushed = 0u64;
        let mut cluster_power_w = 0.0f64;
        let mut level_reports = vec![0u64; self.levels.len()];
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let slice_end = (now + self.cfg.poll_every).min(deadline);
            let chunk = self.daemons.len().div_ceil(shards);
            std::thread::scope(|s| {
                for (shard, daemons) in self.daemons.chunks_mut(chunk).enumerate() {
                    s.spawn(move || {
                        let mut scratch = Vec::new();
                        let base = shard * chunk;
                        // Round-robin the shard's daemons in pipelined
                        // batches until the slice ends.
                        'outer: loop {
                            for (i, d) in daemons.iter_mut().enumerate() {
                                d.drive_batch(&mut scratch, base + i, batch);
                                if Instant::now() >= slice_end {
                                    break 'outer;
                                }
                            }
                        }
                    });
                }
            });
            let round = self.round()?;
            rounds += 1;
            caps_pushed += round.caps_pushed;
            cluster_power_w = round.cluster_power_w;
            for (have, got) in level_reports.iter_mut().zip(&round.level_reports) {
                *have += got;
            }
        }
        let seconds = started.elapsed().as_secs_f64();
        let mut requests = 0u64;
        let mut errors = 0u64;
        for d in &self.daemons {
            requests += d.requests;
            errors += d.errors;
        }
        // Tree traffic is protocol traffic too: one PollPower and one
        // Command exchange per daemon per round.
        requests += caps_pushed + level_reports.first().copied().unwrap_or(0);
        // Fold into the process-wide counters so the `earsim-telemetry`
        // summary line reflects the cluster run.
        stats::requests_served_bulk(requests);
        stats::decode_errors_bulk(errors);
        Ok(ClusterReport {
            nodes: self.daemons.len(),
            tree_depth: self.levels.len(),
            requests,
            errors,
            rounds,
            level_reports,
            caps_pushed,
            cluster_power_w,
            seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            fanout: 4,
            shards: Some(2),
            duration: Duration::from_millis(200),
            poll_every: Duration::from_millis(50),
            batch: 8,
            budget_w: Some(1000.0),
            seed: 7,
        }
    }

    #[test]
    fn tree_shape_matches_fanout() {
        let c = SimCluster::new(small_cfg(64)).expect("cluster");
        // 64 daemons, fan-in 4: 16 leaves, 4 mid, 1 root.
        assert_eq!(c.tree_depth(), 3);
        assert_eq!(c.levels[0].len(), 16);
        assert_eq!(c.levels[1].len(), 4);
        assert_eq!(c.levels[2].len(), 1);
    }

    #[test]
    fn a_round_folds_every_daemon_and_caps_them_all() {
        let mut c = SimCluster::new(small_cfg(64)).expect("cluster");
        let r = c.round().expect("round");
        // Idle daemons report 120 + node%64 W.
        let expected: f64 = (0..64).map(|n| 120.0 + (n % 64) as f64).sum();
        assert!((r.cluster_power_w - expected).abs() < 1e-6);
        assert_eq!(r.caps_pushed, 64);
        assert_eq!(r.level_reports, vec![64, 16, 4]);
        // Caps landed on the daemons: each now holds one.
        assert!(c.daemons.iter().all(|d| d.service.cap_w().is_some()));
    }

    #[test]
    fn caps_sum_to_the_budget() {
        let mut c = SimCluster::new(small_cfg(64)).expect("cluster");
        c.round().expect("round");
        let total: f64 = c
            .daemons
            .iter()
            .map(|d| d.service.cap_w().unwrap_or(0.0))
            .sum();
        assert!(
            (total - 1000.0).abs() < 1e-6,
            "caps sum {total}, budget 1000"
        );
    }

    #[test]
    fn a_short_run_serves_load_with_zero_errors() {
        let mut c = SimCluster::new(small_cfg(32)).expect("cluster");
        let report = c.run().expect("run");
        assert_eq!(report.errors, 0, "in-process cluster must be error-free");
        assert!(report.requests > 0);
        assert!(report.rounds >= 1);
        assert_eq!(report.nodes, 32);
    }

    #[test]
    fn uneven_node_counts_build_a_complete_tree() {
        let mut c = SimCluster::new(ClusterConfig {
            nodes: 37,
            fanout: 4,
            ..small_cfg(37)
        })
        .expect("cluster");
        // 37 → 10 leaves → 3 → 1.
        assert_eq!(c.tree_depth(), 3);
        let r = c.round().expect("round");
        assert_eq!(r.caps_pushed, 37);
        assert_eq!(r.level_reports[0], 37);
    }
}
