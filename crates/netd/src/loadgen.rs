//! Closed-loop load generator for the networked daemon.
//!
//! `earsim loadgen` drives a daemon with `K` concurrent clients, each in a
//! closed loop (next request only after the previous reply), cycling a
//! deterministic mix of protocol requests. Latency is recorded into a
//! fixed-bucket power-of-two histogram — no per-request allocation, exact
//! counts, approximate quantiles with one-bucket resolution — and the
//! report carries throughput plus exact min/max and p50/p95/p99.
//!
//! Throughput is measured over the *active* window: each client subtracts
//! the time it spent connecting, redialing after drops and sleeping retry
//! backoffs ([`crate::client::NetClient::overhead_nanos`]) from its wall
//! clock, so the number characterises the service, not the dialing.

use crate::client::{ClientConfig, NetClient};
use crate::codec::WireMsg;
use crate::conn::Endpoint;
pub use crate::stats::{LatencyHistogram, BUCKETS};
use ear_core::policy::NodeFreqs;
use ear_core::protocol::EarlRequest;
use ear_core::Signature;
use ear_errors::{EarError, EarResult};
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// How long to drive load.
    pub duration: Duration,
    /// Per-client connection/retry configuration.
    pub client: ClientConfig,
    /// Send the shutdown poison frame once the run completes.
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 8,
            duration: Duration::from_secs(2),
            client: ClientConfig::default(),
            shutdown_after: false,
        }
    }
}

/// What a load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Successful request/reply exchanges.
    pub requests: u64,
    /// Failed exchanges (after client retries).
    pub errors: u64,
    /// Wall-clock duration of the drive phase (s).
    pub seconds: f64,
    /// Mean per-client measurement window (s): wall clock minus the time
    /// that client spent connecting, redialing and backing off.
    pub active_seconds: f64,
    /// Total connect/redial/backoff time summed across clients (s).
    pub overhead_seconds: f64,
    /// Latency distribution of successful exchanges.
    pub histogram: LatencyHistogram,
}

impl LoadReport {
    /// Successful requests per second, over the active (dial-excluded)
    /// window when it is meaningful, else over the wall clock.
    pub fn throughput(&self) -> f64 {
        let window = if self.active_seconds > 0.0 {
            self.active_seconds
        } else {
            self.seconds
        };
        if window > 0.0 {
            self.requests as f64 / window
        } else {
            0.0
        }
    }

    /// Renders the human-readable summary `earsim loadgen` prints.
    pub fn render(&self) -> String {
        let us = |ns: u64| ns as f64 / 1000.0;
        format!(
            "requests {}  errors {}  seconds {:.2}  active {:.2}  overhead {:.3}  throughput {:.0} req/s\n\
             latency min {:.1} us  p50 {:.1} us  p95 {:.1} us  p99 {:.1} us  max {:.1} us",
            self.requests,
            self.errors,
            self.seconds,
            self.active_seconds,
            self.overhead_seconds,
            self.throughput(),
            us(self.histogram.min()),
            us(self.histogram.quantile(0.50)),
            us(self.histogram.quantile(0.95)),
            us(self.histogram.quantile(0.99)),
            us(self.histogram.max()),
        )
    }
}

/// The deterministic request mix: client `client_id`'s `i`-th request.
/// Cycles ping → set_freqs → report_signature → poll_power so every server
/// path is exercised.
pub fn nth_request(client_id: usize, i: u64) -> WireMsg {
    match i % 4 {
        0 => WireMsg::Ping {
            token: (client_id as u64) << 32 | i,
        },
        1 => WireMsg::Request(EarlRequest::SetFreqs(NodeFreqs {
            cpu: (i % 4) as usize,
            imc_min_ratio: 12,
            imc_max_ratio: 18 + (i % 7) as u8,
            imc_dom: ear_core::DomainLimits::LEGACY,
        })),
        2 => WireMsg::Request(EarlRequest::ReportSignature(Signature {
            iterations: (i % 100) as u32 + 1,
            window_s: 10.0,
            cpi: 0.8 + (i % 10) as f64 / 100.0,
            tpi: 1.5,
            gbs: 80.0,
            vpi: 0.05,
            dc_power_w: 250.0 + (client_id % 16) as f64,
            pkg_power_w: 180.0,
            avg_cpu_khz: 2_400_000.0,
            avg_imc_khz: 2_000_000.0,
            ..Signature::default()
        })),
        _ => WireMsg::PollPower {
            node: client_id as u64,
        },
    }
}

pub(crate) fn reply_matches(request: &WireMsg, reply: &WireMsg) -> bool {
    matches!(
        (request, reply),
        (WireMsg::Ping { .. }, WireMsg::Pong { .. })
            | (
                WireMsg::Request(EarlRequest::SetFreqs(_)),
                WireMsg::Reply(_)
            )
            | (
                WireMsg::Request(EarlRequest::ReportSignature(_)),
                WireMsg::SigAck { .. }
            )
            | (WireMsg::PollPower { .. }, WireMsg::Report(_))
    )
}

/// Runs the closed-loop load generator against `endpoint`.
pub fn run(endpoint: &Endpoint, cfg: &LoadgenConfig) -> EarResult<LoadReport> {
    if cfg.clients == 0 {
        return Err(EarError::Protocol(
            "loadgen needs at least one client".to_string(),
        ));
    }
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let mut merged = LatencyHistogram::new();
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut active_ns_total = 0u64;
    let mut overhead_ns_total = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.clients);
        for client_id in 0..cfg.clients {
            let endpoint = endpoint.clone();
            let mut client_cfg = cfg.client.clone();
            client_cfg.seed = client_cfg
                .seed
                .wrapping_add(0xA076_1D64_78BD_642Fu64.wrapping_mul(client_id as u64 + 1));
            handles.push(s.spawn(move || {
                let spawned = Instant::now();
                let mut client = NetClient::new(endpoint, client_cfg);
                let mut hist = LatencyHistogram::new();
                let (mut ok, mut err) = (0u64, 0u64);
                let mut i = 0u64;
                while Instant::now() < deadline {
                    let msg = nth_request(client_id, i);
                    let sent = Instant::now();
                    match client.request_with_retry(&msg) {
                        Ok(reply) if reply_matches(&msg, &reply) => {
                            hist.record(sent.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                            ok += 1;
                        }
                        _ => err += 1,
                    }
                    i += 1;
                }
                let wall_ns = spawned.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                let overhead_ns = client.overhead_nanos();
                (
                    ok,
                    err,
                    hist,
                    wall_ns.saturating_sub(overhead_ns),
                    overhead_ns,
                )
            }));
        }
        for h in handles {
            if let Ok((ok, err, hist, active_ns, overhead_ns)) = h.join() {
                requests += ok;
                errors += err;
                merged.merge(&hist);
                active_ns_total += active_ns;
                overhead_ns_total += overhead_ns;
            } else {
                errors += 1;
            }
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    if cfg.shutdown_after {
        let mut client = NetClient::new(endpoint.clone(), cfg.client.clone());
        client.shutdown()?;
    }
    Ok(LoadReport {
        requests,
        errors,
        seconds,
        active_seconds: active_ns_total as f64 / 1e9 / cfg.clients as f64,
        overhead_seconds: overhead_ns_total as f64 / 1e9,
        histogram: merged,
    })
}
