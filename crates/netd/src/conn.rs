//! Transport-agnostic connections and listeners.
//!
//! The daemon serves — and the client library dials — three transports
//! behind one pair of enums: Unix-domain sockets (the production node-local
//! path), TCP (cross-node EARGM traffic) and the in-memory [`crate::pipe`](mod@crate::pipe)
//! (deterministic tests, transport-floor benchmarks). `earsim serve
//! --socket` strings map to the first two: an address containing `:` is
//! TCP, anything else is a Unix socket path.

use crate::codec::{self, WireMsg};
use crate::pipe::{MemConnector, MemListener, PipeEnd};
use ear_errors::{EarError, EarResult};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon lives, from a client's point of view.
#[derive(Clone)]
pub enum Endpoint {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// In-memory transport (tests, benchmarks).
    Mem(MemConnector),
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Mem(_) => write!(f, "mem"),
        }
    }
}

impl Endpoint {
    /// Parses a `--socket` string: `host:port` when it contains a colon,
    /// else a Unix socket path.
    pub fn parse(spec: &str) -> Endpoint {
        if spec.contains(':') {
            Endpoint::Tcp(spec.to_string())
        } else {
            Endpoint::Unix(PathBuf::from(spec))
        }
    }

    /// Opens a connection with a connect deadline (best-effort for Unix
    /// sockets, which connect locally and have no timed variant in std).
    pub fn connect(&self, timeout: Duration) -> EarResult<NetConn> {
        match self {
            Endpoint::Tcp(addr) => {
                use std::net::ToSocketAddrs;
                let mut last = EarError::Io {
                    path: format!("tcp:{addr}"),
                    message: "address resolved to nothing".into(),
                };
                let addrs = addr
                    .to_socket_addrs()
                    .map_err(|e| codec::io_to_ear(&format!("resolve {addr}"), &e))?;
                for a in addrs {
                    match TcpStream::connect_timeout(&a, timeout) {
                        Ok(s) => {
                            let _ = s.set_nodelay(true);
                            return Ok(NetConn::Tcp(s));
                        }
                        Err(e) => last = codec::io_to_ear(&format!("connect {a}"), &e),
                    }
                }
                Err(last)
            }
            Endpoint::Unix(path) => UnixStream::connect(path)
                .map(NetConn::Unix)
                .map_err(|e| codec::io_to_ear(&format!("connect {}", path.display()), &e)),
            Endpoint::Mem(connector) => connector
                .connect()
                .map(NetConn::Mem)
                .map_err(|e| codec::io_to_ear("connect mem", &e)),
        }
    }
}

/// A listening socket in any transport.
pub enum NetListener {
    /// TCP listener (non-blocking; polled by [`NetListener::accept_timeout`]).
    Tcp(TcpListener),
    /// Unix-domain listener (non-blocking).
    Unix(UnixListener, PathBuf),
    /// In-memory listener.
    Mem(MemListener),
}

impl NetListener {
    /// Binds the endpoint described by a `--socket` string.
    pub fn bind(spec: &str) -> EarResult<NetListener> {
        if spec.contains(':') {
            let l = TcpListener::bind(spec)
                .map_err(|e| codec::io_to_ear(&format!("bind tcp {spec}"), &e))?;
            l.set_nonblocking(true)
                .map_err(|e| codec::io_to_ear("set_nonblocking", &e))?;
            Ok(NetListener::Tcp(l))
        } else {
            let path = PathBuf::from(spec);
            // A previous unclean exit leaves the socket file behind; a
            // stale file would make bind fail forever.
            let _ = std::fs::remove_file(&path);
            let l = UnixListener::bind(&path)
                .map_err(|e| codec::io_to_ear(&format!("bind unix {spec}"), &e))?;
            l.set_nonblocking(true)
                .map_err(|e| codec::io_to_ear("set_nonblocking", &e))?;
            Ok(NetListener::Unix(l, path))
        }
    }

    /// Creates an in-memory listener plus the endpoint clients dial.
    pub fn in_memory() -> (NetListener, Endpoint) {
        let (listener, connector) = crate::pipe::mem_channel();
        (NetListener::Mem(listener), Endpoint::Mem(connector))
    }

    /// A printable description of where this listener listens.
    pub fn describe(&self) -> String {
        match self {
            NetListener::Tcp(l) => l
                .local_addr()
                .map_or_else(|_| "tcp:?".into(), |a| format!("tcp:{a}")),
            NetListener::Unix(_, path) => format!("unix:{}", path.display()),
            NetListener::Mem(_) => "mem".into(),
        }
    }

    /// The pollable descriptor of a socket listener (`None` for the
    /// in-memory transport, which the readiness loop services by
    /// nonblocking accept instead).
    pub fn raw_fd(&self) -> Option<RawFd> {
        match self {
            NetListener::Tcp(l) => Some(l.as_raw_fd()),
            NetListener::Unix(l, _) => Some(l.as_raw_fd()),
            NetListener::Mem(_) => None,
        }
    }

    /// Accepts one pending connection without blocking; `Ok(None)` when
    /// none is queued. Unlike [`NetListener::accept_timeout`] the returned
    /// connection is left in nonblocking mode — the readiness loop owns
    /// its scheduling from here on.
    pub fn accept_nonblocking(&self) -> EarResult<Option<NetConn>> {
        let got = match self {
            NetListener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    let _ = s.set_nodelay(true);
                    Ok(Some(NetConn::Tcp(s)))
                }
                Err(e) => Err(e),
            },
            NetListener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Ok(Some(NetConn::Unix(s))),
                Err(e) => Err(e),
            },
            NetListener::Mem(l) => match l.accept_timeout(Duration::ZERO) {
                Ok(conn) => Ok(conn.map(NetConn::Mem)),
                Err(e) => Err(e),
            },
        };
        match got {
            Ok(Some(mut conn)) => {
                conn.set_nonblocking()?;
                Ok(Some(conn))
            }
            Ok(None) => Ok(None),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(codec::io_to_ear("accept", &e)),
        }
    }

    /// Waits up to `timeout` for one connection; `Ok(None)` on timeout.
    /// Socket transports poll in small slices so a shutdown flag checked
    /// between calls stays responsive.
    pub fn accept_timeout(&self, timeout: Duration) -> EarResult<Option<NetConn>> {
        match self {
            NetListener::Mem(l) => match l.accept_timeout(timeout) {
                Ok(conn) => Ok(conn.map(NetConn::Mem)),
                Err(e) => Err(codec::io_to_ear("accept mem", &e)),
            },
            _ => {
                let deadline = std::time::Instant::now() + timeout;
                loop {
                    let got = match self {
                        NetListener::Tcp(l) => l.accept().map(|(s, _)| {
                            let _ = s.set_nodelay(true);
                            NetConn::Tcp(s)
                        }),
                        NetListener::Unix(l, _) => l.accept().map(|(s, _)| NetConn::Unix(s)),
                        NetListener::Mem(_) => unreachable!("handled above"),
                    };
                    match got {
                        Ok(conn) => {
                            conn.set_blocking()?;
                            return Ok(Some(conn));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            if std::time::Instant::now() >= deadline {
                                return Ok(None);
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(codec::io_to_ear("accept", &e)),
                    }
                }
            }
        }
    }
}

impl Drop for NetListener {
    fn drop(&mut self) {
        if let NetListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One established connection in any transport.
pub enum NetConn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
    /// In-memory pipe end.
    Mem(PipeEnd),
}

impl NetConn {
    /// Applies per-connection read/write deadlines. The in-memory pipe
    /// never blocks on write (unbounded buffer), so only its read deadline
    /// is real.
    pub fn set_io_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> EarResult<()> {
        let apply = |r: io::Result<()>| r.map_err(|e| codec::io_to_ear("set timeout", &e));
        match self {
            NetConn::Tcp(s) => {
                apply(s.set_read_timeout(read))?;
                apply(s.set_write_timeout(write))
            }
            NetConn::Unix(s) => {
                apply(s.set_read_timeout(read))?;
                apply(s.set_write_timeout(write))
            }
            NetConn::Mem(p) => {
                p.set_read_timeout(read);
                Ok(())
            }
        }
    }

    fn set_blocking(&self) -> EarResult<()> {
        let r = match self {
            NetConn::Tcp(s) => s.set_nonblocking(false),
            NetConn::Unix(s) => s.set_nonblocking(false),
            NetConn::Mem(_) => Ok(()),
        };
        r.map_err(|e| codec::io_to_ear("set_blocking", &e))
    }

    /// Puts the connection in nonblocking mode: reads and writes return
    /// `WouldBlock` (sockets) / `TimedOut` (the in-memory pipe, via a zero
    /// read deadline) instead of parking the thread.
    pub fn set_nonblocking(&mut self) -> EarResult<()> {
        let r = match self {
            NetConn::Tcp(s) => s.set_nonblocking(true),
            NetConn::Unix(s) => s.set_nonblocking(true),
            NetConn::Mem(p) => {
                p.set_read_timeout(Some(Duration::ZERO));
                Ok(())
            }
        };
        r.map_err(|e| codec::io_to_ear("set_nonblocking", &e))
    }

    /// The pollable descriptor (`None` for the in-memory pipe; the
    /// readiness loop services those by nonblocking reads every
    /// iteration instead of registering them with the kernel).
    pub fn raw_fd(&self) -> Option<RawFd> {
        match self {
            NetConn::Tcp(s) => Some(s.as_raw_fd()),
            NetConn::Unix(s) => Some(s.as_raw_fd()),
            NetConn::Mem(_) => None,
        }
    }

    /// Reads one frame (see [`codec::read_frame`]).
    pub fn read_msg(&mut self) -> EarResult<Option<WireMsg>> {
        codec::read_frame(self)
    }

    /// Writes one frame (see [`codec::write_frame`]).
    pub fn write_msg(&mut self, msg: &WireMsg) -> EarResult<()> {
        codec::write_frame(self, msg)
    }
}

impl Read for NetConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetConn::Tcp(s) => s.read(buf),
            NetConn::Unix(s) => s.read(buf),
            NetConn::Mem(p) => p.read(buf),
        }
    }
}

impl Write for NetConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetConn::Tcp(s) => s.write(buf),
            NetConn::Unix(s) => s.write(buf),
            NetConn::Mem(p) => p.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetConn::Tcp(s) => s.flush(),
            NetConn::Unix(s) => s.flush(),
            NetConn::Mem(p) => p.flush(),
        }
    }
}
