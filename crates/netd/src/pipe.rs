//! In-memory byte-stream transport.
//!
//! A [`pipe`] is a pair of connected [`PipeEnd`]s with real stream
//! semantics — buffered bytes, EOF on peer drop, read deadlines — but no
//! kernel in the path, so every server and client code path is exercisable
//! deterministically in unit tests (and the same request stream replayed
//! over a pipe must produce byte-identical replies to a socket run).
//!
//! [`MemListener`]/[`MemConnector`] wrap the pipe into the accept/connect
//! shape of a socket listener so the server loop is transport-agnostic.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

#[derive(Default)]
struct Half {
    buf: VecDeque<u8>,
    closed: bool,
}

type Shared = Arc<(Mutex<Half>, Condvar)>;

fn lock(half: &Shared) -> std::sync::MutexGuard<'_, Half> {
    half.0.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One end of an in-memory duplex byte stream.
pub struct PipeEnd {
    rx: Shared,
    tx: Shared,
    read_timeout: Option<Duration>,
}

/// Creates a connected pair of stream ends. Dropping either end closes its
/// transmit half: the peer reads the remaining buffered bytes, then EOF.
pub fn pipe() -> (PipeEnd, PipeEnd) {
    let a: Shared = Arc::default();
    let b: Shared = Arc::default();
    (
        PipeEnd {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
            read_timeout: None,
        },
        PipeEnd {
            rx: b,
            tx: a,
            read_timeout: None,
        },
    )
}

impl PipeEnd {
    /// Sets the read deadline (`None` blocks indefinitely), mirroring
    /// `TcpStream::set_read_timeout`.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }
}

impl Read for PipeEnd {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        let (mutex, cond) = (&self.rx.0, &self.rx.1);
        let mut half = mutex.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !half.buf.is_empty() {
                let n = out.len().min(half.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = half.buf.pop_front().unwrap_or(0);
                }
                return Ok(n);
            }
            if half.closed {
                return Ok(0);
            }
            half = match deadline {
                None => cond.wait(half).unwrap_or_else(PoisonError::into_inner),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "pipe read deadline exceeded",
                        ));
                    }
                    cond.wait_timeout(half, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
            };
        }
    }
}

impl Write for PipeEnd {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let mut half = lock(&self.tx);
        if half.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the pipe",
            ));
        }
        half.buf.extend(bytes.iter().copied());
        self.tx.1.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        lock(&self.tx).closed = true;
        self.tx.1.notify_all();
        // Wake any reader of our rx half too (a blocked reader on a
        // dropped end would otherwise wait forever).
        lock(&self.rx).closed = true;
        self.rx.1.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Listener / connector
// ---------------------------------------------------------------------------

#[derive(Default)]
struct HubState {
    pending: VecDeque<PipeEnd>,
    closed: bool,
}

type Hub = Arc<(Mutex<HubState>, Condvar)>;

/// The accept side of the in-memory transport.
pub struct MemListener {
    hub: Hub,
}

/// The connect side of the in-memory transport (cheap to clone; hand one
/// to every client).
#[derive(Clone)]
pub struct MemConnector {
    hub: Hub,
}

/// Creates an in-memory listener and its connector.
pub fn mem_channel() -> (MemListener, MemConnector) {
    let hub: Hub = Arc::default();
    (
        MemListener {
            hub: Arc::clone(&hub),
        },
        MemConnector { hub },
    )
}

impl MemListener {
    /// Waits up to `timeout` for a pending connection. `Ok(None)` on
    /// timeout; `Err` once the listener is closed and drained.
    pub fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<PipeEnd>> {
        let deadline = Instant::now() + timeout;
        let (mutex, cond) = (&self.hub.0, &self.hub.1);
        let mut st = mutex.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(end) = st.pending.pop_front() {
                return Ok(Some(end));
            }
            if st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "in-memory listener closed",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            st = cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

impl Drop for MemListener {
    fn drop(&mut self) {
        self.hub
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.hub.1.notify_all();
    }
}

impl MemConnector {
    /// Connects, returning the client end of a fresh pipe. Fails once the
    /// listener has gone away.
    pub fn connect(&self) -> io::Result<PipeEnd> {
        let (client, server) = pipe();
        let mut st = self.hub.0.lock().unwrap_or_else(PoisonError::into_inner);
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "in-memory listener closed",
            ));
        }
        st.pending.push_back(server);
        self.hub.1.notify_all();
        Ok(client)
    }
}
