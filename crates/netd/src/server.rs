//! The EARD service loop: a deterministic request state machine behind a
//! bounded, deadline-guarded connection server.
//!
//! [`EardService`] is the pure part — one wire message in, one wire message
//! out, no clocks and no I/O — so the same request stream produces
//! byte-identical replies whether it arrives over a Unix socket, TCP or the
//! in-memory pipe. Two transports wrap it with identical protocol
//! semantics: the original blocking server ([`run`]; thread per connection
//! on a bounded pool, kept as the timed reference for the `netd_async_rtt`
//! bench) and the nonblocking readiness-loop server ([`run_async`]; one
//! thread, `poll(2)`-driven, per-connection state machines with zero-copy
//! frame decode and batched reply flushes). Both accept connections on any
//! [`NetListener`], answer [`WireMsg::Error`] and close when saturated,
//! apply per-connection read/write deadlines, and exit cleanly on the
//! [`WireMsg::Shutdown`] poison frame or an optional wall-clock budget. A
//! client dying mid-frame degrades to a typed, counted, traced error on
//! that one connection — never a server crash.

use crate::codec::{self, FrameBuffer, WireMsg};
use crate::conn::{NetConn, NetListener};
use crate::readiness::{self, PollFd, POLLIN, POLLOUT};
use crate::stats;
use ear_core::policy::NodeFreqs;
use ear_core::protocol::{DaemonReply, EarlRequest, GmReport};
use ear_errors::EarResult;
use ear_trace::{self as trace, TraceEvent, TraceRecord};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Daemon behaviour knobs (the deterministic part).
#[derive(Debug, Clone)]
pub struct EardConfig {
    /// Node index stamped on reports and trace records.
    pub node: u64,
    /// Administrative frequency ceiling `SetFreqs` requests are clamped
    /// against (`None`: requests are granted verbatim, as
    /// `EarDaemon::new` does).
    pub ceiling: Option<NodeFreqs>,
    /// Power reported to EARGM before any signature has arrived (W).
    pub idle_power_w: f64,
}

impl Default for EardConfig {
    fn default() -> Self {
        EardConfig {
            node: 0,
            ceiling: None,
            idle_power_w: 120.0,
        }
    }
}

/// The deterministic request→reply state machine of one networked daemon.
///
/// Mirrors the clamp semantics of `ear_core::eard::EarDaemon::service`: a
/// faster CPU pstate is a *smaller* index, so the granted pstate is
/// `max(requested, ceiling)` and both IMC ratios are bounded by the
/// ceiling's `imc_max_ratio`.
#[derive(Debug)]
pub struct EardService {
    cfg: EardConfig,
    programmed: Option<NodeFreqs>,
    signatures: u64,
    last_sig_power_w: Option<f64>,
    cap_w: Option<f64>,
}

impl EardService {
    /// Creates a service with the given behaviour.
    pub fn new(cfg: EardConfig) -> Self {
        EardService {
            cfg,
            programmed: None,
            signatures: 0,
            last_sig_power_w: None,
            cap_w: None,
        }
    }

    /// The frequencies last granted (what the MSRs would hold).
    pub fn programmed(&self) -> Option<NodeFreqs> {
        self.programmed
    }

    /// Signatures recorded so far.
    pub fn signatures(&self) -> u64 {
        self.signatures
    }

    /// The cap last pushed by EARGM (W).
    pub fn cap_w(&self) -> Option<f64> {
        self.cap_w
    }

    /// The power this daemon reports when polled (W): the last signature's
    /// DC power, or the configured idle power before any signature.
    pub fn reported_power_w(&self) -> f64 {
        self.last_sig_power_w.unwrap_or(self.cfg.idle_power_w)
    }

    /// Services one request. Returns the reply frame and whether the
    /// request was the shutdown poison frame.
    pub fn respond(&mut self, msg: &WireMsg) -> (WireMsg, bool) {
        match msg {
            WireMsg::Ping { token } => (WireMsg::Pong { token: *token }, false),
            WireMsg::Request(EarlRequest::SetFreqs(requested)) => {
                let granted = match self.cfg.ceiling {
                    Some(ceiling) => requested.clamped_under(&ceiling),
                    None => *requested,
                };
                self.programmed = Some(granted);
                (
                    WireMsg::Reply(DaemonReply::FreqsApplied {
                        requested: *requested,
                        granted,
                        clamped: granted != *requested,
                    }),
                    false,
                )
            }
            WireMsg::Request(EarlRequest::ReportSignature(sig)) => {
                self.signatures += 1;
                self.last_sig_power_w = Some(sig.dc_power_w);
                (
                    WireMsg::SigAck {
                        count: self.signatures,
                    },
                    false,
                )
            }
            WireMsg::PollPower { .. } => (
                WireMsg::Report(GmReport {
                    node: self.cfg.node as usize,
                    avg_power_w: self.reported_power_w(),
                }),
                false,
            ),
            WireMsg::Command(cmd) => {
                self.cap_w = Some(cmd.cap_w);
                (
                    WireMsg::CapAck {
                        node: cmd.node as u64,
                        cap_w: cmd.cap_w,
                    },
                    false,
                )
            }
            WireMsg::Shutdown => (WireMsg::ShutdownAck, true),
            other => (
                WireMsg::Error {
                    message: format!("unexpected frame '{}' at the daemon", other.kind()),
                },
                false,
            ),
        }
    }
}

/// Server transport knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Daemon behaviour.
    pub eard: EardConfig,
    /// Maximum concurrent connections; further connects are answered with
    /// an error frame and closed.
    pub workers: usize,
    /// Per-connection read deadline (idle connections are collected).
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Optional wall-clock budget; the server drains and exits when it
    /// elapses (so an orphaned `earsim serve` cannot run forever in CI).
    pub max_seconds: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            eard: EardConfig::default(),
            workers: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_seconds: None,
        }
    }
}

/// What a server run did, reported after it exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections rejected for saturation.
    pub rejected: u64,
    /// Requests serviced.
    pub requests: u64,
    /// Connections that ended in a protocol/decode error.
    pub conn_errors: u64,
    /// Whether exit was triggered by the shutdown poison frame (as
    /// opposed to the wall-clock budget).
    pub shutdown_requested: bool,
}

struct ServerShared {
    service: Mutex<EardService>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    requests: AtomicU64,
    conn_errors: AtomicU64,
}

fn lock_service(shared: &ServerShared) -> std::sync::MutexGuard<'_, EardService> {
    shared
        .service
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn emit_conn(node: u64, action: &str) {
    trace::emit_with(|| TraceRecord {
        time_s: 0.0,
        node,
        event: TraceEvent::NetConn {
            action: action.to_string(),
        },
    });
}

fn handle_conn(shared: &ServerShared, mut conn: NetConn) {
    let node = shared.cfg.eard.node;
    if conn
        .set_io_timeouts(
            Some(shared.cfg.read_timeout),
            Some(shared.cfg.write_timeout),
        )
        .is_err()
    {
        emit_conn(node, "error");
        return;
    }
    loop {
        match conn.read_msg() {
            Ok(None) => {
                emit_conn(node, "closed");
                break;
            }
            Ok(Some(msg)) => {
                let (reply, shutdown) = lock_service(shared).respond(&msg);
                let ok = !matches!(reply, WireMsg::Error { .. });
                shared.requests.fetch_add(1, Ordering::Relaxed);
                stats::request_served();
                let req = msg.kind();
                trace::emit_with(|| TraceRecord {
                    time_s: 0.0,
                    node,
                    event: TraceEvent::NetRequest {
                        req: req.to_string(),
                        ok,
                    },
                });
                let write = conn.write_msg(&reply);
                if shutdown {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
                if write.is_err() {
                    shared.conn_errors.fetch_add(1, Ordering::Relaxed);
                    emit_conn(node, "error");
                    break;
                }
            }
            Err(e) => {
                // An idle connection hitting its read deadline is
                // collected, not an error; the client redials on demand.
                if crate::codec::is_deadline_error(&e) {
                    stats::deadline_hit();
                    emit_conn(node, "idle");
                    break;
                }
                // A malformed frame or a peer dying mid-frame: count it,
                // trace it, best-effort tell the peer, drop the
                // connection. The server stays up.
                shared.conn_errors.fetch_add(1, Ordering::Relaxed);
                stats::decode_error();
                emit_conn(node, "error");
                let _ = conn.write_msg(&WireMsg::Error {
                    message: e.to_string(),
                });
                break;
            }
        }
    }
}

/// Runs the server until the shutdown poison frame arrives (or the
/// configured wall-clock budget elapses). Blocking; see [`spawn`] for the
/// background variant.
pub fn run(listener: NetListener, cfg: ServerConfig) -> EarResult<ServerReport> {
    let node = cfg.eard.node;
    let shared = Arc::new(ServerShared {
        service: Mutex::new(EardService::new(cfg.eard.clone())),
        cfg,
        shutdown: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        requests: AtomicU64::new(0),
        conn_errors: AtomicU64::new(0),
    });
    let started = Instant::now();
    let mut report = ServerReport::default();
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        if let Some(budget) = shared.cfg.max_seconds {
            if started.elapsed().as_secs_f64() >= budget {
                break;
            }
        }
        match listener.accept_timeout(Duration::from_millis(50))? {
            None => {}
            Some(mut conn) => {
                if shared.active.load(Ordering::SeqCst) >= shared.cfg.workers {
                    report.rejected += 1;
                    stats::conn_rejected();
                    emit_conn(node, "rejected");
                    let _ = conn.set_io_timeouts(None, Some(shared.cfg.write_timeout));
                    let _ = conn.write_msg(&WireMsg::Error {
                        message: "server saturated".to_string(),
                    });
                    continue;
                }
                report.accepted += 1;
                stats::conn_accepted();
                emit_conn(node, "accepted");
                shared.active.fetch_add(1, Ordering::SeqCst);
                let worker_shared = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || {
                    handle_conn(&worker_shared, conn);
                    worker_shared.active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
        }
        handles.retain(|h| !h.is_finished());
    }
    // Drain: handler threads exit on their own (read deadlines bound every
    // wait), so joining cannot hang indefinitely.
    for h in handles {
        let _ = h.join();
    }
    report.shutdown_requested = shared.shutdown.load(Ordering::SeqCst);
    report.requests = shared.requests.load(Ordering::Relaxed);
    report.conn_errors = shared.conn_errors.load(Ordering::Relaxed);
    Ok(report)
}

/// A server running on a background thread.
pub struct ServerHandle {
    thread: std::thread::JoinHandle<EarResult<ServerReport>>,
}

impl ServerHandle {
    /// Waits for the server to exit and returns its report.
    pub fn join(self) -> EarResult<ServerReport> {
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(ear_errors::EarError::Protocol(
                "server thread panicked".to_string(),
            )),
        }
    }
}

/// Starts [`run`] on a background thread (tests, `earsim loadgen`'s
/// in-process mode).
pub fn spawn(listener: NetListener, cfg: ServerConfig) -> ServerHandle {
    ServerHandle {
        thread: std::thread::spawn(move || run(listener, cfg)),
    }
}

// ---------------------------------------------------------------------------
// The nonblocking readiness-loop server.
// ---------------------------------------------------------------------------

/// One connection owned by the readiness loop: its transport, the incoming
/// byte window frames are decoded from in place, and the outgoing byte
/// queue replies are coalesced into.
struct AsyncConn {
    io: NetConn,
    inbuf: FrameBuffer,
    out: Vec<u8>,
    written: usize,
    frames_queued: u64,
    last_activity: Instant,
    /// Peer sent EOF; serve what is buffered, flush, then drop.
    eof: bool,
    /// The EOF has been classified (clean close vs mid-frame kill).
    eof_classified: bool,
    /// Stop reading; drop once `out` drains (error/shutdown path).
    closing: bool,
    /// Remove from the table at the end of this iteration.
    dead: bool,
}

impl AsyncConn {
    fn new(io: NetConn) -> Self {
        AsyncConn {
            io,
            inbuf: FrameBuffer::new(),
            out: Vec::new(),
            written: 0,
            frames_queued: 0,
            last_activity: Instant::now(),
            eof: false,
            eof_classified: false,
            closing: false,
            dead: false,
        }
    }

    fn pending(&self) -> bool {
        self.written < self.out.len()
    }
}

/// How long the loop sleeps in `poll(2)` when at least one in-memory
/// connection (no pollable fd) must be serviced by nonblocking reads.
const MEM_TICK: Duration = Duration::from_millis(1);
/// How long the loop sleeps when every connection is kernel-pollable.
const IDLE_TICK: Duration = Duration::from_millis(25);

/// Runs the nonblocking readiness-loop server until the shutdown poison
/// frame arrives (or the wall-clock budget elapses).
///
/// One thread owns the listener, every connection and the (un-mutexed)
/// [`EardService`]; `poll(2)` (via [`crate::readiness`]) reports which
/// descriptors are ready, partial reads accumulate in each connection's
/// [`FrameBuffer`] (frames decode zero-copy from that window), and every
/// reply produced in one iteration is coalesced into a single `write` per
/// connection — the batched-flush counter in [`stats`] counts the writes
/// that carried more than one frame. Protocol semantics match the blocking
/// [`run`] exactly: same saturation error frame, same idle-collection
/// deadline, same mid-frame-kill accounting, same poison-frame drain — so
/// reply streams stay byte-identical across the two servers and all three
/// transports.
pub fn run_async(listener: NetListener, cfg: ServerConfig) -> EarResult<ServerReport> {
    let node = cfg.eard.node;
    let mut service = EardService::new(cfg.eard.clone());
    let mut report = ServerReport::default();
    let mut conns: Vec<AsyncConn> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let started = Instant::now();
    let mut shutdown_at: Option<Instant> = None;
    loop {
        if let Some(budget) = cfg.max_seconds {
            if started.elapsed().as_secs_f64() >= budget {
                break;
            }
        }
        if let Some(at) = shutdown_at {
            // Poison frame seen: exit once every queued reply (the ack
            // included) has flushed, or the grace period lapses.
            if conns.iter().all(|c| !c.pending()) || at.elapsed() >= cfg.write_timeout {
                report.shutdown_requested = true;
                break;
            }
        }

        // Interest registration: rebuilt every iteration because write
        // interest flips with buffered output. Index 0 is the listener;
        // connection `i` lives at `1 + i` (unpollable transports hold an
        // ignored slot to keep the indices aligned).
        fds.clear();
        let mut have_mem = false;
        match listener.raw_fd() {
            Some(fd) if shutdown_at.is_none() => fds.push(PollFd::new(fd, POLLIN)),
            Some(_) => fds.push(PollFd::ignored()),
            None => {
                have_mem = true;
                fds.push(PollFd::ignored());
            }
        }
        for c in &conns {
            match c.io.raw_fd() {
                Some(fd) => {
                    let mut interest = 0i16;
                    if !c.closing && !c.eof {
                        interest |= POLLIN;
                    }
                    if c.pending() {
                        interest |= POLLOUT;
                    }
                    fds.push(if interest != 0 {
                        PollFd::new(fd, interest)
                    } else {
                        PollFd::ignored()
                    });
                }
                None => {
                    have_mem = true;
                    fds.push(PollFd::ignored());
                }
            }
        }
        let tick = if have_mem { MEM_TICK } else { IDLE_TICK };
        readiness::poll_fds(&mut fds, Some(tick)).map_err(|e| codec::io_to_ear("poll", &e))?;

        // Accept burst: drain the backlog, rejecting beyond the table cap
        // with the same saturation error frame the blocking server sends.
        if shutdown_at.is_none() {
            while let Some(mut conn) = listener.accept_nonblocking()? {
                if conns.len() >= cfg.workers {
                    report.rejected += 1;
                    stats::conn_rejected();
                    emit_conn(node, "rejected");
                    let mut frame = Vec::new();
                    let _ = codec::encode_frame_into(
                        &mut frame,
                        &WireMsg::Error {
                            message: "server saturated".to_string(),
                        },
                    );
                    // Best-effort: a fresh socket buffer takes one small
                    // frame without blocking; if not, the close itself
                    // tells the peer.
                    let _ = conn.write(&frame);
                    continue;
                }
                report.accepted += 1;
                stats::conn_accepted();
                emit_conn(node, "accepted");
                conns.push(AsyncConn::new(conn));
            }
        }

        for (i, c) in conns.iter_mut().enumerate() {
            let slot = fds.get(1 + i).copied();
            let is_mem = c.io.raw_fd().is_none();

            // Read: one fill per readiness report (level-triggered poll
            // re-reports leftover bytes next iteration).
            if !c.closing && !c.eof && (is_mem || slot.is_some_and(|s| s.readable())) {
                match c.inbuf.fill_from(&mut c.io) {
                    Ok(0) => c.eof = true,
                    Ok(_) => c.last_activity = Instant::now(),
                    Err(e) if codec::is_timeout(&e) => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        report.conn_errors += 1;
                        emit_conn(node, "error");
                        c.dead = true;
                    }
                }
            }

            // Decode + respond: frames decode zero-copy from the buffer
            // window; every reply is appended to the connection's output
            // queue (one write flushes them all below).
            if !c.dead && !c.closing {
                loop {
                    match c.inbuf.next_frame() {
                        Ok(None) => break,
                        Ok(Some(msg)) => {
                            let (reply, is_shutdown) = service.respond(&msg);
                            let ok = !matches!(reply, WireMsg::Error { .. });
                            report.requests += 1;
                            stats::request_served();
                            let req = msg.kind();
                            trace::emit_with(|| TraceRecord {
                                time_s: 0.0,
                                node,
                                event: TraceEvent::NetRequest {
                                    req: req.to_string(),
                                    ok,
                                },
                            });
                            let _ = codec::encode_frame_into(&mut c.out, &reply);
                            c.frames_queued += 1;
                            if is_shutdown {
                                shutdown_at.get_or_insert_with(Instant::now);
                                c.closing = true;
                                break;
                            }
                        }
                        Err(e) => {
                            // Malformed frame: count it, best-effort tell
                            // the peer, stop reading this connection.
                            report.conn_errors += 1;
                            stats::decode_error();
                            emit_conn(node, "error");
                            let _ = codec::encode_frame_into(
                                &mut c.out,
                                &WireMsg::Error {
                                    message: e.to_string(),
                                },
                            );
                            c.closing = true;
                            break;
                        }
                    }
                }
            }

            // EOF classification, after draining every complete frame:
            // leftover bytes mean the peer died mid-frame — exactly one
            // typed, counted error, the blocking server's contract. A
            // clean close just ends the connection.
            if !c.dead && c.eof && !c.eof_classified {
                c.eof_classified = true;
                if c.inbuf.mid_frame() && !c.closing {
                    report.conn_errors += 1;
                    stats::decode_error();
                    emit_conn(node, "error");
                    c.dead = true;
                } else {
                    emit_conn(node, "closed");
                }
            }

            // Flush: one write drains every reply queued this iteration.
            if !c.dead && c.pending() {
                loop {
                    match c.io.write(&c.out[c.written..]) {
                        Ok(0) => {
                            report.conn_errors += 1;
                            emit_conn(node, "error");
                            c.dead = true;
                            break;
                        }
                        Ok(n) => {
                            c.written += n;
                            if !c.pending() {
                                break;
                            }
                        }
                        Err(e) if codec::is_timeout(&e) => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            report.conn_errors += 1;
                            emit_conn(node, "error");
                            c.dead = true;
                            break;
                        }
                    }
                }
                if !c.dead && !c.pending() {
                    if c.frames_queued > 1 {
                        stats::batched_flush();
                    }
                    c.frames_queued = 0;
                    c.out.clear();
                    c.written = 0;
                    c.last_activity = Instant::now();
                }
            }

            // A drained EOF/closing connection is done; an idle one past
            // its read deadline is collected (client redials on demand).
            if !c.dead && (c.eof || c.closing) && !c.pending() {
                c.dead = true;
            }
            if !c.dead
                && !c.eof
                && !c.closing
                && !c.pending()
                && c.last_activity.elapsed() >= cfg.read_timeout
            {
                stats::deadline_hit();
                emit_conn(node, "idle");
                c.dead = true;
            }
        }
        conns.retain(|c| !c.dead);
    }
    Ok(report)
}

/// Starts [`run_async`] on a background thread.
pub fn spawn_async(listener: NetListener, cfg: ServerConfig) -> ServerHandle {
    ServerHandle {
        thread: std::thread::spawn(move || run_async(listener, cfg)),
    }
}
