//! The EARD service loop: a deterministic request state machine behind a
//! bounded, deadline-guarded connection server.
//!
//! [`EardService`] is the pure part — one wire message in, one wire message
//! out, no clocks and no I/O — so the same request stream produces
//! byte-identical replies whether it arrives over a Unix socket, TCP or the
//! in-memory pipe. [`Server`] is the transport part: it accepts
//! connections on any [`NetListener`], spawns a handler per connection on a
//! bounded pool (saturated servers answer [`WireMsg::Error`] and close),
//! applies per-connection read/write deadlines, and exits cleanly when it
//! receives the [`WireMsg::Shutdown`] poison frame or its optional
//! wall-clock budget runs out. A client dying mid-frame degrades to a
//! typed, counted, traced error on that one connection — never a server
//! crash.

use crate::codec::WireMsg;
use crate::conn::{NetConn, NetListener};
use crate::stats;
use ear_core::policy::NodeFreqs;
use ear_core::protocol::{DaemonReply, EarlRequest, GmReport};
use ear_errors::EarResult;
use ear_trace::{self as trace, TraceEvent, TraceRecord};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Daemon behaviour knobs (the deterministic part).
#[derive(Debug, Clone)]
pub struct EardConfig {
    /// Node index stamped on reports and trace records.
    pub node: u64,
    /// Administrative frequency ceiling `SetFreqs` requests are clamped
    /// against (`None`: requests are granted verbatim, as
    /// `EarDaemon::new` does).
    pub ceiling: Option<NodeFreqs>,
    /// Power reported to EARGM before any signature has arrived (W).
    pub idle_power_w: f64,
}

impl Default for EardConfig {
    fn default() -> Self {
        EardConfig {
            node: 0,
            ceiling: None,
            idle_power_w: 120.0,
        }
    }
}

/// The deterministic request→reply state machine of one networked daemon.
///
/// Mirrors the clamp semantics of `ear_core::eard::EarDaemon::service`: a
/// faster CPU pstate is a *smaller* index, so the granted pstate is
/// `max(requested, ceiling)` and both IMC ratios are bounded by the
/// ceiling's `imc_max_ratio`.
#[derive(Debug)]
pub struct EardService {
    cfg: EardConfig,
    programmed: Option<NodeFreqs>,
    signatures: u64,
    last_sig_power_w: Option<f64>,
    cap_w: Option<f64>,
}

impl EardService {
    /// Creates a service with the given behaviour.
    pub fn new(cfg: EardConfig) -> Self {
        EardService {
            cfg,
            programmed: None,
            signatures: 0,
            last_sig_power_w: None,
            cap_w: None,
        }
    }

    /// The frequencies last granted (what the MSRs would hold).
    pub fn programmed(&self) -> Option<NodeFreqs> {
        self.programmed
    }

    /// Signatures recorded so far.
    pub fn signatures(&self) -> u64 {
        self.signatures
    }

    /// The cap last pushed by EARGM (W).
    pub fn cap_w(&self) -> Option<f64> {
        self.cap_w
    }

    /// The power this daemon reports when polled (W): the last signature's
    /// DC power, or the configured idle power before any signature.
    pub fn reported_power_w(&self) -> f64 {
        self.last_sig_power_w.unwrap_or(self.cfg.idle_power_w)
    }

    /// Services one request. Returns the reply frame and whether the
    /// request was the shutdown poison frame.
    pub fn respond(&mut self, msg: &WireMsg) -> (WireMsg, bool) {
        match msg {
            WireMsg::Ping { token } => (WireMsg::Pong { token: *token }, false),
            WireMsg::Request(EarlRequest::SetFreqs(requested)) => {
                let granted = match self.cfg.ceiling {
                    Some(ceiling) => NodeFreqs {
                        cpu: requested.cpu.max(ceiling.cpu),
                        imc_min_ratio: requested.imc_min_ratio.min(ceiling.imc_max_ratio),
                        imc_max_ratio: requested.imc_max_ratio.min(ceiling.imc_max_ratio),
                    },
                    None => *requested,
                };
                self.programmed = Some(granted);
                (
                    WireMsg::Reply(DaemonReply::FreqsApplied {
                        requested: *requested,
                        granted,
                        clamped: granted != *requested,
                    }),
                    false,
                )
            }
            WireMsg::Request(EarlRequest::ReportSignature(sig)) => {
                self.signatures += 1;
                self.last_sig_power_w = Some(sig.dc_power_w);
                (
                    WireMsg::SigAck {
                        count: self.signatures,
                    },
                    false,
                )
            }
            WireMsg::PollPower { .. } => (
                WireMsg::Report(GmReport {
                    node: self.cfg.node as usize,
                    avg_power_w: self.reported_power_w(),
                }),
                false,
            ),
            WireMsg::Command(cmd) => {
                self.cap_w = Some(cmd.cap_w);
                (
                    WireMsg::CapAck {
                        node: cmd.node as u64,
                        cap_w: cmd.cap_w,
                    },
                    false,
                )
            }
            WireMsg::Shutdown => (WireMsg::ShutdownAck, true),
            other => (
                WireMsg::Error {
                    message: format!("unexpected frame '{}' at the daemon", other.kind()),
                },
                false,
            ),
        }
    }
}

/// Server transport knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Daemon behaviour.
    pub eard: EardConfig,
    /// Maximum concurrent connections; further connects are answered with
    /// an error frame and closed.
    pub workers: usize,
    /// Per-connection read deadline (idle connections are collected).
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Optional wall-clock budget; the server drains and exits when it
    /// elapses (so an orphaned `earsim serve` cannot run forever in CI).
    pub max_seconds: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            eard: EardConfig::default(),
            workers: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_seconds: None,
        }
    }
}

/// What a server run did, reported after it exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections rejected for saturation.
    pub rejected: u64,
    /// Requests serviced.
    pub requests: u64,
    /// Connections that ended in a protocol/decode error.
    pub conn_errors: u64,
    /// Whether exit was triggered by the shutdown poison frame (as
    /// opposed to the wall-clock budget).
    pub shutdown_requested: bool,
}

struct ServerShared {
    service: Mutex<EardService>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    requests: AtomicU64,
    conn_errors: AtomicU64,
}

fn lock_service(shared: &ServerShared) -> std::sync::MutexGuard<'_, EardService> {
    shared
        .service
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn emit_conn(node: u64, action: &str) {
    trace::emit_with(|| TraceRecord {
        time_s: 0.0,
        node,
        event: TraceEvent::NetConn {
            action: action.to_string(),
        },
    });
}

fn handle_conn(shared: &ServerShared, mut conn: NetConn) {
    let node = shared.cfg.eard.node;
    if conn
        .set_io_timeouts(
            Some(shared.cfg.read_timeout),
            Some(shared.cfg.write_timeout),
        )
        .is_err()
    {
        emit_conn(node, "error");
        return;
    }
    loop {
        match conn.read_msg() {
            Ok(None) => {
                emit_conn(node, "closed");
                break;
            }
            Ok(Some(msg)) => {
                let (reply, shutdown) = lock_service(shared).respond(&msg);
                let ok = !matches!(reply, WireMsg::Error { .. });
                shared.requests.fetch_add(1, Ordering::Relaxed);
                stats::request_served();
                let req = msg.kind();
                trace::emit_with(|| TraceRecord {
                    time_s: 0.0,
                    node,
                    event: TraceEvent::NetRequest {
                        req: req.to_string(),
                        ok,
                    },
                });
                let write = conn.write_msg(&reply);
                if shutdown {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
                if write.is_err() {
                    shared.conn_errors.fetch_add(1, Ordering::Relaxed);
                    emit_conn(node, "error");
                    break;
                }
            }
            Err(e) => {
                // An idle connection hitting its read deadline is
                // collected, not an error; the client redials on demand.
                if crate::codec::is_deadline_error(&e) {
                    stats::deadline_hit();
                    emit_conn(node, "idle");
                    break;
                }
                // A malformed frame or a peer dying mid-frame: count it,
                // trace it, best-effort tell the peer, drop the
                // connection. The server stays up.
                shared.conn_errors.fetch_add(1, Ordering::Relaxed);
                stats::decode_error();
                emit_conn(node, "error");
                let _ = conn.write_msg(&WireMsg::Error {
                    message: e.to_string(),
                });
                break;
            }
        }
    }
}

/// Runs the server until the shutdown poison frame arrives (or the
/// configured wall-clock budget elapses). Blocking; see [`spawn`] for the
/// background variant.
pub fn run(listener: NetListener, cfg: ServerConfig) -> EarResult<ServerReport> {
    let node = cfg.eard.node;
    let shared = Arc::new(ServerShared {
        service: Mutex::new(EardService::new(cfg.eard.clone())),
        cfg,
        shutdown: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        requests: AtomicU64::new(0),
        conn_errors: AtomicU64::new(0),
    });
    let started = Instant::now();
    let mut report = ServerReport::default();
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        if let Some(budget) = shared.cfg.max_seconds {
            if started.elapsed().as_secs_f64() >= budget {
                break;
            }
        }
        match listener.accept_timeout(Duration::from_millis(50))? {
            None => {}
            Some(mut conn) => {
                if shared.active.load(Ordering::SeqCst) >= shared.cfg.workers {
                    report.rejected += 1;
                    stats::conn_rejected();
                    emit_conn(node, "rejected");
                    let _ = conn.set_io_timeouts(None, Some(shared.cfg.write_timeout));
                    let _ = conn.write_msg(&WireMsg::Error {
                        message: "server saturated".to_string(),
                    });
                    continue;
                }
                report.accepted += 1;
                stats::conn_accepted();
                emit_conn(node, "accepted");
                shared.active.fetch_add(1, Ordering::SeqCst);
                let worker_shared = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || {
                    handle_conn(&worker_shared, conn);
                    worker_shared.active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
        }
        handles.retain(|h| !h.is_finished());
    }
    // Drain: handler threads exit on their own (read deadlines bound every
    // wait), so joining cannot hang indefinitely.
    for h in handles {
        let _ = h.join();
    }
    report.shutdown_requested = shared.shutdown.load(Ordering::SeqCst);
    report.requests = shared.requests.load(Ordering::Relaxed);
    report.conn_errors = shared.conn_errors.load(Ordering::Relaxed);
    Ok(report)
}

/// A server running on a background thread.
pub struct ServerHandle {
    thread: std::thread::JoinHandle<EarResult<ServerReport>>,
}

impl ServerHandle {
    /// Waits for the server to exit and returns its report.
    pub fn join(self) -> EarResult<ServerReport> {
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(ear_errors::EarError::Protocol(
                "server thread panicked".to_string(),
            )),
        }
    }
}

/// Starts [`run`] on a background thread (tests, `earsim loadgen`'s
/// in-process mode).
pub fn spawn(listener: NetListener, cfg: ServerConfig) -> ServerHandle {
    ServerHandle {
        thread: std::thread::spawn(move || run(listener, cfg)),
    }
}
