//! The EARGM aggregation client: fan out over node daemons, aggregate
//! power reports, push cap redistributions back down.
//!
//! [`EargmPoller`] owns one [`NetClient`] per node daemon. Each poll round
//! asks every daemon for its [`GmReport`], redistributes the cluster
//! budget over the reported demand with the same
//! [`ear_core::powercap::distribute_budget`] the in-process manager uses,
//! and pushes one [`GmCommand`] per node. Fan-out concurrency is governed
//! by the process-global permit pool (`ear_mpisim::permits`) through the
//! RAII [`PermitGuard`](ear_mpisim::PermitGuard), so a poller sharing a
//! process with the experiment engine cannot oversubscribe the machine —
//! and a panicking lane still returns its permits.

use crate::client::{ClientConfig, NetClient};
use crate::codec::WireMsg;
use crate::conn::Endpoint;
use ear_core::powercap::distribute_budget;
use ear_core::protocol::{GmCommand, GmReport};
use ear_errors::{EarError, EarResult};
use ear_mpisim::permits;

/// One completed poll round.
#[derive(Debug, Clone)]
pub struct PollRound {
    /// Power reports, ordered by daemon index.
    pub reports: Vec<GmReport>,
    /// Cap commands pushed (same order).
    pub commands: Vec<GmCommand>,
    /// Concurrent lanes the fan-out actually used (permit-governed).
    pub lanes: usize,
}

impl PollRound {
    /// Total reported cluster power (W).
    pub fn cluster_power_w(&self) -> f64 {
        self.reports.iter().map(|r| r.avg_power_w).sum()
    }
}

/// The cluster manager's polling client.
pub struct EargmPoller {
    clients: Vec<NetClient>,
    budget_w: f64,
    rounds: u64,
}

/// Runs `f(i, client)` for every client, spread over at most `lanes`
/// threads; results come back in client order and the first failure wins.
fn fan_out<T, F>(clients: &mut [NetClient], lanes: usize, f: F) -> EarResult<Vec<T>>
where
    T: Send,
    F: Fn(usize, &mut NetClient) -> EarResult<T> + Sync,
{
    let n = clients.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let lanes = lanes.clamp(1, n);
    if lanes == 1 {
        return clients
            .iter_mut()
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect();
    }
    let chunk = n.div_ceil(lanes);
    let mut results: Vec<Option<EarResult<T>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (lane, part) in clients.chunks_mut(chunk).enumerate() {
            let f = &f;
            handles.push(s.spawn(move || {
                let base = lane * chunk;
                part.iter_mut()
                    .enumerate()
                    .map(|(j, c)| (base + j, f(base + j, c)))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            if let Ok(items) = h.join() {
                for (i, r) in items {
                    results[i] = Some(r);
                }
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|| Err(EarError::Protocol("poller lane panicked".to_string()))))
        .collect()
}

impl EargmPoller {
    /// Creates a poller over `endpoints` with a cluster power budget (W).
    /// Each client gets a distinct jitter seed so their retry backoffs
    /// decorrelate.
    pub fn new(endpoints: Vec<Endpoint>, cfg: &ClientConfig, budget_w: f64) -> Self {
        let clients = endpoints
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                let mut c = cfg.clone();
                c.seed = c
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                NetClient::new(ep, c)
            })
            .collect();
        EargmPoller {
            clients,
            budget_w,
            rounds: 0,
        }
    }

    /// Daemons under management.
    pub fn daemons(&self) -> usize {
        self.clients.len()
    }

    /// Poll rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The cluster budget (W).
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// One full management round: poll every daemon, redistribute the
    /// budget over reported demand, push the new caps, verify every ack.
    pub fn poll_once(&mut self) -> EarResult<PollRound> {
        let n = self.clients.len();
        if n == 0 {
            return Err(EarError::Protocol("poller manages no daemons".to_string()));
        }
        // Permits bound the *extra* lanes; one lane is always ours. The
        // guard releases on every exit path, including panics in a lane.
        let held = permits::acquire_guard(n.saturating_sub(1));
        let lanes = (held.count() + 1).min(n);
        let reports = fan_out(&mut self.clients, lanes, |i, client| {
            match client.request_with_retry(&WireMsg::PollPower { node: i as u64 })? {
                WireMsg::Report(r) => Ok(r),
                other => Err(EarError::Protocol(format!(
                    "daemon {i}: expected gm_report, got '{}'",
                    other.kind()
                ))),
            }
        })?;
        let powers: Vec<f64> = reports.iter().map(|r| r.avg_power_w).collect();
        let caps = distribute_budget(self.budget_w, &powers);
        let commands: Vec<GmCommand> = reports
            .iter()
            .zip(&caps)
            .map(|(r, &cap_w)| GmCommand {
                node: r.node,
                cap_w,
            })
            .collect();
        let pushed = commands.clone();
        fan_out(&mut self.clients, lanes, move |i, client| {
            let cmd = pushed[i];
            match client.request_with_retry(&WireMsg::Command(cmd))? {
                WireMsg::CapAck { node, cap_w } => {
                    if node as usize == cmd.node && (cap_w - cmd.cap_w).abs() < 1e-9 {
                        Ok(())
                    } else {
                        Err(EarError::Protocol(format!(
                            "daemon {i}: cap ack mismatch (node {node}, cap {cap_w})"
                        )))
                    }
                }
                other => Err(EarError::Protocol(format!(
                    "daemon {i}: expected cap_ack, got '{}'",
                    other.kind()
                ))),
            }
        })?;
        drop(held);
        self.rounds += 1;
        Ok(PollRound {
            reports,
            commands,
            lanes,
        })
    }
}
