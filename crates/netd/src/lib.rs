//! # ear-netd — the networked EAR daemon stack
//!
//! On production clusters the three EAR components are separate processes
//! wired by sockets: EARL (in the application) talks to its node's EARD
//! over a local socket, and EARGM polls every EARD over TCP. This crate
//! reproduces that plumbing, dependency-free:
//!
//! - [`codec`] — the length-prefixed binary frame codec for the
//!   `ear-core` protocol types: explicit little-endian fields, `f64`
//!   bit-pattern round-tripping, a hard frame-size limit and typed decode
//!   errors (never a panic on hostile bytes).
//! - [`pipe`](mod@pipe) — an in-memory byte-stream transport with real deadline and
//!   EOF semantics, so every networked code path is testable
//!   deterministically without touching the kernel.
//! - [`conn`] — Unix-domain, TCP and in-memory transports behind one
//!   listener/connection pair.
//! - [`server`] — the EARD service loop: a pure request state machine
//!   ([`EardService`]) behind a bounded, deadline-guarded connection
//!   server with poison-frame shutdown.
//! - [`client`] — deadline-guarded requests with bounded jittered-backoff
//!   retries.
//! - [`poller`] — the EARGM side: permit-governed fan-out over N daemons,
//!   report aggregation and cap redistribution.
//! - [`loadgen`] — the closed-loop load generator behind `earsim loadgen`,
//!   with a fixed-bucket latency histogram.
//! - [`readiness`] — a dependency-free `poll(2)` wrapper; the one kernel
//!   primitive the nonblocking server loop needs.
//! - [`cluster`] — `earsim cluster`: thousands of in-process simulated
//!   daemons behind an EARGM aggregation tree, all traffic through the
//!   real codec.
//! - [`stats`] — process-wide service counters surfaced in the
//!   `earsim-telemetry` summary.

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod codec;
pub mod conn;
pub mod loadgen;
pub mod pipe;
pub mod poller;
pub mod readiness;
pub mod server;
pub mod stats;

pub use client::{ClientConfig, NetClient};
pub use cluster::{ClusterConfig, ClusterReport, SimCluster};
pub use codec::{FrameBuffer, WireMsg, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
pub use conn::{Endpoint, NetConn, NetListener};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use pipe::{mem_channel, pipe, MemConnector, MemListener, PipeEnd};
pub use poller::{EargmPoller, PollRound};
pub use server::{EardConfig, EardService, ServerConfig, ServerHandle, ServerReport};
pub use stats::{LatencyHistogram, NetdSnapshot};
