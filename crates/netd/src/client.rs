//! The daemon client library: deadline-guarded requests with bounded,
//! jitter-backed retries.
//!
//! [`NetClient`] owns one (lazily established) connection to a daemon
//! endpoint. Every request applies the configured connect and request
//! deadlines; [`NetClient::request_with_retry`] additionally retries a
//! bounded number of times with exponential backoff whose jitter comes
//! from a seeded xorshift generator — deterministic per client, so tests
//! and benchmarks are reproducible, while a fleet of clients still spreads
//! its retries instead of stampeding.

use crate::codec::{self, WireMsg};
use crate::conn::{Endpoint, NetConn};
use crate::stats;
use ear_errors::{EarError, EarResult};
use std::time::Duration;

/// Client-side deadline and retry knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Read/write deadline for one request/reply exchange.
    pub request_timeout: Duration,
    /// Retries after the first failed attempt (total attempts =
    /// `retries + 1`).
    pub retries: u32,
    /// Base backoff; attempt `n` sleeps `base * 2^n`, scaled by jitter in
    /// `[0.5, 1.0)`.
    pub backoff_base: Duration,
    /// Jitter seed (deterministic per client).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(2),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            seed: 0x5EED_EA2D,
        }
    }
}

/// A client of one daemon endpoint.
pub struct NetClient {
    endpoint: Endpoint,
    cfg: ClientConfig,
    conn: Option<NetConn>,
    rng: u64,
    overhead_nanos: u64,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl NetClient {
    /// Creates a client. The connection is established on first use and
    /// reused across requests.
    pub fn new(endpoint: Endpoint, cfg: ClientConfig) -> Self {
        let rng = cfg.seed | 1;
        NetClient {
            endpoint,
            cfg,
            conn: None,
            rng,
            overhead_nanos: 0,
        }
    }

    /// The endpoint this client dials.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Cumulative time this client has spent outside request/reply
    /// exchanges: connecting, redialing after a dropped connection, and
    /// sleeping retry backoffs. The load generator subtracts this from its
    /// wall clock so throughput measures the service, not the dialing.
    pub fn overhead_nanos(&self) -> u64 {
        self.overhead_nanos
    }

    fn note_overhead(&mut self, since: std::time::Instant) {
        let ns = since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.overhead_nanos = self.overhead_nanos.saturating_add(ns);
    }

    fn ensure_conn(&mut self) -> EarResult<&mut NetConn> {
        if self.conn.is_none() {
            let dialing = std::time::Instant::now();
            let connected = self.endpoint.connect(self.cfg.connect_timeout);
            self.note_overhead(dialing);
            let mut conn = connected?;
            conn.set_io_timeouts(
                Some(self.cfg.request_timeout),
                Some(self.cfg.request_timeout),
            )?;
            self.conn = Some(conn);
        }
        match self.conn.as_mut() {
            Some(c) => Ok(c),
            None => Err(EarError::Protocol("connection vanished".to_string())),
        }
    }

    /// One request/reply exchange, no retries. A [`WireMsg::Error`] reply
    /// and a clean close both surface as typed errors; the connection is
    /// dropped on any failure so the next attempt redials.
    pub fn request(&mut self, msg: &WireMsg) -> EarResult<WireMsg> {
        let attempt = |conn: &mut NetConn| -> EarResult<WireMsg> {
            conn.write_msg(msg)?;
            match conn.read_msg()? {
                Some(WireMsg::Error { message }) => Err(EarError::Protocol(format!(
                    "daemon answered with an error: {message}"
                ))),
                Some(reply) => Ok(reply),
                None => Err(EarError::Protocol(
                    "connection closed before the reply".to_string(),
                )),
            }
        };
        let result = self.ensure_conn().and_then(attempt);
        if let Err(e) = &result {
            if codec::is_deadline_error(e) {
                stats::deadline_hit();
            }
            self.conn = None;
        }
        result
    }

    /// [`NetClient::request`] with up to `retries` additional attempts,
    /// sleeping a jittered exponential backoff between them.
    pub fn request_with_retry(&mut self, msg: &WireMsg) -> EarResult<WireMsg> {
        let mut last;
        let mut attempt = 0u32;
        loop {
            match self.request(msg) {
                Ok(reply) => return Ok(reply),
                Err(e) => last = e,
            }
            if attempt >= self.cfg.retries {
                return Err(last);
            }
            stats::attempt_retried();
            // Jitter factor in [0.5, 1.0): half the nominal backoff at
            // minimum, never more than nominal.
            let jitter = 0.5 + (xorshift(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
            let nominal = self.cfg.backoff_base.as_secs_f64() * f64::from(1u32 << attempt.min(16));
            let backoff = std::time::Instant::now();
            std::thread::sleep(Duration::from_secs_f64(nominal * jitter));
            self.note_overhead(backoff);
            attempt += 1;
        }
    }

    /// Liveness probe: sends [`WireMsg::Ping`] and checks the echoed token.
    pub fn ping(&mut self, token: u64) -> EarResult<()> {
        match self.request_with_retry(&WireMsg::Ping { token })? {
            WireMsg::Pong { token: echoed } if echoed == token => Ok(()),
            WireMsg::Pong { token: echoed } => Err(EarError::Protocol(format!(
                "pong token mismatch: sent {token}, got {echoed}"
            ))),
            other => Err(EarError::Protocol(format!(
                "expected pong, got '{}'",
                other.kind()
            ))),
        }
    }

    /// Sends the shutdown poison frame; `Ok` once the daemon acknowledges.
    pub fn shutdown(&mut self) -> EarResult<()> {
        match self.request(&WireMsg::Shutdown)? {
            WireMsg::ShutdownAck => Ok(()),
            other => Err(EarError::Protocol(format!(
                "expected shutdown_ack, got '{}'",
                other.kind()
            ))),
        }
    }
}
