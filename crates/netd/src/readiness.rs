//! A thin, dependency-free wrapper over `poll(2)`.
//!
//! The nonblocking server loop needs exactly one kernel primitive: "which
//! of these descriptors are readable/writable right now, sleeping at most
//! this long". `std` deliberately does not expose it, and the workspace is
//! dependency-free by policy (CI asserts only path dependencies in the
//! runtime graph), so the binding is declared here directly against the C
//! library `std` already links: the classic [`PollFd`] triple and a safe
//! [`poll_fds`] wrapper that retries `EINTR` and converts failures into
//! `std::io::Error`.
//!
//! `poll(2)` over epoll/kqueue is a deliberate choice, not a shortcut: the
//! server re-registers interest every iteration anyway (write interest
//! flips with buffered output), the fd sets here are thousands — not
//! millions — of descriptors, and one portable syscall keeps the loop
//! free of per-platform registration state machines.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable data (or a peer close, which reads as EOF) is available.
pub const POLLIN: i16 = 0x001;
/// Writing would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is invalid (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One `struct pollfd`, laid out exactly as `poll(2)` expects.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch (a negative fd is ignored by the kernel,
    /// which is how unpollable slots keep index parity with the caller's
    /// connection table).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by [`poll_fds`].
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for the given interest set.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// A slot the kernel skips (keeps table indices aligned).
    pub fn ignored() -> Self {
        PollFd {
            fd: -1,
            events: 0,
            revents: 0,
        }
    }

    /// Data (or EOF) can be read.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// A write would make progress.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR) != 0
    }

    /// The descriptor is dead (error, hangup with nothing to read, or
    /// invalid).
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

// The symbol std already links from the platform C library. `nfds_t` is
// `unsigned long` on every Linux ABI this workspace targets.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: libc_nfds, timeout: i32) -> i32;
}

#[allow(non_camel_case_types)]
type libc_nfds = core::ffi::c_ulong;

/// Waits until at least one descriptor in `fds` is ready or `timeout`
/// elapses (`None` blocks indefinitely). Returns how many entries have
/// nonzero `revents`; 0 is a clean timeout. `EINTR` is retried with the
/// original deadline intact.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let deadline = timeout.map(|t| std::time::Instant::now() + t);
    loop {
        let ms: i32 = match deadline {
            None => -1,
            Some(d) => {
                let left = d.saturating_duration_since(std::time::Instant::now());
                // Round up so a sub-millisecond remainder still sleeps
                // instead of degenerating into a busy loop.
                let mut ms = left.as_millis();
                if ms == 0 && left.as_nanos() > 0 {
                    ms = 1;
                }
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs; the kernel writes only `revents`
        // within the slice. The call does not retain the pointer.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as libc_nfds, ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            if let Some(d) = deadline {
                if std::time::Instant::now() >= d {
                    return Ok(0);
                }
            }
            continue;
        }
        return Err(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_times_out_cleanly_on_a_silent_socket() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn poll_reports_readable_after_a_write_and_writable_on_empty_buffers() {
        let (a, mut b) = UnixStream::pair().expect("socketpair");
        b.write_all(b"x").expect("write");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(500))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(fds[0].writable());
    }

    #[test]
    fn ignored_slots_are_skipped() {
        let (a, mut b) = UnixStream::pair().expect("socketpair");
        b.write_all(b"x").expect("write");
        let mut fds = [PollFd::ignored(), PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(500))).expect("poll");
        assert_eq!(n, 1);
        assert!(!fds[0].readable());
        assert!(fds[1].readable());
    }

    #[test]
    fn hangup_reads_as_readable_eof() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(500))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "hangup must surface as readable EOF");
    }
}
