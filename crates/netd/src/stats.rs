//! Process-wide service counters and the shared latency histogram.
//!
//! The networked daemon stack counts its traffic in process-global atomics
//! — same pattern as the experiment engine's cache counters — so the
//! `earsim-telemetry` summary line can report serve/loadgen activity
//! without plumbing a stats handle through every layer. All counters are
//! monotonically increasing; [`reset`] exists for tests.
//!
//! [`LatencyHistogram`] lives here (it started in `loadgen`) because both
//! the load generator and the cluster driver record into it; alongside the
//! power-of-two buckets it tracks the exact observed minimum and maximum,
//! so reports can print precise extremes next to bucket-resolution
//! quantiles.

use std::sync::atomic::{AtomicU64, Ordering};

static ACCEPTED: AtomicU64 = AtomicU64::new(0);
static REJECTED: AtomicU64 = AtomicU64::new(0);
static TIMED_OUT: AtomicU64 = AtomicU64::new(0);
static RETRIED: AtomicU64 = AtomicU64::new(0);
static REQUESTS: AtomicU64 = AtomicU64::new(0);
static DECODE_ERRORS: AtomicU64 = AtomicU64::new(0);
static BATCHED_FLUSHES: AtomicU64 = AtomicU64::new(0);

/// Deepest aggregation tree the cluster counters can describe.
pub const MAX_TREE_LEVELS: usize = 8;

static CLUSTER_DAEMONS: AtomicU64 = AtomicU64::new(0);
static CLUSTER_TREE_DEPTH: AtomicU64 = AtomicU64::new(0);
static CLUSTER_LEVEL_REPORTS: [AtomicU64; MAX_TREE_LEVELS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// A point-in-time copy of every netd counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetdSnapshot {
    /// Connections accepted by a server.
    pub accepted: u64,
    /// Connections turned away because the server was saturated.
    pub rejected: u64,
    /// Requests that hit a read/write/connect deadline.
    pub timed_out: u64,
    /// Client attempts that were retried after a failure.
    pub retried: u64,
    /// Requests serviced by a server.
    pub requests: u64,
    /// Frames that failed to decode (malformed, truncated, mid-frame
    /// close).
    pub decode_errors: u64,
    /// Write flushes that coalesced more than one reply frame (the
    /// readiness loop batches every reply queued in one iteration into a
    /// single `write`).
    pub batched_flushes: u64,
}

impl NetdSnapshot {
    /// Whether any counter moved (gates telemetry printing).
    pub fn any(&self) -> bool {
        self.accepted != 0
            || self.rejected != 0
            || self.timed_out != 0
            || self.retried != 0
            || self.requests != 0
            || self.decode_errors != 0
            || self.batched_flushes != 0
    }
}

/// A point-in-time copy of the cluster-scenario counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Simulated daemons the cluster run instantiated.
    pub daemons: u64,
    /// Aggregation-tree depth (aggregator levels above the daemons).
    pub tree_depth: u64,
    /// Aggregated reports folded at each tree level, leaf level first.
    pub level_reports: Vec<u64>,
    /// Batched reply flushes observed during the run (mirror of the
    /// process-wide counter, scoped here for the nested telemetry object).
    pub batched_flushes: u64,
}

impl ClusterSnapshot {
    /// Whether a cluster scenario ran (gates the nested telemetry object).
    pub fn any(&self) -> bool {
        self.daemons != 0
    }
}

/// Reads every counter.
pub fn snapshot() -> NetdSnapshot {
    NetdSnapshot {
        accepted: ACCEPTED.load(Ordering::Relaxed),
        rejected: REJECTED.load(Ordering::Relaxed),
        timed_out: TIMED_OUT.load(Ordering::Relaxed),
        retried: RETRIED.load(Ordering::Relaxed),
        requests: REQUESTS.load(Ordering::Relaxed),
        decode_errors: DECODE_ERRORS.load(Ordering::Relaxed),
        batched_flushes: BATCHED_FLUSHES.load(Ordering::Relaxed),
    }
}

/// Reads the cluster counters. `level_reports` is truncated to the
/// recorded tree depth.
pub fn cluster_snapshot() -> ClusterSnapshot {
    let depth = CLUSTER_TREE_DEPTH.load(Ordering::Relaxed) as usize;
    ClusterSnapshot {
        daemons: CLUSTER_DAEMONS.load(Ordering::Relaxed),
        tree_depth: depth as u64,
        level_reports: CLUSTER_LEVEL_REPORTS[..depth.min(MAX_TREE_LEVELS)]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        batched_flushes: BATCHED_FLUSHES.load(Ordering::Relaxed),
    }
}

/// Zeroes every counter (tests only; production counters are monotonic).
pub fn reset() {
    for c in [
        &ACCEPTED,
        &REJECTED,
        &TIMED_OUT,
        &RETRIED,
        &REQUESTS,
        &DECODE_ERRORS,
        &BATCHED_FLUSHES,
        &CLUSTER_DAEMONS,
        &CLUSTER_TREE_DEPTH,
    ] {
        c.store(0, Ordering::Relaxed);
    }
    for c in &CLUSTER_LEVEL_REPORTS {
        c.store(0, Ordering::Relaxed);
    }
}

pub(crate) fn conn_accepted() {
    ACCEPTED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn conn_rejected() {
    REJECTED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn deadline_hit() {
    TIMED_OUT.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn attempt_retried() {
    RETRIED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn request_served() {
    REQUESTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn requests_served_bulk(n: u64) {
    REQUESTS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn decode_error() {
    DECODE_ERRORS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn decode_errors_bulk(n: u64) {
    DECODE_ERRORS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn batched_flush() {
    BATCHED_FLUSHES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn cluster_started(daemons: u64, tree_depth: u64) {
    CLUSTER_DAEMONS.fetch_add(daemons, Ordering::Relaxed);
    CLUSTER_TREE_DEPTH.store(tree_depth.min(MAX_TREE_LEVELS as u64), Ordering::Relaxed);
}

pub(crate) fn level_reports(level: usize, n: u64) {
    if level < MAX_TREE_LEVELS {
        CLUSTER_LEVEL_REPORTS[level].fetch_add(n, Ordering::Relaxed);
    }
}

/// Number of power-of-two latency buckets (bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds; 2^63 ns ≈ 292 years caps the range).
pub const BUCKETS: usize = 64;

/// A fixed-bucket latency histogram over nanoseconds, plus exact observed
/// extremes.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, nanos: u64) {
        let idx = 63 - nanos.max(1).leading_zeros() as usize;
        self.buckets[idx.min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact smallest recorded sample (ns); 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The exact largest recorded sample (ns); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The `q`-quantile (0 < q ≤ 1) in nanoseconds, resolved to the upper
    /// bound of the bucket holding that rank; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }
}
