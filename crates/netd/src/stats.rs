//! Process-wide service counters.
//!
//! The networked daemon stack counts its traffic in process-global atomics
//! — same pattern as the experiment engine's cache counters — so the
//! `earsim-telemetry` summary line can report serve/loadgen activity
//! without plumbing a stats handle through every layer. All counters are
//! monotonically increasing; [`reset`] exists for tests.

use std::sync::atomic::{AtomicU64, Ordering};

static ACCEPTED: AtomicU64 = AtomicU64::new(0);
static REJECTED: AtomicU64 = AtomicU64::new(0);
static TIMED_OUT: AtomicU64 = AtomicU64::new(0);
static RETRIED: AtomicU64 = AtomicU64::new(0);
static REQUESTS: AtomicU64 = AtomicU64::new(0);
static DECODE_ERRORS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of every netd counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetdSnapshot {
    /// Connections accepted by a server.
    pub accepted: u64,
    /// Connections turned away because the server was saturated.
    pub rejected: u64,
    /// Requests that hit a read/write/connect deadline.
    pub timed_out: u64,
    /// Client attempts that were retried after a failure.
    pub retried: u64,
    /// Requests serviced by a server.
    pub requests: u64,
    /// Frames that failed to decode (malformed, truncated, mid-frame
    /// close).
    pub decode_errors: u64,
}

impl NetdSnapshot {
    /// Whether any counter moved (gates telemetry printing).
    pub fn any(&self) -> bool {
        self.accepted != 0
            || self.rejected != 0
            || self.timed_out != 0
            || self.retried != 0
            || self.requests != 0
            || self.decode_errors != 0
    }
}

/// Reads every counter.
pub fn snapshot() -> NetdSnapshot {
    NetdSnapshot {
        accepted: ACCEPTED.load(Ordering::Relaxed),
        rejected: REJECTED.load(Ordering::Relaxed),
        timed_out: TIMED_OUT.load(Ordering::Relaxed),
        retried: RETRIED.load(Ordering::Relaxed),
        requests: REQUESTS.load(Ordering::Relaxed),
        decode_errors: DECODE_ERRORS.load(Ordering::Relaxed),
    }
}

/// Zeroes every counter (tests only; production counters are monotonic).
pub fn reset() {
    for c in [
        &ACCEPTED,
        &REJECTED,
        &TIMED_OUT,
        &RETRIED,
        &REQUESTS,
        &DECODE_ERRORS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

pub(crate) fn conn_accepted() {
    ACCEPTED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn conn_rejected() {
    REJECTED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn deadline_hit() {
    TIMED_OUT.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn attempt_retried() {
    RETRIED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn request_served() {
    REQUESTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn decode_error() {
    DECODE_ERRORS.fetch_add(1, Ordering::Relaxed);
}
