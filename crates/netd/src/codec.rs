//! The length-prefixed binary frame codec for the EAR wire protocol.
//!
//! Every frame is a fixed 8-byte header followed by a payload whose layout
//! is fully determined by the header's tag:
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0xEA 0x5D
//! 2       1     protocol version (currently 1)
//! 3       1     message tag (one per concrete protocol variant)
//! 4       4     payload length, u32 little-endian
//! 8       len   payload, explicit little-endian field encoding
//! ```
//!
//! Integers are little-endian; `f64` fields travel as `f64::to_bits`
//! little-endian, so every value — including NaNs with payload bits —
//! round-trips bit-identically. Payloads are fixed-size per tag (the one
//! variable-length message, [`WireMsg::Error`], carries UTF-8 text bounded
//! by [`MAX_PAYLOAD`]). Decoding is total: malformed bytes produce a typed
//! [`EarError::Protocol`], never a panic, and a frame longer than
//! [`MAX_PAYLOAD`] is rejected from the header alone so a hostile peer
//! cannot make the server allocate unboundedly.
//!
//! ## Per-domain uncore frames (tags 15–18)
//!
//! Multi-die parts carry per-domain uncore data. Rather than widening the
//! legacy layouts (which would change the bytes of every single-domain
//! frame), per-domain variants travel under their own tags: 15
//! (`set_freqs`), 16 (`report_signature`), 17 (`freqs_applied`), 18
//! (`rejected`). A message picks the per-domain tag only when it actually
//! carries domain data, so a single-domain deployment emits byte-identical
//! frames to the pre-domain protocol. Decoding a legacy frame reconstructs
//! the single-domain view (`imc_domains = 1`, domain 0 mirrors the scalar
//! fields) so consumers can treat every decoded value uniformly.

use ear_core::policy::{DomainLimits, NodeFreqs};
use ear_core::protocol::{DaemonReply, EarlRequest, GmCommand, GmReport};
use ear_core::Signature;
use ear_core::MAX_UNCORE_DOMAINS;
use ear_errors::{EarError, EarResult};
use std::io::{Read, Write};

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = [0xEA, 0x5D];

/// Wire protocol version carried in every frame header.
pub const VERSION: u8 = 1;

/// Hard upper bound on a frame payload. Every fixed-layout message is far
/// smaller; the bound exists so a corrupt or hostile length field cannot
/// drive allocation.
pub const MAX_PAYLOAD: usize = 4096;

/// Header size in bytes (magic + version + tag + length).
pub const HEADER_LEN: usize = 8;

/// Every message that crosses the EARL↔EARD↔EARGM wire. The protocol
/// payloads are the `ear-core` types themselves; the extra control frames
/// (ping, acks, shutdown, error) exist only at the transport layer.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Liveness / RTT probe; the token is echoed back.
    Ping {
        /// Opaque token echoed in the matching [`WireMsg::Pong`].
        token: u64,
    },
    /// Reply to [`WireMsg::Ping`].
    Pong {
        /// The probed token.
        token: u64,
    },
    /// An EARL request (frequency programming or a signature report).
    Request(EarlRequest),
    /// The daemon's reply to [`EarlRequest::SetFreqs`].
    Reply(DaemonReply),
    /// The daemon's acknowledgement of [`EarlRequest::ReportSignature`];
    /// `count` is the daemon's signature total after recording it.
    SigAck {
        /// Signatures recorded by the daemon so far.
        count: u64,
    },
    /// EARGM asks the daemon for its recent power report.
    PollPower {
        /// The node index the manager believes it is polling.
        node: u64,
    },
    /// The daemon's power report (reply to [`WireMsg::PollPower`]).
    Report(GmReport),
    /// EARGM pushes a powercap command down to the daemon.
    Command(GmCommand),
    /// The daemon's acknowledgement of a [`WireMsg::Command`], echoing the
    /// cap it now enforces.
    CapAck {
        /// The node acknowledging.
        node: u64,
        /// The cap now in force (W).
        cap_w: f64,
    },
    /// A typed error travelling back to the peer (decode failure,
    /// unexpected frame, server saturated).
    Error {
        /// Human-readable description.
        message: String,
    },
    /// The poison frame: asks the server to stop accepting, drain and
    /// exit cleanly.
    Shutdown,
    /// Reply to [`WireMsg::Shutdown`], sent before the server drains.
    ShutdownAck,
}

impl WireMsg {
    /// The header tag of this message. Messages carrying per-domain
    /// uncore data select the per-domain tag (15–18); everything else
    /// keeps its legacy tag so single-domain frames stay byte-identical.
    pub fn tag(&self) -> u8 {
        match self {
            WireMsg::Ping { .. } => 1,
            WireMsg::Pong { .. } => 2,
            WireMsg::Request(EarlRequest::SetFreqs(f)) => {
                if f.imc_dom.is_per_domain() {
                    15
                } else {
                    3
                }
            }
            WireMsg::Request(EarlRequest::ReportSignature(s)) => {
                if s.domain_count() > 1 {
                    16
                } else {
                    4
                }
            }
            WireMsg::Reply(DaemonReply::FreqsApplied {
                requested, granted, ..
            }) => {
                if requested.imc_dom.is_per_domain() || granted.imc_dom.is_per_domain() {
                    17
                } else {
                    5
                }
            }
            WireMsg::Reply(DaemonReply::Rejected { requested }) => {
                if requested.imc_dom.is_per_domain() {
                    18
                } else {
                    6
                }
            }
            WireMsg::SigAck { .. } => 7,
            WireMsg::PollPower { .. } => 8,
            WireMsg::Report(_) => 9,
            WireMsg::Command(_) => 10,
            WireMsg::CapAck { .. } => 11,
            WireMsg::Error { .. } => 12,
            WireMsg::Shutdown => 13,
            WireMsg::ShutdownAck => 14,
        }
    }

    /// Short lowercase name of the message kind (trace/telemetry label).
    pub fn kind(&self) -> &'static str {
        match self {
            WireMsg::Ping { .. } => "ping",
            WireMsg::Pong { .. } => "pong",
            WireMsg::Request(EarlRequest::SetFreqs(_)) => "set_freqs",
            WireMsg::Request(EarlRequest::ReportSignature(_)) => "report_signature",
            WireMsg::Reply(DaemonReply::FreqsApplied { .. }) => "freqs_applied",
            WireMsg::Reply(DaemonReply::Rejected { .. }) => "rejected",
            WireMsg::SigAck { .. } => "sig_ack",
            WireMsg::PollPower { .. } => "poll_power",
            WireMsg::Report(_) => "gm_report",
            WireMsg::Command(_) => "gm_command",
            WireMsg::CapAck { .. } => "cap_ack",
            WireMsg::Error { .. } => "error",
            WireMsg::Shutdown => "shutdown",
            WireMsg::ShutdownAck => "shutdown_ack",
        }
    }
}

fn proto(message: impl Into<String>) -> EarError {
    EarError::Protocol(message.into())
}

// ---------------------------------------------------------------------------
// Field encoders/decoders
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_freqs(out: &mut Vec<u8>, f: &NodeFreqs) -> EarResult<()> {
    let cpu = u32::try_from(f.cpu)
        .map_err(|_| proto(format!("pstate {} does not fit the wire field", f.cpu)))?;
    put_u32(out, cpu);
    out.push(f.imc_min_ratio);
    out.push(f.imc_max_ratio);
    Ok(())
}

fn put_signature(out: &mut Vec<u8>, s: &Signature) {
    put_u32(out, s.iterations);
    for v in [
        s.window_s,
        s.cpi,
        s.tpi,
        s.gbs,
        s.vpi,
        s.dc_power_w,
        s.pkg_power_w,
        s.avg_cpu_khz,
        s.avg_imc_khz,
    ] {
        put_f64(out, v);
    }
}

/// Per-domain freqs layout: the legacy fields, then a domain count and
/// `count` (min, max) ratio pairs.
fn put_freqs_dom(out: &mut Vec<u8>, f: &NodeFreqs) -> EarResult<()> {
    put_freqs(out, f)?;
    let n = f.imc_dom.count();
    #[allow(clippy::cast_possible_truncation)]
    out.push(n as u8);
    for d in 0..n {
        out.push(f.imc_dom.min[d]);
        out.push(f.imc_dom.max[d]);
    }
    Ok(())
}

/// Per-domain signature layout: the legacy fields, then a domain count and
/// `count` (imc_dom_khz, gbs_dom) `f64` pairs.
fn put_signature_dom(out: &mut Vec<u8>, s: &Signature) {
    put_signature(out, s);
    let nd = s.domain_count();
    #[allow(clippy::cast_possible_truncation)]
    out.push(nd as u8);
    for k in 0..nd {
        put_f64(out, s.imc_dom_khz[k]);
        put_f64(out, s.gbs_dom[k]);
    }
}

/// A cursor over a frame payload; every read is bounds-checked and
/// reports a typed error naming the missing field.
struct Cursor<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cursor { b, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> EarResult<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.b.len());
        match end {
            Some(end) => {
                let s = &self.b[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(proto(format!("payload truncated reading {what}"))),
        }
    }

    fn u8(&mut self, what: &str) -> EarResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> EarResult<u32> {
        let s = self.take(4, what)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, what: &str) -> EarResult<u64> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self, what: &str) -> EarResult<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn freqs(&mut self, what: &str) -> EarResult<NodeFreqs> {
        Ok(NodeFreqs {
            cpu: self.u32(what)? as usize,
            imc_min_ratio: self.u8(what)?,
            imc_max_ratio: self.u8(what)?,
            imc_dom: DomainLimits::LEGACY,
        })
    }

    fn freqs_dom(&mut self, what: &str) -> EarResult<NodeFreqs> {
        let mut f = self.freqs(what)?;
        let n = usize::from(self.u8(what)?);
        if n > MAX_UNCORE_DOMAINS {
            return Err(proto(format!(
                "{what}: {n} uncore domains exceeds the {MAX_UNCORE_DOMAINS}-domain limit"
            )));
        }
        #[allow(clippy::cast_possible_truncation)]
        let mut dom = DomainLimits {
            count: n as u8,
            ..DomainLimits::LEGACY
        };
        for d in 0..n {
            dom.min[d] = self.u8(what)?;
            dom.max[d] = self.u8(what)?;
        }
        f.imc_dom = dom;
        Ok(f)
    }

    /// The legacy signature fields; per-domain fields left all-zero.
    fn signature_base(&mut self) -> EarResult<Signature> {
        let iterations = self.u32("signature.iterations")?;
        Ok(Signature {
            iterations,
            window_s: self.f64("signature.window_s")?,
            cpi: self.f64("signature.cpi")?,
            tpi: self.f64("signature.tpi")?,
            gbs: self.f64("signature.gbs")?,
            vpi: self.f64("signature.vpi")?,
            dc_power_w: self.f64("signature.dc_power_w")?,
            pkg_power_w: self.f64("signature.pkg_power_w")?,
            avg_cpu_khz: self.f64("signature.avg_cpu_khz")?,
            avg_imc_khz: self.f64("signature.avg_imc_khz")?,
            ..Signature::default()
        })
    }

    /// A legacy (tag 4) signature: reconstructs the single-domain view so
    /// decoded values always carry consistent per-domain fields.
    fn signature(&mut self) -> EarResult<Signature> {
        let mut s = self.signature_base()?;
        s.imc_domains = 1;
        s.imc_dom_khz[0] = s.avg_imc_khz;
        s.gbs_dom[0] = s.gbs;
        Ok(s)
    }

    /// A per-domain (tag 16) signature.
    fn signature_dom(&mut self) -> EarResult<Signature> {
        let mut s = self.signature_base()?;
        let nd = usize::from(self.u8("signature.imc_domains")?);
        if nd == 0 || nd > MAX_UNCORE_DOMAINS {
            return Err(proto(format!(
                "signature.imc_domains must be 1..={MAX_UNCORE_DOMAINS}, got {nd}"
            )));
        }
        for k in 0..nd {
            s.imc_dom_khz[k] = self.f64("signature.imc_dom_khz")?;
            s.gbs_dom[k] = self.f64("signature.gbs_dom")?;
        }
        #[allow(clippy::cast_possible_truncation)]
        {
            s.imc_domains = nd as u8;
        }
        Ok(s)
    }

    fn done(&self, tag: u8) -> EarResult<()> {
        if self.at == self.b.len() {
            Ok(())
        } else {
            Err(proto(format!(
                "tag {tag}: {} trailing payload bytes",
                self.b.len() - self.at
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------------

/// Encodes `msg` as one complete frame appended to `out` (header +
/// payload, no intermediate allocation). The payload is written straight
/// after a reserved header whose length field is patched afterwards, so
/// batching multiple frames into one flush buffer costs no copies beyond
/// the field encoding itself. On error `out` is restored to its previous
/// length.
pub fn encode_frame_into(out: &mut Vec<u8>, msg: &WireMsg) -> EarResult<()> {
    let frame_start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(msg.tag());
    put_u32(out, 0); // length, patched below
    let payload_start = out.len();
    let body = (|| -> EarResult<()> {
        match msg {
            WireMsg::Ping { token } | WireMsg::Pong { token } => put_u64(out, *token),
            WireMsg::Request(EarlRequest::SetFreqs(f)) => {
                if f.imc_dom.is_per_domain() {
                    put_freqs_dom(out, f)?;
                } else {
                    put_freqs(out, f)?;
                }
            }
            WireMsg::Request(EarlRequest::ReportSignature(s)) => {
                if s.domain_count() > 1 {
                    put_signature_dom(out, s);
                } else {
                    put_signature(out, s);
                }
            }
            WireMsg::Reply(DaemonReply::FreqsApplied {
                requested,
                granted,
                clamped,
            }) => {
                if requested.imc_dom.is_per_domain() || granted.imc_dom.is_per_domain() {
                    put_freqs_dom(out, requested)?;
                    put_freqs_dom(out, granted)?;
                } else {
                    put_freqs(out, requested)?;
                    put_freqs(out, granted)?;
                }
                out.push(u8::from(*clamped));
            }
            WireMsg::Reply(DaemonReply::Rejected { requested }) => {
                if requested.imc_dom.is_per_domain() {
                    put_freqs_dom(out, requested)?;
                } else {
                    put_freqs(out, requested)?;
                }
            }
            WireMsg::SigAck { count } => put_u64(out, *count),
            WireMsg::PollPower { node } => put_u64(out, *node),
            WireMsg::Report(r) => {
                put_u64(out, r.node as u64);
                put_f64(out, r.avg_power_w);
            }
            WireMsg::Command(c) => {
                put_u64(out, c.node as u64);
                put_f64(out, c.cap_w);
            }
            WireMsg::CapAck { node, cap_w } => {
                put_u64(out, *node);
                put_f64(out, *cap_w);
            }
            WireMsg::Error { message } => out.extend_from_slice(message.as_bytes()),
            WireMsg::Shutdown | WireMsg::ShutdownAck => {}
        }
        let len = out.len() - payload_start;
        if len > MAX_PAYLOAD {
            return Err(proto(format!(
                "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte frame limit"
            )));
        }
        #[allow(clippy::cast_possible_truncation)]
        out[payload_start - 4..payload_start].copy_from_slice(&(len as u32).to_le_bytes());
        Ok(())
    })();
    if body.is_err() {
        out.truncate(frame_start);
    }
    body
}

/// Encodes `msg` as one complete frame (header + payload).
pub fn encode_frame(msg: &WireMsg) -> EarResult<Vec<u8>> {
    let mut frame = Vec::with_capacity(HEADER_LEN + 96);
    encode_frame_into(&mut frame, msg)?;
    Ok(frame)
}

/// Validates a frame header and returns `(tag, payload_len)`.
pub fn decode_header(header: &[u8; HEADER_LEN]) -> EarResult<(u8, usize)> {
    if header[0..2] != MAGIC {
        return Err(proto(format!(
            "bad frame magic {:02x}{:02x}",
            header[0], header[1]
        )));
    }
    if header[2] != VERSION {
        return Err(proto(format!(
            "unsupported protocol version {} (expected {VERSION})",
            header[2]
        )));
    }
    let tag = header[3];
    let mut lb = [0u8; 4];
    lb.copy_from_slice(&header[4..8]);
    let len = u32::from_le_bytes(lb) as usize;
    if len > MAX_PAYLOAD {
        return Err(proto(format!(
            "frame length {len} exceeds the {MAX_PAYLOAD}-byte limit"
        )));
    }
    Ok((tag, len))
}

/// Decodes one payload given its header tag.
pub fn decode_payload(tag: u8, payload: &[u8]) -> EarResult<WireMsg> {
    let mut c = Cursor::new(payload);
    let msg = match tag {
        1 => WireMsg::Ping {
            token: c.u64("ping.token")?,
        },
        2 => WireMsg::Pong {
            token: c.u64("pong.token")?,
        },
        3 => WireMsg::Request(EarlRequest::SetFreqs(c.freqs("set_freqs")?)),
        4 => WireMsg::Request(EarlRequest::ReportSignature(c.signature()?)),
        5 => {
            let requested = c.freqs("freqs_applied.requested")?;
            let granted = c.freqs("freqs_applied.granted")?;
            let clamped = match c.u8("freqs_applied.clamped")? {
                0 => false,
                1 => true,
                other => return Err(proto(format!("clamped flag must be 0/1, got {other}"))),
            };
            WireMsg::Reply(DaemonReply::FreqsApplied {
                requested,
                granted,
                clamped,
            })
        }
        6 => WireMsg::Reply(DaemonReply::Rejected {
            requested: c.freqs("rejected.requested")?,
        }),
        7 => WireMsg::SigAck {
            count: c.u64("sig_ack.count")?,
        },
        8 => WireMsg::PollPower {
            node: c.u64("poll_power.node")?,
        },
        9 => WireMsg::Report(GmReport {
            node: c.u64("gm_report.node")? as usize,
            avg_power_w: c.f64("gm_report.avg_power_w")?,
        }),
        10 => WireMsg::Command(GmCommand {
            node: c.u64("gm_command.node")? as usize,
            cap_w: c.f64("gm_command.cap_w")?,
        }),
        11 => WireMsg::CapAck {
            node: c.u64("cap_ack.node")?,
            cap_w: c.f64("cap_ack.cap_w")?,
        },
        12 => {
            let bytes = c.take(payload.len(), "error.message")?;
            WireMsg::Error {
                message: std::str::from_utf8(bytes)
                    .map_err(|e| proto(format!("error message is not UTF-8: {e}")))?
                    .to_string(),
            }
        }
        13 => WireMsg::Shutdown,
        14 => WireMsg::ShutdownAck,
        15 => WireMsg::Request(EarlRequest::SetFreqs(c.freqs_dom("set_freqs_dom")?)),
        16 => WireMsg::Request(EarlRequest::ReportSignature(c.signature_dom()?)),
        17 => {
            let requested = c.freqs_dom("freqs_applied_dom.requested")?;
            let granted = c.freqs_dom("freqs_applied_dom.granted")?;
            let clamped = match c.u8("freqs_applied_dom.clamped")? {
                0 => false,
                1 => true,
                other => return Err(proto(format!("clamped flag must be 0/1, got {other}"))),
            };
            WireMsg::Reply(DaemonReply::FreqsApplied {
                requested,
                granted,
                clamped,
            })
        }
        18 => WireMsg::Reply(DaemonReply::Rejected {
            requested: c.freqs_dom("rejected_dom.requested")?,
        }),
        other => return Err(proto(format!("unknown frame tag {other}"))),
    };
    c.done(tag)?;
    Ok(msg)
}

/// Decodes one complete frame from `bytes`, returning the message and how
/// many bytes it consumed.
pub fn decode_frame(bytes: &[u8]) -> EarResult<(WireMsg, usize)> {
    if bytes.len() < HEADER_LEN {
        return Err(proto(format!(
            "truncated frame: {} of {HEADER_LEN} header bytes",
            bytes.len()
        )));
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let (tag, len) = decode_header(&header)?;
    let end = HEADER_LEN + len;
    if bytes.len() < end {
        return Err(proto(format!(
            "truncated frame: {} of {end} bytes",
            bytes.len()
        )));
    }
    Ok((decode_payload(tag, &bytes[HEADER_LEN..end])?, end))
}

// ---------------------------------------------------------------------------
// Stream IO
// ---------------------------------------------------------------------------

/// Maps an I/O failure on the frame stream to the unified error type,
/// preserving whether it was a deadline expiry.
pub fn io_to_ear(context: &str, e: &std::io::Error) -> EarError {
    if is_timeout(e) {
        proto(format!("{context}: deadline exceeded"))
    } else {
        EarError::Io {
            path: context.to_string(),
            message: e.to_string(),
        }
    }
}

/// Whether a unified error is a deadline expiry produced by [`io_to_ear`]
/// (drives the `timed_out` telemetry counter).
pub fn is_deadline_error(e: &EarError) -> bool {
    matches!(e, EarError::Protocol(m) if m.ends_with("deadline exceeded"))
}

/// Whether an I/O error is a read/write deadline expiry. Both classifier
/// kinds appear in practice: `WouldBlock` from sockets with SO_RCVTIMEO on
/// Linux, `TimedOut` from the in-memory pipe and other platforms.
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Writes one frame to `w` and flushes.
pub fn write_frame<W: Write>(w: &mut W, msg: &WireMsg) -> EarResult<()> {
    let frame = encode_frame(msg)?;
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| io_to_ear("write frame", &e))
}

/// Reads exactly `buf.len()` bytes. `Ok(false)` means the stream was
/// already closed (zero bytes read) — a clean end between frames.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> EarResult<bool> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 => return Ok(false),
            Ok(0) => {
                return Err(proto(format!(
                    "connection closed mid-frame after {got} bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_to_ear("read frame", &e)),
        }
    }
    Ok(true)
}

/// Reads one frame from `r`. `Ok(None)` is a clean close at a frame
/// boundary; every malformed, truncated or oversized frame is a typed
/// error.
pub fn read_frame<R: Read>(r: &mut R) -> EarResult<Option<WireMsg>> {
    let mut header = [0u8; HEADER_LEN];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    let (tag, len) = decode_header(&header)?;
    let mut payload = vec![0u8; len];
    if len > 0 && !read_exact_or_eof(r, &mut payload)? {
        return Err(proto("connection closed before the frame payload"));
    }
    Ok(Some(decode_payload(tag, &payload)?))
}

// ---------------------------------------------------------------------------
// Zero-copy incremental decoding
// ---------------------------------------------------------------------------

/// How many bytes [`FrameBuffer::fill_from`] asks the transport for at a
/// time. One read drains a typical socket buffer's worth of coalesced
/// frames.
pub const READ_CHUNK: usize = 16 * 1024;

/// A connection's receive buffer plus an incremental, zero-copy frame
/// decoder over it.
///
/// Bytes arrive in arbitrary splits — one byte at a time, header/payload
/// straddles, many frames coalesced into one read — and accumulate in one
/// contiguous buffer. [`FrameBuffer::next_frame`] decodes the next complete
/// frame *in place* (the payload cursor walks the buffer directly; no
/// intermediate per-frame `Vec` as the blocking [`read_frame`] path
/// allocates) and returns `Ok(None)` while the frame is still incomplete.
/// Consumed bytes are reclaimed by shifting only when the dead prefix has
/// grown past half the buffer, so steady-state costs are amortised O(1)
/// per byte.
///
/// The window `buf[start..end]` holds the undecoded bytes; `buf` beyond
/// `end` is initialised spare capacity, so refills never re-zero memory.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Undecoded bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer holds a partial frame (drives the mid-frame vs
    /// clean-close distinction when the peer hangs up).
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// Reclaims consumed prefix space. Cheap bookkeeping when fully
    /// drained; a single `copy_within` shift otherwise, done only once the
    /// dead prefix dominates.
    fn compact(&mut self) {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        } else if self.start > self.buf.len() / 2 && self.start >= READ_CHUNK {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
    }

    /// Appends raw bytes (the in-process delivery path: tests feeding
    /// adversarial splits, the cluster simulator's wire).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.compact();
        if self.end + bytes.len() > self.buf.len() {
            self.buf.resize(self.end + bytes.len(), 0);
        }
        self.buf[self.end..self.end + bytes.len()].copy_from_slice(bytes);
        self.end += bytes.len();
    }

    /// One `read` from the transport into spare capacity. Returns the byte
    /// count (0 is EOF); `WouldBlock`/`TimedOut` surface as `Err` for the
    /// caller to classify via [`is_timeout`].
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        self.compact();
        if self.buf.len() < self.end + READ_CHUNK {
            self.buf.resize(self.end + READ_CHUNK, 0);
        }
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Decodes the next complete frame straight from the buffer.
    /// `Ok(None)`: more bytes needed. `Err`: the stream is corrupt at the
    /// current position (the caller must drop the connection; resync is
    /// impossible on a length-prefixed stream).
    pub fn next_frame(&mut self) -> EarResult<Option<WireMsg>> {
        let avail = &self.buf[self.start..self.end];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&avail[..HEADER_LEN]);
        let (tag, len) = decode_header(&header)?;
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let msg = decode_payload(tag, &avail[HEADER_LEN..HEADER_LEN + len])?;
        self.start += HEADER_LEN + len;
        self.compact();
        Ok(Some(msg))
    }
}
