//! Property-style codec tests: every variant round-trips bit-identically,
//! and no byte sequence — truncated, oversized, bit-flipped or random —
//! ever panics the decoder. Written against a seeded corpus instead of
//! `proptest` so the sweep runs everywhere the crate builds.

use ear_core::policy::NodeFreqs;
use ear_core::protocol::{DaemonReply, EarlRequest, GmCommand, GmReport};
use ear_core::{DomainLimits, Signature};
use ear_errors::EarError;
use ear_netd::codec::{
    decode_frame, encode_frame, io_to_ear, is_deadline_error, read_frame, write_frame,
};
use ear_netd::{WireMsg, HEADER_LEN, MAX_PAYLOAD};

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn sample_signature(bits: u64) -> Signature {
    // Legacy (tag 4) frames drop the per-domain arrays and the decoder
    // mirrors the scalar fields into domain 0; the sample carries that
    // same view so the round-trip is exact.
    let mut s = Signature {
        iterations: (bits % 1000) as u32,
        window_s: 10.0,
        cpi: 0.83,
        tpi: 1.52,
        gbs: 81.5,
        vpi: 0.05,
        dc_power_w: 251.25,
        pkg_power_w: 180.5,
        avg_cpu_khz: 2_394_117.0,
        avg_imc_khz: 2_000_333.0,
        ..Signature::default()
    };
    s.imc_dom_khz[0] = s.avg_imc_khz;
    s.gbs_dom[0] = s.gbs;
    s
}

/// A multi-die signature (travels under the per-domain tag 16).
fn sample_signature_dom(bits: u64, domains: u8) -> Signature {
    let mut s = sample_signature(bits);
    s.imc_domains = domains;
    for k in 0..usize::from(domains) {
        s.imc_dom_khz[k] = 2_400_000.0 - 300_000.0 * k as f64;
        s.gbs_dom[k] = 90.5 - 25.0 * k as f64;
    }
    s
}

fn freqs(cpu: usize, lo: u8, hi: u8) -> NodeFreqs {
    NodeFreqs {
        cpu,
        imc_min_ratio: lo,
        imc_max_ratio: hi,
        imc_dom: DomainLimits::LEGACY,
    }
}

/// Per-domain limits with distinct per-die maxima (tags 15/17/18).
fn freqs_dom(cpu: usize, maxes: &[u8]) -> NodeFreqs {
    let mut f = freqs(cpu, 12, 24);
    let mut dom = DomainLimits::uniform(maxes.len(), 12, 24);
    for (d, &m) in maxes.iter().enumerate().take(dom.count()) {
        dom.max[d] = m;
    }
    f.imc_dom = dom;
    f
}

/// One instance of every wire message (the NaN payload case is separate).
fn all_variants() -> Vec<WireMsg> {
    vec![
        WireMsg::Ping { token: 0 },
        WireMsg::Ping { token: u64::MAX },
        WireMsg::Pong {
            token: 0xDEAD_BEEF_CAFE_F00D,
        },
        WireMsg::Request(EarlRequest::SetFreqs(freqs(3, 12, 24))),
        WireMsg::Request(EarlRequest::ReportSignature(sample_signature(7))),
        WireMsg::Reply(DaemonReply::FreqsApplied {
            requested: freqs(0, 8, 24),
            granted: freqs(2, 8, 20),
            clamped: true,
        }),
        WireMsg::Reply(DaemonReply::FreqsApplied {
            requested: freqs(1, 12, 18),
            granted: freqs(1, 12, 18),
            clamped: false,
        }),
        WireMsg::Reply(DaemonReply::Rejected {
            requested: freqs(9, 6, 30),
        }),
        // Per-domain variants (tags 15–18).
        WireMsg::Request(EarlRequest::SetFreqs(freqs_dom(2, &[22, 14]))),
        WireMsg::Request(EarlRequest::SetFreqs(freqs_dom(0, &[24, 24, 18, 12]))),
        WireMsg::Request(EarlRequest::ReportSignature(sample_signature_dom(11, 2))),
        WireMsg::Request(EarlRequest::ReportSignature(sample_signature_dom(13, 4))),
        WireMsg::Reply(DaemonReply::FreqsApplied {
            requested: freqs_dom(0, &[24, 24]),
            granted: freqs_dom(1, &[20, 20]),
            clamped: true,
        }),
        // Asymmetric: a per-domain request granted on the legacy path
        // still travels whole under tag 17.
        WireMsg::Reply(DaemonReply::FreqsApplied {
            requested: freqs_dom(1, &[23, 17]),
            granted: freqs(1, 12, 20),
            clamped: true,
        }),
        WireMsg::Reply(DaemonReply::Rejected {
            requested: freqs_dom(3, &[30, 6]),
        }),
        WireMsg::SigAck { count: 42 },
        WireMsg::PollPower { node: 17 },
        WireMsg::Report(GmReport {
            node: 3,
            avg_power_w: 312.75,
        }),
        WireMsg::Command(GmCommand {
            node: 5,
            cap_w: 287.5,
        }),
        WireMsg::CapAck {
            node: 5,
            cap_w: 287.5,
        },
        WireMsg::Error {
            message: "server saturated".to_string(),
        },
        WireMsg::Error {
            message: String::new(),
        },
        WireMsg::Shutdown,
        WireMsg::ShutdownAck,
    ]
}

#[test]
fn every_variant_roundtrips_exactly() {
    for msg in all_variants() {
        let frame = encode_frame(&msg).expect("encode");
        let (decoded, consumed) = decode_frame(&frame).expect("decode");
        assert_eq!(consumed, frame.len(), "{}: partial consume", msg.kind());
        assert_eq!(decoded, msg, "{}: value changed on the wire", msg.kind());
        // Bit-exactness beyond PartialEq: re-encoding must reproduce the
        // original frame bytes.
        assert_eq!(
            encode_frame(&decoded).expect("re-encode"),
            frame,
            "{}: re-encoded frame differs",
            msg.kind()
        );
    }
}

#[test]
fn nan_payload_bits_roundtrip() {
    // A quiet NaN with payload bits set: PartialEq can't see it (NaN !=
    // NaN), the bit pattern must survive anyway.
    let nan = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
    let msg = WireMsg::Report(GmReport {
        node: 1,
        avg_power_w: nan,
    });
    let frame = encode_frame(&msg).expect("encode");
    let (decoded, _) = decode_frame(&frame).expect("decode");
    match decoded {
        WireMsg::Report(r) => assert_eq!(r.avg_power_w.to_bits(), nan.to_bits()),
        other => panic!("expected gm_report, got {}", other.kind()),
    }
    assert_eq!(encode_frame(&decoded).expect("re-encode"), frame);
}

#[test]
fn every_truncation_is_a_typed_error() {
    for msg in all_variants() {
        let frame = encode_frame(&msg).expect("encode");
        for cut in 0..frame.len() {
            // Skip cuts that still leave a complete *shorter* valid frame
            // impossible: a prefix of a valid frame can never decode,
            // because the header length field demands the full payload.
            let r = decode_frame(&frame[..cut]);
            assert!(
                matches!(r, Err(EarError::Protocol(_))),
                "{} cut at {cut}: expected typed protocol error, got {r:?}",
                msg.kind()
            );
        }
    }
}

#[test]
fn oversized_frames_are_rejected_from_the_header() {
    let mut frame = encode_frame(&WireMsg::Shutdown).expect("encode");
    // Patch the length field to something hostile; no payload follows.
    frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    let r = decode_frame(&frame);
    assert!(
        matches!(&r, Err(EarError::Protocol(m)) if m.contains("exceeds")),
        "hostile length must be rejected from the header alone: {r:?}"
    );

    // The encoder enforces the same bound.
    let huge = WireMsg::Error {
        message: "x".repeat(MAX_PAYLOAD + 1),
    };
    assert!(matches!(encode_frame(&huge), Err(EarError::Protocol(_))));
}

#[test]
fn bad_magic_version_tag_and_trailing_bytes() {
    let good = encode_frame(&WireMsg::SigAck { count: 1 }).expect("encode");

    let mut bad = good.clone();
    bad[0] = 0x00;
    assert!(matches!(decode_frame(&bad), Err(EarError::Protocol(m)) if m.contains("magic")));

    let mut bad = good.clone();
    bad[2] = 99;
    assert!(matches!(decode_frame(&bad), Err(EarError::Protocol(m)) if m.contains("version")));

    let mut bad = good.clone();
    bad[3] = 200;
    assert!(matches!(decode_frame(&bad), Err(EarError::Protocol(m)) if m.contains("tag")));

    // A payload longer than the tag's layout is trailing garbage.
    let mut bad = good.clone();
    bad.push(0);
    let len = (bad.len() - HEADER_LEN) as u32;
    bad[4..8].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(decode_frame(&bad), Err(EarError::Protocol(m)) if m.contains("trailing")));
}

#[test]
fn exhaustive_bit_flip_sweep_never_panics() {
    // Flip every single bit of every sample frame: decode must return
    // *something* — Ok for benign flips (payload bits), a typed error for
    // structural ones — and never panic or misreport the consumed length.
    for msg in all_variants() {
        let frame = encode_frame(&msg).expect("encode");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut f = frame.clone();
                f[byte] ^= 1 << bit;
                if let Ok((_, consumed)) = decode_frame(&f) {
                    assert!(consumed <= f.len());
                }
            }
        }
    }
}

#[test]
fn exhaustive_bit_flip_sweep_agrees_with_the_zero_copy_decoder() {
    // The incremental FrameBuffer decoder must classify every single-bit
    // corruption exactly like the one-shot path: same Ok/Err verdict, same
    // decoded message when Ok — and never panic. (An Ok whose flipped
    // length field differs makes the buffer wait for more bytes; that
    // shows up as Ok(None) here and is the one legitimate divergence.)
    use ear_netd::codec::FrameBuffer;
    for msg in all_variants() {
        let frame = encode_frame(&msg).expect("encode");
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut f = frame.clone();
                f[byte] ^= 1 << bit;
                let mut fb = FrameBuffer::new();
                fb.push_bytes(&f);
                match (decode_frame(&f), fb.next_frame()) {
                    (Ok((a, consumed)), Ok(Some(b))) => {
                        // Bit-exact agreement (PartialEq would trip over
                        // flips that produce NaN): re-encoding both must
                        // yield identical frames.
                        assert_eq!(
                            encode_frame(&a).expect("re-encode"),
                            encode_frame(&b).expect("re-encode"),
                            "{}: decoders disagree",
                            msg.kind()
                        );
                        // A flip may shrink the frame to a shorter valid
                        // one; the stream decoder then keeps the
                        // remainder buffered as the next frame's prefix.
                        assert!(consumed <= f.len());
                        assert_eq!(fb.buffered(), f.len() - consumed);
                    }
                    // A flipped length field can make the one-shot path
                    // reject trailing bytes while the stream path keeps
                    // waiting for the longer advertised payload (or vice
                    // versa reject a truncation the buffer still expects).
                    (Err(_), Ok(None)) | (Err(_), Err(_)) => {}
                    (Ok(_), Ok(None)) => {
                        // One-shot decoded a shorter frame; the buffer
                        // must then also produce it once drained — only a
                        // length flip shrinking the frame lands here.
                        assert!((4..8).contains(&byte), "unexpected wait at byte {byte}");
                    }
                    (a, b) => panic!(
                        "{} byte {byte} bit {bit}: one-shot {a:?} vs buffered {b:?}",
                        msg.kind()
                    ),
                }
            }
        }
    }
}

#[test]
fn seeded_random_corpus_never_panics() {
    let mut rng = 0x0DDB_1A5E_5BAD_5EEDu64;
    for round in 0..2000 {
        let len = (xorshift(&mut rng) % 128) as usize;
        let mut buf = vec![0u8; len];
        for b in &mut buf {
            *b = (xorshift(&mut rng) & 0xFF) as u8;
        }
        // Half the corpus gets a valid header prefix so payload decoding
        // is exercised, not just magic rejection.
        if round % 2 == 0 && buf.len() >= HEADER_LEN {
            buf[0] = 0xEA;
            buf[1] = 0x5D;
            buf[2] = 1;
            buf[3] = (xorshift(&mut rng) % 20) as u8;
            let plen = (buf.len() - HEADER_LEN) as u32;
            buf[4..8].copy_from_slice(&plen.to_le_bytes());
        }
        let _ = decode_frame(&buf); // must not panic
        let _ = read_frame(&mut buf.as_slice()); // stream path, same rule
    }
}

#[test]
fn stream_read_distinguishes_clean_close_from_mid_frame_death() {
    let msg = WireMsg::Ping { token: 7 };
    let mut stream = Vec::new();
    write_frame(&mut stream, &msg).expect("write");

    // Clean close at a frame boundary: one message, then None.
    let mut r = stream.as_slice();
    assert_eq!(read_frame(&mut r).expect("read"), Some(msg));
    assert_eq!(read_frame(&mut r).expect("eof"), None);

    // Death mid-frame: typed error, not a clean close.
    let mut torn = &stream[..stream.len() - 3];
    assert!(matches!(
        read_frame(&mut torn),
        Err(EarError::Protocol(m)) if m.contains("mid-frame")
    ));
}

#[test]
fn deadline_classification() {
    let timeout = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow");
    let wouldblock = std::io::Error::new(std::io::ErrorKind::WouldBlock, "slow");
    let broken = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone");
    assert!(is_deadline_error(&io_to_ear("read", &timeout)));
    assert!(is_deadline_error(&io_to_ear("read", &wouldblock)));
    assert!(!is_deadline_error(&io_to_ear("read", &broken)));
}
