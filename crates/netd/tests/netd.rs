//! End-to-end tests of the networked daemon stack: the in-memory pipe and
//! Unix-socket transports must behave identically (byte-identical reply
//! streams), a peer dying mid-frame must degrade to a typed error, the
//! shutdown poison frame must drain the server cleanly, and the EARGM
//! poller must redistribute the cluster budget over every daemon.

use ear_core::policy::NodeFreqs;
use ear_core::protocol::EarlRequest;
use ear_netd::codec::encode_frame;
use ear_netd::server::{self, EardConfig, ServerConfig};
use ear_netd::{loadgen, ClientConfig, EargmPoller, Endpoint, NetClient, NetListener, WireMsg};
use std::time::Duration;

fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(2),
        retries: 1,
        backoff_base: Duration::from_millis(1),
        ..ClientConfig::default()
    }
}

fn test_server_cfg(node: u64) -> ServerConfig {
    ServerConfig {
        eard: EardConfig {
            node,
            ceiling: Some(NodeFreqs {
                cpu: 1,
                imc_min_ratio: 8,
                imc_max_ratio: 20,
                imc_dom: ear_core::DomainLimits::LEGACY,
            }),
            idle_power_w: 120.0,
        },
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        // A safety net, not the exit path: tests end via the poison frame.
        max_seconds: Some(30.0),
        ..ServerConfig::default()
    }
}

fn uds_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("earsim-test-{tag}-{}.sock", std::process::id()))
}

/// Drives a fixed request stream through one client and returns every
/// reply as its encoded frame bytes.
fn drive(endpoint: &Endpoint, requests: u64) -> Vec<Vec<u8>> {
    let mut client = NetClient::new(endpoint.clone(), fast_client());
    (0..requests)
        .map(|i| {
            let reply = client
                .request_with_retry(&loadgen::nth_request(0, i))
                .expect("request");
            encode_frame(&reply).expect("encode reply")
        })
        .collect()
}

#[test]
fn pipe_end_to_end_with_clamping_and_clean_shutdown() {
    let (listener, endpoint) = NetListener::in_memory();
    let handle = server::spawn(listener, test_server_cfg(4));

    let mut client = NetClient::new(endpoint, fast_client());
    client.ping(0xFEED).expect("ping");

    // A request for pstate 0 must be clamped to the ceiling's pstate 1,
    // and the IMC window must be bounded by the ceiling's max ratio 20.
    let req = NodeFreqs {
        cpu: 0,
        imc_min_ratio: 12,
        imc_max_ratio: 24,
        imc_dom: ear_core::DomainLimits::LEGACY,
    };
    match client
        .request_with_retry(&WireMsg::Request(EarlRequest::SetFreqs(req)))
        .expect("set_freqs")
    {
        WireMsg::Reply(ear_core::protocol::DaemonReply::FreqsApplied {
            requested,
            granted,
            clamped,
        }) => {
            assert_eq!(requested, req);
            assert!(clamped);
            assert_eq!(granted.cpu, 1);
            assert_eq!(granted.imc_max_ratio, 20);
        }
        other => panic!("expected freqs_applied, got {}", other.kind()),
    }

    // Before any signature the daemon reports its idle power.
    match client
        .request_with_retry(&WireMsg::PollPower { node: 4 })
        .expect("poll")
    {
        WireMsg::Report(r) => {
            assert_eq!(r.node, 4);
            assert!((r.avg_power_w - 120.0).abs() < 1e-9);
        }
        other => panic!("expected gm_report, got {}", other.kind()),
    }

    client.shutdown().expect("shutdown");
    let report = handle.join().expect("server exits cleanly");
    assert!(report.shutdown_requested, "exit must be the poison frame");
    assert!(report.accepted >= 1);
    assert!(report.requests >= 4);
    assert_eq!(report.conn_errors, 0);
}

#[test]
fn pipe_and_unix_socket_produce_byte_identical_replies() {
    const N: u64 = 24;

    let (mem_listener, mem_endpoint) = NetListener::in_memory();
    let mem_server = server::spawn(mem_listener, test_server_cfg(0));
    let mem_replies = drive(&mem_endpoint, N);
    NetClient::new(mem_endpoint, fast_client())
        .shutdown()
        .expect("mem shutdown");
    mem_server.join().expect("mem server");

    let path = uds_path("replay");
    let uds_listener =
        NetListener::bind(path.to_str().expect("utf-8 temp path")).expect("bind uds");
    let uds_server = server::spawn(uds_listener, test_server_cfg(0));
    let uds_endpoint = Endpoint::Unix(path);
    let uds_replies = drive(&uds_endpoint, N);
    NetClient::new(uds_endpoint, fast_client())
        .shutdown()
        .expect("uds shutdown");
    uds_server.join().expect("uds server");

    assert_eq!(mem_replies.len(), uds_replies.len());
    for (i, (a, b)) in mem_replies.iter().zip(&uds_replies).enumerate() {
        assert_eq!(a, b, "reply {i} differs between pipe and unix socket");
    }
}

#[test]
fn killing_a_connection_mid_frame_never_kills_the_server() {
    let path = uds_path("midframe");
    let listener = NetListener::bind(path.to_str().expect("utf-8 temp path")).expect("bind");
    let handle = server::spawn(listener, test_server_cfg(0));
    let endpoint = Endpoint::Unix(path);

    // Write a header promising 16 payload bytes, deliver 3, die.
    {
        let mut conn = endpoint.connect(Duration::from_secs(2)).expect("connect");
        let mut torn = encode_frame(&WireMsg::Ping { token: 1 }).expect("encode");
        torn[4..8].copy_from_slice(&16u32.to_le_bytes());
        torn.truncate(8 + 3);
        use std::io::Write;
        conn.write_all(&torn).expect("partial write");
        conn.flush().expect("flush");
    } // dropped: the peer dies mid-frame

    // The server must still serve a fresh, well-behaved client.
    let mut client = NetClient::new(endpoint, fast_client());
    client.ping(7).expect("server survived the torn frame");
    client.shutdown().expect("shutdown");

    let report = handle.join().expect("server exits");
    assert!(report.shutdown_requested);
    assert_eq!(
        report.conn_errors, 1,
        "the torn connection must be counted as exactly one typed error"
    );
}

#[test]
fn saturated_server_rejects_with_an_error_frame() {
    let (listener, endpoint) = NetListener::in_memory();
    let mut cfg = test_server_cfg(0);
    cfg.workers = 0; // every connection is one too many
    cfg.max_seconds = Some(2.0);
    let handle = server::spawn(listener, cfg);

    // The refusal races the client's write: depending on timing the
    // client sees the "server saturated" error frame or a dead pipe —
    // either way it must be an error, never a reply.
    let mut client = NetClient::new(endpoint.clone(), fast_client());
    client.ping(1).expect_err("saturated server must refuse");

    // The poison frame is also refused at workers = 0; stop via budget.
    drop(endpoint);
    let report = handle.join().expect("server exits on its budget");
    assert!(report.rejected >= 1);
    assert_eq!(report.accepted, 0);
}

#[test]
fn request_deadline_surfaces_as_typed_timeout() {
    // A listener nobody services: accepted connections never get replies.
    let (listener, endpoint) = NetListener::in_memory();
    let acceptor = std::thread::spawn(move || {
        // Hold accepted connections open (unanswered) until dropped.
        let mut held = Vec::new();
        while let Ok(conn) = listener.accept_timeout(Duration::from_millis(50)) {
            if let Some(c) = conn {
                held.push(c);
            }
            if !held.is_empty() {
                std::thread::sleep(Duration::from_millis(400));
                break;
            }
        }
        drop(held);
    });

    let mut cfg = fast_client();
    cfg.request_timeout = Duration::from_millis(50);
    cfg.retries = 0;
    let mut client = NetClient::new(endpoint, cfg);
    let err = client.ping(9).expect_err("no reply must hit the deadline");
    assert!(
        ear_netd::codec::is_deadline_error(&err),
        "expected a deadline error, got: {err}"
    );
    acceptor.join().expect("acceptor thread");
}

#[test]
fn poller_redistributes_the_budget_over_three_daemons() {
    const NODES: usize = 3;
    const BUDGET_W: f64 = 600.0;

    let mut handles = Vec::new();
    let mut endpoints = Vec::new();
    for node in 0..NODES {
        let (listener, endpoint) = NetListener::in_memory();
        let mut cfg = test_server_cfg(node as u64);
        cfg.eard.ceiling = None;
        // Distinct idle powers make the proportional split observable.
        cfg.eard.idle_power_w = 100.0 + 50.0 * node as f64; // 100, 150, 200
        handles.push(server::spawn(listener, cfg));
        endpoints.push(endpoint);
    }

    let mut poller = EargmPoller::new(endpoints.clone(), &fast_client(), BUDGET_W);
    assert_eq!(poller.daemons(), NODES);
    let round = poller.poll_once().expect("poll round");
    assert_eq!(poller.rounds(), 1);

    assert_eq!(round.reports.len(), NODES);
    for (i, r) in round.reports.iter().enumerate() {
        assert_eq!(r.node, i, "reports must come back in daemon order");
    }
    assert!((round.cluster_power_w() - 450.0).abs() < 1e-9);

    // distribute_budget splits proportionally to demand: 600 * d / 450.
    assert_eq!(round.commands.len(), NODES);
    let total_cap: f64 = round.commands.iter().map(|c| c.cap_w).sum();
    assert!((total_cap - BUDGET_W).abs() < 1e-6);
    for (r, c) in round.reports.iter().zip(&round.commands) {
        let expected = BUDGET_W * r.avg_power_w / 450.0;
        assert_eq!(c.node, r.node);
        assert!(
            (c.cap_w - expected).abs() < 1e-9,
            "node {}: cap {} != expected {expected}",
            c.node,
            c.cap_w
        );
    }
    assert!(round.lanes >= 1 && round.lanes <= NODES);

    // Close the poller's connections first so the daemons see clean
    // closes, not idle-deadline collections, before the poison frames.
    drop(poller);
    for endpoint in endpoints {
        NetClient::new(endpoint, fast_client())
            .shutdown()
            .expect("daemon shutdown");
    }
    for h in handles {
        let report = h.join().expect("daemon exits");
        assert!(report.shutdown_requested);
        assert_eq!(report.conn_errors, 0);
    }
}

#[test]
fn loadgen_closed_loop_over_the_pipe() {
    let (listener, endpoint) = NetListener::in_memory();
    let handle = server::spawn(listener, test_server_cfg(0));

    let cfg = loadgen::LoadgenConfig {
        clients: 4,
        duration: Duration::from_millis(300),
        client: fast_client(),
        shutdown_after: true,
    };
    let report = loadgen::run(&endpoint, &cfg).expect("loadgen");
    assert!(report.requests > 0, "closed loop must complete requests");
    assert_eq!(report.errors, 0);
    assert!(report.throughput() > 0.0);
    assert_eq!(report.histogram.count(), report.requests);
    // Quantiles are monotone in q.
    let (p50, p95, p99) = (
        report.histogram.quantile(0.50),
        report.histogram.quantile(0.95),
        report.histogram.quantile(0.99),
    );
    assert!(p50 <= p95 && p95 <= p99);

    let sreport = handle.join().expect("server exits");
    assert!(
        sreport.shutdown_requested,
        "--shutdown must drain the daemon"
    );
    assert_eq!(sreport.conn_errors, 0);
}

// ---------------------------------------------------------------------------
// The readiness-loop server must honour the exact same contract.
// ---------------------------------------------------------------------------

#[test]
fn async_server_replies_are_byte_identical_across_all_transports_and_servers() {
    const N: u64 = 24;

    // Reference stream: the blocking server over the pipe.
    let (listener, endpoint) = NetListener::in_memory();
    let blocking = server::spawn(listener, test_server_cfg(0));
    let reference = drive(&endpoint, N);
    NetClient::new(endpoint, fast_client())
        .shutdown()
        .expect("blocking shutdown");
    blocking.join().expect("blocking server");

    // Async over the pipe.
    let (listener, endpoint) = NetListener::in_memory();
    let mem = server::spawn_async(listener, test_server_cfg(0));
    let mem_replies = drive(&endpoint, N);
    NetClient::new(endpoint, fast_client())
        .shutdown()
        .expect("mem shutdown");
    mem.join().expect("async mem server");

    // Async over a Unix socket.
    let path = uds_path("async-replay");
    let listener = NetListener::bind(path.to_str().expect("utf-8 temp path")).expect("bind uds");
    let uds = server::spawn_async(listener, test_server_cfg(0));
    let uds_endpoint = Endpoint::Unix(path);
    let uds_replies = drive(&uds_endpoint, N);
    NetClient::new(uds_endpoint, fast_client())
        .shutdown()
        .expect("uds shutdown");
    uds.join().expect("async uds server");

    // Async over TCP (ephemeral port, read back from the listener).
    let listener = NetListener::bind("127.0.0.1:0").expect("bind tcp");
    let addr = listener
        .describe()
        .strip_prefix("tcp:")
        .expect("tcp listener description")
        .to_string();
    let tcp = server::spawn_async(listener, test_server_cfg(0));
    let tcp_endpoint = Endpoint::Tcp(addr);
    let tcp_replies = drive(&tcp_endpoint, N);
    NetClient::new(tcp_endpoint, fast_client())
        .shutdown()
        .expect("tcp shutdown");
    tcp.join().expect("async tcp server");

    for (label, stream) in [
        ("pipe", &mem_replies),
        ("uds", &uds_replies),
        ("tcp", &tcp_replies),
    ] {
        assert_eq!(reference.len(), stream.len());
        for (i, (a, b)) in reference.iter().zip(stream.iter()).enumerate() {
            assert_eq!(
                a, b,
                "reply {i} over {label} differs from the blocking server"
            );
        }
    }
}

#[test]
fn async_server_survives_a_mid_frame_kill() {
    let path = uds_path("async-midframe");
    let listener = NetListener::bind(path.to_str().expect("utf-8 temp path")).expect("bind");
    let handle = server::spawn_async(listener, test_server_cfg(0));
    let endpoint = Endpoint::Unix(path);

    {
        let mut conn = endpoint.connect(Duration::from_secs(2)).expect("connect");
        let mut torn = encode_frame(&WireMsg::Ping { token: 1 }).expect("encode");
        torn[4..8].copy_from_slice(&16u32.to_le_bytes());
        torn.truncate(8 + 3);
        use std::io::Write;
        conn.write_all(&torn).expect("partial write");
        conn.flush().expect("flush");
    } // dropped: the peer dies mid-frame

    let mut client = NetClient::new(endpoint, fast_client());
    client.ping(7).expect("server survived the torn frame");
    client.shutdown().expect("shutdown");

    let report = handle.join().expect("server exits");
    assert!(report.shutdown_requested);
    assert_eq!(
        report.conn_errors, 1,
        "the torn connection must be counted as exactly one typed error"
    );
}

#[test]
fn async_saturated_server_rejects_with_an_error_frame() {
    let (listener, endpoint) = NetListener::in_memory();
    let mut cfg = test_server_cfg(0);
    cfg.workers = 0;
    cfg.max_seconds = Some(2.0);
    let handle = server::spawn_async(listener, cfg);

    let mut client = NetClient::new(endpoint.clone(), fast_client());
    client.ping(1).expect_err("saturated server must refuse");

    drop(endpoint);
    let report = handle.join().expect("server exits on its budget");
    assert!(report.rejected >= 1);
    assert_eq!(report.accepted, 0);
}

#[test]
fn async_server_coalesces_pipelined_requests_into_batched_flushes() {
    const PIPELINED: u64 = 10;

    let path = uds_path("async-pipeline");
    let listener = NetListener::bind(path.to_str().expect("utf-8 temp path")).expect("bind");
    let handle = server::spawn_async(listener, test_server_cfg(0));
    let endpoint = Endpoint::Unix(path);

    // Write a burst of frames before reading anything: the readiness loop
    // decodes them all from one buffer fill and answers with one write.
    let mut conn = endpoint.connect(Duration::from_secs(2)).expect("connect");
    use std::io::Write;
    let mut burst = Vec::new();
    for token in 0..PIPELINED {
        burst.extend_from_slice(&encode_frame(&WireMsg::Ping { token }).expect("encode"));
    }
    conn.write_all(&burst).expect("burst write");
    conn.flush().expect("flush");
    conn.set_io_timeouts(Some(Duration::from_secs(2)), Some(Duration::from_secs(2)))
        .expect("timeouts");
    for token in 0..PIPELINED {
        match conn.read_msg().expect("read reply") {
            Some(WireMsg::Pong { token: echoed }) => assert_eq!(echoed, token),
            other => panic!("expected pong {token}, got {other:?}"),
        }
    }
    drop(conn);

    NetClient::new(endpoint, fast_client())
        .shutdown()
        .expect("shutdown");
    let report = handle.join().expect("server exits");
    assert_eq!(report.requests, PIPELINED + 1);
    assert_eq!(report.conn_errors, 0);
    // The global counter is monotone and shared across tests, so only its
    // floor is assertable: this burst must have produced at least one
    // multi-frame flush.
    assert!(
        ear_netd::stats::snapshot().batched_flushes >= 1,
        "a pipelined burst must coalesce replies into one write"
    );
}

#[test]
fn async_loadgen_over_uds_reports_dial_excluded_throughput() {
    let path = uds_path("async-loadgen");
    let listener = NetListener::bind(path.to_str().expect("utf-8 temp path")).expect("bind");
    let handle = server::spawn_async(listener, test_server_cfg(0));
    let endpoint = Endpoint::Unix(path);

    let cfg = loadgen::LoadgenConfig {
        clients: 4,
        duration: Duration::from_millis(300),
        client: fast_client(),
        shutdown_after: true,
    };
    let report = loadgen::run(&endpoint, &cfg).expect("loadgen");
    assert!(report.requests > 0);
    assert_eq!(report.errors, 0);
    assert!(report.active_seconds > 0.0);
    assert!(
        report.active_seconds <= report.seconds + 1e-9,
        "active window excludes dialing, so it can never exceed the wall clock"
    );
    assert!(report.histogram.min() > 0);
    assert!(report.histogram.min() <= report.histogram.quantile(0.5));
    assert!(report.histogram.max() >= report.histogram.quantile(0.99) / 2);

    let sreport = handle.join().expect("server exits");
    assert!(sreport.shutdown_requested);
    assert_eq!(sreport.conn_errors, 0);
}

#[test]
fn histogram_quantiles_resolve_to_bucket_upper_bounds() {
    let mut h = loadgen::LatencyHistogram::new();
    assert_eq!(h.quantile(0.5), 0, "empty histogram");
    for ns in [100u64, 200, 400, 100_000] {
        h.record(ns);
    }
    assert_eq!(h.count(), 4);
    // 100 and 200 ns land in buckets [64,128) and [128,256): the median
    // resolves to 255, the tail to the bucket holding 100 000 ns.
    assert_eq!(h.quantile(0.5), 255);
    assert_eq!(h.quantile(1.0), (1u64 << 17) - 1);

    let mut other = loadgen::LatencyHistogram::new();
    other.record(100);
    h.merge(&other);
    assert_eq!(h.count(), 5);
}
