//! Partial-frame reassembly: the zero-copy [`FrameBuffer`] decoder must
//! produce the exact same message stream no matter how adversarially the
//! transport splits the bytes — 1-byte reads, chunks straddling the
//! header/payload boundary, many frames coalesced into one read — because
//! the readiness-loop server sees all of these shapes from real sockets.

use ear_core::protocol::{EarlRequest, GmCommand, GmReport};
use ear_core::{DomainLimits, NodeFreqs, Signature};
use ear_netd::codec::{decode_frame, encode_frame, FrameBuffer};
use ear_netd::{WireMsg, HEADER_LEN};
use std::io::Read;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A deterministic message stream mixing every payload shape, including
/// the per-domain variants (tags 15/16).
fn sample_stream() -> Vec<WireMsg> {
    let mut msgs = Vec::new();
    for i in 0..42u64 {
        msgs.push(match i % 7 {
            0 => WireMsg::Ping { token: i },
            1 => {
                // Legacy (tag 4) frames drop the per-domain arrays; the
                // decoder mirrors the scalar fields into domain 0, so the
                // original must carry that same view to round-trip.
                let mut s = Signature {
                    iterations: i as u32 + 1,
                    window_s: 10.0,
                    cpi: 0.8,
                    tpi: 1.5,
                    gbs: 80.0,
                    vpi: 0.05,
                    dc_power_w: 250.0 + i as f64,
                    pkg_power_w: 180.0,
                    avg_cpu_khz: 2_400_000.0,
                    avg_imc_khz: 2_000_000.0,
                    ..Signature::default()
                };
                s.imc_dom_khz[0] = s.avg_imc_khz;
                s.gbs_dom[0] = s.gbs;
                WireMsg::Request(EarlRequest::ReportSignature(s))
            }
            2 => WireMsg::Report(GmReport {
                node: i as usize,
                avg_power_w: 100.0 + i as f64,
            }),
            3 => WireMsg::Command(GmCommand {
                node: i as usize,
                cap_w: 300.0,
            }),
            4 => WireMsg::Request(EarlRequest::SetFreqs(NodeFreqs {
                cpu: (i % 4) as usize,
                imc_min_ratio: 12,
                imc_max_ratio: 24,
                imc_dom: DomainLimits::uniform(2, 12, 18 + (i % 6) as u8),
            })),
            5 => {
                let mut s = Signature {
                    iterations: i as u32 + 1,
                    window_s: 10.0,
                    cpi: 0.9,
                    tpi: 1.2,
                    gbs: 120.0,
                    vpi: 0.02,
                    dc_power_w: 280.0,
                    pkg_power_w: 200.0,
                    avg_cpu_khz: 2_400_000.0,
                    avg_imc_khz: 2_100_000.0,
                    imc_domains: 2,
                    ..Signature::default()
                };
                s.imc_dom_khz[0] = 2_400_000.0;
                s.imc_dom_khz[1] = 1_800_000.0;
                s.gbs_dom[0] = 90.0 + i as f64;
                s.gbs_dom[1] = 30.0;
                WireMsg::Request(EarlRequest::ReportSignature(s))
            }
            _ => WireMsg::Error {
                message: format!("message {i}"),
            },
        });
    }
    msgs
}

fn encode_stream(msgs: &[WireMsg]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for m in msgs {
        bytes.extend_from_slice(&encode_frame(m).expect("encode"));
    }
    bytes
}

/// The one-shot reference: sequential `decode_frame` over the whole
/// contiguous byte stream.
fn decode_one_shot(bytes: &[u8]) -> Vec<WireMsg> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let (msg, used) = decode_frame(&bytes[pos..]).expect("one-shot decode");
        out.push(msg);
        pos += used;
    }
    out
}

/// A transport that delivers its bytes in scripted chunk sizes (cycling
/// when the script runs out).
struct ChunkedReader<'a> {
    data: &'a [u8],
    pos: usize,
    sizes: &'a [usize],
    k: usize,
}

impl<'a> ChunkedReader<'a> {
    fn new(data: &'a [u8], sizes: &'a [usize]) -> Self {
        ChunkedReader {
            data,
            pos: 0,
            sizes,
            k: 0,
        }
    }
}

impl Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let want = self.sizes[self.k % self.sizes.len()].max(1);
        self.k += 1;
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Pulls every message out of a reader through the incremental decoder,
/// interleaving fills and drains exactly like the server loop does.
fn decode_through<R: Read>(r: &mut R) -> Vec<WireMsg> {
    let mut fb = FrameBuffer::new();
    let mut out = Vec::new();
    loop {
        while let Some(msg) = fb.next_frame().expect("incremental decode") {
            out.push(msg);
        }
        if fb.fill_from(r).expect("fill") == 0 {
            assert!(!fb.mid_frame(), "stream must end at a frame boundary");
            return out;
        }
    }
}

#[test]
fn one_byte_reads_reproduce_the_one_shot_stream() {
    let msgs = sample_stream();
    let bytes = encode_stream(&msgs);
    let reference = decode_one_shot(&bytes);
    assert_eq!(reference, msgs);

    let mut r = ChunkedReader::new(&bytes, &[1]);
    assert_eq!(decode_through(&mut r), reference);
}

#[test]
fn header_and_payload_straddling_chunks_reproduce_the_one_shot_stream() {
    let msgs = sample_stream();
    let bytes = encode_stream(&msgs);
    let reference = decode_one_shot(&bytes);

    // Sizes chosen to land mid-header and mid-payload: 7 splits the
    // header one byte short, 3 and 5 walk through payloads misaligned,
    // 11 crosses frame boundaries.
    for sizes in [
        &[7usize, 1, 3][..],
        &[HEADER_LEN - 1, 2][..],
        &[3, 5, 11][..],
        &[HEADER_LEN, 1][..],
    ] {
        let mut r = ChunkedReader::new(&bytes, sizes);
        assert_eq!(decode_through(&mut r), reference, "sizes {sizes:?}");
    }
}

#[test]
fn coalesced_frames_in_one_read_reproduce_the_one_shot_stream() {
    let msgs = sample_stream();
    let bytes = encode_stream(&msgs);
    let reference = decode_one_shot(&bytes);

    // Chunks far larger than any frame: many frames arrive per read.
    for sizes in [&[256usize][..], &[1024][..], &[bytes.len()][..]] {
        let mut r = ChunkedReader::new(&bytes, sizes);
        assert_eq!(decode_through(&mut r), reference, "sizes {sizes:?}");
    }
}

#[test]
fn seeded_random_split_corpus_reproduces_the_one_shot_stream() {
    let msgs = sample_stream();
    let bytes = encode_stream(&msgs);
    let reference = decode_one_shot(&bytes);

    let mut rng = 0x5EED_CAFE_0123u64;
    for round in 0..200 {
        let mut sizes = Vec::new();
        for _ in 0..16 {
            sizes.push(1 + (xorshift(&mut rng) % 61) as usize);
        }
        let mut r = ChunkedReader::new(&bytes, &sizes);
        assert_eq!(decode_through(&mut r), reference, "round {round}");
    }
}

#[test]
fn push_bytes_path_matches_the_reader_path() {
    let msgs = sample_stream();
    let bytes = encode_stream(&msgs);
    let reference = decode_one_shot(&bytes);

    // The in-process delivery path (cluster daemons) must agree with the
    // reader path (sockets): push in odd chunks, draining between pushes.
    let mut fb = FrameBuffer::new();
    let mut out = Vec::new();
    let mut rng = 0xFEEDu64;
    let mut pos = 0;
    while pos < bytes.len() {
        let n = (1 + (xorshift(&mut rng) % 43) as usize).min(bytes.len() - pos);
        fb.push_bytes(&bytes[pos..pos + n]);
        pos += n;
        while let Some(msg) = fb.next_frame().expect("decode") {
            out.push(msg);
        }
    }
    assert!(!fb.mid_frame());
    assert_eq!(out, reference);
}

#[test]
fn eof_mid_frame_is_detectable() {
    let bytes = encode_stream(&sample_stream());
    let torn = &bytes[..bytes.len() - 3];
    let mut fb = FrameBuffer::new();
    let mut r = ChunkedReader::new(torn, &[13]);
    loop {
        while fb.next_frame().expect("decode").is_some() {}
        if fb.fill_from(&mut r).expect("fill") == 0 {
            break;
        }
    }
    assert!(
        fb.mid_frame(),
        "bytes left after EOF must read as a mid-frame death"
    );
}

#[test]
fn a_corrupt_frame_surfaces_as_a_typed_error_mid_stream() {
    let msgs = sample_stream();
    let mut bytes = encode_stream(&msgs);
    // Corrupt the magic of the 4th frame.
    let mut pos = 0;
    for _ in 0..3 {
        let (_, used) = decode_frame(&bytes[pos..]).expect("decode");
        pos += used;
    }
    bytes[pos] = 0x00;

    let mut fb = FrameBuffer::new();
    fb.push_bytes(&bytes);
    let mut ok = 0;
    let err = loop {
        match fb.next_frame() {
            Ok(Some(_)) => ok += 1,
            Ok(None) => panic!("corruption must surface as an error"),
            Err(e) => break e,
        }
    };
    assert_eq!(ok, 3, "frames before the corruption decode normally");
    assert!(matches!(err, ear_errors::EarError::Protocol(_)));
}
