//! Property tests for the batch scheduler: no double-booked nodes, FIFO
//! start order, makespan consistency — for arbitrary job mixes.

use ear_archsim::NodeConfig;
use ear_sched::BatchScheduler;
use proptest::prelude::*;

/// Small catalog workloads so each property case stays fast.
const APPS: &[&str] = &["BQCD", "BT-MZ.C (MPI)", "HPCG"];

fn arb_jobs() -> impl Strategy<Value = Vec<(usize, bool, f64)>> {
    proptest::collection::vec((0usize..APPS.len(), any::<bool>(), 0.0..500.0f64), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn schedule_is_conflict_free_and_fifo(jobs in arb_jobs()) {
        let mut sched = BatchScheduler::new(NodeConfig::sd530_6148(), 8, 1234);
        for (i, (app, ear_on, submit)) in jobs.iter().enumerate() {
            let flags = if *ear_on { "--ear=on" } else { "--ear=off" };
            sched
                .submit(&format!("user{i}"), APPS[*app], flags, *submit)
                .expect("catalog apps fit an 8-node pool");
        }
        sched.run_all().expect("queue runs");
        let finished = sched.finished();
        prop_assert_eq!(finished.len(), jobs.len());

        // No two jobs overlap in time on the same node slot.
        for (i, a) in finished.iter().enumerate() {
            for b in &finished[i + 1..] {
                let share_node = a.nodes.iter().any(|n| b.nodes.contains(n));
                let overlap = a.start_s < b.end_s - 1e-9 && b.start_s < a.end_s - 1e-9;
                prop_assert!(
                    !(share_node && overlap),
                    "jobs {} and {} overlap on shared nodes",
                    a.job.id,
                    b.job.id
                );
            }
        }

        // Each job starts exactly when its assigned slots free up (or at
        // its submit time, whichever is later) given the FIFO processing
        // order — no job is delayed beyond what the allocation implies.
        let mut free = [0.0f64; 8];
        for f in finished {
            let slots_free = f
                .nodes
                .iter()
                .map(|&n| free[n])
                .fold(f.job.submit_s, f64::max);
            prop_assert!(
                (f.start_s - slots_free).abs() < 1e-6,
                "job {} started at {} but its slots freed at {}",
                f.job.id,
                f.start_s,
                slots_free
            );
            for &n in &f.nodes {
                free[n] = f.end_s;
            }
        }

        // Jobs never start before submission; durations are positive.
        for f in finished {
            prop_assert!(f.start_s >= f.job.submit_s - 1e-9);
            prop_assert!(f.end_s > f.start_s);
            prop_assert!(f.dc_energy_j > 0.0);
        }

        // Makespan is the latest end time.
        let latest = finished.iter().map(|f| f.end_s).fold(0.0f64, f64::max);
        prop_assert!((sched.makespan_s() - latest).abs() < 1e-6);

        // Accounting has exactly one record per EAR-enabled job.
        let ear_jobs = finished.iter().filter(|f| f.record.is_some()).count();
        prop_assert_eq!(sched.accounting().records().len(), ear_jobs);
    }
}
