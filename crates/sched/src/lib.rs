//! # ear-sched — batch scheduling with EAR's SLURM integration
//!
//! EAR deploys inside SLURM: a SPANK plugin reads per-job `--ear-*` flags,
//! injects the EAR library into the job, and the node daemons account the
//! result. This crate provides the simulated equivalent: a FIFO batch
//! scheduler over a node pool ([`BatchScheduler`]), the SPANK flag surface
//! ([`parse_spank_flags`]) and campaign-level energy accounting — enough
//! to run "a day in the life of a cluster" studies of the paper's policies
//! (see `examples/batch_campaign.rs`).

#![warn(missing_docs)]

pub mod scheduler;
pub mod spank;

pub use scheduler::{BatchJob, BatchScheduler, FinishedJob, SchedError};
pub use spank::{parse_spank_flags, site_default_settings};
