//! The SPANK-plugin flag surface.
//!
//! EAR integrates with SLURM through a SPANK plugin: users request energy
//! behaviour with `srun --ear=on --ear-policy=min_energy ...` flags, which
//! the plugin turns into the library configuration injected into the job.
//! This module parses that flag surface into an [`EarlConfig`].

use ear_core::{EarlConfig, ImcSearch, PolicySettings};
use ear_errors::EarError;

fn bad_flag(msg: String) -> EarError {
    EarError::config(format!("bad --ear flag: {msg}"))
}

/// Parses `srun`-style EAR flags. Returns `Ok(None)` when EAR is disabled
/// (`--ear=off` or no `--ear` flag at all: opt-in, like the real plugin's
/// default in many sites).
pub fn parse_spank_flags(flags: &str) -> Result<Option<EarlConfig>, EarError> {
    let mut enabled = false;
    let mut config = EarlConfig::default();
    for token in flags.split_whitespace() {
        let Some(rest) = token.strip_prefix("--ear") else {
            return Err(bad_flag(format!("unknown token '{token}'")));
        };
        let (key, value) = match rest.split_once('=') {
            Some((k, v)) => (k, v),
            None => (rest, ""),
        };
        match key {
            "" => match value {
                "on" | "1" | "" => enabled = true,
                "off" | "0" => return Ok(None),
                other => return Err(bad_flag(format!("--ear expects on/off, got '{other}'"))),
            },
            "-policy" => {
                config.policy_name = value.to_string();
            }
            "-model" => {
                config.model_name = value.to_string();
            }
            "-policy-th" | "-cpu-th" => {
                let v: f64 = value
                    .parse()
                    .map_err(|_| bad_flag(format!("'{value}' is not a number")))?;
                if !(0.0..=0.5).contains(&v) {
                    return Err(bad_flag(format!("threshold {v} outside [0, 0.5]")));
                }
                config.settings.cpu_policy_th = v;
            }
            "-unc-th" => {
                let v: f64 = value
                    .parse()
                    .map_err(|_| bad_flag(format!("'{value}' is not a number")))?;
                if !(0.0..=0.5).contains(&v) {
                    return Err(bad_flag(format!("threshold {v} outside [0, 0.5]")));
                }
                config.settings.unc_policy_th = v;
            }
            "-imc-search" => {
                config.settings.imc_search = match value {
                    "hw" | "hw_guided" => ImcSearch::HwGuided,
                    "linear" => ImcSearch::Linear,
                    other => return Err(bad_flag(format!("unknown search '{other}'"))),
                };
            }
            other => return Err(bad_flag(format!("unknown flag '--ear{other}'"))),
        }
    }
    if enabled {
        Ok(Some(config))
    } else {
        Ok(None)
    }
}

/// The site defaults applied when a user passes `--ear=on` with nothing
/// else (mirrors `PolicySettings::default`, i.e. the paper's defaults).
pub fn site_default_settings() -> PolicySettings {
    PolicySettings::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_explicitly() {
        assert!(parse_spank_flags("").unwrap().is_none());
        assert!(parse_spank_flags("--ear=off").unwrap().is_none());
    }

    #[test]
    fn enabled_with_defaults() {
        let c = parse_spank_flags("--ear=on").unwrap().expect("enabled");
        assert_eq!(c.policy_name, "min_energy_eufs");
        assert_eq!(c.model_name, "avx512");
        assert!((c.settings.cpu_policy_th - 0.05).abs() < 1e-12);
    }

    #[test]
    fn full_flag_set() {
        let c = parse_spank_flags(
            "--ear=on --ear-policy=min_energy --ear-model=default --ear-cpu-th=0.03 \
             --ear-unc-th=0.01 --ear-imc-search=linear",
        )
        .unwrap()
        .expect("enabled");
        assert_eq!(c.policy_name, "min_energy");
        assert_eq!(c.model_name, "default");
        assert!((c.settings.cpu_policy_th - 0.03).abs() < 1e-12);
        assert!((c.settings.unc_policy_th - 0.01).abs() < 1e-12);
        assert_eq!(c.settings.imc_search, ImcSearch::Linear);
    }

    #[test]
    fn bad_flags_are_rejected_with_config_errors() {
        for flags in [
            "--frequency=max",
            "--ear=maybe",
            "--ear=on --ear-cpu-th=banana",
            "--ear=on --ear-cpu-th=0.9",
            "--ear=on --ear-turbo",
        ] {
            let err = parse_spank_flags(flags).unwrap_err();
            assert!(
                err.to_string().starts_with("config error: bad --ear flag"),
                "{err}"
            );
        }
    }
}
