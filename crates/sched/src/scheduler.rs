//! A FIFO batch scheduler over a fixed node pool.
//!
//! The scheduler allocates disjoint node sets to queued jobs (FIFO with
//! first-fit in time), runs each job on its own simulated cluster — jobs
//! on disjoint nodes interact only through slot contention, as on a real
//! machine with one job per node — and aggregates EAR accounting across
//! the campaign. This is the substrate EAR's SLURM integration runs on:
//! the job's `--ear` flags decide whether EARL is injected and with which
//! policy.

use crate::spank::parse_spank_flags;
use ear_archsim::{Cluster, NodeConfig};
use ear_core::accounting::{AccountingDb, JobRecord};
use ear_core::{EarDaemon, Earl, EarlConfig};
use ear_mpisim::{run_job, NullRuntime};
use ear_workloads::{build_job, by_name, calibrate};
use std::collections::VecDeque;

/// A submitted batch job.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Submission id (assigned by the scheduler).
    pub id: u64,
    /// Owner.
    pub user: String,
    /// Workload name from the catalog.
    pub workload: String,
    /// `srun`-style EAR flags.
    pub ear_flags: String,
    /// Submission time (s since campaign start).
    pub submit_s: f64,
}

/// A finished job with its schedule and measured outcome.
#[derive(Debug, Clone)]
pub struct FinishedJob {
    /// The submission.
    pub job: BatchJob,
    /// Node slots used.
    pub nodes: Vec<usize>,
    /// Start time (s since campaign start).
    pub start_s: f64,
    /// End time.
    pub end_s: f64,
    /// DC energy over the job, all nodes (J).
    pub dc_energy_j: f64,
    /// EAR's per-job record when EARL ran (None for `--ear=off`).
    pub record: Option<JobRecord>,
}

/// Scheduling/execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The workload is not in the catalog.
    UnknownWorkload(String),
    /// The job wants more nodes than the pool has.
    TooLarge {
        /// Nodes requested.
        requested: usize,
        /// Pool size.
        pool: usize,
    },
    /// Bad `--ear` flags.
    BadFlags(String),
    /// The workload's targets cannot be met on this hardware.
    Infeasible(String),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::UnknownWorkload(w) => write!(f, "unknown workload '{w}'"),
            SchedError::TooLarge { requested, pool } => {
                write!(f, "job needs {requested} nodes, pool has {pool}")
            }
            SchedError::BadFlags(e) => write!(f, "{e}"),
            SchedError::Infeasible(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// The batch scheduler.
pub struct BatchScheduler {
    node_config: NodeConfig,
    /// Per-slot time at which the slot becomes free (s).
    free_at: Vec<f64>,
    queue: VecDeque<BatchJob>,
    finished: Vec<FinishedJob>,
    accounting: AccountingDb,
    next_id: u64,
    seed: u64,
}

impl BatchScheduler {
    /// Creates a scheduler over `pool_nodes` identical nodes.
    pub fn new(node_config: NodeConfig, pool_nodes: usize, seed: u64) -> Self {
        assert!(pool_nodes > 0);
        Self {
            node_config,
            free_at: vec![0.0; pool_nodes],
            queue: VecDeque::new(),
            finished: Vec::new(),
            accounting: AccountingDb::new(),
            next_id: 1,
            seed,
        }
    }

    /// Submits a job; validation happens at submit time (like `sbatch`).
    pub fn submit(
        &mut self,
        user: &str,
        workload: &str,
        ear_flags: &str,
        submit_s: f64,
    ) -> Result<u64, SchedError> {
        let targets =
            by_name(workload).ok_or_else(|| SchedError::UnknownWorkload(workload.to_string()))?;
        if targets.nodes > self.free_at.len() {
            return Err(SchedError::TooLarge {
                requested: targets.nodes,
                pool: self.free_at.len(),
            });
        }
        parse_spank_flags(ear_flags).map_err(|e| SchedError::BadFlags(e.to_string()))?;
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(BatchJob {
            id,
            user: user.to_string(),
            workload: workload.to_string(),
            ear_flags: ear_flags.to_string(),
            submit_s,
        });
        Ok(id)
    }

    /// Jobs waiting.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Finished jobs, completion order.
    pub fn finished(&self) -> &[FinishedJob] {
        &self.finished
    }

    /// The EAR accounting database (records only for EAR-enabled jobs).
    pub fn accounting(&self) -> &AccountingDb {
        &self.accounting
    }

    /// Campaign makespan (s): when the last slot frees.
    pub fn makespan_s(&self) -> f64 {
        self.free_at.iter().copied().fold(0.0, f64::max)
    }

    /// Total DC energy across finished jobs (J).
    pub fn total_energy_j(&self) -> f64 {
        self.finished.iter().map(|f| f.dc_energy_j).sum()
    }

    /// Runs every queued job to completion, FIFO.
    pub fn run_all(&mut self) -> Result<(), SchedError> {
        while let Some(job) = self.queue.pop_front() {
            self.run_one(job)?;
        }
        Ok(())
    }

    fn run_one(&mut self, job: BatchJob) -> Result<(), SchedError> {
        let targets = by_name(&job.workload)
            .ok_or_else(|| SchedError::UnknownWorkload(job.workload.clone()))?;
        let ear_config =
            parse_spank_flags(&job.ear_flags).map_err(|e| SchedError::BadFlags(e.to_string()))?;

        // First-fit in time: the N slots that free earliest.
        let mut slot_order: Vec<usize> = (0..self.free_at.len()).collect();
        slot_order.sort_by(|&a, &b| self.free_at[a].total_cmp(&self.free_at[b]));
        let nodes: Vec<usize> = slot_order[..targets.nodes].to_vec();
        let start_s = nodes
            .iter()
            .map(|&s| self.free_at[s])
            .fold(job.submit_s, f64::max);

        // Execute the job on a dedicated simulated cluster.
        let cal = calibrate(&targets).map_err(|e| SchedError::Infeasible(e.to_string()))?;
        let spec = build_job(&cal);
        let mut cluster = Cluster::new(
            self.node_config.clone(),
            targets.nodes,
            self.seed.wrapping_add(job.id.wrapping_mul(0x9E37_79B9)),
        );
        let (duration_s, dc_energy_j, record) = match ear_config {
            Some(config) => {
                let mut rts = Vec::with_capacity(targets.nodes);
                for _ in 0..targets.nodes {
                    let earl = Earl::from_registry(EarlConfig { ..config.clone() })
                        .map_err(|e| SchedError::BadFlags(e.to_string()))?;
                    rts.push(EarDaemon::new(earl));
                }
                let report = run_job(&mut cluster, &spec, &mut rts);
                let record = rts[0].inner().job_record().cloned();
                if let Some(rec) = record.clone() {
                    self.accounting.insert(rec);
                }
                (report.seconds(), report.total_dc_energy_j(), record)
            }
            None => {
                let mut rts = vec![NullRuntime; targets.nodes];
                let report = run_job(&mut cluster, &spec, &mut rts);
                (report.seconds(), report.total_dc_energy_j(), None)
            }
        };

        let end_s = start_s + duration_s;
        for &s in &nodes {
            self.free_at[s] = end_s;
        }
        self.finished.push(FinishedJob {
            job,
            nodes,
            start_s,
            end_s,
            dc_energy_j,
            record,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(pool: usize) -> BatchScheduler {
        BatchScheduler::new(NodeConfig::sd530_6148(), pool, 900)
    }

    #[test]
    fn submit_validates() {
        let mut s = scheduler(4);
        assert!(s.submit("alice", "BQCD", "--ear=on", 0.0).is_ok());
        assert!(matches!(
            s.submit("bob", "NOPE", "", 0.0),
            Err(SchedError::UnknownWorkload(_))
        ));
        assert!(matches!(
            s.submit("bob", "GROMACS (II)", "", 0.0), // needs 16 > 4
            Err(SchedError::TooLarge { .. })
        ));
        assert!(matches!(
            s.submit("bob", "BQCD", "--ear=on --ear-frequency=max", 0.0),
            Err(SchedError::BadFlags(_))
        ));
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn fifo_with_slot_contention() {
        // Pool of 4; two 4-node jobs must serialise.
        let mut s = scheduler(4);
        s.submit("alice", "BQCD", "--ear=off", 0.0).unwrap();
        s.submit("bob", "BQCD", "--ear=off", 0.0).unwrap();
        s.run_all().unwrap();
        let f = s.finished();
        assert_eq!(f.len(), 2);
        assert!(f[1].start_s >= f[0].end_s - 1e-6, "{f:?}");
        assert!((s.makespan_s() - f[1].end_s).abs() < 1e-9);
    }

    #[test]
    fn disjoint_jobs_overlap() {
        // Pool of 8: two 4-node jobs run side by side.
        let mut s = scheduler(8);
        s.submit("alice", "BQCD", "--ear=off", 0.0).unwrap();
        s.submit("bob", "BT-MZ", "--ear=off", 0.0).unwrap();
        s.run_all().unwrap();
        let f = s.finished();
        assert!(f[1].start_s < f[0].end_s, "no overlap: {f:?}");
        // Disjoint node sets.
        let a: std::collections::HashSet<_> = f[0].nodes.iter().collect();
        assert!(f[1].nodes.iter().all(|n| !a.contains(n)));
    }

    #[test]
    fn ear_jobs_are_accounted_and_save_energy() {
        let mut s = scheduler(4);
        s.submit("alice", "BT-MZ", "--ear=off", 0.0).unwrap();
        s.submit("alice", "BT-MZ", "--ear=on --ear-unc-th=0.02", 0.0)
            .unwrap();
        s.run_all().unwrap();
        let f = s.finished();
        assert!(f[0].record.is_none());
        assert!(f[1].record.is_some());
        assert_eq!(s.accounting().records().len(), 1);
        // The EAR job used measurably less energy.
        assert!(
            f[1].dc_energy_j < f[0].dc_energy_j * 0.97,
            "{} vs {}",
            f[1].dc_energy_j,
            f[0].dc_energy_j
        );
    }

    #[test]
    fn submit_time_delays_start() {
        let mut s = scheduler(4);
        s.submit("alice", "BQCD", "--ear=off", 500.0).unwrap();
        s.run_all().unwrap();
        assert!(s.finished()[0].start_s >= 500.0);
    }
}
