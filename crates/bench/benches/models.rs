//! Energy-model benchmarks and the AVX512-model ablation.
//!
//! Policies project every candidate pstate on every signature; projection
//! cost × pstate count bounds the per-signature policy latency. The
//! ablation group quantifies what the paper's AVX512 blending costs over
//! the default model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ear_archsim::{NodeConfig, PstateTable};
use ear_core::{Avx512Model, DefaultModel, EnergyModel, Signature};
use std::hint::black_box;

fn sig(vpi: f64) -> Signature {
    Signature {
        window_s: 10.0,
        iterations: 5,
        cpi: 0.72,
        tpi: 0.0124,
        gbs: 100.7,
        vpi,
        dc_power_w: 347.0,
        pkg_power_w: 250.0,
        avg_cpu_khz: 2.4e6,
        avg_imc_khz: 2.4e6,
        ..Default::default()
    }
}

fn bench_projection(c: &mut Criterion) {
    let cfg = NodeConfig::sd530_6148();
    let pstates = PstateTable::xeon_gold_6148();
    let default = DefaultModel::for_node(&cfg);
    let avx = Avx512Model::for_node(&cfg);

    let mut g = c.benchmark_group("models/projection");
    g.throughput(Throughput::Elements(1));
    g.bench_function("default", |b| {
        let s = sig(0.0);
        b.iter(|| black_box(default.project(black_box(&s), 1, 5, &pstates)))
    });
    g.bench_function("avx512_scalar_sig", |b| {
        // VPI = 0: the blend short-circuits.
        let s = sig(0.0);
        b.iter(|| black_box(avx.project(black_box(&s), 1, 5, &pstates)))
    });
    g.bench_function("avx512_vector_sig", |b| {
        // VPI = 1: both inner projections run (the ablation cost).
        let s = sig(1.0);
        b.iter(|| black_box(avx.project(black_box(&s), 1, 5, &pstates)))
    });
    g.finish();
}

fn bench_full_search(c: &mut Criterion) {
    // The min_energy linear search projects every non-turbo pstate.
    let cfg = NodeConfig::sd530_6148();
    let pstates = PstateTable::xeon_gold_6148();
    let avx = Avx512Model::for_node(&cfg);
    let mut g = c.benchmark_group("models/full_pstate_search");
    g.throughput(Throughput::Elements(pstates.len() as u64 - 1));
    g.bench_function("project_all_pstates", |b| {
        let s = sig(0.3);
        b.iter(|| {
            let mut best = f64::INFINITY;
            for ps in 1..pstates.len() {
                let p = avx.project(&s, 1, ps, &pstates);
                best = best.min(p.energy_j());
            }
            black_box(best)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_projection, bench_full_search);
criterion_main!(benches);
