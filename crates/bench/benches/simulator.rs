//! Hardware-simulator benchmarks: phase execution throughput (simulated
//! seconds per wall second), MSR access, counter snapshots.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ear_archsim::msr::{addr, pack_uncore_ratio_limit};
use ear_archsim::{Node, NodeConfig, PhaseDemand};
use std::hint::black_box;

fn one_second_phase() -> PhaseDemand {
    PhaseDemand {
        instructions: 9.6e10 / 0.5, // ~1 s of work at CPI 0.5, 40 cores
        mem_bytes: 30e9,
        cpi_core: 0.45,
        active_cores: 40,
        ..Default::default()
    }
}

fn bench_run_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/run_phase");
    // Each phase advances ~1 simulated second in 10 ms quanta.
    g.throughput(Throughput::Elements(100));
    g.bench_function("one_sim_second", |b| {
        let demand = one_second_phase();
        b.iter_batched(
            || Node::new(NodeConfig::sd530_6148(), 1),
            |mut node| {
                black_box(node.run_phase(&demand));
                node
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("gpu_node_spin_second", |b| {
        let demand = PhaseDemand {
            active_cores: 1,
            wait_seconds: 1.0,
            wait_busy: true,
            gpu_power_w: 120.0,
            ..Default::default()
        };
        b.iter_batched(
            || Node::new(NodeConfig::gpu_node_6142m(), 1),
            |mut node| {
                black_box(node.run_phase(&demand));
                node
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_msr(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/msr");
    g.throughput(Throughput::Elements(1));
    g.bench_function("read_uncore_limit", |b| {
        let node = Node::new(NodeConfig::sd530_6148(), 1);
        b.iter(|| black_box(node.read_msr(0, addr::MSR_UNCORE_RATIO_LIMIT)))
    });
    g.bench_function("write_uncore_limit", |b| {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        let v = pack_uncore_ratio_limit(12, 20);
        b.iter(|| black_box(node.write_msr(0, addr::MSR_UNCORE_RATIO_LIMIT, v)))
    });
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    c.bench_function("simulator/snapshot_and_delta", |b| {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        node.run_phase(&one_second_phase());
        let before = node.snapshot();
        node.run_phase(&one_second_phase());
        b.iter(|| {
            let now = node.snapshot();
            black_box(now.delta(&before))
        })
    });
}

/// Quantum fast-forward vs plain 10 ms stepping on a settled spin phase.
/// Stepping walks ~100 `advance_interval` quanta per simulated second;
/// fast-forward integrates the settled remainder in one step.
fn bench_fast_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator/fast_forward");
    g.throughput(Throughput::Elements(100));
    let spin = PhaseDemand {
        active_cores: 40,
        wait_seconds: 1.0,
        wait_busy: true,
        ..Default::default()
    };
    g.bench_function("stepped_spin_second", |b| {
        let mut node = Node::new(NodeConfig::sd530_6148(), 1);
        b.iter(|| black_box(node.run_phase(&spin)))
    });
    g.bench_function("fast_forward_spin_second", |b| {
        let mut cfg = NodeConfig::sd530_6148();
        cfg.fast_forward = true;
        let mut node = Node::new(cfg, 1);
        b.iter(|| black_box(node.run_phase(&spin)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_run_phase,
    bench_msr,
    bench_snapshot,
    bench_fast_forward
);
criterion_main!(benches);
