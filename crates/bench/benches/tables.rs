//! One benchmark per paper table: measures the cost of regenerating each
//! table's unit of work (one representative cell, one run).
//!
//! The full regenerations — three runs per cell, every row — are the
//! `ear-experiments` binaries (`cargo run --release -p ear-experiments
//! --bin tableN`); Criterion here tracks the per-cell simulation cost so
//! harness regressions show up without minute-long benchmark iterations.

use criterion::{criterion_group, criterion_main, Criterion};
use ear_experiments::{run_cell, RunKind};
use ear_workloads::by_name;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    // Table I: ME on the Table-I kernels (representative: BT-MZ.C MPI).
    g.bench_function("table1_cell", |b| {
        let t = by_name("BT-MZ.C (MPI)").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me(0.05), "ME", 1, 1)))
    });

    // Table II: characterisation run (representative: BT-MZ.C OpenMP).
    g.bench_function("table2_cell", |b| {
        let t = by_name("BT-MZ.C (OpenMP)").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::NoPolicy, "No policy", 1, 2)))
    });

    // Table III: kernel evaluation (representative: SP-MZ under ME+eU).
    g.bench_function("table3_cell", |b| {
        let t = by_name("SP-MZ.C (OpenMP)").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me_eufs(0.05, 0.02), "ME+eU", 1, 3)))
    });

    // Table IV: frequency domains (representative: DGEMM, the AVX case).
    g.bench_function("table4_cell", |b| {
        let t = by_name("DGEMM").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me_eufs(0.05, 0.02), "ME+eU", 1, 4)))
    });

    // Table V: application characterisation (representative: BQCD).
    g.bench_function("table5_cell", |b| {
        let t = by_name("BQCD").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::NoPolicy, "No policy", 1, 5)))
    });

    // Table VI: application frequency domains (representative: HPCG under
    // ME — exercises the DVFS stage).
    g.bench_function("table6_cell", |b| {
        let t = by_name("HPCG").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me(0.05), "ME", 1, 6)))
    });

    // Table VII: DC vs PCK savings (representative: GROMACS (II) ME+eU —
    // the largest job in the table).
    g.bench_function("table7_cell", |b| {
        let t = by_name("GROMACS (II)").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me_eufs(0.05, 0.02), "ME+eU", 1, 7)))
    });

    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
