//! One benchmark per paper figure, plus the design-choice ablations called
//! out in DESIGN.md: HW-guided vs linear IMC search and the AVX512 model
//! vs the default model.

use criterion::{criterion_group, criterion_main, Criterion};
use ear_archsim::{NodeConfig, PstateTable};
use ear_core::policy::api::{PolicyCtx, PolicySettings};
use ear_core::policy::min_energy::select_min_energy_pstate;
use ear_core::{Avx512Model, EnergyModel, ImcSearch, Signature};
use ear_experiments::{run_cell, RunKind};
use ear_workloads::by_name;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Fig 1: one point of the fixed-uncore sweep (BT-MZ at 1.8 GHz).
    g.bench_function("fig1_sweep_point", |b| {
        let t = by_name("BT-MZ.C (MPI)").unwrap();
        b.iter(|| {
            black_box(run_cell(
                &t,
                &RunKind::Fixed {
                    cpu: 1,
                    imc_ratio: Some(18),
                },
                "fixed",
                1,
                11,
            ))
        })
    });

    // Fig 3: BQCD under ME+eU (one threshold).
    g.bench_function("fig3_cell", |b| {
        let t = by_name("BQCD").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me_eufs(0.03, 0.02), "eu", 1, 13)))
    });

    // Fig 4: BT-MZ under ME+eU with a 0 % threshold (tightest search).
    g.bench_function("fig4_cell", |b| {
        let t = by_name("BT-MZ").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me_eufs(0.03, 0.0), "eu", 1, 14)))
    });

    // Fig 5: GROMACS(I) with the not-guided (linear) search.
    g.bench_function("fig5_cell_ng_u", |b| {
        let t = by_name("GROMACS (I)").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me_ng_u(0.05, 0.02), "ngu", 1, 15)))
    });

    // Fig 6: GROMACS(II) — the 16-node job.
    g.bench_function("fig6_cell", |b| {
        let t = by_name("GROMACS (II)").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me_eufs(0.05, 0.02), "eu", 1, 16)))
    });

    // Fig 7: HPCG under ME+eU (DVFS + uncore stages both active).
    g.bench_function("fig7_cell", |b| {
        let t = by_name("HPCG").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me_eufs(0.05, 0.02), "eu", 1, 17)))
    });

    // Fig 8: AFiD — 15 nodes, both stages.
    g.bench_function("fig8_cell", |b| {
        let t = by_name("AFiD").unwrap();
        b.iter(|| black_box(run_cell(&t, &RunKind::me_eufs(0.05, 0.02), "eu", 1, 18)))
    });

    g.finish();
}

/// Ablation: HW-guided vs linear IMC search convergence (paper §V-B says
/// guided "is faster"; DGEMM makes the difference visible because the
/// firmware settles at 1.98 GHz, well below the 2.4 GHz linear start).
fn bench_search_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/imc_search");
    g.sample_size(10);
    let t = by_name("DGEMM").unwrap();
    for (label, search) in [
        ("hw_guided", ImcSearch::HwGuided),
        ("linear", ImcSearch::Linear),
    ] {
        g.bench_function(label, |b| {
            let kind = RunKind::Policy {
                name: "min_energy_eufs".into(),
                settings: PolicySettings {
                    imc_search: search,
                    ..Default::default()
                },
            };
            b.iter(|| black_box(run_cell(&t, &kind, label, 1, 21)))
        });
    }
    g.finish();
}

/// Ablation: CPU selection with the AVX512 model vs the default model on a
/// pure-AVX512 signature (the paper's §V-A motivation: the default model
/// would chase frequencies AVX512 cannot reach).
fn bench_model_ablation(c: &mut Criterion) {
    let pstates = PstateTable::xeon_gold_6148();
    let cfg = NodeConfig::sd530_6148();
    let avx = Avx512Model::for_node(&cfg);
    let sig = Signature {
        window_s: 10.0,
        iterations: 5,
        cpi: 0.45,
        tpi: 0.0078,
        gbs: 98.0,
        vpi: 1.0,
        dc_power_w: 369.0,
        pkg_power_w: 270.0,
        avg_cpu_khz: 2.2e6,
        avg_imc_khz: 2.0e6,
        ..Default::default()
    };
    let settings = PolicySettings::default();
    let mut g = c.benchmark_group("ablation/model");
    g.bench_function("avx512_model_selection", |b| {
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: &avx,
            settings: &settings,
        };
        b.iter(|| black_box(select_min_energy_pstate(&sig, 3, &ctx)))
    });
    g.bench_function("default_model_selection", |b| {
        let inner: &dyn EnergyModel = avx.inner();
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: inner,
            settings: &settings,
        };
        b.iter(|| black_box(select_min_energy_pstate(&sig, 3, &ctx)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_figures,
    bench_search_ablation,
    bench_model_ablation
);
criterion_main!(benches);
