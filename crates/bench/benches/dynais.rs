//! DynAIS throughput benchmarks.
//!
//! EARL feeds DynAIS on *every* MPI call, so sample cost bounds the
//! runtime's interception overhead (the paper calls EARL "lightweight").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ear_dynais::{DynAis, DynaisConfig, LevelDetector, ReferenceDynAis};
use std::hint::black_box;

fn bench_level_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynais/level");
    g.throughput(Throughput::Elements(1));
    for period in [4usize, 32, 100] {
        g.bench_function(format!("periodic_p{period}"), |b| {
            let pattern: Vec<u64> = (0..period as u64).map(|i| i * 7919 + 3).collect();
            b.iter_batched(
                || (LevelDetector::new(250, 2), 0usize),
                |(mut det, i)| {
                    let v = pattern[i % pattern.len()];
                    black_box(det.sample(v));
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynais/stack");
    g.throughput(Throughput::Elements(1000));
    for levels in [1usize, 4, 10] {
        g.bench_function(format!("levels_{levels}"), |b| {
            let cfg = DynaisConfig {
                levels,
                window_size: 250,
                min_period: 2,
            };
            let pattern: Vec<u64> = (0..6u64).map(|i| i * 31 + 5).collect();
            b.iter(|| {
                let mut d = DynAis::new(&cfg);
                for i in 0..1000usize {
                    black_box(d.sample(pattern[i % pattern.len()]));
                }
                d
            });
        });
    }
    // Worst case: an aperiodic stream never matches, every candidate run
    // resets each sample.
    g.bench_function("aperiodic_1000", |b| {
        b.iter(|| {
            let mut d = DynAis::with_defaults();
            for i in 0..1000u64 {
                black_box(d.sample(i.wrapping_mul(i).wrapping_add(17)));
            }
            d
        });
    });
    g.finish();
}

/// Incremental detector vs the eager reference (`ReferenceDynAis`, the
/// pre-optimisation implementation kept as executable spec): both produce
/// identical event streams, so the throughput gap is the whole win.
fn bench_incremental_vs_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynais/incremental_vs_reference");
    g.throughput(Throughput::Elements(1000));
    let cfg = DynaisConfig::default();
    let pattern: Vec<u64> = (0..100u64).map(|i| i * 7919 + 3).collect();

    g.bench_function("incremental_inloop_1000", |b| {
        let mut d = DynAis::new(&cfg);
        for i in 0..1_000usize {
            black_box(d.sample(pattern[i % pattern.len()]));
        }
        let mut i = 0usize;
        b.iter(|| {
            for _ in 0..1_000usize {
                black_box(d.sample(pattern[i % pattern.len()]));
                i += 1;
            }
        })
    });
    g.bench_function("reference_inloop_1000", |b| {
        let mut d = ReferenceDynAis::new(&cfg);
        for i in 0..1_000usize {
            black_box(d.sample(pattern[i % pattern.len()]));
        }
        let mut i = 0usize;
        b.iter(|| {
            for _ in 0..1_000usize {
                black_box(d.sample(pattern[i % pattern.len()]));
                i += 1;
            }
        })
    });

    // Aperiodic worst case: never matches, candidate bookkeeping dominates.
    g.bench_function("incremental_aperiodic_1000", |b| {
        let mut d = DynAis::new(&cfg);
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..1_000u64 {
                black_box(d.sample(i.wrapping_mul(i).wrapping_add(17)));
                i += 1;
            }
        })
    });
    g.bench_function("reference_aperiodic_1000", |b| {
        let mut d = ReferenceDynAis::new(&cfg);
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..1_000u64 {
                black_box(d.sample(i.wrapping_mul(i).wrapping_add(17)));
                i += 1;
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_level_detector,
    bench_stack,
    bench_incremental_vs_reference
);
criterion_main!(benches);
