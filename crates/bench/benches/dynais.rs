//! DynAIS throughput benchmarks.
//!
//! EARL feeds DynAIS on *every* MPI call, so sample cost bounds the
//! runtime's interception overhead (the paper calls EARL "lightweight").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ear_dynais::{DynAis, DynaisConfig, LevelDetector};
use std::hint::black_box;

fn bench_level_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynais/level");
    g.throughput(Throughput::Elements(1));
    for period in [4usize, 32, 100] {
        g.bench_function(format!("periodic_p{period}"), |b| {
            let pattern: Vec<u64> = (0..period as u64).map(|i| i * 7919 + 3).collect();
            b.iter_batched(
                || (LevelDetector::new(250, 2), 0usize),
                |(mut det, i)| {
                    let v = pattern[i % pattern.len()];
                    black_box(det.sample(v));
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynais/stack");
    g.throughput(Throughput::Elements(1000));
    for levels in [1usize, 4, 10] {
        g.bench_function(format!("levels_{levels}"), |b| {
            let cfg = DynaisConfig {
                levels,
                window_size: 250,
                min_period: 2,
            };
            let pattern: Vec<u64> = (0..6u64).map(|i| i * 31 + 5).collect();
            b.iter(|| {
                let mut d = DynAis::new(&cfg);
                for i in 0..1000usize {
                    black_box(d.sample(pattern[i % pattern.len()]));
                }
                d
            });
        });
    }
    // Worst case: an aperiodic stream never matches, every candidate run
    // resets each sample.
    g.bench_function("aperiodic_1000", |b| {
        b.iter(|| {
            let mut d = DynAis::with_defaults();
            for i in 0..1000u64 {
                black_box(d.sample(i.wrapping_mul(i).wrapping_add(17)));
            }
            d
        });
    });
    g.finish();
}

criterion_group!(benches, bench_level_detector, bench_stack);
criterion_main!(benches);
