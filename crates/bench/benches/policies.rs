//! Policy invocation benchmarks: the cost EARL pays per signature, per
//! policy — plus plugin-registry instantiation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ear_archsim::{NodeConfig, PstateTable};
use ear_core::policy::api::{PolicyCtx, PolicyRegistry, PolicySettings};
use ear_core::{Avx512Model, Signature};
use std::hint::black_box;

fn sig() -> Signature {
    Signature {
        window_s: 10.0,
        iterations: 5,
        cpi: 0.68,
        tpi: 0.002,
        gbs: 11.0,
        vpi: 0.05,
        dc_power_w: 302.0,
        pkg_power_w: 215.0,
        avg_cpu_khz: 2.4e6,
        avg_imc_khz: 2.4e6,
        ..Default::default()
    }
}

fn bench_node_policy(c: &mut Criterion) {
    let pstates = PstateTable::xeon_gold_6148();
    let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
    let settings = PolicySettings::default();
    let registry = PolicyRegistry::with_builtins();

    let mut g = c.benchmark_group("policies/node_policy");
    for name in ["monitoring", "min_energy", "min_energy_eufs", "min_time"] {
        g.bench_function(name, |b| {
            let ctx = PolicyCtx {
                pstates: &pstates,
                uncore_min_ratio: 12,
                uncore_max_ratio: 24,
                uncore_domains: 1,
                model: &model,
                settings: &settings,
            };
            let s = sig();
            b.iter_batched(
                || registry.create(name).expect("builtin"),
                |mut policy| black_box(policy.node_policy(&s, &ctx)),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_imc_search_iteration(c: &mut Criterion) {
    // One full eUFS convergence: CPU stage + N uncore steps until Ready.
    let pstates = PstateTable::xeon_gold_6148();
    let model = Avx512Model::for_node(&NodeConfig::sd530_6148());
    let settings = PolicySettings::default();
    let registry = PolicyRegistry::with_builtins();
    c.bench_function("policies/eufs_full_convergence", |b| {
        let ctx = PolicyCtx {
            pstates: &pstates,
            uncore_min_ratio: 12,
            uncore_max_ratio: 24,
            uncore_domains: 1,
            model: &model,
            settings: &settings,
        };
        let s = sig();
        b.iter_batched(
            || registry.create("min_energy_eufs").expect("builtin"),
            |mut policy| {
                let mut steps = 0;
                loop {
                    let (f, state) = policy.node_policy(&s, &ctx);
                    black_box(f);
                    steps += 1;
                    if state == ear_core::PolicyState::Ready || steps > 40 {
                        break;
                    }
                }
                steps
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_registry(c: &mut Criterion) {
    c.bench_function("policies/registry_create", |b| {
        let registry = PolicyRegistry::with_builtins();
        b.iter(|| black_box(registry.create("min_energy_eufs")))
    });
}

criterion_group!(
    benches,
    bench_node_policy,
    bench_imc_search_iteration,
    bench_registry
);
criterion_main!(benches);
