//! Benchmark-only crate: see the `benches/` directory.
//!
//! Groups: `dynais`, `models`, `policies`, `simulator`, `tables` (one per
//! paper table), `figures` (one per paper figure + ablations).
