//! Nested-parallelism permits for node-parallel job stepping.
//!
//! Two layers of the stack want the machine's cores: the experiment
//! engine's (cell × run) worker pool, and — since jobs are bulk-synchronous
//! and nodes are independent between barriers — the per-job node stepping
//! in [`crate::run_job`]. Letting both fan out blindly oversubscribes the
//! machine, so they share one process-wide permit pool: a single atomic
//! counter of *spare* threads the process may still spawn.
//!
//! The contract:
//!
//! - The pool starts at `available_parallelism - 1` (the calling thread is
//!   already running). The engine overwrites it with its own budget
//!   (`--jobs N`) at the start of every matrix run, and each engine worker
//!   holds one permit for the duration of a task, so a job only fans out
//!   across its nodes when engine workers are idle — a saturated campaign
//!   steps every job serially, a lone `earsim run` (or the straggling tail
//!   of a matrix) uses the whole machine.
//! - Acquisition never blocks: [`acquire_up_to`] takes what is available,
//!   possibly nothing, and the caller degrades to serial stepping.
//! - Permits gate **thread counts only**. Results are bit-identical
//!   whether a job steps its nodes serially or in parallel (per-node state
//!   never crosses a synchronisation barrier), so racing configurations of
//!   the pool can only ever cost performance, never determinism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static SPARE: OnceLock<AtomicUsize> = OnceLock::new();

fn pool() -> &'static AtomicUsize {
    SPARE.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        AtomicUsize::new(cores.saturating_sub(1))
    })
}

/// Replaces the pool with `spare` spare-thread permits. The experiment
/// engine calls this with its worker budget at the start of a matrix run;
/// standalone drivers normally leave the default (cores − 1) alone.
pub fn set_spare_threads(spare: usize) {
    pool().store(spare, Ordering::Relaxed);
}

/// Spare-thread permits currently available.
pub fn spare_threads() -> usize {
    pool().load(Ordering::Relaxed)
}

/// Takes up to `max` permits without blocking and returns how many were
/// taken (possibly zero). Every acquired permit must be handed back with
/// [`release`].
pub fn acquire_up_to(max: usize) -> usize {
    if max == 0 {
        return 0;
    }
    let p = pool();
    let mut cur = p.load(Ordering::Relaxed);
    loop {
        let take = cur.min(max);
        if take == 0 {
            return 0;
        }
        match p.compare_exchange_weak(cur, cur - take, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return take,
            Err(now) => cur = now,
        }
    }
}

/// Returns `n` permits to the pool.
pub fn release(n: usize) {
    if n > 0 {
        pool().fetch_add(n, Ordering::Relaxed);
    }
}

/// An RAII permit holder: the permits it took go back to the pool on
/// `Drop`, so a panicking holder (an engine task, a poller fan-out thread)
/// can never leak them. Prefer this over the raw
/// [`acquire_up_to`]/[`release`] pair anywhere a panic can unwind through
/// the holding scope.
#[derive(Debug)]
pub struct PermitGuard {
    n: usize,
}

impl PermitGuard {
    /// How many permits this guard holds (possibly zero).
    pub fn count(&self) -> usize {
        self.n
    }

    /// Returns all but `keep` permits to the pool immediately, keeping the
    /// rest under the guard. The driver calls this as soon as it knows its
    /// real worker count (chunking can produce fewer chunks than acquired
    /// threads, and autotuning can decide on fewer workers — or none), so
    /// surplus permits go back to the engine's pool for the duration of the
    /// job instead of being held hostage until `Drop`.
    pub fn shrink_to(&mut self, keep: usize) {
        if self.n > keep {
            release(self.n - keep);
            self.n = keep;
        }
    }
}

impl Drop for PermitGuard {
    fn drop(&mut self) {
        release(self.n);
    }
}

/// Takes up to `max` permits without blocking and returns the RAII guard
/// holding them. The guard may hold zero permits; callers degrade to
/// serial execution exactly as with [`acquire_up_to`].
pub fn acquire_guard(max: usize) -> PermitGuard {
    PermitGuard {
        n: acquire_up_to(max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, PoisonError};

    // The pool is process-global; tests in this module serialise on this
    // lock and always restore what they take.
    static POOL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn acquire_is_bounded_and_releases_restore() {
        let _guard = POOL_TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        set_spare_threads(3);
        let a = acquire_up_to(2);
        assert_eq!(a, 2);
        let b = acquire_up_to(5);
        assert_eq!(b, 1, "only one permit was left");
        assert_eq!(acquire_up_to(1), 0, "pool exhausted");
        release(a + b);
        assert_eq!(spare_threads(), 3);
    }

    #[test]
    fn zero_max_takes_nothing() {
        let _guard = POOL_TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        set_spare_threads(4);
        assert_eq!(acquire_up_to(0), 0);
        assert_eq!(spare_threads(), 4);
    }

    #[test]
    fn shrink_to_returns_the_surplus_early() {
        let _guard = POOL_TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        set_spare_threads(6);
        let mut held = acquire_guard(5);
        assert_eq!(held.count(), 5);
        assert_eq!(spare_threads(), 1);
        held.shrink_to(2);
        assert_eq!(held.count(), 2);
        assert_eq!(spare_threads(), 4, "surplus must be back in the pool");
        held.shrink_to(3);
        assert_eq!(held.count(), 2, "shrink_to never grows the guard");
        held.shrink_to(0);
        assert_eq!(spare_threads(), 6);
        drop(held);
        assert_eq!(spare_threads(), 6, "empty guard releases nothing");
    }

    #[test]
    fn guard_restores_permits_after_a_panicking_holder() {
        let _guard = POOL_TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        set_spare_threads(4);
        let outcome = std::panic::catch_unwind(|| {
            let held = acquire_guard(3);
            assert_eq!(held.count(), 3);
            assert_eq!(spare_threads(), 1);
            panic!("holder died mid-flight");
        });
        assert!(outcome.is_err(), "the closure must have panicked");
        assert_eq!(spare_threads(), 4, "permits leaked across the panic unwind");
    }
}
