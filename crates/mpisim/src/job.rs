//! Job descriptions: what an MPI application does, iteration by iteration.
//!
//! A [`JobSpec`] is the bridge between the workload models (`ear-workloads`)
//! and the co-simulation driver: a sequence of outer-loop iterations, each
//! with the MPI events every rank issues and the per-node resource demand.

use crate::call::{MpiCall, MpiEvent};
use ear_archsim::{Interconnect, PhaseDemand};
use ear_errors::EarError;

/// Explicit communication volume of one iteration, priced through the
/// cluster's [`Interconnect`] at run time. Workloads calibrated from the
/// paper bake their measured communication time directly into
/// `demand.wait_seconds`; `CommSpec` is for studies where the *fabric*
/// is the variable (paper §VIII: communication-intensive applications).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommSpec {
    /// Collective operations: (call, bytes per rank).
    pub collectives: Vec<(MpiCall, u64)>,
    /// Point-to-point round trips per rank: message sizes in bytes.
    pub p2p_bytes: Vec<u64>,
}

impl CommSpec {
    /// The waiting time this communication costs per iteration on the
    /// given fabric and topology.
    pub fn wait_seconds(&self, fabric: &Interconnect, nodes: usize) -> f64 {
        let mut t = 0.0;
        for (call, bytes) in &self.collectives {
            debug_assert!(call.is_collective());
            t += fabric.collective_time(nodes, *bytes as f64);
        }
        for bytes in &self.p2p_bytes {
            t += fabric.p2p_time(*bytes as f64);
        }
        t
    }

    /// True when no communication is specified.
    pub fn is_empty(&self) -> bool {
        self.collectives.is_empty() && self.p2p_bytes.is_empty()
    }
}

/// One outer-loop iteration of the application.
#[derive(Debug, Clone)]
pub struct IterationSpec {
    /// MPI calls each rank issues during this iteration, in order. DynAIS
    /// consumes these; identical iterations yield identical sequences.
    pub events: Vec<MpiEvent>,
    /// Per-node resource demand of the iteration (communication waiting
    /// time is included in `demand.wait_seconds`).
    pub demand: PhaseDemand,
    /// Additional communication priced through the cluster fabric at run
    /// time (None for calibrated workloads).
    pub comm: Option<CommSpec>,
}

/// A complete MPI job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Application name (used in reports).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// MPI ranks per node.
    pub ranks_per_node: usize,
    /// The outer iterations, in execution order.
    pub iterations: Vec<IterationSpec>,
}

impl JobSpec {
    /// Total rank count.
    pub fn total_ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// Sanity checks used by builders and tests.
    pub fn validate(&self) -> Result<(), EarError> {
        if self.nodes == 0 {
            return Err(EarError::config("job with zero nodes"));
        }
        if self.ranks_per_node == 0 {
            return Err(EarError::config("job with zero ranks per node"));
        }
        if self.iterations.is_empty() {
            return Err(EarError::config("job with no iterations"));
        }
        for (i, it) in self.iterations.iter().enumerate() {
            it.demand
                .validate()
                .map_err(|e| EarError::config(format!("iteration {i}: {e}")))?;
        }
        Ok(())
    }

    /// A convenience builder for jobs whose iterations all look alike
    /// (most of the paper's applications: steady-state iterative solvers).
    pub fn homogeneous(
        name: &str,
        nodes: usize,
        ranks_per_node: usize,
        events: Vec<MpiEvent>,
        demand: PhaseDemand,
        iterations: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            nodes,
            ranks_per_node,
            iterations: (0..iterations)
                .map(|_| IterationSpec {
                    events: events.clone(),
                    demand: demand.clone(),
                    comm: None,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::MpiCall;

    #[test]
    fn homogeneous_builder() {
        let job = JobSpec::homogeneous(
            "test",
            4,
            40,
            vec![MpiEvent::collective(MpiCall::Allreduce, 1024)],
            PhaseDemand {
                instructions: 1e9,
                active_cores: 40,
                ..Default::default()
            },
            10,
        );
        assert_eq!(job.total_ranks(), 160);
        assert_eq!(job.iterations.len(), 10);
        assert!(job.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_jobs() {
        let mut job = JobSpec::homogeneous("bad", 1, 1, vec![], PhaseDemand::default(), 1);
        job.nodes = 0;
        assert!(job.validate().is_err());
        job.nodes = 1;
        job.iterations.clear();
        assert!(job.validate().is_err());
    }
}
