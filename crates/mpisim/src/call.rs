//! MPI call vocabulary and event hashing.
//!
//! EARL intercepts MPI through the PMPI profiling interface; DynAIS consumes
//! a `u64` hash of each call (call id, buffer size, partner/communicator).
//! We model the calls the paper's applications actually issue.

/// The MPI operations relevant to the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiCall {
    /// `MPI_Init` — job start.
    Init,
    /// `MPI_Finalize` — job end.
    Finalize,
    /// `MPI_Send`.
    Send,
    /// `MPI_Recv`.
    Recv,
    /// `MPI_Isend`.
    Isend,
    /// `MPI_Irecv`.
    Irecv,
    /// `MPI_Wait` / `MPI_Waitall`.
    Wait,
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Bcast`.
    Bcast,
    /// `MPI_Reduce`.
    Reduce,
    /// `MPI_Allreduce`.
    Allreduce,
    /// `MPI_Alltoall` (and variants).
    Alltoall,
    /// `MPI_Allgather`.
    Allgather,
    /// `MPI_Sendrecv`.
    Sendrecv,
}

impl MpiCall {
    /// A stable small integer id for hashing (mirrors the PMPI call table).
    pub fn id(self) -> u64 {
        match self {
            MpiCall::Init => 1,
            MpiCall::Finalize => 2,
            MpiCall::Send => 3,
            MpiCall::Recv => 4,
            MpiCall::Isend => 5,
            MpiCall::Irecv => 6,
            MpiCall::Wait => 7,
            MpiCall::Barrier => 8,
            MpiCall::Bcast => 9,
            MpiCall::Reduce => 10,
            MpiCall::Allreduce => 11,
            MpiCall::Alltoall => 12,
            MpiCall::Allgather => 13,
            MpiCall::Sendrecv => 14,
        }
    }

    /// True for collective operations (synchronise all ranks).
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            MpiCall::Barrier
                | MpiCall::Bcast
                | MpiCall::Reduce
                | MpiCall::Allreduce
                | MpiCall::Alltoall
                | MpiCall::Allgather
        )
    }
}

/// One intercepted MPI call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpiEvent {
    /// Which call.
    pub call: MpiCall,
    /// Message/buffer size in bytes.
    pub bytes: u64,
    /// Peer rank (point-to-point) or communicator tag (collectives).
    pub peer: u64,
}

impl MpiEvent {
    /// Builds an event.
    pub fn new(call: MpiCall, bytes: u64, peer: u64) -> Self {
        Self { call, bytes, peer }
    }

    /// Collective with a payload.
    pub fn collective(call: MpiCall, bytes: u64) -> Self {
        debug_assert!(call.is_collective());
        Self {
            call,
            bytes,
            peer: 0,
        }
    }

    /// The DynAIS sample for this event: EAR hashes call id, size and
    /// partner so that structurally identical iterations produce identical
    /// sample sequences.
    pub fn dynais_sample(&self) -> u64 {
        let mut z = self
            .call
            .id()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.bytes.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(self.peer.wrapping_mul(0x94D0_49BB_1331_11EB));
        z ^= z >> 29;
        z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z ^= z >> 32;
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let all = [
            MpiCall::Init,
            MpiCall::Finalize,
            MpiCall::Send,
            MpiCall::Recv,
            MpiCall::Isend,
            MpiCall::Irecv,
            MpiCall::Wait,
            MpiCall::Barrier,
            MpiCall::Bcast,
            MpiCall::Reduce,
            MpiCall::Allreduce,
            MpiCall::Alltoall,
            MpiCall::Allgather,
            MpiCall::Sendrecv,
        ];
        let mut ids: Vec<u64> = all.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn collectives_classified() {
        assert!(MpiCall::Allreduce.is_collective());
        assert!(MpiCall::Barrier.is_collective());
        assert!(!MpiCall::Send.is_collective());
        assert!(!MpiCall::Wait.is_collective());
    }

    #[test]
    fn identical_events_hash_identically() {
        let a = MpiEvent::new(MpiCall::Isend, 4096, 3);
        let b = MpiEvent::new(MpiCall::Isend, 4096, 3);
        assert_eq!(a.dynais_sample(), b.dynais_sample());
    }

    #[test]
    fn different_events_hash_differently() {
        let base = MpiEvent::new(MpiCall::Isend, 4096, 3);
        assert_ne!(
            base.dynais_sample(),
            MpiEvent::new(MpiCall::Irecv, 4096, 3).dynais_sample()
        );
        assert_ne!(
            base.dynais_sample(),
            MpiEvent::new(MpiCall::Isend, 8192, 3).dynais_sample()
        );
        assert_ne!(
            base.dynais_sample(),
            MpiEvent::new(MpiCall::Isend, 4096, 5).dynais_sample()
        );
    }
}
