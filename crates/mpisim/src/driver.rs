//! The co-simulation driver.
//!
//! Runs a [`JobSpec`] on a [`Cluster`] with one [`NodeRuntime`] per node.
//! The paper's applications are bulk-synchronous: every node executes the
//! same outer iteration and synchronises at its end, so the driver runs
//! each iteration on every node, then fills the stragglers' gap with idle
//! time (load-imbalance waiting).
//!
//! Between synchronisation barriers the nodes are independent — per-node
//! state (hardware model, RNG, runtime) never crosses a barrier — so
//! [`run_job`] steps disjoint chunks of (node, runtime) pairs on scoped
//! threads when the shared permit pool ([`crate::permits`]) has spare
//! threads, and falls back to the serial loop otherwise. Both paths
//! produce **bit-identical** [`JobReport`]s: the only cross-node value is
//! the per-iteration barrier horizon, which is an exact `u64` microsecond
//! maximum and therefore independent of evaluation order.
//!
//! Parallelism here is a measured bet, not a default. Three mechanisms
//! keep the parallel path from ever losing to the serial one (the 0.51×
//! regression of the original driver):
//!
//! - **Break-even gating** ([`crate::breakeven`]): jobs below a calibrated
//!   node count skip the parallel path entirely, returning their permits
//!   immediately.
//! - **In-job autotuning**: the first iterations run serially and are
//!   timed; the measured per-node cost plus the calibrated rendezvous and
//!   spawn costs pick the worker count (possibly 1 — stay serial).
//! - **One rendezvous per iteration** (`HorizonGate`): workers publish
//!   their chunk horizon with a single `AtomicU64::fetch_max` and meet at
//!   one sense-reversing gate, instead of a slot array, a leader
//!   reduction and two `std::sync::Barrier` waits.
//!
//! Worker threads are spawned once per job and live for all remaining
//! iterations; a panicking worker poisons the gate so its peers drain out
//! instead of deadlocking, and the panic resumes on the caller after every
//! permit has been returned.

use crate::breakeven::{self, Calibration, Decision};
use crate::intercept::NodeRuntime;
use crate::job::IterationSpec;
use crate::job::JobSpec;
use crate::permits::{self, PermitGuard};
use ear_archsim::{Cluster, CounterSnapshot, Node, PhaseDemand, SimTime};
use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Iterations the autotuner steps serially (and times) before committing
/// to a worker count for the remainder of the job.
const TUNE_ITERS: usize = 2;

/// Fraction of the serial per-iteration cost the best parallel plan must
/// beat for the job to fan out: a dead heat stays serial, because the
/// engine's other workers want the cores more than a 2% win does.
const TUNE_MARGIN: f64 = 0.9;

/// Per-node summary of a finished job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeReport {
    /// Wall-clock seconds from job start to job end on this node.
    pub seconds: f64,
    /// Exact DC energy consumed over the job (J).
    pub dc_energy_j: f64,
    /// Exact package (RAPL PKG) energy over the job (J).
    pub pkg_energy_j: f64,
    /// Average DC power (W).
    pub avg_dc_power_w: f64,
    /// Average CPU frequency over the job (GHz, all cores).
    pub avg_cpu_ghz: f64,
    /// Average IMC (uncore) frequency over the job (GHz).
    pub avg_imc_ghz: f64,
    /// Uncore frequency domains instantiated per socket (1 = legacy).
    pub imc_domains: usize,
    /// Average per-domain IMC frequency over the job (GHz); entries past
    /// `imc_domains` stay zero.
    pub imc_dom_ghz: [f64; ear_archsim::MAX_UNCORE_DOMAINS],
    /// Job-average CPI.
    pub cpi: f64,
    /// Job-average memory bandwidth (GB/s).
    pub gbs: f64,
    /// Job-average AVX512 instruction fraction.
    pub vpi: f64,
}

/// Whole-job summary.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Application name.
    pub name: String,
    /// Per-node reports.
    pub nodes: Vec<NodeReport>,
}

impl JobReport {
    /// Job execution time: the slowest node (they end synchronised, so all
    /// are equal up to rounding).
    pub fn seconds(&self) -> f64 {
        self.nodes.iter().map(|n| n.seconds).fold(0.0, f64::max)
    }

    /// Total DC energy across nodes (J).
    pub fn total_dc_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.dc_energy_j).sum()
    }

    /// Total package energy across nodes (J).
    pub fn total_pkg_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.pkg_energy_j).sum()
    }

    /// Mean of a per-node metric.
    fn mean(&self, f: impl Fn(&NodeReport) -> f64) -> f64 {
        self.nodes.iter().map(f).sum::<f64>() / self.nodes.len().max(1) as f64
    }

    /// Average DC node power across nodes (W).
    pub fn avg_dc_power_w(&self) -> f64 {
        self.mean(|n| n.avg_dc_power_w)
    }

    /// Average CPU frequency across nodes (GHz).
    pub fn avg_cpu_ghz(&self) -> f64 {
        self.mean(|n| n.avg_cpu_ghz)
    }

    /// Average IMC frequency across nodes (GHz).
    pub fn avg_imc_ghz(&self) -> f64 {
        self.mean(|n| n.avg_imc_ghz)
    }

    /// Uncore frequency domains per socket (the maximum across nodes; a
    /// homogeneous cluster reports every node equal).
    pub fn imc_domains(&self) -> usize {
        self.nodes.iter().map(|n| n.imc_domains).max().unwrap_or(1)
    }

    /// Average IMC frequency of domain `d` across nodes (GHz).
    pub fn imc_dom_ghz(&self, d: usize) -> f64 {
        if d < ear_archsim::MAX_UNCORE_DOMAINS {
            self.mean(|n| n.imc_dom_ghz[d])
        } else {
            0.0
        }
    }

    /// Average CPI across nodes.
    pub fn cpi(&self) -> f64 {
        self.mean(|n| n.cpi)
    }

    /// Average memory bandwidth per node (GB/s).
    pub fn gbs(&self) -> f64 {
        self.mean(|n| n.gbs)
    }
}

/// Validates the (cluster, job, runtimes) triple. Panics on mismatch —
/// those are harness bugs, not recoverable conditions.
fn check_job<R>(cluster: &Cluster, job: &JobSpec, runtimes: &[R]) {
    if let Err(e) = job.validate() {
        panic!("invalid job: {e}");
    }
    assert_eq!(cluster.len(), job.nodes, "cluster size != job nodes");
    assert_eq!(runtimes.len(), job.nodes, "one runtime per node required");
}

/// Prices every iteration's explicit communication through the fabric
/// **once per iteration** (the fabric wait is identical on every node), so
/// the per-node stepping below never clones a demand or re-walks the
/// communication spec. Iterations without explicit communication keep
/// `None` and are stepped with their original demand by reference.
fn priced_demands(cluster: &Cluster, job: &JobSpec) -> Vec<Option<PhaseDemand>> {
    job.iterations
        .iter()
        .map(|iter| {
            iter.comm.as_ref().filter(|c| !c.is_empty()).map(|comm| {
                let mut demand = iter.demand.clone();
                demand.wait_seconds += comm.wait_seconds(&cluster.fabric, job.nodes);
                demand
            })
        })
        .collect()
}

/// One node's share of one bulk-synchronous iteration: the PMPI stream
/// (EARL coordinates per node through its master rank, so the runtime
/// receives one event stream per node), the priced work phase, and the
/// timer tick.
#[inline]
fn step_node<R: NodeRuntime>(
    node: &mut Node,
    rt: &mut R,
    iter: &IterationSpec,
    demand: &PhaseDemand,
) {
    for ev in &iter.events {
        rt.on_mpi_call(node, ev);
    }
    node.run_phase(demand);
    rt.on_tick(node);
}

/// Builds the per-node reports from the start-of-job snapshots.
fn build_report(cluster: &Cluster, job: &JobSpec, starts: &[CounterSnapshot]) -> JobReport {
    let mut nodes = Vec::with_capacity(cluster.len());
    for (i, start) in starts.iter().enumerate() {
        let end = cluster.node(i).snapshot();
        let d = end.delta(start);
        let seconds = d.seconds;
        nodes.push(NodeReport {
            seconds,
            dc_energy_j: end.dc_energy_exact_j - start.dc_energy_exact_j,
            pkg_energy_j: d.pkg_energy_j,
            avg_dc_power_w: if seconds > 0.0 {
                (end.dc_energy_exact_j - start.dc_energy_exact_j) / seconds
            } else {
                0.0
            },
            avg_cpu_ghz: d.avg_cpu_ghz(),
            avg_imc_ghz: d.avg_imc_ghz(),
            imc_domains: d.uncore_domains,
            imc_dom_ghz: std::array::from_fn(|k| d.imc_dom_ghz(k)),
            cpi: d.cpi(),
            gbs: d.gbs(),
            vpi: d.vpi(),
        });
    }

    JobReport {
        name: job.name.clone(),
        nodes,
    }
}

/// Runs `job` on `cluster` with one runtime per node, fanning the nodes
/// out across spare threads from the shared permit pool when that is
/// measured to pay (see [`crate::permits`] and [`crate::breakeven`]). The
/// report is bit-identical to [`run_job_serial`] at any thread count, any
/// break-even threshold and any autotuning outcome.
///
/// Panics if the job is invalid or the runtime/node counts disagree —
/// those are harness bugs, not recoverable conditions.
pub fn run_job<R: NodeRuntime + Send>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
) -> JobReport {
    check_job(cluster, job, runtimes);
    if job.nodes < 2 {
        return drive_serial(cluster, job, runtimes);
    }
    // The RAII guard gives the permits back even when a node panics inside
    // the parallel driver and the unwind crosses this frame. Acquisition
    // happens before the gate so an exhausted pool (a saturated engine
    // campaign) degrades to serial without ever touching the calibration.
    let mut held = permits::acquire_guard(job.nodes - 1);
    if held.count() == 0 {
        return drive_serial(cluster, job, runtimes);
    }
    match breakeven::decision(job.nodes) {
        Decision::Serial => {
            // Below break-even: the permits go back *now*, not when the
            // job ends — the engine's other workers can use them.
            drop(held);
            drive_serial(cluster, job, runtimes)
        }
        Decision::Forced => drive_adaptive(cluster, job, runtimes, &mut held, false),
        Decision::Tuned => drive_adaptive(cluster, job, runtimes, &mut held, true),
    }
}

/// Runs `job` strictly serially on the calling thread, never touching the
/// permit pool. The executable specification for [`run_job`]'s determinism
/// guarantee (the parallel path must match this bit for bit) and the entry
/// point for runtimes that are not [`Send`].
pub fn run_job_serial<R: NodeRuntime>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
) -> JobReport {
    check_job(cluster, job, runtimes);
    drive_serial(cluster, job, runtimes)
}

/// One serial bulk-synchronous iteration: step every node, then fill the
/// stragglers' gap to the horizon. Shared by `drive_serial` and the
/// autotuner's timed warm-up so both paths are the same code.
fn step_iteration_serial<R: NodeRuntime>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
    priced: &[Option<PhaseDemand>],
    i: usize,
) {
    let iter = &job.iterations[i];
    let demand = priced[i].as_ref().unwrap_or(&iter.demand);
    for (n, rt) in runtimes.iter_mut().enumerate() {
        step_node(cluster.node_mut(n), rt, iter, demand);
    }
    // Bulk-synchronous step: everyone waits for the slowest node.
    let horizon = cluster.horizon();
    cluster.synchronise_to(horizon);
}

fn drive_serial<R: NodeRuntime>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
) -> JobReport {
    let starts: Vec<_> = (0..cluster.len())
        .map(|i| cluster.node(i).snapshot())
        .collect();

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_start(cluster.node_mut(i), &job.name, job.ranks_per_node);
    }

    let priced = priced_demands(cluster, job);
    for i in 0..job.iterations.len() {
        step_iteration_serial(cluster, job, runtimes, &priced, i);
    }

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_end(cluster.node_mut(i));
    }

    build_report(cluster, job, &starts)
}

/// The per-iteration rendezvous of the persistent worker set.
///
/// Workers publish their chunk horizon into one monotone `AtomicU64` with
/// `fetch_max` (exact `u64` microseconds: order-independent, and — because
/// simulated time never goes backwards — never in need of a reset), then
/// meet at a sense-reversing gate. The last worker to arrive snapshots the
/// global maximum and flips the generation; everyone else spins briefly,
/// then yields, until the flip. One atomic max plus one rendezvous per
/// iteration, against the slot array, leader reduction and two
/// mutex/condvar barrier waits it replaces.
///
/// A panicking worker [`poison`](Self::poison)s the gate; spinners and
/// late arrivers observe the flag and drain out instead of waiting for a
/// peer that will never come.
pub(crate) struct HorizonGate {
    workers: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
    horizon: AtomicU64,
    snapshot: AtomicU64,
    poisoned: AtomicBool,
}

impl HorizonGate {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            workers,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            horizon: AtomicU64::new(0),
            snapshot: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Marks the gate dead; every current and future [`arrive`](Self::arrive)
    /// returns `None`.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    /// Publishes this worker's `local` horizon and waits for the round to
    /// close. Returns the global horizon of the round, or `None` if the
    /// gate was poisoned.
    pub(crate) fn arrive(&self, local: u64) -> Option<u64> {
        self.horizon.fetch_max(local, Ordering::AcqRel);
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.workers {
            // Round complete: snapshot the max for this generation before
            // the flip makes it visible, reset the arrival count for the
            // next round, then flip. The Release store of `generation`
            // publishes the snapshot to every Acquire spinner below.
            let horizon = self.horizon.load(Ordering::Acquire);
            self.snapshot.store(horizon, Ordering::Release);
            self.arrived.store(0, Ordering::Release);
            self.generation.store(generation + 1, Ordering::Release);
            if self.poisoned.load(Ordering::SeqCst) {
                return None;
            }
            Some(horizon)
        } else {
            let mut spins: u32 = 0;
            while self.generation.load(Ordering::Acquire) == generation {
                if self.poisoned.load(Ordering::Relaxed) {
                    return None;
                }
                spins = spins.saturating_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscribed (or single-core) machines: hand the
                    // core to the worker we are waiting for.
                    std::thread::yield_now();
                }
            }
            Some(self.snapshot.load(Ordering::Acquire))
        }
    }
}

/// Picks the worker count for the rest of the job from the measured
/// serial per-iteration cost and the calibrated synchronisation and spawn
/// costs. Returns 1 when no parallel plan beats serial by [`TUNE_MARGIN`].
fn choose_workers(
    nodes: usize,
    max_workers: usize,
    remaining_iters: usize,
    iter_secs: f64,
    cal: &Calibration,
) -> usize {
    let per_node = iter_secs / nodes as f64;
    let serial_cost = iter_secs;
    let mut best_w = 1;
    let mut best_cost = f64::INFINITY;
    for w in 2..=max_workers.min(nodes) {
        let chunk = nodes.div_ceil(w);
        // Per-iteration cost of this plan: the widest chunk's work, one
        // rendezvous, and the spawn cost amortised over the remaining
        // iterations.
        let cost = chunk as f64 * per_node
            + cal.sync_ns * 1e-9
            + cal.spawn_ns * 1e-9 * (w as f64 - 1.0) / remaining_iters as f64;
        if cost < best_cost {
            best_cost = cost;
            best_w = w;
        }
    }
    if best_cost < serial_cost * TUNE_MARGIN {
        best_w
    } else {
        1
    }
}

/// The adaptive parallel driver behind [`run_job`]. With `tune` set, the
/// first [`TUNE_ITERS`] iterations run serially under a timer and the
/// measured cost picks the worker count — possibly 1, in which case every
/// permit goes back and the job finishes on the calling thread. Without
/// `tune` (threshold 0: tests, CI) the fan-out is as wide as the held
/// permits allow.
fn drive_adaptive<R: NodeRuntime + Send>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
    held: &mut PermitGuard,
    tune: bool,
) -> JobReport {
    let starts: Vec<_> = (0..cluster.len())
        .map(|i| cluster.node(i).snapshot())
        .collect();

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_start(cluster.node_mut(i), &job.name, job.ranks_per_node);
    }

    let priced = priced_demands(cluster, job);
    let total = job.iterations.len();
    let mut done = 0;
    let mut workers_target = (held.count() + 1).min(job.nodes);

    if tune {
        let mut iter_secs = f64::INFINITY;
        while done < total.min(TUNE_ITERS) {
            let t0 = Instant::now();
            step_iteration_serial(cluster, job, runtimes, &priced, done);
            iter_secs = iter_secs.min(t0.elapsed().as_secs_f64());
            done += 1;
        }
        let remaining = total - done;
        workers_target = if remaining == 0 {
            1
        } else {
            choose_workers(
                job.nodes,
                workers_target,
                remaining,
                iter_secs,
                breakeven::calibration(),
            )
        };
    }

    if workers_target <= 1 {
        // The measurement says parallelism does not pay here: give every
        // permit back for the rest of the job and finish serially.
        held.shrink_to(0);
        while done < total {
            step_iteration_serial(cluster, job, runtimes, &priced, done);
            done += 1;
        }
    } else {
        run_span_parallel(cluster, job, runtimes, &priced, done, workers_target, held);
    }

    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_end(cluster.node_mut(i));
    }

    build_report(cluster, job, &starts)
}

/// Steps iterations `[start_iter, end)` with a persistent worker set of at
/// most `workers_target` workers. The calling thread is worker 0; the
/// others are spawned once and live until the job ends (or the gate is
/// poisoned). Surplus permits — chunking can yield fewer chunks than the
/// target, and the caller needs no permit — go back to the pool before the
/// first spawn.
fn run_span_parallel<R: NodeRuntime + Send>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
    priced: &[Option<PhaseDemand>],
    start_iter: usize,
    workers_target: usize,
    held: &mut PermitGuard,
) {
    let nodes = cluster.nodes_mut_slice();
    let chunk = nodes.len().div_ceil(workers_target.max(1));
    let mut node_chunks: Vec<&mut [Node]> = nodes.chunks_mut(chunk).collect();
    let mut rt_chunks: Vec<&mut [R]> = runtimes.chunks_mut(chunk).collect();
    let workers = node_chunks.len();
    held.shrink_to(workers.saturating_sub(1));

    let gate = HorizonGate::new(workers);
    // First panic wins; the caller re-raises it after the scope has
    // joined every worker and the permits are back.
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let capture = |payload: Box<dyn Any + Send>| {
        gate.poison();
        let mut slot = first_panic.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(payload);
        }
    };

    let own_nodes = node_chunks.remove(0);
    let own_rts = rt_chunks.remove(0);
    std::thread::scope(|scope| {
        for (node_chunk, rt_chunk) in node_chunks.into_iter().zip(rt_chunks) {
            let gate = &gate;
            let capture = &capture;
            scope.spawn(move || {
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    step_chunk(job, priced, start_iter, node_chunk, rt_chunk, gate);
                }));
                if let Err(payload) = result {
                    capture(payload);
                }
            });
        }
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            step_chunk(job, priced, start_iter, own_nodes, own_rts, &gate);
        }));
        if let Err(payload) = result {
            capture(payload);
        }
    });

    let payload = first_panic
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Runs the whole job with a fixed worker count: no permits, no gating,
/// no tuning. The break-even calibration probes race this against
/// [`drive_serial`]; it is also the reference shape for tests that need
/// the parallel machinery regardless of what any measurement says.
pub(crate) fn drive_parallel_fixed<R: NodeRuntime + Send>(
    cluster: &mut Cluster,
    job: &JobSpec,
    runtimes: &mut [R],
    workers: usize,
) -> JobReport {
    check_job(cluster, job, runtimes);
    let starts: Vec<_> = (0..cluster.len())
        .map(|i| cluster.node(i).snapshot())
        .collect();
    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_start(cluster.node_mut(i), &job.name, job.ranks_per_node);
    }
    let priced = priced_demands(cluster, job);
    let mut no_permits = permits::acquire_guard(0);
    run_span_parallel(cluster, job, runtimes, &priced, 0, workers, &mut no_permits);
    for (i, rt) in runtimes.iter_mut().enumerate() {
        rt.on_job_end(cluster.node_mut(i));
    }
    build_report(cluster, job, &starts)
}

/// One worker's loop over its disjoint chunk of (node, runtime) pairs for
/// iterations `[start_iter, end)`. Per iteration: step the chunk, publish
/// its horizon, meet the gate once, idle-fill to the global horizon. A
/// `None` from the gate means a peer panicked — drain out; the chunk's
/// nodes are left mid-job, but the job is already doomed and the caller
/// re-raises the peer's panic.
fn step_chunk<R: NodeRuntime>(
    job: &JobSpec,
    priced: &[Option<PhaseDemand>],
    start_iter: usize,
    nodes: &mut [Node],
    rts: &mut [R],
    gate: &HorizonGate,
) {
    for (iter, priced_demand) in job.iterations.iter().zip(priced).skip(start_iter) {
        let demand = priced_demand.as_ref().unwrap_or(&iter.demand);
        for (node, rt) in nodes.iter_mut().zip(rts.iter_mut()) {
            step_node(node, rt, iter, demand);
        }
        let local = nodes.iter().map(|n| n.now().as_micros()).max().unwrap_or(0);
        let Some(horizon) = gate.arrive(local) else {
            return;
        };
        let t = SimTime(horizon);
        for node in nodes.iter_mut() {
            let lag = t - node.now();
            if lag > 0.0 {
                node.run_idle(lag);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::{MpiCall, MpiEvent};
    use crate::intercept::{NullRuntime, RecordingRuntime};
    use ear_archsim::NodeConfig;

    fn small_job(iters: usize) -> JobSpec {
        JobSpec::homogeneous(
            "unit",
            2,
            40,
            vec![
                MpiEvent::new(MpiCall::Isend, 8192, 1),
                MpiEvent::new(MpiCall::Irecv, 8192, 1),
                MpiEvent::new(MpiCall::Wait, 0, 0),
                MpiEvent::collective(MpiCall::Allreduce, 64),
            ],
            PhaseDemand {
                instructions: 2e10,
                mem_bytes: 5e9,
                active_cores: 40,
                wait_seconds: 0.01,
                ..Default::default()
            },
            iters,
        )
    }

    fn null_runtimes(n: usize) -> Vec<NullRuntime> {
        vec![NullRuntime; n]
    }

    #[test]
    fn job_runs_and_reports() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 42);
        let job = small_job(20);
        let mut rts = null_runtimes(2);
        let report = run_job(&mut cluster, &job, &mut rts);
        assert_eq!(report.nodes.len(), 2);
        assert!(report.seconds() > 1.0);
        assert!(report.total_dc_energy_j() > 100.0);
        assert!(report.avg_dc_power_w() > 200.0);
        // Nodes end synchronised.
        let t0 = report.nodes[0].seconds;
        let t1 = report.nodes[1].seconds;
        assert!((t0 - t1).abs() < 1e-6, "{t0} vs {t1}");
    }

    #[test]
    fn interception_sees_every_event() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 43);
        let job = small_job(5);
        let mut rts = vec![RecordingRuntime::default(), RecordingRuntime::default()];
        run_job(&mut cluster, &job, &mut rts);
        // 5 iterations × 4 events.
        assert_eq!(rts[0].events.len(), 20);
        assert_eq!(rts[0].started, vec!["unit".to_string()]);
        assert_eq!(rts[0].ended, 1);
        assert_eq!(rts[1].events.len(), 20);
    }

    #[test]
    fn explicit_comm_is_priced_by_the_fabric() {
        use crate::job::CommSpec;
        let mk_job = || {
            let mut job = small_job(10);
            for it in &mut job.iterations {
                it.comm = Some(CommSpec {
                    collectives: vec![(MpiCall::Allreduce, 4 << 20)],
                    p2p_bytes: vec![1 << 20; 8],
                });
            }
            job
        };
        let run = |bw: f64| {
            let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 44);
            cluster.fabric.bandwidth_bytes = bw;
            let mut rts = null_runtimes(2);
            run_job(&mut cluster, &mk_job(), &mut rts).seconds()
        };
        let fast = run(12e9);
        let slow = run(1e9);
        assert!(
            slow > fast * 1.02,
            "fabric made no difference: {slow} vs {fast}"
        );
    }

    #[test]
    #[should_panic(expected = "cluster size != job nodes")]
    fn mismatched_cluster_panics() {
        let mut cluster = Cluster::new(NodeConfig::sd530_6148(), 1, 1);
        let job = small_job(1);
        let mut rts = null_runtimes(1);
        run_job(&mut cluster, &job, &mut rts);
    }

    #[test]
    fn priced_demand_is_computed_once_per_iteration() {
        use crate::job::CommSpec;
        let mut job = small_job(4);
        job.iterations[1].comm = Some(CommSpec {
            collectives: vec![(MpiCall::Allreduce, 1 << 20)],
            p2p_bytes: vec![4096; 2],
        });
        job.iterations[2].comm = Some(CommSpec::default()); // empty: not priced
        let cluster = Cluster::new(NodeConfig::sd530_6148(), 2, 45);
        let priced = priced_demands(&cluster, &job);
        assert_eq!(priced.len(), 4);
        assert!(priced[0].is_none());
        assert!(priced[2].is_none(), "empty comm spec must not be priced");
        assert!(priced[3].is_none());
        let d = priced[1].as_ref().expect("iteration 1 has communication");
        assert!(d.wait_seconds > job.iterations[1].demand.wait_seconds);
    }
}
